#!/usr/bin/env bash
# Run the criterion bench suites and regenerate BENCH_engine.json.
#
# Each suite is run REPS times (default 3) with CRITERION_JSON pointed at a
# fresh JSONL stream; bench_report then keeps the minimum ns/iter per
# benchmark, which is robust against load spikes on shared machines, and
# writes the headline events/s / transfers/s / collectives/s / tasks/s
# report with the recorded pre-optimisation baseline and speedup.
#
# The sweep suite (1-thread vs machine-width pool) and two timed
# run_experiments passes record the parallel-harness trajectory:
# sweep_runs_per_sec and suite_wall_seconds at 1 and N threads.
#
# Usage: scripts/bench.sh [reps]        (e.g. `scripts/bench.sh 5`)
set -euo pipefail
cd "$(dirname "$0")/.."

REPS="${1:-3}"
# Absolute path: cargo runs bench binaries with the package directory as
# cwd, so a relative CRITERION_JSON would silently miss the workspace root.
JSONL="$PWD/target/criterion.jsonl"
rm -f "$JSONL"

for i in $(seq 1 "$REPS"); do
    echo "==> bench round $i/$REPS"
    for suite in engine fabric collectives cholesky sweep; do
        CRITERION_JSON="$JSONL" cargo bench -q -p deep-bench --bench "$suite"
    done
done

echo "==> experiment suite wall clock (1 thread, then machine width)"
cargo build -q --release -p deep-bench --bin run_experiments
RAYON_NUM_THREADS=1 ./target/release/run_experiments --quiet \
    --json target/suite_1thread.json
./target/release/run_experiments --quiet \
    --json target/suite_nthreads.json

echo "==> bench_report"
cargo run -q --release -p deep-bench --bin bench_report -- "$JSONL" BENCH_engine.json \
    target/suite_1thread.json target/suite_nthreads.json
