#!/usr/bin/env bash
# Run the criterion bench suites and regenerate BENCH_engine.json.
#
# Each suite is run REPS times (default 3) with CRITERION_JSON pointed at a
# fresh JSONL stream; bench_report then keeps the minimum ns/iter per
# benchmark, which is robust against load spikes on shared machines, and
# writes the headline events/s / transfers/s / collectives/s / tasks/s
# report with the recorded pre-optimisation baseline and speedup.
#
# The sweep suite (1-thread vs machine-width pool) and two timed
# run_experiments passes record the parallel-harness trajectory:
# sweep_runs_per_sec and suite_wall_seconds at 1 and N threads. The
# N-thread pass pins RAYON_NUM_THREADS to max(nproc, 2): on a
# single-core host the default pool is 1 wide, which used to leave
# suite_wall_seconds_by_threads with only a "1" row and the speedup
# null — now there is always an N>1 row (time-sliced on one core, so
# the speedup is honest about the hardware, and bench_report flags it
# rather than omitting it).
#
# serve_bench measures daemon throughput (jobs/s, cached vs uncached)
# for the report's `serve` block.
#
# des_scaling_bench runs the full-DES weak-scaling skeleton (65,536
# ranks) for the report's `des_scaling` block, first comparing the run's
# summary digest at 1 and N threads — a refreshed report cannot ship a
# nondeterministic engine.
#
# bench_report is a gate, not just a formatter: on a host with >= 2
# cores it exits non-zero when the N-thread suite is slower than the
# 1-thread suite (or the N-thread row is missing), so a scheduler
# regression can't be committed as a "refreshed" BENCH_engine.json.
#
# Usage: scripts/bench.sh [reps]        (e.g. `scripts/bench.sh 5`)
set -euo pipefail
cd "$(dirname "$0")/.."

REPS="${1:-3}"
# Absolute path: cargo runs bench binaries with the package directory as
# cwd, so a relative CRITERION_JSON would silently miss the workspace root.
JSONL="$PWD/target/criterion.jsonl"
rm -f "$JSONL"

for i in $(seq 1 "$REPS"); do
    echo "==> bench round $i/$REPS"
    for suite in engine fabric collectives cholesky sweep; do
        CRITERION_JSON="$JSONL" cargo bench -q -p deep-bench --bench "$suite"
    done
done

NT="$(nproc)"
if [ "$NT" -lt 2 ]; then NT=2; fi

echo "==> experiment suite wall clock (1 thread, then $NT threads)"
cargo build -q --release -p deep-bench --bin run_experiments
RAYON_NUM_THREADS=1 ./target/release/run_experiments --quiet \
    --json target/suite_1thread.json
RAYON_NUM_THREADS="$NT" ./target/release/run_experiments --quiet \
    --json target/suite_nthreads.json

# Where the time goes: per-experiment wall clock from the 1-thread pass,
# heaviest first. This is the profile that decides which experiments are
# worth flattening onto work-unit grids (DESIGN.md §12) and feeds the
# registry's LPT weights; target/suite_profile.txt is uploaded as a CI
# artifact alongside the raw suite JSONs.
echo "==> per-experiment wall-clock profile (1 thread, heaviest first)"
awk '/^    "/ { gsub(/[":,]/, ""); printf "%9.3f  %s\n", $2, $1 }' \
    target/suite_1thread.json | sort -rn > target/suite_profile.txt
head -10 target/suite_profile.txt

echo "==> serve_bench (daemon jobs/s, cached vs uncached)"
cargo run -q --release -p deep-serve --bin serve_bench > target/serve_bench.json

echo "==> des_scaling_bench (full-DES weak scaling, digest across thread counts)"
cargo build -q --release -p deep-bench --bin des_scaling_bench
RAYON_NUM_THREADS=1 ./target/release/des_scaling_bench --digest-only \
    > target/des_digest_1.txt
RAYON_NUM_THREADS="$NT" ./target/release/des_scaling_bench --digest-only \
    > target/des_digest_n.txt
cmp target/des_digest_1.txt target/des_digest_n.txt
RAYON_NUM_THREADS="$NT" ./target/release/des_scaling_bench \
    --json target/des_scaling.json

echo "==> bench_report"
cargo run -q --release -p deep-bench --bin bench_report -- "$JSONL" BENCH_engine.json \
    --serve target/serve_bench.json --des-scaling target/des_scaling.json \
    --nproc "$(nproc)" \
    target/suite_1thread.json target/suite_nthreads.json
