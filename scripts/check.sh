#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints (deny warnings), the
# deep-lint static-analysis pass, and tests. Run from the workspace
# root before sending a PR. Each step is timed so slow regressions in
# the gate itself are visible.
set -euo pipefail
cd "$(dirname "$0")/.."

step() {
    local label="$1"
    shift
    echo "==> $label"
    local start end
    start=$(date +%s)
    "$@"
    end=$(date +%s)
    echo "    [$label: $((end - start))s]"
}

step "cargo fmt --check" cargo fmt --check

step "cargo clippy (deny warnings)" \
    cargo clippy --workspace --all-targets -- -D warnings

# Determinism & unsafe-hygiene static analysis, including the
# interprocedural passes (DESIGN.md §17). Must be clean: a violation
# needs a fix or an explicit `deep-lint: allow(...)` pragma with a
# justification (see CONTRIBUTING.md). The summary cache makes
# repeated local runs near-instant.
step "deep-lint" cargo run -q -p deep-lint -- --cache-dir target/lint-cache

step "cargo test (workspace)" cargo test -q --workspace

echo "All checks passed."
