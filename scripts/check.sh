#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints (deny warnings), tests.
# Run from the workspace root before sending a PR.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q

echo "All checks passed."
