//! Property tests for the work-stealing pool: fork-join correctness
//! under nested spawns, panic isolation, and `par_iter` ≡ `iter` on
//! arbitrary inputs — each checked across pool widths 1, 2, and 4 so
//! the single-worker fast paths and the stealing paths are both hit.

use proptest::prelude::*;
use rayon::prelude::*;
use rayon::ThreadPoolBuilder;

/// Pool widths every property is checked against.
const WIDTHS: [usize; 3] = [1, 2, 4];

fn pool(threads: usize) -> rayon::ThreadPool {
    ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool builds")
}

/// Binary fork-join sum over a slice, splitting down to single elements
/// so deep nesting is exercised.
fn tree_sum(xs: &[u64]) -> u64 {
    match xs.len() {
        0 => 0,
        1 => xs[0],
        n => {
            let (l, r) = xs.split_at(n / 2);
            let (a, b) = rayon::join(|| tree_sum(l), || tree_sum(r));
            a.wrapping_add(b)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Deeply nested `join` computes the same sum as sequential
    /// iteration, on every pool width.
    #[test]
    fn nested_join_matches_sequential_sum(
        xs in prop::collection::vec(0u64..1_000_000, 0..250),
    ) {
        let expect: u64 = xs.iter().sum();
        for threads in WIDTHS {
            let got = pool(threads).install(|| tree_sum(&xs));
            prop_assert_eq!(got, expect, "threads = {}", threads);
        }
    }

    /// Every spawned task — including tasks spawned from inside other
    /// tasks — runs exactly once before `scope` returns.
    #[test]
    fn scope_runs_each_nested_spawn_exactly_once(
        fanout in 1usize..24,
        children in 0usize..4,
    ) {
        use std::sync::atomic::{AtomicUsize, Ordering};
        for threads in WIDTHS {
            let count = AtomicUsize::new(0);
            pool(threads).install(|| {
                rayon::scope(|s| {
                    for _ in 0..fanout {
                        s.spawn(|s| {
                            count.fetch_add(1, Ordering::Relaxed);
                            for _ in 0..children {
                                s.spawn(|_| {
                                    count.fetch_add(1, Ordering::Relaxed);
                                });
                            }
                        });
                    }
                });
            });
            prop_assert_eq!(
                count.load(Ordering::Relaxed),
                fanout * (1 + children),
                "threads = {}", threads
            );
        }
    }

    /// A panicking task poisons only its own `scope`: the panic is
    /// rethrown to the caller, every non-panicking sibling still runs,
    /// and the pool keeps working afterwards.
    #[test]
    fn panic_poisons_only_its_scope_and_pool_survives(
        tasks in 1usize..16,
        bad_seed in 0u64..1_000,
    ) {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let bad = (bad_seed as usize) % tasks;
        for threads in WIDTHS {
            let p = pool(threads);
            let ran = AtomicUsize::new(0);
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                p.install(|| {
                    rayon::scope(|s| {
                        let ran = &ran;
                        for i in 0..tasks {
                            s.spawn(move |_| {
                                if i == bad {
                                    panic!("task {i} failed");
                                }
                                ran.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }));
            prop_assert!(result.is_err(), "panic must propagate (threads = {})", threads);
            prop_assert_eq!(ran.load(Ordering::Relaxed), tasks - 1, "siblings still run");
            // The same pool is fully usable after the panic.
            let sum: u64 = p.install(|| (0u64..100).into_par_iter().sum());
            prop_assert_eq!(sum, 4950u64, "pool survives (threads = {})", threads);
        }
    }

    /// `par_iter().map().collect()` and `sum()` agree with the
    /// sequential iterator bit-for-bit on arbitrary inputs.
    #[test]
    fn par_iter_equals_iter(
        xs in prop::collection::vec(0u64..u64::MAX / 2, 0..400),
        mul in 1u64..50,
    ) {
        let expect_map: Vec<u64> = xs.iter().map(|&x| x.wrapping_mul(mul)).collect();
        let expect_sum: u64 = xs.iter().fold(0u64, |a, &x| a.wrapping_add(x));
        for threads in WIDTHS {
            let p = pool(threads);
            let got_map: Vec<u64> =
                p.install(|| xs.par_iter().map(|&x| x.wrapping_mul(mul)).collect());
            prop_assert_eq!(&got_map, &expect_map, "map/collect, threads = {}", threads);
            let got_sum: u64 = p.install(|| {
                xs.par_iter()
                    .map(|&x| x)
                    .reduce(|| 0u64, |a, b| a.wrapping_add(b))
            });
            prop_assert_eq!(got_sum, expect_sum, "reduce, threads = {}", threads);
        }
    }

    /// `par_chunks` partitions exactly like sequential `chunks` for any
    /// chunk size.
    #[test]
    fn par_chunks_equals_chunks(
        xs in prop::collection::vec(0u32..1_000_000, 0..300),
        chunk in 1usize..40,
    ) {
        let expect: Vec<Vec<u32>> = xs.chunks(chunk).map(|c| c.to_vec()).collect();
        for threads in WIDTHS {
            let got: Vec<Vec<u32>> =
                pool(threads).install(|| xs.par_chunks(chunk).map(|c| c.to_vec()).collect());
            prop_assert_eq!(&got, &expect, "threads = {}", threads);
        }
    }

    /// Float summation is bit-identical to sequential iteration at every
    /// width (index-ordered reduce-after-barrier).
    #[test]
    fn float_sum_bit_identical_across_widths(
        xs in prop::collection::vec(0.0f64..1.0e9, 0..300),
    ) {
        let expect: f64 = xs.iter().sum();
        for threads in WIDTHS {
            let got: f64 = pool(threads).install(|| xs.par_iter().sum());
            prop_assert_eq!(got.to_bits(), expect.to_bits(), "threads = {}", threads);
        }
    }
}
