//! Offline shim of the [rayon](https://crates.io/crates/rayon) API surface
//! used by this workspace.
//!
//! The build environment has no registry access, so `par_iter()` here is a
//! sequential iterator with the same method chain. Call sites keep their
//! parallel shape (`use rayon::prelude::*; xs.par_iter().map(..).collect()`)
//! and regain real parallelism the moment the genuine crate is swapped
//! back in; results are identical either way because callers must not
//! depend on execution order.

/// Sequential stand-ins for rayon's parallel iterator traits.
pub mod prelude {
    /// `par_iter()` for shared references — sequential in the shim.
    pub trait IntoParallelRefIterator<'a> {
        /// Element reference type.
        type Item: 'a;
        /// Iterator type returned by [`par_iter`](Self::par_iter).
        type Iter: Iterator<Item = Self::Item>;

        /// Iterate (sequentially in the shim) over `&self`.
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, T: 'a + Sync> IntoParallelRefIterator<'a> for [T] {
        type Item = &'a T;
        type Iter = std::slice::Iter<'a, T>;

        fn par_iter(&'a self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'a, T: 'a + Sync> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = &'a T;
        type Iter = std::slice::Iter<'a, T>;

        fn par_iter(&'a self) -> Self::Iter {
            self.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let xs = vec![1u32, 2, 3, 4];
        let doubled: Vec<u32> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }
}
