//! Offline implementation of the [rayon](https://crates.io/crates/rayon)
//! API surface used by this workspace — a **real work-stealing thread
//! pool**, not a sequential stub.
//!
//! The build environment has no registry access, so this crate provides,
//! in plain `std`, the subset of rayon the workspace exercises:
//!
//! * [`join`] — fork-join with stealing, the scheduling primitive;
//! * [`scope`] / [`Scope::spawn`] — structured tasks borrowing from the
//!   enclosing frame;
//! * parallel iterators ([`prelude`]) — `par_iter`, `into_par_iter`,
//!   `par_chunks`, with splitting adapted to the pool width and
//!   **index-ordered, reduce-after-barrier** terminal operations, so
//!   results are bit-identical to sequential iteration at any thread
//!   count (see `iter.rs` for the determinism argument);
//! * [`ThreadPoolBuilder`] / [`ThreadPool::install`] and the lazily
//!   created global pool sized by `RAYON_NUM_THREADS`;
//! * panic propagation: a panicking task poisons only its own result —
//!   rethrown from the owning `join`/`scope`/`install` — and the pool
//!   survives.
//!
//! Scheduling internals live in `pool.rs`, iterators in `iter.rs`.
//! Callers must not depend on execution order, only on results — which
//! is exactly what the ordered terminal operations guarantee.

mod iter;
mod pool;

pub use pool::{
    current_num_threads, join, scope, Scope, ThreadPool, ThreadPoolBuildError, ThreadPoolBuilder,
};

/// The traits needed to call `par_iter()` and friends.
pub mod prelude {
    pub use crate::iter::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
        ParallelSlice,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn par_iter_matches_iter() {
        let xs = vec![1u32, 2, 3, 4];
        let doubled: Vec<u32> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn join_runs_in_parallel_on_a_multiworker_pool() {
        // Two tasks that each block until the other has started can
        // only finish if they genuinely overlap.
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::time::{Duration, Instant};
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let started = AtomicUsize::new(0);
        let rendezvous = |started: &AtomicUsize| {
            started.fetch_add(1, Ordering::SeqCst);
            let t0 = Instant::now();
            while started.load(Ordering::SeqCst) < 2 {
                assert!(
                    t0.elapsed() < Duration::from_secs(10),
                    "join arms never overlapped"
                );
                std::thread::yield_now();
            }
        };
        pool.install(|| join(|| rendezvous(&started), || rendezvous(&started)));
    }

    #[test]
    fn nested_join_computes_tree_sum() {
        fn tree_sum(xs: &[u64]) -> u64 {
            if xs.len() <= 2 {
                return xs.iter().sum();
            }
            let (l, r) = xs.split_at(xs.len() / 2);
            let (a, b) = join(|| tree_sum(l), || tree_sum(r));
            a + b
        }
        let xs: Vec<u64> = (0..1000).collect();
        assert_eq!(tree_sum(&xs), 499_500);
    }

    #[test]
    fn scope_spawns_complete_before_scope_returns() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let count = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..64 {
                s.spawn(|s| {
                    count.fetch_add(1, Ordering::SeqCst);
                    s.spawn(|_| {
                        count.fetch_add(1, Ordering::SeqCst);
                    });
                });
            }
        });
        assert_eq!(count.load(Ordering::SeqCst), 128);
    }

    #[test]
    fn join_propagates_panic_and_pool_survives() {
        let result = std::panic::catch_unwind(|| {
            join(|| 1, || -> u32 { panic!("boom in b") });
        });
        assert!(result.is_err());
        // The pool is still fully functional afterwards.
        let (a, b) = join(|| 40, || 2);
        assert_eq!(a + b, 42);
    }

    #[test]
    fn first_closure_panic_takes_precedence() {
        let result = std::panic::catch_unwind(|| {
            join(
                || -> u32 { panic!("panic a") },
                || -> u32 { panic!("panic b") },
            );
        });
        let payload = result.unwrap_err();
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "panic a");
    }

    #[test]
    fn scope_rethrows_spawned_panic() {
        let result = std::panic::catch_unwind(|| {
            scope(|s| {
                s.spawn(|_| panic!("spawned panic"));
            });
        });
        assert!(result.is_err());
        assert_eq!(join(|| 1, || 2), (1, 2));
    }

    #[test]
    fn install_switches_pools() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 3);
    }

    #[test]
    fn one_thread_pool_runs_everything() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let total: u64 = pool.install(|| (0u64..10_000).into_par_iter().map(|i| i * 3).sum());
        assert_eq!(total, 3 * 9_999 * 10_000 / 2);
    }

    #[test]
    fn par_chunks_sees_every_element_once() {
        let xs: Vec<u32> = (0..103).collect();
        let sums: Vec<u32> = xs.par_chunks(10).map(|c| c.iter().sum()).collect();
        assert_eq!(sums.len(), 11);
        assert_eq!(sums.iter().sum::<u32>(), xs.iter().sum::<u32>());
        assert_eq!(sums[10], (100..103).sum::<u32>());
    }

    #[test]
    fn into_par_iter_moves_values_in_order() {
        let xs: Vec<String> = (0..50).map(|i| format!("v{i}")).collect();
        let out: Vec<String> = xs.clone().into_par_iter().map(|s| s + "!").collect();
        let expect: Vec<String> = xs.into_iter().map(|s| s + "!").collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn with_max_len_is_result_invariant() {
        // Capping the leaf size changes scheduling granularity only —
        // the collected output must be bitwise the same as uncapped.
        let xs: Vec<u64> = (0..257).collect();
        let uncapped: Vec<u64> = xs.par_iter().map(|&x| x * x + 1).collect();
        for cap in [1, 2, 7, 64, 1024] {
            let capped: Vec<u64> = xs
                .par_iter()
                .with_max_len(cap)
                .map(|&x| x * x + 1)
                .collect();
            assert_eq!(capped, uncapped, "cap = {cap}");
            let mapped_then_capped: Vec<u64> = xs
                .par_iter()
                .map(|&x| x * x + 1)
                .with_max_len(cap)
                .collect();
            assert_eq!(mapped_then_capped, uncapped, "cap = {cap} (post-map)");
        }
    }

    #[test]
    fn with_max_len_sum_stays_bit_identical() {
        let xs: Vec<f64> = (0..999).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let seq: f64 = xs.iter().sum();
        let par: f64 = xs.par_iter().with_max_len(1).sum();
        assert_eq!(par.to_bits(), seq.to_bits());
    }

    #[test]
    fn collect_drops_every_element_exactly_once() {
        // The uninit-slot collect must neither leak nor double-drop on
        // the happy path: track live instances through a drop counter.
        use std::sync::atomic::{AtomicIsize, Ordering};
        static LIVE: AtomicIsize = AtomicIsize::new(0);
        struct Counted(u32);
        impl Counted {
            fn new(v: u32) -> Self {
                LIVE.fetch_add(1, Ordering::SeqCst);
                Counted(v)
            }
        }
        impl Drop for Counted {
            fn drop(&mut self) {
                LIVE.fetch_sub(1, Ordering::SeqCst);
            }
        }
        let out: Vec<Counted> = (0u32..1000).into_par_iter().map(Counted::new).collect();
        assert_eq!(out.len(), 1000);
        assert_eq!(LIVE.load(Ordering::SeqCst), 1000);
        assert!(out.iter().enumerate().all(|(i, c)| c.0 == i as u32));
        drop(out);
        assert_eq!(LIVE.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn collect_panics_on_underproducing_source() {
        // A source whose drive_seq yields fewer items than len() claims
        // must abort the collect with a panic *before* set_len could
        // expose uninitialized memory.
        struct Short(usize);
        impl crate::iter::ParallelIterator for Short {
            type Item = u64;
            fn len(&self) -> usize {
                self.0
            }
            fn split_at(self, index: usize) -> (Self, Self) {
                (Short(index), Short(self.0 - index))
            }
            fn drive_seq(self, each: &mut dyn FnMut(u64)) {
                // One item short of the advertised length.
                for i in 0..self.0.saturating_sub(1) {
                    each(i as u64);
                }
            }
        }
        let result = std::panic::catch_unwind(|| {
            let _: Vec<u64> = crate::iter::ParallelIterator::collect(Short(5));
        });
        assert!(result.is_err(), "under-production must panic, not UB");
    }

    #[test]
    fn float_sum_is_bit_identical_to_sequential() {
        let xs: Vec<f64> = (0..10_000).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let seq: f64 = xs.iter().sum();
        for threads in [1, 2, 8] {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let par: f64 = pool.install(|| xs.par_iter().sum());
            assert_eq!(par.to_bits(), seq.to_bits(), "threads = {threads}");
        }
    }
}
