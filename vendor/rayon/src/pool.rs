//! The work-stealing thread pool under the `rayon` shim's API.
//!
//! One [`Registry`] owns N worker threads. Each worker has a private
//! deque: the owner pushes and pops at the **back** (LIFO, good locality
//! for nested `join`), thieves steal from the **front** (FIFO, oldest —
//! which is the biggest remaining subtree under recursive splitting).
//! External threads inject jobs through a shared queue and block until
//! completion, so non-`'static` borrows in their closures stay valid.
//!
//! Design notes, sized for this workspace's use (coarse tasks — whole
//! deterministic simulations, microseconds to seconds each):
//!
//! * queues are `Mutex<VecDeque>` rather than lock-free Chase–Lev
//!   deques: at coarse granularity the lock is nanoseconds against
//!   task bodies of micro- to milliseconds, and it keeps this file
//!   auditable;
//! * idle workers park on a condvar under a **counted-sleeper
//!   protocol**: a new job wakes exactly *one* parked worker (and skips
//!   the sleep mutex entirely when nobody is parked), latch completions
//!   wake all parked workers, and every park still carries a timeout
//!   backstop so even a reasoning error in the wakeup proof could only
//!   cost milliseconds, never a deadlock (see [`Registry::notify_job`]
//!   for the no-lost-wakeup argument);
//! * a worker that must wait for a latch (its `join` partner was
//!   stolen, a scope still has pending tasks) **keeps executing other
//!   jobs** while it waits — this is what makes nested `join`/`scope`
//!   deadlock-free on any pool size, including one thread — and backs
//!   off exponentially between failed steal attempts instead of
//!   rescanning every queue at a fixed fast cadence.
//!
//! Every job body runs under `catch_unwind`: a panicking task poisons
//! only its own result (rethrown at the `join`/`scope`/`install` that
//! owns it); worker threads never unwind and the pool survives.

use std::any::Any;
use std::cell::{Cell, UnsafeCell};
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

// ---------------------------------------------------------------------
// Jobs.

/// A type-erased pointer to a job owned by some stack frame (or, for
/// scope spawns, the heap). The owner guarantees the pointee outlives
/// execution: `join`/`install` block until the job's latch fires, and
/// `scope` blocks until its pending-counter drains.
#[derive(Clone, Copy)]
pub(crate) struct JobRef {
    data: *const (),
    execute: unsafe fn(*const ()),
}

// SAFETY: a JobRef is only created for jobs whose owner blocks (or
// counts down a latch) until execution completes, so the pointee is
// valid on whichever thread runs it.
unsafe impl Send for JobRef {}

impl JobRef {
    /// Run the job.
    ///
    /// # Safety
    ///
    /// Must be called exactly once per job, while the pointee is still
    /// alive. Both hold for every `JobRef` in this file: a job is pushed
    /// onto exactly one queue, popped by exactly one thread, and its
    /// owner blocks (or holds the heap allocation) until execution.
    pub(crate) unsafe fn execute(self) {
        (self.execute)(self.data)
    }

    fn same_job(&self, other: &JobRef) -> bool {
        std::ptr::eq(self.data, other.data)
    }
}

/// What a panicking job captured.
type PanicPayload = Box<dyn Any + Send + 'static>;

/// A `join` arm or injected closure living on its owner's stack.
pub(crate) struct StackJob<L, F, R> {
    latch: L,
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<Option<std::thread::Result<R>>>,
}

impl<L: Latch, F, R> StackJob<L, F, R>
where
    F: FnOnce() -> R,
{
    pub(crate) fn new(latch: L, func: F) -> Self {
        StackJob {
            latch,
            func: UnsafeCell::new(Some(func)),
            result: UnsafeCell::new(None),
        }
    }

    /// Erase to a [`JobRef`].
    ///
    /// # Safety
    ///
    /// The caller must keep `self` alive and pinned on its stack frame
    /// until the latch fires (or until it pops the job back off the
    /// deque and runs it inline) — the returned `JobRef` aliases `self`
    /// without a lifetime.
    pub(crate) unsafe fn as_job_ref(&self) -> JobRef {
        JobRef {
            data: self as *const Self as *const (),
            execute: Self::execute_erased,
        }
    }

    /// # Safety
    ///
    /// `data` must point to a live `StackJob<L, F, R>` and be invoked at
    /// most once: it takes `func` out of its cell and writes `result`
    /// through a shared reference (sound because the latch orders the
    /// single writer before the single reader in `into_result`).
    unsafe fn execute_erased(data: *const ()) {
        let this = &*(data as *const Self);
        let func = (*this.func.get()).take().expect("job executed twice");
        let result = panic::catch_unwind(AssertUnwindSafe(func));
        *this.result.get() = Some(result);
        // Publish the result before waking waiters: `set` is a Release
        // store (WakeLatch) or a mutex release (LockLatch).
        this.latch.set();
    }

    /// Run inline on the owning thread (the job was popped back off the
    /// local deque before anyone stole it).
    ///
    /// # Safety
    ///
    /// The caller must be the job's sole owner: the `JobRef` made from
    /// `self` was reclaimed un-run (`pop_if_back` returned true), so no
    /// other thread can also execute it.
    pub(crate) unsafe fn run_inline(&self) {
        Self::execute_erased(self as *const Self as *const ());
    }

    pub(crate) fn latch(&self) -> &L {
        &self.latch
    }

    /// Extract the result, rethrowing the job's panic if it had one.
    /// Only called after the latch fired (or inline execution).
    pub(crate) fn into_result(self) -> R {
        match self.result.into_inner().expect("job never executed") {
            Ok(v) => v,
            Err(payload) => panic::resume_unwind(payload),
        }
    }
}

/// A heap-allocated fire-and-forget job (scope spawns).
pub(crate) struct HeapJob {
    func: Box<dyn FnOnce() + Send + 'static>,
}

impl HeapJob {
    /// Box `func` and erase it; the returned [`JobRef`] owns the box.
    pub(crate) fn into_job_ref(func: Box<dyn FnOnce() + Send + 'static>) -> JobRef {
        let boxed = Box::new(HeapJob { func });
        JobRef {
            data: Box::into_raw(boxed) as *const (),
            execute: Self::execute_erased,
        }
    }

    /// # Safety
    ///
    /// `data` must be the pointer produced by `Box::into_raw` in
    /// [`HeapJob::into_job_ref`], and must be passed here exactly once —
    /// this reconstitutes the box (double execution would double-free).
    /// The queues guarantee single delivery.
    unsafe fn execute_erased(data: *const ()) {
        let boxed = Box::from_raw(data as *mut HeapJob);
        (boxed.func)();
    }
}

// ---------------------------------------------------------------------
// Latches.

/// Completion signal a waiter can block on.
pub(crate) trait Latch {
    /// Mark complete and wake any waiter.
    fn set(&self);
}

/// Latch probed by a worker that keeps stealing while it waits. `set`
/// also pokes the registry condvar so a parked owner wakes promptly.
pub(crate) struct WakeLatch {
    flag: AtomicBool,
    registry: *const Registry,
}

impl WakeLatch {
    /// `registry` must outlive the latch; callers on worker threads
    /// guarantee this because workers hold the registry `Arc`.
    pub(crate) fn new(registry: &Registry) -> Self {
        WakeLatch {
            flag: AtomicBool::new(false),
            registry,
        }
    }

    pub(crate) fn probe(&self) -> bool {
        // SeqCst pairs with the SeqCst store in `set` and the sleeper
        // counter: the store-buffering argument in
        // [`Registry::notify_job`] needs both sides of the
        // flag/sleeper-counter exchange in the single total order.
        self.flag.load(Ordering::SeqCst)
    }
}

impl Latch for WakeLatch {
    fn set(&self) {
        // SAFETY: the registry outlives every job that references it.
        let registry = unsafe { &*self.registry };
        self.flag.store(true, Ordering::SeqCst);
        registry.notify_waiters();
    }
}

/// Latch a non-worker thread blocks on (mutex + condvar).
pub(crate) struct LockLatch {
    done: Mutex<bool>,
    cv: Condvar,
}

impl LockLatch {
    pub(crate) fn new() -> Self {
        LockLatch {
            done: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    pub(crate) fn wait(&self) {
        let mut done = self.done.lock().unwrap();
        while !*done {
            done = self.cv.wait(done).unwrap();
        }
    }
}

impl Latch for LockLatch {
    fn set(&self) {
        // Notify while still holding the lock: a waiter woken spuriously
        // after an unlocked `done = true` could observe it, return, and
        // destroy the latch before an after-unlock notify touched `cv`.
        let mut done = self.done.lock().unwrap();
        *done = true;
        self.cv.notify_all();
    }
}

// ---------------------------------------------------------------------
// Registry (the pool proper).

struct WorkerQueue {
    deque: Mutex<VecDeque<JobRef>>,
}

/// A set of worker threads sharing a work-stealing scheduler.
pub(crate) struct Registry {
    workers: Vec<WorkerQueue>,
    injected: Mutex<VecDeque<JobRef>>,
    sleep_mutex: Mutex<()>,
    sleep_cv: Condvar,
    /// Number of workers currently parked (or irrevocably committed to
    /// parking) on `sleep_cv`. Incremented under `sleep_mutex` before
    /// the final queue re-check; lets notifiers skip the mutex + condvar
    /// entirely when nobody is asleep, and wake exactly one sleeper per
    /// new job. See [`Registry::notify_job`] for the protocol proof.
    sleepers: AtomicUsize,
    /// Jobs pushed but not yet popped, across all deques and the
    /// injector. Incremented *before* the push (so it can never read
    /// lower than the true queue population to a racing consumer) and
    /// decremented after each successful pop. Lets an idle worker skip
    /// scanning every queue lock when the pool is empty.
    pending_jobs: AtomicUsize,
    terminate: AtomicBool,
}

thread_local! {
    /// `(registry, worker index)` when the current thread is a pool
    /// worker. Raw pointer: the worker's own `Arc` keeps it alive.
    static CURRENT_WORKER: Cell<Option<(*const Registry, usize)>> = const { Cell::new(None) };
}

/// The current thread's worker identity, if it is a pool worker.
pub(crate) fn current_worker() -> Option<(*const Registry, usize)> {
    CURRENT_WORKER.with(|w| w.get())
}

impl Registry {
    /// Spawn `num_threads` workers; returns the registry and the
    /// workers' join handles (owned by [`ThreadPool`], leaked for the
    /// global pool).
    fn start(num_threads: usize) -> (Arc<Registry>, Vec<std::thread::JoinHandle<()>>) {
        assert!(num_threads >= 1);
        let registry = Arc::new(Registry {
            workers: (0..num_threads)
                .map(|_| WorkerQueue {
                    deque: Mutex::new(VecDeque::new()),
                })
                .collect(),
            injected: Mutex::new(VecDeque::new()),
            sleep_mutex: Mutex::new(()),
            sleep_cv: Condvar::new(),
            sleepers: AtomicUsize::new(0),
            pending_jobs: AtomicUsize::new(0),
            terminate: AtomicBool::new(false),
        });
        let handles = (0..num_threads)
            .map(|index| {
                let registry = registry.clone();
                std::thread::Builder::new()
                    .name(format!("rayon-worker-{index}"))
                    .spawn(move || worker_main(registry, index))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        (registry.clone(), handles)
    }

    pub(crate) fn num_threads(&self) -> usize {
        self.workers.len()
    }

    /// Wake **every** parked worker unconditionally. Only used for
    /// whole-pool state changes (termination) where each worker must
    /// re-examine the world regardless of queue contents.
    pub(crate) fn notify_all(&self) {
        // Touch the sleep mutex so a worker between its queue check and
        // its `wait_timeout` cannot miss the notification entirely (the
        // timeout bounds the cost of the remaining tiny race).
        drop(self.sleep_mutex.lock().unwrap());
        self.sleep_cv.notify_all();
    }

    /// Wake *one* parked worker because one new job was pushed.
    ///
    /// No-lost-wakeup argument. A sleeper parks only via this protocol
    /// (see `wait_while_working` / `worker_main`):
    ///
    /// 1. `sleepers.fetch_add(1, SeqCst)`  — announce intent;
    /// 2. lock `sleep_mutex`;
    /// 3. re-check for work (`pending_jobs` / latch / terminate);
    /// 4. if still nothing: `wait_timeout` on `sleep_cv` (atomically
    ///    releases the mutex);
    /// 5. `sleepers.fetch_sub(1, SeqCst)` on wake.
    ///
    /// A notifier runs: W: `pending_jobs.fetch_add(1, SeqCst)`; push the
    /// job; R: `sleepers.load(SeqCst)`; if non-zero, lock + unlock
    /// `sleep_mutex`, then `notify_one`.
    ///
    /// Both critical loads/stores are SeqCst, so they all appear in one
    /// total order. Case split on that order:
    ///
    /// * Notifier's R(sleepers) sees ≥ 1 — it proceeds to wake. It first
    ///   locks `sleep_mutex`; a sleeper past step 1 is either (a) before
    ///   step 4, still holding the mutex, so the notifier's lock blocks
    ///   until the sleeper is atomically waiting inside `wait_timeout` —
    ///   the subsequent `notify_one` is seen; or (b) already waiting —
    ///   seen likewise. No lost wakeup. (`notify_one` may wake a
    ///   *different* sleeper than the one we reasoned about, but any
    ///   woken worker re-runs step 3, sees `pending_jobs > 0`, and goes
    ///   to work — the job still gets picked up.)
    /// * Notifier's R(sleepers) sees 0 — then every sleeper's
    ///   W(sleepers) (step 1) is *after* the notifier's R in the total
    ///   order, hence after the notifier's W(pending_jobs). SeqCst makes
    ///   that write visible to the sleeper's step-3 re-check, which
    ///   therefore observes `pending_jobs > 0` and backs out instead of
    ///   parking. Again no lost wakeup.
    ///
    /// Sleepers that lost a `notify_one` race to a sibling re-check and
    /// re-park; and every park is a `wait_timeout`, so even a hole in
    /// this argument could only cost one timeout period, never a hang.
    fn notify_job(&self) {
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            drop(self.sleep_mutex.lock().unwrap());
            self.sleep_cv.notify_one();
        }
    }

    /// Wake every parked worker because a latch fired or a scope
    /// drained. `notify_one` would be wrong here: the condvar could pick
    /// a sleeper that is *not* the latch's waiter, and unlike a queued
    /// job a latch event cannot be "found" by an arbitrary worker — only
    /// its waiter reacts to it, so all sleepers must get a chance to
    /// re-check. Skips the mutex when nobody is parked (the common case
    /// on a busy pool); the same total-order argument as
    /// [`Registry::notify_job`] applies with the latch flag (SeqCst
    /// store in `WakeLatch::set`, SeqCst probe) in place of
    /// `pending_jobs`.
    fn notify_waiters(&self) {
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            drop(self.sleep_mutex.lock().unwrap());
            self.sleep_cv.notify_all();
        }
    }

    /// Push onto worker `index`'s own deque (back = LIFO end).
    pub(crate) fn push_local(&self, index: usize, job: JobRef) {
        // Count the job *before* it becomes poppable so `pending_jobs`
        // never under-reports to a concurrent consumer (see field doc).
        self.pending_jobs.fetch_add(1, Ordering::SeqCst);
        self.workers[index].deque.lock().unwrap().push_back(job);
        self.notify_job();
    }

    /// Inject from outside the pool (or across pools).
    pub(crate) fn inject(&self, job: JobRef) {
        self.pending_jobs.fetch_add(1, Ordering::SeqCst);
        self.injected.lock().unwrap().push_back(job);
        self.notify_job();
    }

    /// Pop worker `index`'s most recent job if it is exactly `job`
    /// (i.e. nobody stole it and nothing else was left on top).
    fn pop_if_back(&self, index: usize, job: &JobRef) -> bool {
        let mut deque = self.workers[index].deque.lock().unwrap();
        if deque.back().is_some_and(|b| b.same_job(job)) {
            deque.pop_back();
            drop(deque);
            self.pending_jobs.fetch_sub(1, Ordering::SeqCst);
            true
        } else {
            false
        }
    }

    /// Find a job for worker `index`: own deque (LIFO), then the
    /// injector, then steal the oldest job of another worker.
    fn find_work(&self, index: usize) -> Option<JobRef> {
        // Fast path: when the whole pool is empty, skip taking N+1 queue
        // locks just to discover that. `pending_jobs` is incremented
        // before each push, so a 0 here proves every queue was empty at
        // the load — any job pushed after is published by a wakeup
        // (notify_job) or caught by the caller's timeout backstop.
        if self.pending_jobs.load(Ordering::SeqCst) == 0 {
            return None;
        }
        if let Some(job) = self.workers[index].deque.lock().unwrap().pop_back() {
            self.pending_jobs.fetch_sub(1, Ordering::SeqCst);
            return Some(job);
        }
        if let Some(job) = self.injected.lock().unwrap().pop_front() {
            self.pending_jobs.fetch_sub(1, Ordering::SeqCst);
            return Some(job);
        }
        let n = self.workers.len();
        for offset in 1..n {
            let victim = (index + offset) % n;
            if let Some(job) = self.workers[victim].deque.lock().unwrap().pop_front() {
                self.pending_jobs.fetch_sub(1, Ordering::SeqCst);
                return Some(job);
            }
        }
        None
    }

    /// Worker-side wait: keep executing available work until `done`
    /// reports true. This is the deadlock-avoidance core — a waiting
    /// worker is still a worker.
    ///
    /// Between failed steal attempts the worker parks with exponential
    /// backoff (50 µs doubling to ~1.6 ms) instead of rescanning every
    /// queue at a fixed fast cadence: under a long wait with an empty
    /// pool the old 200 µs spin had all idle workers hammering N+1
    /// mutexes forever. The backoff resets whenever a job was actually
    /// found. Parking follows the counted-sleeper protocol proved in
    /// [`Registry::notify_job`], with `done()` (a SeqCst latch probe or
    /// mutex-guarded counter read) standing in for the latch flag.
    pub(crate) fn wait_while_working(&self, index: usize, done: &dyn Fn() -> bool) {
        let mut backoff_us: u64 = 50;
        while !done() {
            if let Some(job) = self.find_work(index) {
                // SAFETY: every queued JobRef is valid until executed.
                unsafe { job.execute() };
                backoff_us = 50;
                continue;
            }
            // Counted-sleeper park: announce, lock, re-check, wait.
            self.sleepers.fetch_add(1, Ordering::SeqCst);
            let guard = self.sleep_mutex.lock().unwrap();
            if done() || self.pending_jobs.load(Ordering::SeqCst) > 0 {
                drop(guard);
                self.sleepers.fetch_sub(1, Ordering::SeqCst);
                continue;
            }
            // Timed wait: the timeout backstops the (proven-absent)
            // lost-wakeup case, so a hole in the proof costs
            // milliseconds, not a deadlock.
            let _ = self
                .sleep_cv
                .wait_timeout(guard, Duration::from_micros(backoff_us))
                .unwrap();
            self.sleepers.fetch_sub(1, Ordering::SeqCst);
            backoff_us = (backoff_us * 2).min(1600);
        }
    }

    /// Run `f` on a worker of this registry, blocking the calling
    /// thread until it completes. If the caller already *is* a worker
    /// of this registry, run inline.
    pub(crate) fn in_worker<F, R>(&self, f: F) -> R
    where
        F: FnOnce() -> R + Send,
        R: Send,
    {
        if let Some((registry, _)) = current_worker() {
            if std::ptr::eq(registry, self) {
                return f();
            }
        }
        let job = StackJob::new(LockLatch::new(), f);
        // SAFETY: we block on the latch below, so the stack frame (and
        // everything `f` borrows) outlives the job's execution.
        self.inject(unsafe { job.as_job_ref() });
        job.latch().wait();
        job.into_result()
    }
}

fn worker_main(registry: Arc<Registry>, index: usize) {
    CURRENT_WORKER.with(|w| w.set(Some((Arc::as_ptr(&registry), index))));
    loop {
        if let Some(job) = registry.find_work(index) {
            // SAFETY: every queued JobRef is valid until executed; job
            // bodies catch their own panics, so workers never unwind.
            unsafe { job.execute() };
            continue;
        }
        if registry.terminate.load(Ordering::Acquire) {
            return;
        }
        // Counted-sleeper park (protocol proof: `Registry::notify_job`).
        // The 5 ms timeout is purely a backstop; a `terminate` flip is
        // also covered because `ThreadPool::drop` uses the unconditional
        // `notify_all` after storing the flag.
        registry.sleepers.fetch_add(1, Ordering::SeqCst);
        let guard = registry.sleep_mutex.lock().unwrap();
        if registry.pending_jobs.load(Ordering::SeqCst) > 0
            || registry.terminate.load(Ordering::Acquire)
        {
            drop(guard);
            registry.sleepers.fetch_sub(1, Ordering::SeqCst);
            continue;
        }
        let _ = registry
            .sleep_cv
            .wait_timeout(guard, Duration::from_millis(5))
            .unwrap();
        registry.sleepers.fetch_sub(1, Ordering::SeqCst);
    }
}

// ---------------------------------------------------------------------
// join.

/// Run two closures, potentially in parallel, returning both results.
///
/// The second closure is published for stealing while the current
/// thread runs the first; if nobody stole it, it runs inline (so a
/// one-thread pool degenerates to exactly sequential execution). If
/// either closure panics, the panic is rethrown here — the first
/// closure's panic takes precedence — and the pool itself survives.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    match current_worker() {
        // SAFETY: on a worker thread the registry pointer is valid (the
        // worker holds the Arc for its whole life).
        Some((registry, index)) => unsafe { join_on_worker(&*registry, index, oper_a, oper_b) },
        None => global_registry().in_worker(move || join(oper_a, oper_b)),
    }
}

fn join_on_worker<A, B, RA, RB>(registry: &Registry, index: usize, oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let job_b = StackJob::new(WakeLatch::new(registry), oper_b);
    // SAFETY: job_b stays on this frame; every exit path below first
    // ensures the job was either executed or popped back un-run.
    let ref_b = unsafe { job_b.as_job_ref() };
    registry.push_local(index, ref_b);

    let result_a = panic::catch_unwind(AssertUnwindSafe(oper_a));

    if registry.pop_if_back(index, &ref_b) {
        // Nobody stole b. Run it inline — unless a panicked, in which
        // case we own the un-run closure and can simply drop it.
        if result_a.is_ok() {
            // SAFETY: the job was reclaimed from the deque, so this
            // thread is its only owner.
            unsafe { job_b.run_inline() };
        }
    } else {
        // b was stolen (or this worker will pick it off its own deque
        // while waiting): execute other work until its latch fires.
        registry.wait_while_working(index, &|| job_b.latch().probe());
    }

    let ra = match result_a {
        Ok(v) => v,
        Err(payload) => panic::resume_unwind(payload),
    };
    (ra, job_b.into_result())
}

// ---------------------------------------------------------------------
// scope / spawn.

/// A scope for spawning tasks that may borrow from the enclosing stack
/// frame (lifetime `'scope`). All spawned tasks complete before
/// [`scope`] returns.
pub struct Scope<'scope> {
    registry: *const Registry,
    /// Spawned-but-unfinished task count; the scope's exit latch.
    pending: Mutex<usize>,
    /// First panic out of any spawned task, rethrown at scope exit.
    panic: Mutex<Option<PanicPayload>>,
    marker: std::marker::PhantomData<Cell<&'scope ()>>,
}

impl<'scope> Scope<'scope> {
    /// Spawn a task that runs sometime before the scope ends. Panics in
    /// the task are captured and rethrown when the scope closes.
    pub fn spawn<BODY>(&self, body: BODY)
    where
        BODY: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        *self.pending.lock().unwrap() += 1;
        let scope_ptr = SendPtr(self as *const Scope<'scope>);
        let task: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            // Capture the whole SendPtr wrapper, not the raw `.0` field
            // (edition-2021 disjoint capture would grab the non-Send
            // pointer otherwise).
            let scope_ptr = scope_ptr;
            // SAFETY: the scope blocks until `pending` drains, so it
            // outlives this task on every path.
            let scope: &Scope<'scope> = unsafe { &*scope_ptr.0 };
            let result = panic::catch_unwind(AssertUnwindSafe(|| body(scope)));
            if let Err(payload) = result {
                scope.panic.lock().unwrap().get_or_insert(payload);
            }
            // Read the registry pointer *before* counting down: the
            // moment `pending` hits zero the scope owner may return and
            // pop the frame holding `scope`.
            let registry = scope.registry;
            *scope.pending.lock().unwrap() -= 1;
            // SAFETY: the registry outlives all of its jobs.
            // `notify_waiters` (not `notify_job`): the scope owner may
            // be parked waiting for `pending` to drain, and only *it*
            // reacts to this event — every sleeper must get to re-check.
            unsafe { (*registry).notify_waiters() };
        });
        // SAFETY: lifetime erasure. The closure only borrows data that
        // lives at least as long as 'scope, and the scope cannot end
        // before this task runs to completion.
        let task: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(task) };
        let job = HeapJob::into_job_ref(task);
        // SAFETY: registry outlives the scope.
        let registry = unsafe { &*self.registry };
        match current_worker() {
            Some((current, index)) if std::ptr::eq(current, self.registry) => {
                registry.push_local(index, job)
            }
            _ => registry.inject(job),
        }
    }

    fn pending_is_zero(&self) -> bool {
        *self.pending.lock().unwrap() == 0
    }
}

/// Pointer wrapper that asserts cross-thread validity (the scope
/// discipline guarantees it).
struct SendPtr<T>(*const T);
// SAFETY: only constructed around `&Scope` in `Scope::spawn`. The scope
// is `Sync`-shaped by construction (its interior state is behind
// mutexes) and outlives every task that holds the pointer, because
// `scope` blocks until the pending-counter drains.
unsafe impl<T> Send for SendPtr<T> {}

/// Create a scope in which tasks spawned via [`Scope::spawn`] may
/// borrow non-`'static` data; blocks until every spawned task (and
/// every task they spawned, recursively) has finished.
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    let registry: &Registry = match current_worker() {
        // SAFETY: worker threads keep their registry alive.
        Some((registry, _)) => unsafe { &*registry },
        None => global_registry(),
    };
    registry.in_worker(|| {
        let (registry_ptr, index) = current_worker().expect("in_worker runs on a worker");
        let scope = Scope {
            registry: registry_ptr,
            pending: Mutex::new(0),
            panic: Mutex::new(None),
            marker: std::marker::PhantomData,
        };
        let result = panic::catch_unwind(AssertUnwindSafe(|| op(&scope)));
        // Drain spawned tasks before unwinding anything: they may
        // borrow from frames we are about to pop.
        // SAFETY: we are on a worker of `registry_ptr`.
        unsafe { (*registry_ptr).wait_while_working(index, &|| scope.pending_is_zero()) };
        let r = match result {
            Ok(r) => r,
            Err(payload) => panic::resume_unwind(payload),
        };
        if let Some(payload) = scope.panic.lock().unwrap().take() {
            panic::resume_unwind(payload);
        }
        r
    })
}

// ---------------------------------------------------------------------
// Thread pools and the global registry.

/// Error building a thread pool.
#[derive(Debug)]
pub struct ThreadPoolBuildError {
    msg: &'static str,
}

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.msg)
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for an explicit [`ThreadPool`] (or the global pool).
#[derive(Debug, Default, Clone)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Start configuring a pool.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Set the worker count; `0` (the default) means automatic —
    /// `RAYON_NUM_THREADS` if set, otherwise the machine's parallelism.
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    fn resolved_threads(&self) -> usize {
        if self.num_threads > 0 {
            return self.num_threads;
        }
        default_num_threads()
    }

    /// Build an explicit pool. Its workers shut down when the
    /// [`ThreadPool`] is dropped.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let (registry, handles) = Registry::start(self.resolved_threads());
        Ok(ThreadPool { registry, handles })
    }

    /// Install this configuration as the global pool. Fails if the
    /// global pool was already initialised (explicitly or lazily).
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        let threads = self.resolved_threads();
        let mut fresh = false;
        GLOBAL_REGISTRY.get_or_init(|| {
            fresh = true;
            let (registry, handles) = Registry::start(threads);
            for handle in handles {
                drop(handle); // detach: the global pool lives forever
            }
            registry
        });
        if fresh {
            Ok(())
        } else {
            Err(ThreadPoolBuildError {
                msg: "the global thread pool has already been initialized",
            })
        }
    }
}

/// Worker count for automatic sizing: `RAYON_NUM_THREADS`, else the
/// machine's available parallelism.
fn default_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

static GLOBAL_REGISTRY: OnceLock<Arc<Registry>> = OnceLock::new();

/// The implicit pool `join`/`par_iter` use outside any explicit pool.
pub(crate) fn global_registry() -> &'static Registry {
    GLOBAL_REGISTRY.get_or_init(|| {
        let (registry, handles) = Registry::start(default_num_threads());
        for handle in handles {
            drop(handle); // detach: the global pool lives forever
        }
        registry
    })
}

/// An explicitly-built pool. Work run under [`ThreadPool::install`]
/// (and every `join`/`par_iter` nested inside it) executes on this
/// pool's workers instead of the global pool.
pub struct ThreadPool {
    registry: Arc<Registry>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Execute `op` on this pool, blocking until it returns.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        self.registry.in_worker(op)
    }

    /// Worker count of this pool.
    pub fn current_num_threads(&self) -> usize {
        self.registry.num_threads()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.registry.terminate.store(true, Ordering::Release);
        self.registry.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Worker count of the current context: the enclosing pool's when
/// called from inside one, the global pool's otherwise.
pub fn current_num_threads() -> usize {
    match current_worker() {
        // SAFETY: worker threads keep their registry alive.
        Some((registry, _)) => unsafe { (*registry).num_threads() },
        None => global_registry().num_threads(),
    }
}
