//! Parallel iterators over indexed sources (slices, vectors, integer
//! ranges, chunked slices).
//!
//! Everything here is **deterministic by construction**: a source of
//! known length is split recursively at fixed midpoints (the split tree
//! depends only on the length and the split threshold, never on thread
//! timing), leaves write their items into *index-ordered* slots, and
//! ordered terminal operations (`collect`, `sum`, `reduce`) fold those
//! slots sequentially after the parallel phase — so the result is
//! bit-identical to the sequential iterator for any thread count,
//! including one. The only thing parallelism changes is wall-clock time.
//!
//! The split threshold adapts to the enclosing pool: a drive splits
//! until pieces are ≲ len / (4 × threads), giving the scheduler ~4
//! stealable pieces per worker for load balancing without drowning
//! coarse task bodies in bookkeeping.

use std::mem::MaybeUninit;
use std::ops::Range;
use std::sync::Arc;

use crate::pool::{current_num_threads, join};

/// A parallel iterator over an indexed source.
///
/// Unlike the real rayon's unindexed hierarchy, every iterator in this
/// shim knows its length and splits at explicit midpoints; this is what
/// makes the determinism argument above hold for every combinator.
pub trait ParallelIterator: Sized + Send {
    /// The element type.
    type Item: Send;

    /// Remaining item count.
    fn len(&self) -> usize;

    /// True when no items remain.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Split into `[0, index)` and `[index, len)`.
    fn split_at(self, index: usize) -> (Self, Self);

    /// Produce every item sequentially, in index order.
    fn drive_seq(self, each: &mut dyn FnMut(Self::Item));

    /// Map each item through `f` (applied in parallel).
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map {
            base: self,
            f: Arc::new(f),
        }
    }

    /// Cap the leaf size of the split tree (rayon's `with_max_len`).
    ///
    /// The adaptive threshold (~len / 4·threads) assumes item bodies are
    /// cheap relative to scheduling. For *coarse* work units — whole
    /// simulations, micro- to milliseconds each — a leaf of 3–4 items
    /// serializes work that should be individually stealable:
    /// `with_max_len(1)` makes every item its own leaf. Splitting stays
    /// at fixed midpoints, so this changes scheduling granularity only,
    /// never the index order of results.
    fn with_max_len(self, max: usize) -> MaxLen<Self> {
        assert!(max > 0, "with_max_len requires a non-zero cap");
        MaxLen { base: self, max }
    }

    /// Upper bound on leaf size imposed by a [`MaxLen`] adapter in the
    /// chain; `None` means only the adaptive threshold applies.
    fn max_leaf_len(&self) -> Option<usize> {
        None
    }

    /// Run `f` on every item, in parallel. No ordering is observable
    /// (there is no result), so `f` must be safe to call concurrently.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        let threshold = effective_threshold(&self);
        drive_for_each(self, &f, threshold);
    }

    /// Collect into a container, preserving index order exactly.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }

    /// Sum the items. Items are produced in parallel, then folded in
    /// index order after the barrier — identical to `.iter().sum()`
    /// even for floating point.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + Send,
    {
        collect_vec(self).into_iter().sum()
    }

    /// Reduce with `op` against `identity()`. Folded in index order
    /// after the parallel phase (see [`ParallelIterator::sum`]).
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync + Send,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync + Send,
    {
        collect_vec(self).into_iter().fold(identity(), op)
    }
}

/// Piece size below which a drive stops splitting.
fn split_threshold(len: usize) -> usize {
    (len / (4 * current_num_threads()).max(1)).max(1)
}

/// Adaptive threshold clamped by any [`MaxLen`] adapter in the chain.
fn effective_threshold<P: ParallelIterator>(p: &P) -> usize {
    let adaptive = split_threshold(p.len());
    match p.max_leaf_len() {
        Some(cap) => adaptive.min(cap).max(1),
        None => adaptive,
    }
}

/// Recursive fork-join drive writing items into index-ordered
/// *uninitialized* slots — the collect hot path writes each element
/// exactly once, in place, with no `Option` wrapping and no second
/// materializing pass.
fn drive_fill<P: ParallelIterator>(p: P, out: &mut [MaybeUninit<P::Item>], threshold: usize) {
    let n = p.len();
    debug_assert_eq!(n, out.len());
    if n <= threshold {
        let mut written = 0;
        p.drive_seq(&mut |item| {
            // Bounds-assert *before* the write: an over-producing
            // source must panic, not scribble past the sub-slice.
            assert!(written < n, "producer yielded more than len() items");
            out[written].write(item);
            written += 1;
        });
        // `collect_vec`'s set_len relies on every leaf having fully
        // initialized its sub-slice; an under-producing source must
        // panic here, before any uninitialized memory can be exposed.
        assert_eq!(written, n, "producer yielded fewer than len() items");
        return;
    }
    let mid = n / 2;
    let (left, right) = p.split_at(mid);
    let (out_left, out_right) = out.split_at_mut(mid);
    join(
        || drive_fill(left, out_left, threshold),
        || drive_fill(right, out_right, threshold),
    );
}

/// Recursive fork-join drive with no output.
fn drive_for_each<P, F>(p: P, f: &F, threshold: usize)
where
    P: ParallelIterator,
    F: Fn(P::Item) + Sync,
{
    let n = p.len();
    if n <= threshold {
        p.drive_seq(&mut |item| f(item));
        return;
    }
    let mid = n / 2;
    let (left, right) = p.split_at(mid);
    join(
        || drive_for_each(left, f, threshold),
        || drive_for_each(right, f, threshold),
    );
}

/// Drive to an index-ordered `Vec`, writing results straight into the
/// final allocation (no intermediate `Vec<Option<T>>` + unwrap-move
/// pass — that double materialization cost a full extra copy of every
/// `par_sweep`/`collect` result).
fn collect_vec<P: ParallelIterator>(p: P) -> Vec<P::Item> {
    let n = p.len();
    let threshold = effective_threshold(&p);
    let mut vec: Vec<P::Item> = Vec::with_capacity(n);
    drive_fill(p, &mut vec.spare_capacity_mut()[..n], threshold);
    // SAFETY: `drive_fill` partitions the slot slice into disjoint
    // leaf sub-slices (split_at_mut along the fixed-midpoint split
    // tree) and each leaf asserts it wrote *exactly* its sub-slice
    // length before returning, so on this line all `n` slots are
    // initialized. If any leaf panics (short/over production or a
    // panicking job body), the panic propagates out of `drive_fill`
    // and this line is never reached — `vec` still has len 0, so
    // already-written elements leak but no uninitialized or
    // double-dropped memory is ever observed.
    unsafe { vec.set_len(n) };
    vec
}

/// Containers a parallel iterator can collect into.
pub trait FromParallelIterator<T: Send> {
    /// Build the container from the iterator's items, in index order.
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Vec<T> {
        collect_vec(iter)
    }
}

// ---------------------------------------------------------------------
// Combinators.

/// Parallel iterator returned by [`ParallelIterator::map`].
pub struct Map<P, F> {
    base: P,
    f: Arc<F>,
}

impl<P, R, F> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    R: Send,
    F: Fn(P::Item) -> R + Sync + Send,
{
    type Item = R;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (left, right) = self.base.split_at(index);
        (
            Map {
                base: left,
                f: self.f.clone(),
            },
            Map {
                base: right,
                f: self.f,
            },
        )
    }

    fn drive_seq(self, each: &mut dyn FnMut(R)) {
        let f = self.f;
        self.base.drive_seq(&mut |item| each(f(item)));
    }

    fn max_leaf_len(&self) -> Option<usize> {
        self.base.max_leaf_len()
    }
}

/// Parallel iterator returned by [`ParallelIterator::with_max_len`]:
/// identical item stream, but leaves of the split tree are capped at
/// `max` items.
pub struct MaxLen<P> {
    base: P,
    max: usize,
}

impl<P: ParallelIterator> ParallelIterator for MaxLen<P> {
    type Item = P::Item;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (left, right) = self.base.split_at(index);
        (
            MaxLen {
                base: left,
                max: self.max,
            },
            MaxLen {
                base: right,
                max: self.max,
            },
        )
    }

    fn drive_seq(self, each: &mut dyn FnMut(P::Item)) {
        self.base.drive_seq(each);
    }

    fn max_leaf_len(&self) -> Option<usize> {
        // Nested caps compose by taking the tightest.
        Some(match self.base.max_leaf_len() {
            Some(inner) => inner.min(self.max),
            None => self.max,
        })
    }
}

// ---------------------------------------------------------------------
// Sources.

/// Parallel iterator over `&[T]`.
pub struct SliceIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (left, right) = self.slice.split_at(index);
        (SliceIter { slice: left }, SliceIter { slice: right })
    }

    fn drive_seq(self, each: &mut dyn FnMut(&'a T)) {
        for item in self.slice {
            each(item);
        }
    }
}

/// Parallel iterator over non-overlapping chunks of a slice
/// ([`ParallelSlice::par_chunks`]).
pub struct ChunksIter<'a, T> {
    slice: &'a [T],
    chunk_size: usize,
}

impl<'a, T: Sync> ParallelIterator for ChunksIter<'a, T> {
    type Item = &'a [T];

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk_size)
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let elements = (index * self.chunk_size).min(self.slice.len());
        let (left, right) = self.slice.split_at(elements);
        (
            ChunksIter {
                slice: left,
                chunk_size: self.chunk_size,
            },
            ChunksIter {
                slice: right,
                chunk_size: self.chunk_size,
            },
        )
    }

    fn drive_seq(self, each: &mut dyn FnMut(&'a [T])) {
        for chunk in self.slice.chunks(self.chunk_size) {
            each(chunk);
        }
    }
}

/// Parallel iterator that owns a `Vec` ([`IntoParallelIterator`]).
pub struct VecIter<T> {
    vec: Vec<T>,
}

impl<T: Send> ParallelIterator for VecIter<T> {
    type Item = T;

    fn len(&self) -> usize {
        self.vec.len()
    }

    fn split_at(mut self, index: usize) -> (Self, Self) {
        let right = self.vec.split_off(index);
        (self, VecIter { vec: right })
    }

    fn drive_seq(self, each: &mut dyn FnMut(T)) {
        for item in self.vec {
            each(item);
        }
    }
}

/// Parallel iterator over an integer range.
pub struct RangeIter<T> {
    range: Range<T>,
}

macro_rules! range_par_iter {
    ($($t:ty),+) => {$(
        impl ParallelIterator for RangeIter<$t> {
            type Item = $t;

            fn len(&self) -> usize {
                if self.range.start >= self.range.end {
                    0
                } else {
                    (self.range.end - self.range.start) as usize
                }
            }

            fn split_at(self, index: usize) -> (Self, Self) {
                let mid = self.range.start + index as $t;
                (
                    RangeIter { range: self.range.start..mid },
                    RangeIter { range: mid..self.range.end },
                )
            }

            fn drive_seq(self, each: &mut dyn FnMut($t)) {
                for i in self.range {
                    each(i);
                }
            }
        }

        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            type Iter = RangeIter<$t>;

            fn into_par_iter(self) -> RangeIter<$t> {
                RangeIter { range: self }
            }
        }
    )+};
}

range_par_iter!(u32, u64, usize, i32, i64);

// ---------------------------------------------------------------------
// Entry traits.

/// Types convertible into an owning parallel iterator.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Iterator type produced.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecIter<T>;

    fn into_par_iter(self) -> VecIter<T> {
        VecIter { vec: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    type Iter = SliceIter<'a, T>;

    fn into_par_iter(self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    type Iter = SliceIter<'a, T>;

    fn into_par_iter(self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

/// `par_iter()` on shared references (rayon's
/// `IntoParallelRefIterator`).
pub trait IntoParallelRefIterator<'a> {
    /// Element reference type.
    type Item: Send + 'a;
    /// Iterator type produced.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Parallel-iterate over `&self`.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: 'a + Sync> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = SliceIter<'a, T>;

    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

impl<'a, T: 'a + Sync> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = SliceIter<'a, T>;

    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

/// Slice extensions (rayon's `ParallelSlice`).
pub trait ParallelSlice<T: Sync> {
    /// Parallel-iterate over non-overlapping chunks of `chunk_size`
    /// elements (the last chunk may be shorter).
    fn par_chunks(&self, chunk_size: usize) -> ChunksIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ChunksIter<'_, T> {
        assert!(chunk_size > 0, "chunk_size must be non-zero");
        ChunksIter {
            slice: self,
            chunk_size,
        }
    }
}
