//! Offline shim of the [criterion](https://crates.io/crates/criterion)
//! API surface used by this workspace's benches.
//!
//! The build environment has no registry access, so this crate provides a
//! minimal, dependency-free harness that keeps `cargo bench` (and
//! `cargo test --benches`) compiling and running. It measures each
//! benchmark with a fixed-iteration wall-clock loop and prints a single
//! mean-time line per benchmark — no statistics, warm-up, or HTML reports.
//!
//! When the `CRITERION_JSON` environment variable names a file, every
//! completed benchmark additionally appends one JSON line to it:
//! `{"name":...,"ns_per_iter":...}` plus `"elements"`/`"bytes"` when the
//! group carries a [`Throughput`] annotation. `scripts/bench.sh` consumes
//! this stream to build the committed `BENCH_engine.json` report.

use std::fmt::Write as _;
use std::io::Write as _;
use std::time::Instant;

/// Prevent the optimiser from discarding a value (best-effort).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation attached to a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Parameter-derived benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier rendered from a parameter value alone.
    pub fn from_parameter<P: std::fmt::Display>(p: P) -> BenchmarkId {
        BenchmarkId { id: p.to_string() }
    }

    /// Identifier with an explicit function name and parameter.
    pub fn new<S: Into<String>, P: std::fmt::Display>(name: S, p: P) -> BenchmarkId {
        let mut id = name.into();
        let _ = write!(id, "/{p}");
        BenchmarkId { id }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    /// Run `f` repeatedly and record the mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

/// Top-level benchmark harness.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Number of measurement iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Run a single standalone benchmark.
    pub fn bench_function<S: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: S,
        f: F,
    ) -> &mut Self {
        let name = name.into();
        run_one(&name, self.sample_size, None, f);
        self
    }
}

/// A named collection of benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Record the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Run a benchmark identified by `id` with an input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        run_one(&full, self.criterion.sample_size, self.throughput, |b| {
            f(b, input)
        });
        self
    }

    /// Run a benchmark named `name` within this group.
    pub fn bench_function<S: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: S,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.into());
        run_one(&full, self.criterion.sample_size, self.throughput, f);
        self
    }

    /// Close the group (no-op in the shim).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        iters: sample_size.max(1) as u64,
        elapsed_ns: 0,
    };
    f(&mut b);
    let per_iter = b.elapsed_ns / b.iters.max(1) as u128;
    println!("bench {name:<48} {per_iter:>12} ns/iter");
    if let Some(path) = std::env::var_os("CRITERION_JSON") {
        append_json_line(&path, name, per_iter, throughput);
    }
}

/// Append one benchmark result to the `CRITERION_JSON` stream. The name is
/// escaped minimally (quotes and backslashes); bench names are plain ASCII
/// identifiers in practice. Failures to write are reported, not fatal: a
/// broken results file should not abort the bench run itself.
fn append_json_line(
    path: &std::ffi::OsStr,
    name: &str,
    ns_per_iter: u128,
    throughput: Option<Throughput>,
) {
    let escaped: String = name
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            _ => vec![c],
        })
        .collect();
    let mut line = format!("{{\"name\":\"{escaped}\",\"ns_per_iter\":{ns_per_iter}");
    match throughput {
        Some(Throughput::Elements(n)) => {
            let _ = write!(line, ",\"elements\":{n}");
        }
        Some(Throughput::Bytes(n)) => {
            let _ = write!(line, ",\"bytes\":{n}");
        }
        None => {}
    }
    line.push('}');
    let res = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| writeln!(f, "{line}"));
    if let Err(e) = res {
        eprintln!("criterion shim: cannot append to {path:?}: {e}");
    }
}

/// Declare a benchmark group entry point (both criterion forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = <$crate::Criterion as ::core::default::Default>::default();
            targets = $($target),+
        }
    };
}

/// Declare the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_run() {
        let mut c = Criterion::default().sample_size(2);
        c.bench_function("shim/standalone", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("shim/group");
        g.throughput(Throughput::Elements(4));
        g.bench_with_input(BenchmarkId::from_parameter(4), &4u32, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        g.finish();
    }

    #[test]
    fn json_lines_carry_name_time_and_throughput() {
        let path =
            std::env::temp_dir().join(format!("criterion-shim-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        append_json_line(
            path.as_os_str(),
            "g/\"q\"",
            1234,
            Some(Throughput::Elements(8)),
        );
        append_json_line(path.as_os_str(), "solo", 5, None);
        append_json_line(path.as_os_str(), "bytes", 9, Some(Throughput::Bytes(64)));
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines,
            vec![
                r#"{"name":"g/\"q\"","ns_per_iter":1234,"elements":8}"#,
                r#"{"name":"solo","ns_per_iter":5}"#,
                r#"{"name":"bytes","ns_per_iter":9,"bytes":64}"#,
            ]
        );
        let _ = std::fs::remove_file(&path);
    }
}
