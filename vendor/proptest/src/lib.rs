//! Offline shim of the [proptest](https://crates.io/crates/proptest) API
//! surface used by this workspace.
//!
//! The build environment has no registry access, so this crate provides a
//! small, self-contained property-testing harness that is source-compatible
//! with the subset of proptest the test suites use: the [`proptest!`]
//! macro, range/tuple/`prop_map`/collection strategies, `prop_assert*`
//! macros and [`ProptestConfig`]. Differences from the real crate:
//!
//! * no shrinking — a failing case reports its message and panics;
//! * sampling is a simple deterministic xorshift stream keyed by the test
//!   name, so failures reproduce exactly across runs.

use std::ops::{Range, RangeInclusive};

/// Deterministic RNG used to sample strategies.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derive a deterministic stream from a test identifier.
    pub fn deterministic(name: &str) -> TestRng {
        // FNV-1a over the name, then SplitMix64 to spread bits.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: splitmix64(h ^ 0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Next raw 64-bit value (SplitMix64 sequence).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        splitmix64(self.state)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assert*` failed with this message.
    Fail(String),
    /// `prop_assume!` rejected the inputs; resample.
    Reject,
}

/// Runner configuration (only the `cases` knob is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` accepted cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator. Unlike real proptest there is no shrinking tree;
/// `sample` directly produces a value.
pub trait Strategy {
    /// Type of the generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + (self.end - self.start) * u
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Strategy namespace mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// Strategy for `Vec`s with lengths drawn from `len`.
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        /// Generate vectors of `element` values with a length in `len`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.len.sample(rng);
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// Everything a test module needs.
pub mod prelude {
    pub use crate::{prop, Just, ProptestConfig, Strategy, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Entry macro: declares `#[test]` functions whose arguments are drawn
/// from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng =
                $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            let mut accepted = 0u32;
            let mut attempts = 0u32;
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts < config.cases.saturating_mul(64) + 1024,
                    "prop_assume! rejected too many cases"
                );
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    { $body }
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("proptest case {} failed: {}", accepted, msg);
                    }
                }
            }
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fail the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (l, r) = (&$a, &$b);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                l, r
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$a, &$b);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                l,
                r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Fail the current case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (l, r) = (&$a, &$b);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                l, r
            )));
        }
    }};
}

/// Skip (resample) the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in 5u64..=9, v in prop::collection::vec(0u8..4, 2..6)) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((5..=9).contains(&y));
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&b| b < 4));
        }

        #[test]
        fn map_and_assume(n in (1u32..10, 1u32..10).prop_map(|(a, b)| a * b)) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0, "n = {}", n);
        }
    }

    #[test]
    fn deterministic_streams() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
