//! Offline shim standing in for the `signal-hook` crate: just enough
//! to let a daemon notice SIGTERM/SIGINT and drain gracefully.
//!
//! The build environment has no registry access (and no `libc` crate),
//! so this binds the C library's `signal(2)` entry point directly —
//! every Rust binary on the supported targets already links the C
//! runtime. The handler does the only async-signal-safe thing
//! possible: it stores into a static atomic that the daemon's accept
//! loop polls.

use std::sync::atomic::{AtomicBool, Ordering};

/// SIGINT on every platform this workspace targets (POSIX).
pub const SIGINT: i32 = 2;
/// SIGTERM on every platform this workspace targets (POSIX).
pub const SIGTERM: i32 = 15;

/// C signal-handler type as `signal(2)` expects it.
type SigHandler = extern "C" fn(i32);

extern "C" {
    /// The C library's `signal(2)`. Returning value (the previous
    /// handler) is deliberately ignored by the callers below.
    fn signal(signum: i32, handler: SigHandler) -> usize;
}

/// Set to `true` by the handler once any registered signal arrives.
static TERMINATE: AtomicBool = AtomicBool::new(false);

/// The installed handler. Only async-signal-safe operations are legal
/// here; a relaxed atomic store is one of them.
extern "C" fn mark_terminate(_signum: i32) {
    TERMINATE.store(true, Ordering::Relaxed);
}

/// Install flag-setting handlers for SIGTERM and SIGINT and return the
/// flag. Idempotent; later calls just return the same flag.
///
/// The flag never resets: this models "the process has been asked to
/// shut down", which is one-way.
pub fn terminate_flag() -> &'static AtomicBool {
    // SAFETY: `signal` is the C library's own registration entry
    // point, called with a valid signal number and a non-unwinding
    // `extern "C" fn` whose body (a relaxed atomic store) is
    // async-signal-safe per POSIX. Re-registration from multiple
    // threads is benign: both install the same handler.
    unsafe {
        signal(SIGTERM, mark_terminate);
        signal(SIGINT, mark_terminate);
    }
    &TERMINATE
}

/// Current state of the flag without installing handlers.
pub fn termination_requested() -> bool {
    TERMINATE.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_starts_clear_and_latches() {
        let flag = terminate_flag();
        assert!(!termination_requested());
        // Deliver a real SIGTERM to ourselves through the C runtime;
        // the handler must latch the flag.
        // SAFETY: `raise` is the C library's synchronous self-signal
        // entry point; delivering SIGTERM to this test process is safe
        // because `terminate_flag` installed a no-op-beyond-the-flag
        // handler above.
        unsafe {
            extern "C" {
                fn raise(signum: i32) -> i32;
            }
            assert_eq!(raise(SIGTERM), 0);
        }
        assert!(flag.load(std::sync::atomic::Ordering::Relaxed));
        assert!(termination_requested());
    }
}
