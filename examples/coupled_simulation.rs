//! The coupled multi-physics proxy on three architectures — the paper's
//! core architectural argument (slides 6–10) in one program: a complex
//! `main()` part plus a highly scalable kernel, run on
//!
//!   1. a homogeneous Xeon cluster,
//!   2. a conventional PCIe-accelerated cluster,
//!   3. the DEEP cluster-booster machine.
//!
//! Run with: `cargo run --release --example coupled_simulation`

use deep_core::{
    fmt_bytes, fmt_f, run_on_accelerated, run_on_deep, run_on_pure_cluster, CoupledParams,
    CoupledReport, DeepConfig, Table,
};

fn main() {
    let params = CoupledParams::default();
    println!(
        "coupled proxy: {} steps, {} internal HSCP iterations per step,\n\
         {} HSCP flops/step, halo {} per iteration per unit\n",
        params.steps,
        params.hscp_iters,
        params.hscp_flops_total,
        fmt_bytes(params.halo_bytes)
    );

    // Machines sized for comparable accelerator silicon: 64 KNC booster
    // nodes (~64 TF) vs 48 GPUs (~63 TF) vs 16 plain Xeon nodes.
    let deep_cfg = DeepConfig::medium(); // 16 CN + 4x4x4 booster
    let reports: Vec<CoupledReport> = vec![
        run_on_pure_cluster(1, 16, params),
        run_on_accelerated(1, 16, params),
        run_on_deep(1, deep_cfg, params),
    ];

    let mut t = Table::new(
        "coupled",
        "coupled proxy across architectures",
        &[
            "architecture",
            "CN",
            "acc units",
            "time-to-solution",
            "energy [kJ]",
            "CPU<->acc msgs",
            "CPU<->acc bytes",
            "avg msg size",
        ],
    );
    for r in &reports {
        let avg = r
            .acc_bytes
            .checked_div(r.acc_messages)
            .map_or_else(|| "-".into(), fmt_bytes);
        t.row(&[
            r.arch.clone(),
            r.cluster_nodes.to_string(),
            r.acc_units.to_string(),
            format!("{}", r.elapsed),
            fmt_f(r.energy_joules / 1e3),
            r.acc_messages.to_string(),
            fmt_bytes(r.acc_bytes),
            avg,
        ]);
    }
    t.print();

    let deep = &reports[2];
    let accel = &reports[1];
    println!(
        "cluster-booster vs accelerated cluster: {:.2}x time, {:.2}x energy,\n\
         {:.1}x fewer CPU<->accelerator messages per unit",
        accel.elapsed.as_secs_f64() / deep.elapsed.as_secs_f64(),
        accel.energy_joules / deep.energy_joules,
        (accel.acc_messages as f64 / accel.acc_units as f64)
            / (deep.acc_messages as f64 / deep.acc_units as f64),
    );
}
