//! The paper's OmpSs showcase (slide 23): a tiled Cholesky factorisation
//! executed by the dataflow runtime, verified numerically, and compared
//! against the fork-join (barrier) baseline on both a Xeon cluster node
//! and a KNC booster node.
//!
//! Run with: `cargo run --release --example cholesky_offload`

use deep_apps::cholesky::{cholesky_graph, factorisation_error, spd_matrix, TiledMatrix};
use deep_hw::NodeModel;
use deep_ompss::{occupancy, render_gantt, run_dataflow, run_fork_join};
use deep_simkit::Simulation;

fn main() {
    let nt = 8; // tiles per side
    let ts = 16; // elements per tile side
    let n = nt * ts;
    println!("tiled Cholesky: {n}x{n} matrix as {nt}x{nt} tiles of {ts}x{ts}\n");

    let a = spd_matrix(n);

    for node in [NodeModel::xeon_cluster_node(), NodeModel::xeon_phi_knc()] {
        println!("== {} ({} cores) ==", node.name, node.cores);
        let mut worker_counts = vec![1u32, 4, 16, node.cores];
        worker_counts.dedup();
        for workers in worker_counts {
            // Dataflow (OmpSs) execution with real tile math.
            let m = TiledMatrix::from_dense(&a, nt, ts);
            let g = cholesky_graph(&m);
            let mut sim = Simulation::new(1);
            let ctx = sim.handle();
            let node2 = node.clone();
            let h = sim.spawn("dataflow", async move {
                run_dataflow(&ctx, g, &node2, workers).await
            });
            sim.run().assert_completed();
            let df = h.try_result().unwrap();
            let err = factorisation_error(&m.to_dense(), &a, n);
            assert!(err < 1e-9, "factorisation must stay correct ({err})");

            // Fork-join baseline.
            let m2 = TiledMatrix::from_dense(&a, nt, ts);
            let g2 = cholesky_graph(&m2);
            let mut sim2 = Simulation::new(1);
            let ctx2 = sim2.handle();
            let node3 = node.clone();
            let h2 = sim2.spawn("forkjoin", async move {
                run_fork_join(&ctx2, g2, &node3, workers).await
            });
            sim2.run().assert_completed();
            let fj = h2.try_result().unwrap();

            println!(
                "  {:>3} workers: dataflow {:>12} (speedup {:>5.2}, eff {:>4.1}%) | \
                 fork-join {:>12} | dataflow wins {:.2}x | L·Lᵀ err {err:.2e}",
                workers,
                format!("{}", df.makespan),
                df.speedup(),
                df.efficiency() * 100.0,
                format!("{}", fj.makespan),
                fj.makespan.as_secs_f64() / df.makespan.as_secs_f64(),
            );
        }
        println!();
    }
    println!("critical-path bound check: with many workers the dataflow makespan");
    println!("approaches the critical path, which the barrier model cannot reach.\n");

    // Visualise why: worker occupancy over time for both schedulers.
    let node = NodeModel::xeon_phi_knc();
    let workers = 8;
    let m = TiledMatrix::from_dense(&a, nt, ts);
    let g = cholesky_graph(&m);
    let mut sim = Simulation::new(1);
    let ctx = sim.handle();
    let node2 = node.clone();
    let h = sim.spawn(
        "df",
        async move { run_dataflow(&ctx, g, &node2, workers).await },
    );
    sim.run().assert_completed();
    let df = h.try_result().unwrap();

    let m2 = TiledMatrix::from_dense(&a, nt, ts);
    let g2 = cholesky_graph(&m2);
    let mut sim2 = Simulation::new(1);
    let ctx2 = sim2.handle();
    let h2 = sim2.spawn("fj", async move {
        run_fork_join(&ctx2, g2, &node, workers).await
    });
    sim2.run().assert_completed();
    let fj = h2.try_result().unwrap();

    println!(
        "dataflow trace ({} workers, occupancy {:.0}%):",
        workers,
        occupancy(&df) * 100.0
    );
    print!("{}", render_gantt(&df, 64));
    println!(
        "\nfork-join trace ({} workers, occupancy {:.0}%) — note the barrier gaps:",
        workers,
        occupancy(&fj) * 100.0
    );
    print!("{}", render_gantt(&fj, 64));
}
