//! A tour of the global-MPI layer: communicator management, collectives
//! and the spawn/merge machinery of slides 26–29 — in one program on the
//! small DEEP machine.
//!
//! Run with: `cargo run --release --example global_mpi_tour`

use deep_core::{DeepConfig, DeepMachine, BOOSTER_POOL};
use deep_psmpi::{MpiCtx, ReduceOp, Value};
use deep_simkit::Simulation;
use std::rc::Rc;

fn main() {
    let mut sim = Simulation::new(1);
    let machine = DeepMachine::build(&sim.handle(), DeepConfig::small());

    // The booster-side program: compute in the child world, then merge
    // the inter-communicator into one big world (MPI_Intercomm_merge) and
    // participate in a global allreduce spanning cluster AND booster.
    machine.register_app(
        "tour-worker",
        Rc::new(|m: MpiCtx| {
            Box::pin(async move {
                let world = m.world().clone();
                let inter = m.parent().unwrap().clone();
                // Children get their own MPI_COMM_WORLD (slide 26).
                let child_sum = m.allreduce(&world, ReduceOp::Sum, Value::U64(1), 8).await;
                if m.rank() == 0 {
                    println!(
                        "[booster] world size {} (sum check {})",
                        m.size(),
                        child_sum.as_u64()
                    );
                }
                // high=true: booster ranks come after the cluster ranks.
                let global = m.intercomm_merge(&inter, true);
                let everyone = m.allreduce(&global, ReduceOp::Sum, Value::U64(1), 8).await;
                if m.rank() == 0 {
                    println!(
                        "[booster] merged global world has {} ranks",
                        everyone.as_u64()
                    );
                }
            })
        }),
    );

    machine.launch_cluster_app("tour", move |m| {
        Box::pin(async move {
            let world = m.world().clone();

            // 1. Split the cluster world by parity (MPI_Comm_split).
            let parity = m.rank() % 2;
            let half = m.comm_split(&world, parity, m.rank()).await;
            let group_sum = m
                .allreduce(&half, ReduceOp::Sum, Value::U64(m.rank() as u64), 8)
                .await;
            if half.rank() == 0 {
                println!(
                    "[cluster] parity-{} group of {} ranks, old-rank sum {}",
                    parity,
                    half.size(),
                    group_sum.as_u64()
                );
            }

            // 2. Prefix sums over the whole cluster (MPI_Scan).
            let prefix = m
                .scan(&world, ReduceOp::Sum, Value::U64(m.rank() as u64 + 1), 8)
                .await;
            println!(
                "[cluster] rank {}: inclusive prefix sum = {}",
                m.rank(),
                prefix.as_u64()
            );

            // 3. Spawn the booster side and merge into a global world.
            let inter = m
                .comm_spawn(&world, "tour-worker", 8, BOOSTER_POOL, 0)
                .await
                .expect("spawn");
            let global = m.intercomm_merge(&inter, false);
            let everyone = m.allreduce(&global, ReduceOp::Sum, Value::U64(1), 8).await;
            if m.rank() == 0 {
                println!(
                    "[cluster] merged global world has {} ranks ({} cluster + {} booster)",
                    everyone.as_u64(),
                    m.size(),
                    inter.remote_size()
                );
            }

            // 4. iprobe: peek before receiving.
            if m.rank() == 0 {
                m.send(&world, 1, 42, Value::U64(7), 2048).await;
            }
            if m.rank() == 1 {
                m.sim().sleep(deep_simkit::SimDuration::millis(1)).await;
                if let Some((src, tag, bytes)) = m.iprobe(&world, None, None) {
                    println!("[cluster] probed a message: src={src} tag={tag} bytes={bytes}");
                }
                let msg = m.recv(&world, Some(0), Some(42)).await;
                println!("[cluster] ...and received {}", msg.value.as_u64());
            }
            m.barrier(&world).await;
        })
    });

    sim.run().assert_completed();
    println!("tour finished at t={}", sim.now());
}
