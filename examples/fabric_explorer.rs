//! Interconnect microbenchmarks: probe the three fabrics of the DEEP
//! design space — EXTOLL (VELO + RMA), InfiniBand, PCIe — for latency and
//! effective bandwidth across message sizes, reproducing the slide-8
//! observation that "IB can be assumed as fast as PCIe besides latency".
//!
//! Run with: `cargo run --release --example fabric_explorer`

use std::rc::Rc;

use deep_fabric::{pcie, EndpointOverhead, ExtollFabric, IbFabric, Network, NodeId, PcieBus};
use deep_simkit::{SimDuration, Simulation};

/// One probed transfer: returns elapsed seconds.
fn probe(fabric: &str, bytes: u64) -> f64 {
    let mut sim = Simulation::new(1);
    let ctx = sim.handle();
    match fabric {
        "extoll" => {
            let f = Rc::new(ExtollFabric::new(&ctx, (4, 4, 4)));
            let h = sim.spawn("p", async move {
                f.send_auto(NodeId(0), NodeId(1), bytes)
                    .await
                    .unwrap()
                    .elapsed
                    .as_secs_f64()
            });
            sim.run().assert_completed();
            h.try_result().unwrap()
        }
        "ib" => {
            let f = Rc::new(IbFabric::new(&ctx, 16));
            let h = sim.spawn("p", async move {
                f.send(NodeId(0), NodeId(8), bytes)
                    .await
                    .unwrap()
                    .elapsed
                    .as_secs_f64()
            });
            sim.run().assert_completed();
            h.try_result().unwrap()
        }
        "pcie" => {
            let net = Rc::new(Network::new(
                &ctx,
                Box::new(PcieBus::new(
                    1,
                    pcie::root_complex_spec(),
                    pcie::pcie2_x16_spec(),
                )),
                4096,
                1,
            ));
            let h = sim.spawn("p", async move {
                net.transfer(
                    PcieBus::host(),
                    PcieBus::device(0),
                    bytes,
                    // Bare DMA doorbell path (no driver stack): this is the
                    // "PCIe besides latency" reference point of slide 8.
                    EndpointOverhead {
                        send: SimDuration::nanos(300),
                        recv: SimDuration::nanos(100),
                    },
                )
                .await
                .unwrap()
                .elapsed
                .as_secs_f64()
            });
            sim.run().assert_completed();
            h.try_result().unwrap()
        }
        other => panic!("unknown fabric {other}"),
    }
}

fn main() {
    println!("fabric microbenchmarks (one-directional transfer, uncontended)\n");
    println!(
        "{:>10} | {:>12} {:>12} {:>12} | {:>9} {:>9} {:>9}",
        "size", "EXTOLL", "InfiniBand", "PCIe", "GB/s", "GB/s", "GB/s"
    );
    println!("{}", "-".repeat(92));
    let mut crossover_reported = false;
    for shift in [3u32, 6, 9, 12, 14, 16, 18, 20, 22, 24, 26] {
        let bytes = 1u64 << shift;
        let te = probe("extoll", bytes);
        let ti = probe("ib", bytes);
        let tp = probe("pcie", bytes);
        let gb = |t: f64| bytes as f64 / t / 1e9;
        println!(
            "{:>10} | {:>10.2}us {:>10.2}us {:>10.2}us | {:>9.2} {:>9.2} {:>9.2}",
            if bytes < 1 << 10 {
                format!("{bytes} B")
            } else if bytes < 1 << 20 {
                format!("{} KiB", bytes >> 10)
            } else {
                format!("{} MiB", bytes >> 20)
            },
            te * 1e6,
            ti * 1e6,
            tp * 1e6,
            gb(te),
            gb(ti),
            gb(tp)
        );
        // Crossover: the network path delivers ≥90% of the PCIe path's
        // effective bandwidth at the same size.
        if !crossover_reported && bytes >= 1024 && gb(ti) > 0.9 * gb(tp) {
            crossover_reported = true;
            println!(
                "{:>10}   ^-- from here the fabric matches PCIe within 10% (slide 8)",
                ""
            );
        }
    }
    println!(
        "\nsmall messages: PCIe's DMA path wins on latency; large messages: all\n\
         three converge to their link bandwidths — which is why offloading\n\
         *coarse* kernels over the fabric costs nothing vs a local accelerator."
    );
}
