//! Quickstart: boot a small DEEP machine, spawn the booster through
//! global MPI, and run one offloaded kernel.
//!
//! Run with: `cargo run --release --example quickstart`

use deep_core::{DeepConfig, DeepMachine, BOOSTER_POOL, OFFLOAD_SERVER};
use deep_hw::KernelProfile;
use deep_ompss::{booster_block, OffloadSpec, Offloader};
use deep_psmpi::{ReduceOp, Value};
use deep_simkit::Simulation;

fn main() {
    let mut sim = Simulation::new(42);
    let config = DeepConfig::small();
    let n_booster = config.n_booster();
    println!(
        "DEEP machine: {} cluster nodes (InfiniBand) + {} booster nodes \
         ({}x{}x{} EXTOLL torus) + {} booster interfaces",
        config.n_cluster,
        n_booster,
        config.booster_dims.0,
        config.booster_dims.1,
        config.booster_dims.2,
        config.n_bi
    );

    let machine = DeepMachine::build(&sim.handle(), config);
    machine.launch_cluster_app("main", move |mpi| {
        Box::pin(async move {
            let world = mpi.world().clone();
            if mpi.rank() == 0 {
                println!(
                    "[{}] cluster world of {} ranks up",
                    mpi.sim().now(),
                    mpi.size()
                );
            }

            // Slide 21: the main() part collectively spawns the highly
            // scalable code part onto the booster via MPI_Comm_spawn.
            let inter = mpi
                .comm_spawn(&world, OFFLOAD_SERVER, n_booster, BOOSTER_POOL, 0)
                .await
                .expect("booster spawn");
            if mpi.rank() == 0 {
                println!(
                    "[{}] booster world of {} ranks spawned; intercommunicator ready",
                    mpi.sim().now(),
                    inter.remote_size()
                );
            }

            // Offload one stencil-like kernel, data in and out.
            let off = Offloader::new(inter);
            let block = booster_block(mpi.rank(), mpi.size(), n_booster);
            let spec = OffloadSpec {
                in_bytes: 2 << 20,
                out_bytes: 2 << 20,
                kernel: KernelProfile::stencil2d(8 << 20),
                cores: u32::MAX,
                iters: 8,
                internal_msg_bytes: 32 << 10,
            };
            let report = off.run(&mpi, &spec, block.clone()).await;
            println!(
                "[{}] rank {}: offloaded kernel over booster ranks {:?} in {}",
                mpi.sim().now(),
                mpi.rank(),
                block,
                report.elapsed
            );

            // A cluster-side collective for good measure.
            let total = mpi.allreduce(&world, ReduceOp::Sum, Value::U64(1), 8).await;
            if mpi.rank() == 0 {
                println!(
                    "[{}] allreduce says {} cluster ranks are alive",
                    mpi.sim().now(),
                    total.as_u64()
                );
            }
            off.shutdown(&mpi, block).await;
        })
    });

    sim.run().assert_completed();
    let traffic = machine.cbp().bridged_traffic();
    println!(
        "done at t={}; {} messages / {} bytes crossed the cluster-booster bridge",
        sim.now(),
        traffic.messages,
        traffic.bytes
    );
}
