//! Parallelism must *pay*: the N-thread Monte-Carlo sweep may never be
//! slower than the 1-thread run on a multi-core host.
//!
//! This is the test-suite twin of the `bench_report` speedup gate (which
//! fails the committed report when `suite_speedup_vs_1thread < 1.0` on a
//! wide host): CI's regular `cargo test` catches a scheduler regression
//! the moment it lands, instead of at the next bench refresh. The
//! workload is the same unit `benches/sweep.rs` commits to
//! BENCH_engine.json — full multi-level checkpoint/restart replicas,
//! sized so one replica is milliseconds of simulation and the pool's
//! per-task overhead is invisible against the grain.
//!
//! On a 1-core host the wall-clock assertion is vacuous (both pools run
//! the same single worker), so it is skipped — but the bit-identity
//! assertion still runs: width must never change results anywhere.

// deep-lint: allow(ambient-authority) — this test *measures* host wall
// clock on purpose: it gates scheduler overhead, not simulated time.
use std::time::{Duration, Instant};

use deep_core::{mean_multilevel_efficiency, LevelCost, MultiLevelParams};
use rayon::{ThreadPool, ThreadPoolBuilder};

const REPLICAS: u32 = 64;

/// Same shape as `benches/sweep.rs`: heavy enough that fork/join cost
/// cannot dominate, light enough for a test.
fn params() -> MultiLevelParams {
    MultiLevelParams {
        work_s: 100_000.0,
        n_nodes: 64,
        mtbf_node_s: 40_000.0,
        interval_s: 10.0,
        levels: [
            LevelCost {
                write_s: 0.5,
                restore_s: 0.5,
            },
            LevelCost {
                write_s: 2.0,
                restore_s: 2.0,
            },
            LevelCost {
                write_s: 8.0,
                restore_s: 6.0,
            },
        ],
        l2_every: 2,
        l3_every: 4,
        restart_s: 30.0,
        severity_weights: [0.6, 0.3, 0.1],
    }
}

/// Minimum wall over `rounds` runs of the sweep on `pool` — min, not
/// mean, because load spikes only ever add time.
fn min_wall(pool: &ThreadPool, p: &MultiLevelParams, rounds: u32) -> Duration {
    (0..rounds)
        .map(|_| {
            // deep-lint: allow(ambient-authority) — wall clock is the measurand here.
            let t0 = Instant::now();
            pool.install(|| mean_multilevel_efficiency(p, 11, REPLICAS));
            t0.elapsed()
        })
        .min()
        .unwrap()
}

#[test]
fn nthread_sweep_is_never_slower_than_serial_on_multicore() {
    let n = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1);
    let p = params();
    let one = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
    let full = ThreadPoolBuilder::new().num_threads(n).build().unwrap();

    // Width must not change the answer, on any host.
    let r1 = one.install(|| mean_multilevel_efficiency(&p, 11, REPLICAS));
    let rn = full.install(|| mean_multilevel_efficiency(&p, 11, REPLICAS));
    assert_eq!(
        r1.efficiency.to_bits(),
        rn.efficiency.to_bits(),
        "thread count changed the Monte-Carlo result"
    );

    if n < 2 {
        eprintln!("1-core host: skipping the wall-clock half of the speedup gate");
        return;
    }

    let wall_1 = min_wall(&one, &p, 3);
    let wall_n = min_wall(&full, &p, 3);
    let speedup = wall_1.as_secs_f64() / wall_n.as_secs_f64();
    assert!(
        speedup >= 1.0,
        "parallel regression: {n}-thread sweep is {speedup:.2}x the 1-thread \
         wall ({wall_n:?} vs {wall_1:?}) — the scheduler is costing more than \
         it delivers"
    );
}
