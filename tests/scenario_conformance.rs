//! Scenario conformance suite: every fixture under
//! `tests/scenario_fixtures/` is either `valid_*.toml` (must parse,
//! validate, and round-trip through the serializer) or
//! `invalid_*.toml` (must fail with the exact error named on its
//! `# expect-error:` first line). Mirrors the deep-lint fixture-corpus
//! pattern: the corpus is the executable specification of the DSL's
//! error surface — any wording change must touch the fixture too.

use std::path::PathBuf;

use deep_scenario::Scenario;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/scenario_fixtures")
}

/// Sorted fixture list with the given filename prefix.
fn fixtures(prefix: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(fixture_dir()).expect("fixture dir exists") {
        let path = entry.expect("readable dir entry").path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        if name.starts_with(prefix) && name.ends_with(".toml") {
            let text = std::fs::read_to_string(&path).expect("readable fixture");
            out.push((name, text));
        }
    }
    out.sort();
    out
}

#[test]
fn corpus_is_large_enough() {
    assert!(
        fixtures("valid_").len() >= 10,
        "need at least 10 valid fixtures, found {}",
        fixtures("valid_").len()
    );
    assert!(
        fixtures("invalid_").len() >= 8,
        "need at least 8 invalid fixtures, found {}",
        fixtures("invalid_").len()
    );
}

#[test]
fn valid_fixtures_parse_and_validate() {
    for (name, text) in fixtures("valid_") {
        let sc = Scenario::from_toml_str(&text)
            .unwrap_or_else(|e| panic!("{name}: expected valid, got error: {e}"));
        assert!(!sc.name.is_empty(), "{name}: scenario name empty");
    }
}

#[test]
fn valid_fixtures_round_trip_through_the_serializer() {
    for (name, text) in fixtures("valid_") {
        let doc = deep_scenario::parse_toml(&text)
            .unwrap_or_else(|e| panic!("{name}: parse failed: {e}"));
        let serialized = deep_scenario::to_toml(&doc)
            .unwrap_or_else(|e| panic!("{name}: serialize failed: {e}"));
        let back = deep_scenario::parse_toml(&serialized)
            .unwrap_or_else(|e| panic!("{name}: reparse failed: {e}\n{serialized}"));
        assert_eq!(back, doc, "{name}: round trip changed the document");
        // And the canonical digest is untouched by the rewrite.
        assert_eq!(
            deep_json::digest::digest(&back),
            deep_json::digest::digest(&doc),
            "{name}: round trip changed the digest"
        );
    }
}

#[test]
fn invalid_fixtures_fail_with_the_exact_message() {
    let fixtures = fixtures("invalid_");
    assert!(!fixtures.is_empty());
    for (name, text) in fixtures {
        let first = text.lines().next().unwrap_or("");
        let want = first
            .strip_prefix("# expect-error: ")
            .unwrap_or_else(|| panic!("{name}: first line must be '# expect-error: <message>'"));
        let got = Scenario::from_toml_str(&text)
            .err()
            .unwrap_or_else(|| panic!("{name}: expected an error, scenario validated"));
        assert_eq!(got, want, "{name}: error message drifted");
    }
}

#[test]
fn reordered_document_digests_identically() {
    let read = |n: &str| std::fs::read_to_string(fixture_dir().join(n)).unwrap();
    let a = deep_scenario::parse_toml(&read("valid_f03b_equivalent.toml")).unwrap();
    let b = deep_scenario::parse_toml(&read("valid_reordered_f03b.toml")).unwrap();
    assert_ne!(a, b, "fixtures differ in member order by construction");
    assert_eq!(
        deep_json::digest::digest_hex(&a),
        deep_json::digest::digest_hex(&b),
        "digest must be invariant under key reordering and whitespace"
    );
}
