//! Trace-replay determinism: the same seed + trace block must produce
//! an identical resmgr utilisation series at any thread width. The
//! replay itself is single-threaded virtual-time simulation; these
//! tests pin that property against accidental parallelism (and against
//! ambient-state leaks) by comparing full result JSON across pools and
//! against a golden digest. Part of the CI determinism matrix
//! (`RAYON_NUM_THREADS` 1 and 4).

use deep_scenario::Scenario;
use rayon::ThreadPoolBuilder;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn with_pool<R: Send>(threads: usize, f: impl FnOnce() -> R + Send) -> R {
    ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool builds")
        .install(f)
}

fn fixture(name: &str) -> Scenario {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/scenario_fixtures/");
    let text = std::fs::read_to_string(format!("{path}{name}")).expect("fixture readable");
    Scenario::from_toml_str(&text).expect("fixture valid")
}

/// FNV-1a of `valid_trace_failures.toml`'s full result JSON (seeded
/// Poisson booster crashes injected into the replay), captured at
/// 1 thread.
const TRACE_FAILURES_GOLDEN: u64 = 0xe9a4_b121_3e57_6a83;

#[test]
fn utilisation_series_is_identical_across_thread_widths() {
    let sc = fixture("valid_trace_failures.toml");
    let mut outputs = Vec::new();
    for threads in [1usize, 2, 8] {
        let out = with_pool(threads, || deep_scenario::execute(&sc));
        let samples = out["trace"]["samples"].as_array().expect("series").len();
        assert!(samples > 0, "series must not be empty");
        outputs.push((threads, out.to_json()));
    }
    for (threads, json) in &outputs {
        assert_eq!(
            json, &outputs[0].1,
            "trace series diverged between 1 and {threads} threads"
        );
        assert_eq!(
            fnv1a(json.as_bytes()),
            TRACE_FAILURES_GOLDEN,
            "trace result drifted from the pinned golden at {threads} threads"
        );
    }
}

#[test]
fn injected_failures_reach_the_resource_manager() {
    let sc = fixture("valid_trace_failures.toml");
    let out = deep_scenario::execute(&sc);
    let injected = out["trace"]["bn_faults_injected"].as_u64().unwrap();
    assert!(
        injected > 0,
        "the Poisson plan's horizon covers the replay; crashes must land"
    );
    // The manager records a failure per injection that lands on a
    // live node; injections against already-failed nodes are no-ops.
    let failures = out["trace"]["bn_failures"].as_u64().unwrap();
    assert!(failures > 0 && failures <= injected);
    // Spares replace the first failures (spares = 2 in the fixture).
    let replaced = out["trace"]["bn_replaced"].as_u64().unwrap();
    assert!(replaced <= 2);
}

#[test]
fn backfill_trace_replays_deterministically() {
    let sc = fixture("valid_trace_backfill.toml");
    let a = deep_scenario::execute(&sc).to_json();
    let b = with_pool(3, || deep_scenario::execute(&sc)).to_json();
    assert_eq!(a, b);
}
