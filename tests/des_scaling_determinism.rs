//! Determinism guards for the partitioned event loop and the full-DES
//! weak-scaling skeleton built on it.
//!
//! 1. A property test: spawning the same workload across any number of
//!    event-loop partitions (1–16) must emit the *identical* trace
//!    stream as the single-loop kernel — partitioning is a storage
//!    layout for the far-horizon timer queue, never a semantic choice.
//! 2. A golden digest for the headline 262,144-rank SpMV run: the
//!    summary digest (per-iteration end instants + message count) is
//!    pinned, and the CI determinism matrix runs this same test under
//!    `RAYON_NUM_THREADS=1` and `=4`, so the value is asserted
//!    thread-invariant as well as stable across kernel changes.

use deep_bench::des_scaling::{self, DesScalingConfig};
use deep_simkit::{SimDuration, Simulation, TraceEvent};
use proptest::prelude::*;

/// FNV-1a over every field of every event, in stream order (the same
/// digest `trace_equivalence` pins its golden with).
fn trace_digest(events: &[TraceEvent]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for e in events {
        eat(&e.at.as_nanos().to_le_bytes());
        eat(e.component.as_bytes());
        eat(&[0xff]);
        eat(e.kind.as_bytes());
        eat(&[0xff]);
        eat(e.payload.as_bytes());
        eat(&[0xfe]);
    }
    h
}

/// A rank-style workload whose schedule mixes the timer wheel (sub-µs
/// sleeps) with the far-horizon heap (multi-µs sleeps) and spawns a
/// child mid-life (children inherit their spawner's partition). The
/// behaviour of rank `r` depends only on `r` — never on the partition
/// count — so the trace stream must not either.
fn run_partitioned(ranks: usize, partitions: u32) -> Vec<TraceEvent> {
    let mut sim = Simulation::new(42);
    sim.enable_tracing();
    let ctx = sim.handle();
    for r in 0..ranks {
        let ctx2 = ctx.clone();
        let fut = async move {
            for step in 0..4u64 {
                // Alternate near (wheel) and far (heap) horizons, with
                // per-rank skew so ranks interleave across partitions.
                let ns = if (r as u64 + step).is_multiple_of(2) {
                    100 + 37 * r as u64
                } else {
                    5_000 + 1_111 * r as u64
                };
                ctx2.sleep(SimDuration::nanos(ns)).await;
                ctx2.emit("rank", "step", || format!("r={r} step={step}"));
                if step == 1 {
                    let ctx3 = ctx2.clone();
                    // deep-lint: allow(partition-safety) — deliberate:
                    // this test asserts children *inherit* the
                    // spawner's partition, so the un-pinned spawn is
                    // the behaviour under test.
                    ctx2.spawn_fmt(format_args!("child-{r}"), async move {
                        ctx3.sleep(SimDuration::nanos(900 + r as u64)).await;
                        ctx3.emit("rank", "child", || format!("r={r}"));
                    });
                }
            }
        };
        ctx.spawn_in_fmt(r as u32 % partitions, format_args!("rank-{r}"), fut);
    }
    sim.run().assert_completed();
    sim.take_events()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Partitioned and single-loop kernels emit identical trace digests
    /// for any partition count in 1..=16 and any rank count.
    #[test]
    fn partitioned_kernel_matches_single_loop_trace(
        partitions in 1u32..=16u32,
        ranks in 1usize..=40usize,
    ) {
        let single = run_partitioned(ranks, 1);
        let parted = run_partitioned(ranks, partitions);
        prop_assert_eq!(
            trace_digest(&single),
            trace_digest(&parted),
            "trace diverged at ranks={} partitions={}",
            ranks,
            partitions
        );
    }
}

/// Summary digest of the 262,144-rank SpMV skeleton (1 iteration,
/// seed 1), captured from the kernel this PR introduced. The CI
/// determinism matrix executes this test at `RAYON_NUM_THREADS` 1 and
/// 4; the digest is a pure function of the configuration, so both runs
/// must land exactly here.
const DES_262K_GOLDEN: u64 = 0x8d5b_00dc_e5ef_d607;

#[test]
fn des_262k_summary_digest_matches_golden_at_any_width() {
    let r = des_scaling::run(DesScalingConfig {
        ranks: 1 << 18,
        iters: 1,
        complex: false,
        seed: 1,
    });
    assert_eq!(r.segments, 14_564);
    assert_eq!(
        r.digest, DES_262K_GOLDEN,
        "262k SpMV summary digest moved: {:#018x}",
        r.digest
    );
}
