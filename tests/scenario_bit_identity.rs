//! Scenario bit-identity: a DSL file reproducing the registered
//! f03b-resilience configuration must produce efficiencies bitwise
//! equal to the registry path's own maths (`daly_optimum` +
//! `mean_efficiency` with the registry seed/replica configuration),
//! byte-identical JSON at 1 and 4 rayon threads, and a pinned golden
//! digest. The serve path is covered by
//! `crates/serve/tests/scenario_jobs.rs` (same `execute` entry point,
//! asserted byte-identical there).

use deep_core::{mean_efficiency, ResilienceParams};
use deep_scenario::Scenario;
use rayon::ThreadPoolBuilder;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn with_pool<R: Send>(threads: usize, f: impl FnOnce() -> R + Send) -> R {
    ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool builds")
        .install(f)
}

fn fixture(name: &str) -> Scenario {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/scenario_fixtures/");
    let text = std::fs::read_to_string(format!("{path}{name}")).expect("fixture readable");
    Scenario::from_toml_str(&text).expect("fixture valid")
}

/// FNV-1a of the small bit-identity scenario's full result JSON.
/// Captured at 1 thread; any drift in the DSL→experiment compilation,
/// number formatting, or RNG streams breaks this.
const BIT_IDENTITY_GOLDEN: u64 = 0xd2a3_0053_e2cb_fa54;

#[test]
fn dsl_rows_are_bitwise_equal_to_registry_math_at_1_and_4_threads() {
    let sc = fixture("valid_bit_identity_small.toml");
    // The registry path: f03b evaluates mean_efficiency(&p, interval,
    // 7, 8) with intervals daly/4, daly, 24h per node count — recompute
    // it here exactly as crates/bench/src/experiments/f03b_resilience.rs
    // does.
    let mut expect: Vec<(u64, f64, f64)> = Vec::new();
    for &n_nodes in &[640u64, 10_000] {
        let p = ResilienceParams {
            work_s: 100000.0,
            n_nodes,
            mtbf_node_s: 157680000.0,
            checkpoint_s: 240.0,
            restart_s: 600.0,
        };
        let daly = deep_core::daly_optimum(&p);
        for interval in [daly / 4.0, daly, 24.0 * 3600.0] {
            let me = mean_efficiency(&p, interval, 7, 8);
            expect.push((n_nodes, interval, me.efficiency));
        }
    }

    let mut outputs = Vec::new();
    for threads in [1usize, 4] {
        let out = with_pool(threads, || deep_scenario::execute(&sc));
        let rows = out["sweep"]["rows"].as_array().expect("sweep rows").clone();
        assert_eq!(rows.len(), expect.len());
        for (row, (n_nodes, interval, efficiency)) in rows.iter().zip(&expect) {
            assert_eq!(row["n_nodes"].as_u64(), Some(*n_nodes));
            assert_eq!(
                row["interval_s"].as_f64(),
                Some(*interval),
                "interval must be computed bitwise as the registry does"
            );
            assert_eq!(
                row["efficiency"].as_f64(),
                Some(*efficiency),
                "n_nodes={n_nodes} interval={interval}: efficiency diverged from registry math at {threads} threads"
            );
        }
        outputs.push((threads, out.to_json()));
    }
    assert_eq!(
        outputs[0].1, outputs[1].1,
        "scenario JSON must be byte-identical at 1 and 4 threads"
    );
    assert_eq!(
        fnv1a(outputs[0].1.as_bytes()),
        BIT_IDENTITY_GOLDEN,
        "scenario result drifted from the pinned golden digest"
    );
}

#[test]
fn f03b_equivalent_fixture_compiles_to_the_registry_configuration() {
    let sc = fixture("valid_f03b_equivalent.toml");
    assert_eq!(sc.seed, 7);
    assert_eq!(sc.replicas, 8);
    let points = sc.sweep_points().unwrap();
    // The registry experiment's node counts, in order.
    let nodes: Vec<u64> = points.iter().map(|p| p.n_nodes).collect();
    assert_eq!(nodes, vec![640, 10_000, 100_000, 1_000_000]);
    for p in &points {
        assert_eq!(p.work_s, 500_000.0);
        assert_eq!(p.mtbf_node_s, 5.0 * 365.0 * 86_400.0);
        assert_eq!(p.checkpoint_s, 240.0);
        assert_eq!(p.restart_s, 600.0);
    }
    // prototype machine total = 128 CN + 8×8×8 BN = 640 = the
    // registry's base fleet size.
    let cfg = sc.machine.config();
    assert_eq!(u64::from(cfg.n_cluster) + u64::from(cfg.n_booster()), 640);
}
