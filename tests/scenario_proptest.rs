//! Property tests for the scenario DSL's serialization layer:
//!
//! 1. `to_toml ∘ parse` is a fixed point — serializing any document the
//!    parser can produce and reparsing yields the identical [`Value`]
//!    tree (and therefore the identical canonical digest).
//! 2. `deep_json::digest` is invariant under member reordering and
//!    under reformatting of the TOML text (injected comments, blank
//!    lines, indentation) — the property the daemon/`run_scenario`
//!    shared result cache relies on.
//!
//! The generator builds random scenario-shaped documents: nested
//! tables, arrays of tables, inline tables, quoted keys, escaped
//! strings, integer- and float-valued numbers.

use deep_json::Value;
use deep_scenario::{parse_toml, to_toml};
use proptest::prelude::*;

/// Key palette: bare keys, keys the serializer must quote (spaces,
/// quotes, empty), but no dots — a dotted key inside a quoted table
/// header is ambiguous with a path in this TOML subset.
const KEYS: &[&str] = &[
    "alpha",
    "beta_2",
    "gamma-ray",
    "n",
    "work_s",
    "axes",
    "long_key_name",
    "s p a c e",
    "quo\"te",
    "",
];

/// Characters string values draw from, covering every escape class the
/// serializer emits (`\" \\ \n \t \r \u00XX`) plus plain text and
/// multi-byte UTF-8.
const STRING_CHARS: &[char] = &[
    'a', 'b', 'z', '0', ' ', '_', '"', '\\', '\n', '\t', '\r', '\u{1}', '#', '[', '=', 'é', '→',
];

fn gen_string(rng: &mut TestRng) -> String {
    let len = rng.below(8) as usize;
    (0..len)
        .map(|_| STRING_CHARS[rng.below(STRING_CHARS.len() as u64) as usize])
        .collect()
}

fn gen_number(rng: &mut TestRng) -> Value {
    match rng.below(3) {
        // Integers, underscore-friendly magnitudes included.
        0 => Value::Number(rng.below(2_000_001) as f64 - 1_000_000.0),
        // Fractions in unit range.
        1 => Value::Number((rng.below(1 << 20) as f64) / (1u64 << 20) as f64),
        // Large/exponent-shaped floats.
        _ => Value::Number((rng.below(1 << 20) as f64 - 500_000.0) * 1.5e5),
    }
}

fn gen_scalar(rng: &mut TestRng) -> Value {
    match rng.below(3) {
        0 => Value::Bool(rng.below(2) == 0),
        1 => gen_number(rng),
        _ => Value::String(gen_string(rng)),
    }
}

/// Distinct keys for one table.
fn gen_keys(rng: &mut TestRng, max: u64) -> Vec<String> {
    let n = rng.below(max) as usize;
    let mut keys: Vec<String> = Vec::new();
    while keys.len() < n {
        let k = KEYS[rng.below(KEYS.len() as u64) as usize].to_string();
        if !keys.contains(&k) {
            keys.push(k);
        }
    }
    keys
}

fn gen_value(rng: &mut TestRng, depth: u32) -> Value {
    let pick = if depth >= 3 {
        rng.below(3)
    } else {
        rng.below(6)
    };
    match pick {
        0..=2 => gen_scalar(rng),
        3 => {
            // Arrays: scalars, nested arrays, or all-tables (the
            // serializer turns the latter into `[[path]]` sections).
            let n = rng.below(4) as usize;
            let items = match rng.below(3) {
                0 => (0..n).map(|_| gen_scalar(rng)).collect(),
                1 => (0..n)
                    .map(|_| Value::Array((0..rng.below(3)).map(|_| gen_scalar(rng)).collect()))
                    .collect(),
                _ => (0..n).map(|_| gen_table(rng, depth + 1)).collect(),
            };
            Value::Array(items)
        }
        _ => gen_table(rng, depth + 1),
    }
}

fn gen_table(rng: &mut TestRng, depth: u32) -> Value {
    Value::Object(
        gen_keys(rng, 5)
            .into_iter()
            .map(|k| (k, gen_value(rng, depth + 1)))
            .collect(),
    )
}

/// Strategy over random scenario-shaped documents.
struct ArbDoc;

impl Strategy for ArbDoc {
    type Value = Value;

    fn sample(&self, rng: &mut TestRng) -> Value {
        gen_table(rng, 0)
    }
}

/// Recursively shuffle object member order (Fisher–Yates on each
/// table) without touching any value.
fn shuffle(v: &Value, rng: &mut TestRng) -> Value {
    match v {
        Value::Object(kv) => {
            let mut kv: Vec<(String, Value)> = kv
                .iter()
                .map(|(k, v)| (k.clone(), shuffle(v, rng)))
                .collect();
            for i in (1..kv.len()).rev() {
                kv.swap(i, rng.below(i as u64 + 1) as usize);
            }
            Value::Object(kv)
        }
        Value::Array(items) => Value::Array(items.iter().map(|i| shuffle(i, rng)).collect()),
        other => other.clone(),
    }
}

/// Reformat serialized TOML without changing its meaning: blank lines,
/// comments, and indentation sprinkled between statements.
fn reformat(toml: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for line in toml.lines() {
        match rng.below(4) {
            0 => out.push_str("# injected comment\n"),
            1 => out.push('\n'),
            _ => {}
        }
        if rng.below(3) == 0 {
            out.push_str("  \t");
        }
        out.push_str(line);
        if rng.below(4) == 0 && !line.is_empty() && !line.ends_with('"') {
            out.push_str("   # trailing note");
        }
        out.push('\n');
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn serialize_then_parse_is_a_fixed_point(doc in ArbDoc) {
        // First trip: the serializer canonicalizes member order (inline
        // values before subtables, as the grammar forces), so assert
        // content equality via the order-insensitive digest.
        let toml = to_toml(&doc).unwrap_or_else(|e| panic!("serialize failed: {e}\n{doc:?}"));
        let back = parse_toml(&toml)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n--- doc\n{doc:?}\n--- toml\n{toml}"));
        prop_assert_eq!(
            deep_json::digest::digest(&back),
            deep_json::digest::digest(&doc),
            "round trip changed the document's content:\n{}",
            toml
        );
        // From then on the trip is an exact fixed point: same bytes
        // out, identical Value tree back.
        let again = to_toml(&back).unwrap();
        prop_assert_eq!(&again, &toml, "serializer must be idempotent after one trip");
        let back2 = parse_toml(&again).unwrap();
        prop_assert_eq!(&back2, &back, "parse ∘ to_toml must fix parser-produced documents");
    }

    #[test]
    fn digest_is_invariant_under_reordering_and_whitespace(
        doc in ArbDoc,
        salt in 0u64..u64::MAX,
    ) {
        let mut rng = TestRng::deterministic(&format!("scenario-digest-{salt}"));
        let want = deep_json::digest::digest(&doc);

        let shuffled = shuffle(&doc, &mut rng);
        prop_assert_eq!(
            deep_json::digest::digest(&shuffled),
            want,
            "digest must ignore member order"
        );

        let toml = to_toml(&shuffled).unwrap();
        let reparsed = parse_toml(&reformat(&toml, &mut rng))
            .unwrap_or_else(|e| panic!("reformatted document failed to parse: {e}\n{toml}"));
        prop_assert_eq!(
            deep_json::digest::digest(&reparsed),
            want,
            "digest must ignore whitespace and comments"
        );
    }
}
