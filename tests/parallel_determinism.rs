//! Parallel determinism: experiment outputs are a pure function of
//! their inputs, never of the thread count.
//!
//! The rayon global pool reads `RAYON_NUM_THREADS` once per process, so
//! these tests vary the width with explicit pools + `install` instead —
//! nested `join`/`par_iter` calls resolve to the installed pool. The CI
//! matrix additionally runs the whole suite under
//! `RAYON_NUM_THREADS=1` and `=4` and compares driver output.
//!
//! Golden constants were captured from the **pre-parallelism serial
//! binaries** (commit e1fc274), so these tests also pin today's pool
//! against yesterday's plain `for` loops.

use deep_core::{
    mean_efficiency, mean_multilevel_efficiency, simulate_multilevel, simulate_run,
    ResilienceParams,
};
use deep_faults::er03_params;
use deep_simkit::SimRng;
use rayon::ThreadPoolBuilder;

/// FNV-1a over a byte string (same digest the trace-equivalence golden
/// uses).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn with_pool<R: Send>(threads: usize, f: impl FnOnce() -> R + Send) -> R {
    ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool builds")
        .install(f)
}

/// FNV-1a digest of `er03_fault_sweep`'s full stdout, captured from the
/// serial binary before the work-stealing pool existed.
const ER03_GOLDEN_DIGEST: u64 = 0xa1ee_c3a4_84ed_8aef;

#[test]
fn er03_table_is_byte_identical_at_any_width_and_matches_serial_golden() {
    let mut digests = Vec::new();
    for threads in [1usize, 2, 8] {
        let out = with_pool(threads, || {
            deep_bench::experiments::run_to_string("er03_fault_sweep").unwrap()
        });
        digests.push((threads, fnv1a(out.as_bytes())));
    }
    for &(threads, d) in &digests {
        assert_eq!(
            d, ER03_GOLDEN_DIGEST,
            "er03 output diverged from the pre-parallelism golden at {threads} threads"
        );
    }
}

#[test]
fn monte_carlo_means_are_bitwise_equal_to_the_serial_loop() {
    // The literal pre-PR algorithm: a sequential loop over per-replica
    // streams, folding in replica order.
    let (_, _, _, p) = er03_params();
    let replicas = 16u32;
    let mut serial_total = 0.0;
    for r in 0..replicas {
        let mut rng = SimRng::from_seed_stream(9, 0xE401 + r as u64);
        serial_total += simulate_multilevel(&p, &mut rng).efficiency;
    }
    let serial = serial_total / replicas as f64;

    let rp = ResilienceParams {
        work_s: 100_000.0,
        n_nodes: 640,
        mtbf_node_s: 5.0 * 365.0 * 86_400.0,
        checkpoint_s: 120.0,
        restart_s: 300.0,
    };
    let mut serial_sl_total = 0.0;
    for r in 0..replicas {
        let mut rng = SimRng::from_seed_stream(9, 0xC4E0 + r as u64);
        serial_sl_total += simulate_run(&rp, 3600.0, &mut rng).efficiency;
    }
    let serial_sl = serial_sl_total / replicas as f64;

    for threads in [1usize, 2, 8] {
        let ml = with_pool(threads, || mean_multilevel_efficiency(&p, 9, replicas));
        assert_eq!(
            ml.efficiency.to_bits(),
            serial.to_bits(),
            "multilevel mean diverged from the serial loop at {threads} threads"
        );
        let sl = with_pool(threads, || mean_efficiency(&rp, 3600.0, 9, replicas));
        assert_eq!(
            sl.efficiency.to_bits(),
            serial_sl.to_bits(),
            "single-level mean diverged from the serial loop at {threads} threads"
        );
    }
}

#[test]
fn parallelized_experiments_match_across_widths() {
    // The experiments whose internals were parallelized in this pass
    // (er03 is covered by the golden-digest test above; the heaviest —
    // a33, f09b — are exercised by the CI matrix on the driver).
    for name in [
        "a31_bi_selection",
        "a32_eager_threshold",
        "f03b_resilience",
        "f22_resmgr",
    ] {
        let narrow = with_pool(1, || deep_bench::experiments::run_to_string(name).unwrap());
        let wide = with_pool(8, || deep_bench::experiments::run_to_string(name).unwrap());
        assert_eq!(narrow, wide, "{name} output depends on the thread count");
    }
}
