//! Shape assertions for the paper experiments: fast configurations of
//! each figure-regeneration workload, asserting the *qualitative* result
//! the paper claims (who wins, by roughly what factor, where crossovers
//! fall). The full tables come from `cargo run -p deep-bench --bin f*`.

use deep_core::{run_on_accelerated, run_on_deep, run_on_pure_cluster, CoupledParams, DeepConfig};
use deep_hw::generations::{fitted_factor_per_decade, top500_number_one};
use deep_hw::{exec_time, KernelProfile, NodeModel};
use deep_psmpi::NetModel;

/// F02: the historical series grows ~×1000/decade (Meuer), far above
/// Moore's ×100/decade.
#[test]
fn f02_meuer_vs_moore() {
    let fit = fitted_factor_per_decade(&top500_number_one());
    assert!((400.0..2500.0).contains(&fit), "fit {fit}");
    assert!(fit > 3.0 * 100.0, "parallelism outpaces transistor scaling");
}

/// F05: booster silicon is ~5x the energy efficiency of a Xeon node.
#[test]
fn f05_knc_efficiency_factor() {
    let knc = NodeModel::xeon_phi_knc().peak_gflops_per_watt();
    let xeon = NodeModel::xeon_cluster_node().peak_gflops_per_watt();
    assert!((4.0..6.5).contains(&(knc / xeon)));
    assert!((4.5..5.5).contains(&knc), "the slide-15 '5 GFlop/W' claim");
}

/// F06: staging accelerator traffic through the host roughly triples the
/// cost of a cross-node exchange at any size.
#[test]
fn f06_staging_penalty() {
    for bytes in [4u64 << 10, 1 << 20, 16 << 20] {
        let staged = deep_bench::probe_fabric("pcie-driver", bytes)
            + deep_bench::probe_fabric("ib", bytes)
            + deep_bench::probe_fabric("pcie-driver", bytes);
        let direct = deep_bench::probe_fabric("extoll", bytes);
        let penalty = staged / direct;
        // Small messages suffer the most (three software overheads vs one
        // fabric traversal); bulk converges to ~3 serializations.
        assert!(
            (1.8..25.0).contains(&penalty),
            "bytes={bytes}: staging penalty {penalty}"
        );
    }
}

/// F08: the fabrics match PCIe bandwidth within 10% for >=64 KiB
/// messages while being latency-poorer below ~4 KiB.
#[test]
fn f08_fabric_matches_pcie_for_bulk() {
    let bulk = 1u64 << 20;
    let gb = |f: &str, b: u64| b as f64 / deep_bench::probe_fabric(f, b) / 1e9;
    assert!(gb("ib", bulk) >= 0.9 * gb("pcie-dma", bulk));
    assert!(gb("extoll", bulk) >= 0.9 * gb("pcie-dma", bulk));
    // Latency regime: tiny messages are quicker over bare PCIe DMA than IB.
    let tiny = 64u64;
    assert!(
        deep_bench::probe_fabric("pcie-dma", tiny) < deep_bench::probe_fabric("ib", tiny),
        "PCIe wins on latency (slide 8: 'besides latency')"
    );
}

/// F09: regular halo+allreduce skeleton keeps >60% efficiency at 262k
/// ranks; the alltoall-bearing skeleton collapses below 4k.
#[test]
fn f09_scalability_classes() {
    let m = NetModel::ib_fdr();
    let compute = deep_simkit::SimDuration::micros(2000);
    let spmv = |n: u64| {
        let t = compute + m.p2p(64 << 10) * 2 + m.allreduce(n, 8);
        compute.as_secs_f64() / t.as_secs_f64()
    };
    let complex = |n: u64| {
        let t = compute + m.p2p(64 << 10) * 2 + m.allreduce(n, 8) + m.alltoall(n, 4 << 10);
        compute.as_secs_f64() / t.as_secs_f64()
    };
    assert!(spmv(1 << 18) > 0.6, "SpMV class at 262k: {}", spmv(1 << 18));
    assert!(
        complex(1 << 12) < 0.4,
        "complex at 4k: {}",
        complex(1 << 12)
    );
    assert!(complex(1 << 8) > complex(1 << 12), "monotone collapse");
}

/// F09 (DES tail): the full-scale discrete-event runs behind the
/// printed headline efficiencies agree with the LogGP model within the
/// stated per-class tolerances. SpMV at 262,144 ranks: within ±5%
/// (measured ≈ +0.1% — the ring halo and recursive-doubling allreduce
/// see essentially no contention on the fat tree). Complex class: the
/// DES sits *above* the contention-free model — between 1.0× and 1.6×
/// (≈ +23% at the 1,024-rank size tested here, ≈ +38% at the 4,096-rank
/// point the experiment prints) — because the pairwise all-to-all
/// queues on the spine trunks, which the closed form ignores.
#[test]
fn f09_des_matches_analytic_tail() {
    use deep_bench::des_scaling::{self, DesScalingConfig};

    let m = NetModel::ib_fdr();
    let spmv = des_scaling::run(DesScalingConfig {
        ranks: 1 << 18,
        iters: 1,
        complex: false,
        seed: 1,
    });
    let model = des_scaling::analytic_iter(&m, 1 << 18, false).as_secs_f64();
    let rel = (spmv.iter_s - model) / model;
    assert!(
        rel.abs() < 0.05,
        "262k SpMV: DES {:.1}us vs model {:.1}us (rel {rel:+.4})",
        spmv.iter_s * 1e6,
        model * 1e6
    );

    let cplx = des_scaling::run(DesScalingConfig {
        ranks: 1 << 10,
        iters: 1,
        complex: true,
        seed: 1,
    });
    let model_c = des_scaling::analytic_iter(&m, 1 << 10, true).as_secs_f64();
    let ratio = cplx.iter_s / model_c;
    assert!(
        (1.0..1.6).contains(&ratio),
        "1k complex: DES {:.1}us is {ratio:.3}x the model's {:.1}us",
        cplx.iter_s * 1e6,
        model_c * 1e6
    );
}

/// F10: on the coupled proxy the cluster-booster wins time and energy
/// against both baselines and cuts CPU<->accelerator messages per unit.
#[test]
fn f10_cluster_booster_wins() {
    let p = CoupledParams {
        steps: 2,
        ..CoupledParams::default()
    };
    // Size for comparable accelerator silicon: 16 GPUs (~21 TF) vs a
    // 4x4x4 booster (~64 TF is the paper's asymmetry: the booster IS the
    // machine's compute).
    let pure = run_on_pure_cluster(1, 16, p);
    let accel = run_on_accelerated(1, 16, p);
    let deep = run_on_deep(1, DeepConfig::medium(), p);
    assert!(deep.elapsed < accel.elapsed, "deep beats accelerated");
    assert!(deep.elapsed < pure.elapsed, "deep beats pure cluster");
    assert!(deep.energy_joules < accel.energy_joules);
    let deep_rate = deep.acc_messages as f64 / deep.acc_units as f64;
    let accel_rate = accel.acc_messages as f64 / accel.acc_units as f64;
    assert!(
        accel_rate > 2.0 * deep_rate,
        "coarser offload: {accel_rate} vs {deep_rate}"
    );
}

/// F15: DGEMM on the KNC sustains several hundred GF/s and ~4 GF/W
/// achieved; the same kernel on the Xeon node is ~5x less efficient.
#[test]
fn f15_energy_efficiency() {
    let k = KernelProfile::dgemm(4096);
    let knc = NodeModel::xeon_phi_knc();
    let xeon = NodeModel::xeon_cluster_node();
    let t_knc = exec_time(&knc, &k, knc.cores);
    let t_xeon = exec_time(&xeon, &k, xeon.cores);
    let eff = |node: &NodeModel, t: &deep_hw::RooflinePoint| {
        let mut m = deep_hw::EnergyMeter::new();
        m.record(&node.power, t.time, 1.0);
        m.gflops_per_watt(k.flops)
    };
    let e_knc = eff(&knc, &t_knc);
    let e_xeon = eff(&xeon, &t_xeon);
    assert!((3.0..5.5).contains(&e_knc), "KNC achieved {e_knc} GF/W");
    assert!(
        (3.5..6.5).contains(&(e_knc / e_xeon)),
        "ratio {}",
        e_knc / e_xeon
    );
}

/// F16: VELO latency is sub-µs; RMA bulk goodput >95% of the link.
#[test]
fn f16_extoll_engine_shapes() {
    let velo = deep_bench::probe_fabric("extoll-velo", 8);
    assert!(velo < 1e-6, "VELO 8B latency {velo}");
    let bulk = 64u64 << 20;
    let good = bulk as f64 / deep_bench::probe_fabric("extoll-rma", bulk);
    assert!(good > 0.95 * 7e9, "RMA goodput {good}");
}

/// F21: spawn cost grows strongly sublinearly in process count.
/// (The machine-level variant runs in deep-bench; this checks the MPI
/// layer's fan-out directly over an ideal wire.)
#[test]
fn f21_spawn_sublinear() {
    use deep_psmpi::{launch_world, EpId, IdealWire, MpiParams, Universe};
    use std::cell::Cell;
    use std::rc::Rc;

    fn spawn_time(n: u32) -> f64 {
        let mut sim = deep_simkit::Simulation::new(1);
        let ctx = sim.handle();
        let wire = Rc::new(IdealWire::new(
            &ctx,
            deep_simkit::SimDuration::micros(1),
            5e9,
        ));
        let uni = Universe::new(&ctx, wire, 1 + n as usize, MpiParams::default());
        uni.add_pool("b", (1..=n).map(EpId).collect());
        uni.register_app("noop", Rc::new(|_m| Box::pin(async {})));
        let out = Rc::new(Cell::new(0.0));
        let out2 = out.clone();
        launch_world(&uni, "p", vec![EpId(0)], move |m| {
            let out = out2.clone();
            Box::pin(async move {
                let world = m.world().clone();
                let t0 = m.sim().now();
                m.comm_spawn(&world, "noop", n, "b", 0).await.unwrap();
                out.set((m.sim().now() - t0).as_secs_f64());
            })
        });
        sim.run().assert_completed();
        out.get()
    }
    let t32 = spawn_time(32);
    let t512 = spawn_time(512);
    assert!(t512 < t32 * 6.0, "16x procs < 6x time: {t32} vs {t512}");
}

/// F22: dynamic booster assignment beats static on makespan and useful
/// utilisation for a contended mix.
#[test]
fn f22_dynamic_beats_static() {
    use deep_apps::MixParams;
    use deep_resmgr::Policy;
    let mix = deep_apps::generate_mix(
        1,
        MixParams {
            n_jobs: 16,
            mean_interarrival: deep_simkit::SimDuration::secs(8),
            max_cn: 2,
            max_bn: 12,
            mean_cn_time: deep_simkit::SimDuration::secs(50),
            mean_bn_time: deep_simkit::SimDuration::secs(50),
            max_phases: 2,
            pure_cluster_fraction: 0.2,
        },
    );
    let s = deep_resmgr::run_workload(1, 8, 16, Policy::StaticFcfs, mix.clone());
    let d = deep_resmgr::run_workload(1, 8, 16, Policy::DynamicFcfs, mix);
    assert!(
        d.makespan < s.makespan,
        "{:?} vs {:?}",
        d.makespan,
        s.makespan
    );
    assert!(d.bn_utilization > s.bn_utilization);
    assert!(s.bn_allocated > s.bn_utilization + 0.1, "static hoards");
}

/// F23: dataflow Cholesky beats fork-join at every worker count and
/// stays numerically exact.
#[test]
fn f23_dataflow_beats_fork_join() {
    use deep_apps::cholesky::{cholesky_graph, factorisation_error, spd_matrix, TiledMatrix};
    use deep_ompss::{run_dataflow, run_fork_join};
    let (nt, ts) = (10usize, 8usize);
    let n = nt * ts;
    let a = spd_matrix(n);
    for workers in [4u32, 16] {
        let m1 = TiledMatrix::from_dense(&a, nt, ts);
        let g1 = cholesky_graph(&m1);
        let m2 = TiledMatrix::from_dense(&a, nt, ts);
        let g2 = cholesky_graph(&m2);
        let node = NodeModel::xeon_phi_knc();
        let mut sim = deep_simkit::Simulation::new(1);
        let ctx = sim.handle();
        let node2 = node.clone();
        let h = sim.spawn("both", async move {
            let df = run_dataflow(&ctx, g1, &node2, workers).await;
            let fj = run_fork_join(&ctx, g2, &node2, workers).await;
            (df.makespan, fj.makespan)
        });
        sim.run().assert_completed();
        let (df, fj) = h.try_result().unwrap();
        assert!(df < fj, "workers={workers}: {df} vs {fj}");
        assert!(factorisation_error(&m1.to_dense(), &a, n) < 1e-9);
        assert!(factorisation_error(&m2.to_dense(), &a, n) < 1e-9);
    }
}

/// F29: a bridged small message costs more than either fabric alone but
/// less than ~4x a plain IB message.
#[test]
fn f29_bridge_latency_overhead() {
    use deep_cbp::{CbpConfig, CbpWire, CbpWireHandle};
    use deep_fabric::{ExtollFabric, IbFabric};
    use deep_psmpi::Wire;
    use std::rc::Rc;

    let mut sim = deep_simkit::Simulation::new(1);
    let ctx = sim.handle();
    let ib = Rc::new(IbFabric::new(&ctx, 6));
    let extoll = Rc::new(ExtollFabric::new(&ctx, (2, 2, 2)));
    let w = CbpWire::new(&ctx, ib, extoll, CbpConfig::new(4, 8, vec![(4, 0)]));
    let handle = CbpWireHandle(w.clone());
    let (cc_src, cc_dst) = (w.cluster_ep(0), w.cluster_ep(1));
    let (cb_src, cb_dst) = (w.cluster_ep(2), w.booster_ep(5));
    let h = sim.spawn("probe", async move {
        let cc = handle.transfer(cc_src, cc_dst, 64).await.unwrap().elapsed;
        let cb = handle.transfer(cb_src, cb_dst, 64).await.unwrap().elapsed;
        (cc, cb)
    });
    sim.run().assert_completed();
    let (cc, cb) = h.try_result().unwrap();
    assert!(cb > cc, "bridge adds latency");
    assert!(
        cb.as_nanos() < 4 * cc.as_nanos(),
        "but bounded: {cb} vs {cc}"
    );
}

/// ER01: on the simulated machine, an L1 (node-local NVM) checkpoint of
/// the same state is at least 5x faster than draining it through the BI
/// bridges onto the PFS (L3).
#[test]
fn er01_l1_checkpoint_beats_l3_by_5x() {
    use deep_core::measure_level_costs;

    let costs = measure_level_costs(&DeepConfig::small(), 8, 64 << 20, 1);
    assert!(costs[0].write_s > 0.0);
    assert!(
        costs[2].write_s >= 5.0 * costs[0].write_s,
        "L3 {}s vs L1 {}s",
        costs[2].write_s,
        costs[0].write_s
    );
}

/// ER01: with measured level costs, the L1/L2/L3 rotation keeps its
/// efficiency within 10% of the L1-only policy under mild failures, yet
/// survives injected multi-node failures that L1-only cannot recover
/// from (L1-only loses all progress at every such event).
#[test]
fn er01_multilevel_survives_what_l1_only_cannot() {
    use deep_core::{mean_multilevel_efficiency, measure_level_costs, MultiLevelParams};

    let costs = measure_level_costs(&DeepConfig::small(), 8, 64 << 20, 1);
    let base = MultiLevelParams {
        work_s: 100_000.0,
        n_nodes: 640,
        mtbf_node_s: 0.45 * 365.0 * 86_400.0,
        interval_s: 600.0,
        levels: costs,
        l2_every: 4,
        l3_every: 16,
        restart_s: 120.0,
        severity_weights: [0.7, 0.25, 0.05],
    };

    // Mild failures (mostly transient): rotation within 10% of L1-only.
    let mut mild = base;
    mild.severity_weights = [1.0, 0.0, 0.0];
    let rotation = mean_multilevel_efficiency(&mild, 7, 8);
    let l1_only = mean_multilevel_efficiency(&mild.l1_only(), 7, 8);
    assert_eq!(rotation.truncated_runs, 0);
    assert!(
        rotation.efficiency > 0.9 * l1_only.efficiency,
        "rotation {} vs L1-only {}",
        rotation.efficiency,
        l1_only.efficiency
    );

    // Multi-node failures in the mix: L1-only collapses (every such
    // event erases all progress), the rotation recovers from L2/L3.
    // Flakier machine so each run sees several multi-node events.
    let mut harsh = base;
    harsh.mtbf_node_s = 0.1 * 365.0 * 86_400.0;
    harsh.severity_weights = [0.5, 0.3, 0.2];
    let rotation = mean_multilevel_efficiency(&harsh, 7, 8);
    let l1_only = mean_multilevel_efficiency(&harsh.l1_only(), 7, 8);
    assert_eq!(rotation.truncated_runs, 0, "rotation must always finish");
    assert!(
        rotation.efficiency > 1.5 * l1_only.efficiency.max(1e-9),
        "rotation {} must dominate L1-only {} under multi-node failures",
        rotation.efficiency,
        l1_only.efficiency
    );
}

/// ER02: the shared-file (N-1) pattern collapses against SIONlib on the
/// same PFS — per-block metadata locking plus alignment padding — while
/// the SION container needs exactly one metadata operation.
#[test]
fn er02_sion_restores_task_local_performance() {
    use deep_fabric::NodeId;
    use deep_io::{FileLayerParams, WritePattern};

    let run = |pattern: WritePattern| {
        let mut sim = deep_simkit::Simulation::new(17);
        let ctx = sim.handle();
        let mut cfg = DeepConfig::small();
        cfg.storage.file_layer = FileLayerParams {
            shared_block_bytes: 1 << 19,
            ..FileLayerParams::default()
        };
        let machine = deep_core::DeepMachine::build(&ctx, cfg);
        let layer = machine.file_layer();
        let clients: Vec<NodeId> = (0..4).map(NodeId).collect();
        let l = layer.clone();
        let h = sim.spawn("phase", async move {
            l.write_phase(&clients, 8 << 20, pattern).await
        });
        sim.run().assert_completed();
        h.try_result().unwrap()
    };

    let sion = run(WritePattern::Sion);
    let shared = run(WritePattern::SharedFile);
    let local = run(WritePattern::TaskLocal);
    assert_eq!(sion.meta_ops, 1);
    assert!(
        sion.goodput_bps() > 2.0 * shared.goodput_bps(),
        "SION {} vs shared {}",
        sion.goodput_bps(),
        shared.goodput_bps()
    );
    assert!(
        sion.goodput_bps() >= 0.95 * local.goodput_bps(),
        "SION {} should match task-local {}",
        sion.goodput_bps(),
        local.goodput_bps()
    );
    assert!(shared.physical_bytes > shared.payload_bytes, "padding");
}

/// ER03: the discrete-event resilience run — real checkpoint/restore I/O
/// on the simulated machine, failures striking in virtual time — agrees
/// with the analytic Monte-Carlo model (`simulate_multilevel`) to within
/// 10% at every swept node-MTBF point, and both degrade monotonically as
/// nodes get flakier.
#[test]
fn er03_des_matches_analytic_model_across_mtbf_sweep() {
    use deep_faults::{er03_params, fault_sweep};

    let (config, ranks, bytes_per_rank, base) = er03_params();
    let mtbfs = [100.0, 250.0, 600.0];
    let points = fault_sweep(&config, ranks, bytes_per_rank, &base, &mtbfs, 9, 4);
    assert_eq!(points.len(), mtbfs.len());
    for pt in &points {
        assert!(pt.des.efficiency > 0.0 && pt.des.efficiency <= 1.0);
        let rel = (pt.des.efficiency - pt.mc.efficiency).abs() / pt.mc.efficiency;
        assert!(
            rel < 0.10,
            "mtbf {}: DES {} vs MC {} (rel gap {rel})",
            pt.mtbf_node_s,
            pt.des.efficiency,
            pt.mc.efficiency
        );
    }
    // Flakier nodes cost efficiency on both sides of the pairing.
    assert!(points[0].des.efficiency < points[2].des.efficiency);
    assert!(points[0].mc.efficiency < points[2].mc.efficiency);
    // And the DES sweep is reproducible point for point.
    let again = fault_sweep(&config, ranks, bytes_per_rank, &base, &mtbfs, 9, 4);
    for (a, b) in points.iter().zip(&again) {
        assert_eq!(a.des.efficiency, b.des.efficiency);
        assert_eq!(a.mc.efficiency, b.mc.efficiency);
    }
}
