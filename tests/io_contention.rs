//! The PFS rides the cluster's InfiniBand fabric — so file I/O and MPI
//! traffic contend on the same links. This test pins that down end to
//! end: PFS writes running concurrently with a bulk allreduce slow BOTH
//! down compared to either running in isolation.

use std::cell::Cell;
use std::rc::Rc;

use deep_core::{DeepConfig, DeepMachine};
use deep_fabric::NodeId;
use deep_psmpi::{ReduceOp, Value};
use deep_simkit::{join_all, Simulation};

const WRITERS: u32 = 4;
const WRITE_BYTES: u64 = 32 << 20;
const ALLREDUCE_BYTES: u64 = 8 << 20;
const ALLREDUCE_ROUNDS: u32 = 6;

/// Run the machine with either workload enabled; returns the elapsed
/// seconds of (PFS write phase, allreduce phase), 0.0 when disabled.
fn run(with_io: bool, with_mpi: bool, seed: u64) -> (f64, f64) {
    let mut sim = Simulation::new(seed);
    let ctx = sim.handle();
    let mut cfg = DeepConfig::small();
    // Fast, plentiful PFS servers: their aggregate absorb rate exceeds a
    // client's host link, so the fabric — not the media — is the
    // bottleneck. That is the regime where I/O and MPI traffic visibly
    // interact (a media-bound PFS would hide the shared links entirely).
    cfg.storage.pfs.n_servers = 8;
    cfg.storage.pfs.server_device.write_bps = 5e9;
    cfg.storage.pfs.server_device.latency = deep_simkit::SimDuration::micros(100);
    let machine = DeepMachine::build(&ctx, cfg);
    let io_elapsed = Rc::new(Cell::new(0.0f64));
    let mpi_elapsed = Rc::new(Cell::new(0.0f64));

    if with_io {
        // Every cluster node streams a checkpoint-sized file to the PFS
        // over its own IB host link.
        let pfs = machine.pfs().clone();
        let sim2 = ctx.clone();
        let out = io_elapsed.clone();
        sim.spawn("pfs-writers", async move {
            let start = sim2.now();
            let handles: Vec<_> = (0..WRITERS)
                .map(|c| {
                    let pfs = pfs.clone();
                    sim2.spawn(format!("writer-{c}"), async move {
                        pfs.write(NodeId(c), WRITE_BYTES).await;
                    })
                })
                .collect();
            join_all(handles).await;
            out.set((sim2.now() - start).as_secs_f64());
        });
    }

    if with_mpi {
        let out = mpi_elapsed.clone();
        machine.launch_cluster_app("allreduce-loop", move |m| {
            let out = out.clone();
            Box::pin(async move {
                let world = m.world().clone();
                let start = m.sim().now();
                for _ in 0..ALLREDUCE_ROUNDS {
                    m.allreduce(&world, ReduceOp::Sum, Value::F64(1.0), ALLREDUCE_BYTES)
                        .await;
                }
                if m.rank() == 0 {
                    out.set((m.sim().now() - start).as_secs_f64());
                }
            })
        });
    }

    sim.run().assert_completed();
    (io_elapsed.get(), mpi_elapsed.get())
}

#[test]
fn pfs_writes_and_allreduce_slow_each_other_on_the_shared_fabric() {
    let (io_alone, _) = run(true, false, 3);
    let (_, mpi_alone) = run(false, true, 3);
    let (io_both, mpi_both) = run(true, true, 3);

    assert!(io_alone > 0.0 && mpi_alone > 0.0);
    assert!(
        io_both > 1.02 * io_alone,
        "I/O must slow under MPI traffic: {io_both}s vs {io_alone}s alone"
    );
    assert!(
        mpi_both > 1.02 * mpi_alone,
        "MPI must slow under I/O traffic: {mpi_both}s vs {mpi_alone}s alone"
    );
    // Sanity: contention is a slowdown, not a serialisation of the two
    // phases (the fabric is shared, not a mutex). The collective gets a
    // little headroom: its internal synchronisation amplifies per-link
    // queueing beyond the plain sum.
    assert!(
        io_both < io_alone + mpi_alone,
        "I/O should interleave, not serialise: {io_both}s vs {io_alone}+{mpi_alone}s"
    );
    assert!(
        mpi_both < 1.5 * (io_alone + mpi_alone),
        "allreduce should interleave, not serialise: {mpi_both}s vs {io_alone}+{mpi_alone}s"
    );
}

#[test]
fn contention_is_deterministic() {
    assert_eq!(run(true, true, 11), run(true, true, 11));
}
