//! Full-system integration tests: the complete DEEP machine — cluster,
//! booster, booster interfaces, global MPI, offload runtime — exercised
//! end to end with numerically verified results.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use deep_core::{DeepConfig, DeepMachine, BOOSTER_POOL, OFFLOAD_SERVER};
use deep_ompss::{booster_block, OffloadSpec, Offloader};
use deep_psmpi::{MpiCtx, ReduceOp, Value};
use deep_simkit::Simulation;

#[test]
fn boot_spawn_compute_teardown() {
    let mut sim = Simulation::new(1);
    let ctx = sim.handle();
    let machine = DeepMachine::build(&ctx, DeepConfig::small());
    let done = Rc::new(Cell::new(false));
    let done2 = done.clone();
    machine.launch_cluster_app("app", move |m| {
        let done = done2.clone();
        Box::pin(async move {
            let world = m.world().clone();
            let inter = m
                .comm_spawn(&world, OFFLOAD_SERVER, 8, BOOSTER_POOL, 0)
                .await
                .unwrap();
            let off = Offloader::new(inter);
            let block = booster_block(m.rank(), m.size(), 8);
            let spec = OffloadSpec {
                in_bytes: 1 << 20,
                out_bytes: 1 << 20,
                kernel: deep_hw::KernelProfile::stencil2d(1 << 22),
                cores: u32::MAX,
                iters: 3,
                internal_msg_bytes: 4096,
            };
            for _ in 0..3 {
                off.run(&m, &spec, block.clone()).await;
            }
            m.barrier(&world).await;
            off.shutdown(&m, block).await;
            if m.rank() == 0 {
                done.set(true);
            }
        })
    });
    sim.run().assert_completed();
    assert!(done.get());
    // Pool fully drained by the spawn; bridge saw the offload payloads.
    assert_eq!(machine.universe().pool_available(BOOSTER_POOL), 0);
    assert!(machine.cbp().bridged_traffic().bytes > 3 * 8 * (2 << 20) - 1);
}

#[test]
fn numeric_payloads_cross_the_bridge_intact() {
    // Cluster rank 0 sends a real vector to a booster rank, which doubles
    // it in its own world and sends it back — data integrity through the
    // CBP bridge and both fabrics.
    let mut sim = Simulation::new(2);
    let ctx = sim.handle();
    let machine = DeepMachine::build(&ctx, DeepConfig::small());
    machine.register_app(
        "doubler",
        Rc::new(|m: MpiCtx| {
            Box::pin(async move {
                let world = m.world().clone();
                let parent = m.parent().unwrap().clone();
                if m.rank() == 0 {
                    let msg = m.recv(&parent, Some(0), Some(5)).await;
                    let doubled: Vec<f64> = msg.value.as_vec().iter().map(|x| x * 2.0).collect();
                    // Share with the whole booster world, reduce, return.
                    let total = m
                        .allreduce(&world, ReduceOp::Sum, Value::F64(doubled.iter().sum()), 8)
                        .await;
                    m.send_val(&parent, 0, 6, Value::vec(doubled)).await;
                    m.send_val(&parent, 0, 7, total).await;
                } else {
                    m.allreduce(&world, ReduceOp::Sum, Value::F64(0.0), 8).await;
                }
            })
        }),
    );
    let ok = Rc::new(Cell::new(false));
    let ok2 = ok.clone();
    machine.launch_cluster_app("main", move |m| {
        let ok = ok2.clone();
        Box::pin(async move {
            let world = m.world().clone();
            let inter = m
                .comm_spawn(&world, "doubler", 4, BOOSTER_POOL, 0)
                .await
                .unwrap();
            if m.rank() == 0 {
                let data = vec![1.5, -2.0, 4.25];
                m.send_val(&inter, 0, 5, Value::vec(data.clone())).await;
                let back = m.recv(&inter, Some(0), Some(6)).await;
                assert_eq!(back.value.as_vec(), &[3.0, -4.0, 8.5]);
                let total = m.recv(&inter, Some(0), Some(7)).await;
                assert_eq!(total.value.as_f64(), 7.5);
                ok.set(true);
            }
            m.barrier(&world).await;
        })
    });
    sim.run().assert_completed();
    assert!(ok.get());
}

#[test]
fn whole_machine_run_is_deterministic() {
    fn run(seed: u64) -> (u64, u64) {
        let mut sim = Simulation::new(seed);
        let ctx = sim.handle();
        let machine = DeepMachine::build(&ctx, DeepConfig::small());
        machine.launch_cluster_app("app", move |m| {
            Box::pin(async move {
                let world = m.world().clone();
                let inter = m
                    .comm_spawn(&world, OFFLOAD_SERVER, 8, BOOSTER_POOL, 0)
                    .await
                    .unwrap();
                let off = Offloader::new(inter);
                let block = booster_block(m.rank(), m.size(), 8);
                let spec = OffloadSpec {
                    in_bytes: 256 << 10,
                    out_bytes: 256 << 10,
                    kernel: deep_hw::KernelProfile::dgemm(512),
                    cores: u32::MAX,
                    iters: 2,
                    internal_msg_bytes: 1024,
                };
                off.run(&m, &spec, block.clone()).await;
                m.barrier(&world).await;
                off.shutdown(&m, block).await;
            })
        });
        sim.run().assert_completed();
        (sim.now().as_nanos(), machine.cbp().bridged_traffic().bytes)
    }
    assert_eq!(run(7), run(7));
    // Note: different seeds give the *same* time here because this
    // scenario draws no randomness (no fault injection) — determinism is
    // about identical replay, not seed sensitivity.
    assert_eq!(run(8), run(8));
}

#[test]
fn distributed_cg_runs_on_the_booster_world() {
    // Spawn a booster world that solves a real CG system; verifies the
    // numerical result produced across the EXTOLL fabric.
    let mut sim = Simulation::new(3);
    let ctx = sim.handle();
    let machine = DeepMachine::build(&ctx, DeepConfig::small());
    machine.register_app(
        "cg-solver",
        Rc::new(|m: MpiCtx| {
            Box::pin(async move {
                let world = m.world().clone();
                let res = deep_apps::cg_solve(&m, &world, 16, 16, 400, 1e-8).await;
                if m.rank() == 0 {
                    let parent = m.parent().unwrap().clone();
                    m.send_val(&parent, 0, 9, Value::F64(res.checksum)).await;
                }
            })
        }),
    );
    let checksum = Rc::new(Cell::new(f64::NAN));
    let cs2 = checksum.clone();
    machine.launch_cluster_app("main", move |m| {
        let cs = cs2.clone();
        Box::pin(async move {
            let world = m.world().clone();
            let _inter = m
                .comm_spawn(&world, "cg-solver", 8, BOOSTER_POOL, 0)
                .await
                .unwrap();
            if m.rank() == 0 {
                let msg = m.recv(&_inter, Some(0), Some(9)).await;
                cs.set(msg.value.as_f64());
            }
            m.barrier(&world).await;
        })
    });
    sim.run().assert_completed();
    let serial = deep_apps::cg_reference(16, 16, 400, 1e-8);
    let got = checksum.get();
    assert!(
        (got - serial.checksum).abs() < 1e-6 * serial.checksum.abs(),
        "booster CG checksum {got} vs serial {}",
        serial.checksum
    );
}

#[test]
fn two_apps_share_the_booster_pool() {
    // Two successive spawns partition the pool; exhaustion is reported
    // and recovery after the first world could be torn down is possible
    // (here we keep both alive, checking isolation of their worlds).
    let mut sim = Simulation::new(4);
    let ctx = sim.handle();
    let machine = DeepMachine::build(&ctx, DeepConfig::small());
    machine.register_app(
        "worker",
        Rc::new(|m: MpiCtx| {
            Box::pin(async move {
                let world = m.world().clone();
                let parent = m.parent().unwrap().clone();
                let sum = m.allreduce(&world, ReduceOp::Sum, Value::U64(1), 8).await;
                if m.rank() == 0 {
                    m.send_val(&parent, 0, 3, sum).await;
                }
            })
        }),
    );
    let results: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
    let r2 = results.clone();
    machine.launch_cluster_app("main", move |m| {
        let results = r2.clone();
        Box::pin(async move {
            let world = m.world().clone();
            let a = m
                .comm_spawn(&world, "worker", 5, BOOSTER_POOL, 0)
                .await
                .unwrap();
            let b = m
                .comm_spawn(&world, "worker", 3, BOOSTER_POOL, 0)
                .await
                .unwrap();
            // A third spawn must fail: the pool is empty.
            let err = m.comm_spawn(&world, "worker", 1, BOOSTER_POOL, 0).await;
            assert!(err.is_err(), "pool must be exhausted");
            if m.rank() == 0 {
                let ra = m.recv(&a, Some(0), Some(3)).await.value.as_u64();
                let rb = m.recv(&b, Some(0), Some(3)).await.value.as_u64();
                results.borrow_mut().extend([ra, rb]);
            }
            m.barrier(&world).await;
        })
    });
    sim.run().assert_completed();
    assert_eq!(*results.borrow(), vec![5, 3], "worlds are isolated");
}

#[test]
fn machine_survives_injected_link_errors() {
    // Slide 16 RAS end-to-end: the same offload workload on clean links
    // and on links with a 5% segment error rate. Retransmission makes it
    // slower, not wrong.
    fn run(error_rate: f64) -> u64 {
        let mut sim = Simulation::new(11);
        let ctx = sim.handle();
        let mut cfg = DeepConfig::small();
        cfg.booster_link_error_rate = error_rate;
        let machine = DeepMachine::build(&ctx, cfg);
        machine.launch_cluster_app("app", move |m| {
            Box::pin(async move {
                let world = m.world().clone();
                let inter = m
                    .comm_spawn(&world, OFFLOAD_SERVER, 8, BOOSTER_POOL, 0)
                    .await
                    .unwrap();
                let off = Offloader::new(inter);
                let block = booster_block(m.rank(), m.size(), 8);
                let spec = OffloadSpec {
                    in_bytes: 8 << 20,
                    out_bytes: 8 << 20,
                    kernel: deep_hw::KernelProfile::stencil2d(1 << 22),
                    cores: u32::MAX,
                    iters: 4,
                    internal_msg_bytes: 64 << 10,
                };
                off.run(&m, &spec, block.clone()).await;
                m.barrier(&world).await;
                off.shutdown(&m, block).await;
            })
        });
        sim.run().assert_completed();
        sim.now().as_nanos()
    }
    let clean = run(0.0);
    let faulty = run(0.05);
    assert!(
        faulty > clean,
        "retransmissions must cost time: {clean} vs {faulty}"
    );
    // Graceful degradation, not collapse: well under 2x for 5% BER.
    assert!(faulty < clean * 2, "clean {clean} faulty {faulty}");
}

#[test]
fn hybrid_dataflow_offloads_booster_tasks_through_the_machine() {
    // Slides 30-31: a task graph whose device(booster) tasks transparently
    // execute on the spawned booster world while host tasks keep local
    // workers busy.
    use deep_ompss::{run_hybrid_dataflow, Access, Device, RegionId, TaskCost, TaskGraph};
    use deep_simkit::SimDuration;

    let mut sim = Simulation::new(5);
    let ctx = sim.handle();
    let machine = DeepMachine::build(&ctx, DeepConfig::small());
    let cbp = machine.cbp().clone();
    let out: Rc<RefCell<Option<(usize, u64)>>> = Rc::new(RefCell::new(None));
    let out2 = out.clone();
    machine.launch_cluster_app("hybrid", move |m| {
        let out = out2.clone();
        Box::pin(async move {
            let world = m.world().clone();
            let inter = m
                .comm_spawn(&world, OFFLOAD_SERVER, 8, BOOSTER_POOL, 0)
                .await
                .unwrap();
            let off = Rc::new(Offloader::new(inter));
            let block = booster_block(m.rank(), m.size(), 8);

            // Build a per-rank graph: host preprocessing feeds a booster
            // kernel, whose output feeds host postprocessing; plus
            // independent host tasks that should overlap the offload.
            let mut g = TaskGraph::new();
            let pre = g.add_task(
                "pre",
                &[(RegionId(1), Access::Out)],
                TaskCost::Fixed(SimDuration::micros(50)),
                0,
                None,
            );
            let kernel = g.add_task(
                "hscp",
                &[(RegionId(1), Access::In), (RegionId(2), Access::Out)],
                TaskCost::Kernel {
                    profile: deep_hw::KernelProfile::stencil2d(1 << 22),
                    cores: u32::MAX,
                },
                1,
                None,
            );
            g.set_device(
                kernel,
                Device::Booster {
                    in_bytes: 1 << 20,
                    out_bytes: 1 << 20,
                },
            );
            let post = g.add_task(
                "post",
                &[(RegionId(2), Access::In)],
                TaskCost::Fixed(SimDuration::micros(50)),
                2,
                None,
            );
            for i in 0..6u64 {
                g.add_task(
                    "host-side",
                    &[(RegionId(100 + i), Access::InOut)],
                    TaskCost::Fixed(SimDuration::micros(200)),
                    0,
                    None,
                );
            }
            let _ = (pre, post);
            let node = deep_hw::NodeModel::xeon_cluster_node();
            let report = run_hybrid_dataflow(&m, off.clone(), block.clone(), g, &node, 2).await;
            m.barrier(&world).await;
            off.shutdown(&m, block).await;
            if m.rank() == 0 {
                *out.borrow_mut() = Some((report.tasks, report.makespan.as_nanos()));
            }
        })
    });
    sim.run().assert_completed();
    let (tasks, makespan) = out.borrow_mut().take().unwrap();
    assert_eq!(tasks, 9);
    assert!(makespan > 0);
    // The kernel payloads crossed the bridge (4 ranks × 2 MiB ≥ 8 MiB).
    assert!(cbp.bridged_traffic().bytes >= 8 << 20);
}
