//! Trace-equivalence guard for kernel optimisations.
//!
//! The fast-path work on the simkit kernel (interned trace ids, slab
//! process table, lazy timer deletion) must not change *what* the
//! simulator computes — only how fast. These tests pin that down two
//! ways:
//!
//! 1. Same-seed replay: two independent runs of a faulty whole-machine
//!    workload produce bit-identical typed [`TraceEvent`] streams.
//! 2. A golden digest: the FNV-1a hash of the full event stream was
//!    recorded on the pre-optimisation kernel (PR 2 tree) and must stay
//!    byte-for-byte stable. If an engine change alters event content,
//!    ordering, or timestamps, this digest moves and the change is not a
//!    pure optimisation.

use std::rc::Rc;

use deep_cbp::CbpWireHandle;
use deep_core::{DeepConfig, DeepMachine};
use deep_faults::{spawn_injector, Domain, FaultEvent, FaultKind, FaultPlan, InjectorTargets};
use deep_psmpi::Wire;
use deep_simkit::{SimDuration, Simulation, TraceEvent};

/// A plan exercising every windowed fault kind, so the trace contains
/// events from the fabric, the CBP, the injector, and the PFS.
fn plan() -> FaultPlan {
    FaultPlan::link_flaps(Domain::Booster, 0.1, 0.5, 0.2, 0.2, 3).merge(FaultPlan::new(vec![
        FaultEvent {
            at: SimDuration::millis(100),
            kind: FaultKind::NicDrop {
                domain: Domain::Cluster,
                node: 1,
                drop_prob: 1.0,
                duration: SimDuration::millis(700),
            },
        },
        FaultEvent {
            at: SimDuration::millis(600),
            kind: FaultKind::BiFail {
                index: 0,
                duration: SimDuration::millis(500),
            },
        },
        FaultEvent {
            at: SimDuration::millis(900),
            kind: FaultKind::PfsStall {
                server: 0,
                bytes: 4 << 20,
            },
        },
    ]))
}

fn run_once(seed: u64) -> Vec<TraceEvent> {
    let mut sim = Simulation::new(seed);
    sim.enable_tracing();
    let ctx = sim.handle();
    let machine = DeepMachine::build(&ctx, DeepConfig::small());
    let cbp = machine.cbp().clone();
    let pfs = machine.pfs().clone();
    spawn_injector(
        &ctx,
        plan(),
        InjectorTargets {
            extoll: Some(machine.extoll().clone()),
            ib: Some(cbp.ib().clone()),
            cbp: Some(cbp.clone()),
            pfs: Some(pfs.clone()),
            ..InjectorTargets::default()
        },
    );
    let wire = Rc::new(CbpWireHandle(cbp.clone()));
    for i in 0..8u32 {
        let wire = wire.clone();
        let cbp = cbp.clone();
        let ctx2 = ctx.clone();
        sim.spawn(format!("traffic-{i}"), async move {
            ctx2.sleep(SimDuration::millis(150 * u64::from(i))).await;
            let src = cbp.cluster_ep(i % 4);
            let dst = cbp.booster_ep(i % 8);
            let _ = wire.transfer(src, dst, 64 << 10).await;
        });
    }
    sim.run().assert_completed();
    sim.take_events()
}

/// FNV-1a over every field of every event, in stream order.
fn digest(events: &[TraceEvent]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    for e in events {
        eat(&e.at.as_nanos().to_le_bytes());
        eat(e.component.as_bytes());
        eat(&[0xff]);
        eat(e.kind.as_bytes());
        eat(&[0xff]);
        eat(e.payload.as_bytes());
        eat(&[0xfe]);
    }
    h
}

/// Digest of seed 77 on the pre-optimisation kernel. Regenerate (only
/// for semantic changes, never for speed-ups) with:
/// `cargo test -q --test trace_equivalence -- --nocapture print_digest`
const GOLDEN_SEED: u64 = 77;
const GOLDEN_DIGEST: u64 = 0x7ccd_4cb4_5956_c1fe; // 25 events, seed-kernel value

#[test]
fn same_seed_replays_bit_identical_event_streams() {
    let a = run_once(GOLDEN_SEED);
    let b = run_once(GOLDEN_SEED);
    assert!(!a.is_empty(), "workload must emit trace events");
    assert_eq!(a, b, "same seed must replay the identical event stream");
}

#[test]
fn optimised_kernel_matches_pre_optimisation_golden_digest() {
    let events = run_once(GOLDEN_SEED);
    let d = digest(&events);
    println!(
        "trace digest(seed {GOLDEN_SEED}) = {d:#018x} over {} events",
        events.len()
    );
    assert_eq!(
        d, GOLDEN_DIGEST,
        "event stream diverged from the pre-optimisation kernel"
    );
}
