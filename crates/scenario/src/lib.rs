//! # deep-scenario — declarative scenario DSL
//!
//! Runtime-loaded scenario files for the DEEP reproduction: a
//! dependency-free TOML-subset parser ([`toml`]), a typed schema with
//! exact validation errors ([`schema`]), compilation into the same
//! `DeepConfig`/experiment structs the registry binaries use
//! ([`run`]), and a trace-driven `deep_resmgr` replay ([`trace`]).
//!
//! A scenario file declares a machine preset, an app skeleton with
//! sweep axes, a fault plan, and/or a synthetic job trace:
//!
//! ```toml
//! [scenario]
//! name = "resilience-example"
//! seed = 7
//! replicas = 8
//!
//! [machine]
//! preset = "prototype"
//!
//! [app]
//! skeleton = "resilience"
//! work_s = 500000.0
//! mtbf_node_s = 157680000.0
//! checkpoint_s = 240.0
//! restart_s = 600.0
//! intervals = ["daly/4", "daly", "daly*4", 86400.0]
//!
//! [[sweep.axes]]
//! param = "n_nodes"
//! values = [640, 10000, 100000, 1000000]
//! ```
//!
//! The same document runs three ways, all byte-identical: the
//! `run_scenario` binary, a `deep-serve` `{"scenario": ...}` job, and
//! the [`run::execute`] library call. Results are digest-keyed
//! (`deep_json::digest` of `{"scenario": <doc>}`) into the shared
//! result cache; the digest is invariant under key order and
//! formatting, so reformatted copies of a scenario hit the same cache
//! entry. See `docs/scenario.md` for the full grammar.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod run;
pub mod schema;
pub mod toml;
pub mod trace;

pub use run::{cache_key, execute};
pub use schema::{
    AppSpec, FaultSpec, FlapSpec, IntervalSpec, MachineSpec, PoissonSpec, ResilienceApp,
    ScalabilityApp, Scenario, SweepAxis, TraceSpec,
};
pub use toml::{parse as parse_toml, to_toml};
pub use trace::{replay, TraceResult, UtilSample};
