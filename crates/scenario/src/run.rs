//! Scenario execution: compile a validated [`Scenario`] into the same
//! experiment structs the registry binaries use and evaluate it.
//!
//! [`execute`] is the single entry point shared by the `run_scenario`
//! binary and the `deep-serve` `{"scenario": ...}` job type, so both
//! paths produce byte-identical JSON for the same document. The result
//! is a pure function of the scenario — no wall clock, no ambient RNG,
//! and sweep points are evaluated with `par_sweep` (input-order
//! results), so output is bit-identical at any `RAYON_NUM_THREADS`.

use deep_bench::des_scaling::{self, DesScalingConfig};
use deep_core::resilience::{daly_optimum, mean_efficiency, ResilienceParams};
use deep_faults::plan::{Domain, FaultEvent, FaultKind};
use deep_json::{object, Value};

use crate::schema::{AppSpec, IntervalSpec, ResilienceApp, ScalabilityApp, Scenario};

/// The cache key shared by `run_scenario --cache-dir` and the
/// `deep-serve` result cache: the digest of `{"scenario": <doc>}`,
/// which matches the daemon's job-spec digest so both populate the
/// same entries.
pub fn cache_key(sc: &Scenario) -> u64 {
    deep_json::digest::digest(&object([("scenario", sc.doc.clone())]))
}

/// Evaluate the scenario to its result JSON.
pub fn execute(sc: &Scenario) -> Value {
    let cfg = sc.machine.config();
    let mut members: Vec<(String, Value)> = vec![
        ("scenario".to_string(), sc.name.as_str().into()),
        ("seed".to_string(), sc.seed.into()),
        (
            "digest".to_string(),
            deep_json::digest::digest_hex(&sc.doc).into(),
        ),
        (
            "machine".to_string(),
            object([
                ("preset", sc.machine.preset.as_str().into()),
                ("n_cluster", u64::from(cfg.n_cluster).into()),
                ("n_booster", u64::from(cfg.n_booster()).into()),
                ("n_bi", u64::from(cfg.n_bi).into()),
                (
                    "booster_link_error_rate",
                    cfg.booster_link_error_rate.into(),
                ),
            ]),
        ),
    ];

    if sc.app.is_some() {
        members.push(("sweep".to_string(), run_sweep(sc)));
    }

    let plan = sc.fault_plan();
    if !plan.is_empty() {
        let schedule: Vec<Value> = plan.events().iter().map(fault_event_json).collect();
        members.push((
            "faults".to_string(),
            object([
                ("events", (plan.len() as u64).into()),
                ("schedule", Value::Array(schedule)),
            ]),
        ));
    }

    if let Some(trace) = &sc.trace {
        let result = crate::trace::replay(sc.seed, cfg.n_cluster, cfg.n_booster(), trace, &plan);
        members.push(("trace".to_string(), result.to_json()));
    }

    Value::Object(members)
}

/// Evaluate the app skeleton over its sweep points.
fn run_sweep(sc: &Scenario) -> Value {
    match sc.app.as_ref().expect("run_sweep requires an app block") {
        AppSpec::Resilience(app) => run_resilience_sweep(sc, app),
        AppSpec::Scalability(app) => run_scalability_sweep(sc, app),
    }
}

/// The `scalability` skeleton: one full-DES weak-scaling run per rank
/// point, each row carrying the LogGP model's per-iteration prediction
/// beside the measurement and the run's summary digest (the value the
/// determinism goldens pin).
fn run_scalability_sweep(sc: &Scenario, app: &ScalabilityApp) -> Value {
    let points = sc.scalability_points();
    let model = deep_psmpi::NetModel::ib_fdr();
    let rows = deep_bench::sweep::par_sweep(&points, |_, &ranks| {
        let r = des_scaling::run(DesScalingConfig {
            ranks,
            iters: app.iters,
            complex: app.complex,
            seed: sc.seed,
        });
        let model_iter_s =
            des_scaling::analytic_iter(&model, u64::from(ranks), app.complex).as_secs_f64();
        object([
            ("ranks", u64::from(r.ranks).into()),
            ("iters", u64::from(r.iters).into()),
            ("segments", u64::from(r.segments).into()),
            ("iter_s", r.iter_s.into()),
            ("model_iter_s", model_iter_s.into()),
            ("messages", r.messages.into()),
            ("kernel_events", r.kernel_events.into()),
            ("digest", format!("{:#018x}", r.digest).into()),
        ])
    });
    object([
        ("skeleton", "scalability".into()),
        ("class", if app.complex { "complex" } else { "spmv" }.into()),
        ("points", (points.len() as u64).into()),
        ("rows", Value::Array(rows)),
    ])
}

/// Evaluate the resilience skeleton over the sweep cross-product ×
/// intervals.
fn run_resilience_sweep(sc: &Scenario, app: &ResilienceApp) -> Value {
    let points = sc
        .sweep_points()
        .expect("sweep points validated at parse time");
    // Flatten (point, interval) pairs; `par_sweep` keeps input order,
    // so rows land grouped by point with intervals in declaration
    // order — the same nesting the registry experiments use.
    let units: Vec<(ResilienceParams, IntervalSpec)> = points
        .iter()
        .flat_map(|p| app.intervals.iter().map(move |iv| (*p, *iv)))
        .collect();
    let rows = deep_bench::sweep::par_sweep(&units, |_, (p, iv)| {
        let daly = daly_optimum(p);
        let interval_s = iv.resolve(daly);
        let me = mean_efficiency(p, interval_s, sc.seed, sc.replicas);
        object([
            ("n_nodes", p.n_nodes.into()),
            ("work_s", p.work_s.into()),
            ("mtbf_node_s", p.mtbf_node_s.into()),
            ("checkpoint_s", p.checkpoint_s.into()),
            ("restart_s", p.restart_s.into()),
            ("daly_s", daly.into()),
            ("interval_s", interval_s.into()),
            ("efficiency", me.efficiency.into()),
            ("truncated_runs", u64::from(me.truncated_runs).into()),
        ])
    });
    object([
        ("skeleton", "resilience".into()),
        ("replicas", u64::from(sc.replicas).into()),
        ("points", (points.len() as u64).into()),
        ("rows", Value::Array(rows)),
    ])
}

fn domain_name(d: Domain) -> &'static str {
    match d {
        Domain::Cluster => "cluster",
        Domain::Booster => "booster",
    }
}

/// A deterministic JSON rendering of one fault event.
fn fault_event_json(ev: &FaultEvent) -> Value {
    let at_s = ev.at.as_secs_f64();
    match &ev.kind {
        FaultKind::LinkDegrade {
            domain,
            error_rate,
            duration,
        } => object([
            ("at_s", at_s.into()),
            ("kind", "link_degrade".into()),
            ("domain", domain_name(*domain).into()),
            ("error_rate", (*error_rate).into()),
            ("duration_s", duration.as_secs_f64().into()),
        ]),
        FaultKind::NicDrop {
            domain,
            node,
            drop_prob,
            duration,
        } => object([
            ("at_s", at_s.into()),
            ("kind", "nic_drop".into()),
            ("domain", domain_name(*domain).into()),
            ("node", u64::from(*node).into()),
            ("drop_prob", (*drop_prob).into()),
            ("duration_s", duration.as_secs_f64().into()),
        ]),
        FaultKind::NodeCrash {
            domain,
            node,
            severity,
        } => object([
            ("at_s", at_s.into()),
            ("kind", "node_crash".into()),
            ("domain", domain_name(*domain).into()),
            ("node", u64::from(*node).into()),
            (
                "severity",
                match severity {
                    deep_io::ckptlog::FailureSeverity::Transient => "transient",
                    deep_io::ckptlog::FailureSeverity::NodeLoss => "node",
                    deep_io::ckptlog::FailureSeverity::MultiNodeLoss => "multi",
                }
                .into(),
            ),
        ]),
        FaultKind::BiFail { index, duration } => object([
            ("at_s", at_s.into()),
            ("kind", "bi_fail".into()),
            ("index", (*index as u64).into()),
            ("duration_s", duration.as_secs_f64().into()),
        ]),
        FaultKind::PfsStall { server, bytes } => object([
            ("at_s", at_s.into()),
            ("kind", "pfs_stall".into()),
            ("server", (*server as u64).into()),
            ("bytes", (*bytes).into()),
        ]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL_SWEEP: &str = "\
[scenario]
name = \"resilience-mini\"
seed = 7
replicas = 4

[machine]
preset = \"small\"

[app]
skeleton = \"resilience\"
work_s = 20000.0
mtbf_node_s = 250000.0
checkpoint_s = 120.0
restart_s = 300.0
intervals = [\"daly/4\", \"daly\", 3600.0]

[[sweep.axes]]
param = \"n_nodes\"
values = [64, 256]
";

    #[test]
    fn sweep_rows_match_direct_registry_math() {
        let sc = Scenario::from_toml_str(SMALL_SWEEP).unwrap();
        let out = execute(&sc);
        let rows = out["sweep"]["rows"].as_array().unwrap();
        assert_eq!(rows.len(), 6);
        // Row 4: n_nodes=256, interval=daly — must be bitwise equal to
        // calling the registry maths directly.
        let p = ResilienceParams {
            work_s: 20000.0,
            n_nodes: 256,
            mtbf_node_s: 250000.0,
            checkpoint_s: 120.0,
            restart_s: 300.0,
        };
        let daly = daly_optimum(&p);
        let expect = mean_efficiency(&p, daly, 7, 4);
        assert_eq!(rows[4]["efficiency"].as_f64(), Some(expect.efficiency));
        assert_eq!(rows[4]["interval_s"].as_f64(), Some(daly));
    }

    #[test]
    fn execute_is_a_pure_function() {
        let sc = Scenario::from_toml_str(SMALL_SWEEP).unwrap();
        assert_eq!(execute(&sc).to_json(), execute(&sc).to_json());
    }

    #[test]
    fn cache_key_matches_serve_spec_digest() {
        let sc = Scenario::from_toml_str(SMALL_SWEEP).unwrap();
        let spec_json = object([("scenario", sc.doc.clone())]);
        assert_eq!(
            cache_key(&sc),
            deep_json::digest::digest(&spec_json),
            "run_scenario and deep-serve must share cache entries"
        );
    }
}
