//! `run_scenario`: evaluate a declarative scenario file.
//!
//! ```text
//! run_scenario --scenario FILE [--json] [--check] [--cache-dir DIR] [--quiet]
//! ```
//!
//! * `--scenario FILE` — the TOML scenario document (required).
//! * `--json`          — print the full result JSON (pretty) to
//!   stdout; the default prints a short human summary.
//! * `--check`         — validate only: print `ok <digest>` and exit
//!   without evaluating (exit 2 on an invalid document).
//! * `--cache-dir DIR` — digest-keyed result cache shared with
//!   `deep-serve --cache-dir` and `run_experiments --cache-dir`: a
//!   scenario already evaluated by the daemon is a cache hit here and
//!   vice versa.
//! * `--quiet`         — suppress the cache status line on stderr.
//!
//! The result is a pure function of the document: byte-identical
//! output at any `RAYON_NUM_THREADS`, and invariant under key
//! reordering or reformatting of the TOML (the digest canonicalizes).
//!
//! Exit codes: 0 ok, 1 runtime error, 2 bad usage or invalid scenario.

#![forbid(unsafe_code)]

use deep_json::cache::ResultCache;
use deep_json::object;
use deep_scenario::Scenario;

fn usage() -> ! {
    eprintln!("usage: run_scenario --scenario FILE [--json] [--check] [--cache-dir DIR] [--quiet]");
    std::process::exit(2);
}

fn main() {
    let mut file: Option<String> = None;
    let mut json = false;
    let mut check = false;
    let mut quiet = false;
    let mut cache_dir: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scenario" => file = Some(args.next().unwrap_or_else(|| usage())),
            "--cache-dir" => cache_dir = Some(args.next().unwrap_or_else(|| usage())),
            "--json" => json = true,
            "--check" => check = true,
            "--quiet" => quiet = true,
            _ => usage(),
        }
    }
    let Some(file) = file else { usage() };
    let text = std::fs::read_to_string(&file).unwrap_or_else(|e| {
        eprintln!("run_scenario: cannot read {file}: {e}");
        std::process::exit(1);
    });
    let scenario = Scenario::from_toml_str(&text).unwrap_or_else(|e| {
        eprintln!("run_scenario: {file}: {e}");
        std::process::exit(2);
    });
    let digest = deep_json::digest::digest_hex(&scenario.doc);
    if check {
        println!("ok {digest}");
        return;
    }

    // Same key shape as the deep-serve job digest for {"scenario": doc},
    // so daemon and CLI share cache entries.
    let key = deep_scenario::cache_key(&scenario);
    let mut cache = cache_dir.as_ref().map(|dir| {
        ResultCache::with_spill_dir(1024, std::path::Path::new(dir)).unwrap_or_else(|e| {
            eprintln!("run_scenario: cache dir {dir}: {e}");
            std::process::exit(1);
        })
    });

    let (result, cached) = match cache.as_mut().and_then(|c| c.get(key)) {
        Some(hit) => (hit, true),
        None => {
            let value = deep_scenario::execute(&scenario);
            if let Some(c) = cache.as_mut() {
                if let Err(e) = c.insert(key, value.clone()) {
                    eprintln!("run_scenario: cache write failed: {e}");
                }
            }
            (value, false)
        }
    };
    if !quiet && cache_dir.is_some() {
        eprintln!(
            "run_scenario: {} ({})",
            scenario.name,
            if cached { "cache hit" } else { "evaluated" }
        );
    }

    if json {
        println!("{}", result.to_json_pretty());
    } else {
        let points = result["sweep"]["points"].as_u64().unwrap_or(0);
        let summary = object([
            ("scenario", scenario.name.as_str().into()),
            ("digest", digest.as_str().into()),
            ("sweep_points", points.into()),
            ("trace", result.get("trace").is_some().into()),
            ("cache_hit", cached.into()),
        ]);
        println!("{}", summary.to_json_pretty());
    }
}
