//! Typed scenario schema: validation of the parsed TOML tree into
//! strongly typed structs, and compilation into the same
//! [`DeepConfig`] / experiment parameter structs the registry
//! binaries use.
//!
//! Every validation failure produces a stable, exact error message
//! (asserted verbatim by `tests/scenario_fixtures/`), of the form
//! `<table>.<key>: <what>` or `<table>: <what>`.

use deep_core::config::DeepConfig;
use deep_core::resilience::ResilienceParams;
use deep_faults::plan::{Domain, FaultEvent, FaultKind, FaultPlan};
use deep_io::ckptlog::FailureSeverity;
use deep_json::Value;
use deep_simkit::SimDuration;

/// A fully validated scenario document.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name (1..=64 characters).
    pub name: String,
    /// Master seed for every stochastic component.
    pub seed: u64,
    /// Replica count for app-skeleton evaluations.
    pub replicas: u32,
    /// Machine shape (preset plus overrides).
    pub machine: MachineSpec,
    /// Optional application skeleton to evaluate.
    pub app: Option<AppSpec>,
    /// Sweep axes (cross product, declaration order, first axis
    /// outermost).
    pub sweep: Vec<SweepAxis>,
    /// Declarative fault plan sources.
    pub faults: FaultSpec,
    /// Optional synthetic job trace replayed through `deep_resmgr`.
    pub trace: Option<TraceSpec>,
    /// The parsed document, kept for digesting/caching.
    pub doc: Value,
}

/// Machine preset plus overrides, resolvable to a [`DeepConfig`].
#[derive(Debug, Clone)]
pub struct MachineSpec {
    /// Preset name: `small`, `medium`, or `prototype`.
    pub preset: String,
    /// Override for `DeepConfig::n_cluster`.
    pub n_cluster: Option<u32>,
    /// Override for the Booster torus dimensions.
    pub booster_dims: Option<(u32, u32, u32)>,
    /// Override for the number of Booster interface nodes.
    pub n_bi: Option<u32>,
    /// Override for the Booster link error rate.
    pub booster_link_error_rate: Option<f64>,
}

impl MachineSpec {
    /// Resolve the preset and apply overrides.
    pub fn config(&self) -> DeepConfig {
        let mut cfg = match self.preset.as_str() {
            "small" => DeepConfig::small(),
            "medium" => DeepConfig::medium(),
            _ => DeepConfig::prototype(),
        };
        if let Some(n) = self.n_cluster {
            cfg.n_cluster = n;
        }
        if let Some(d) = self.booster_dims {
            cfg.booster_dims = d;
        }
        if let Some(n) = self.n_bi {
            cfg.n_bi = n;
        }
        if let Some(e) = self.booster_link_error_rate {
            cfg.booster_link_error_rate = e;
        }
        cfg
    }
}

/// An application skeleton the scenario evaluates: either the
/// checkpoint/restart maths or the full-DES weak-scaling run.
#[derive(Debug, Clone)]
pub enum AppSpec {
    /// `skeleton = "resilience"` — checkpoint/restart efficiency.
    Resilience(ResilienceApp),
    /// `skeleton = "scalability"` — the partitioned full-DES
    /// weak-scaling skeleton (`deep_bench::des_scaling`).
    Scalability(ScalabilityApp),
}

/// The `scalability` app skeleton: the F09 communication skeleton
/// (ring halo + allreduce, optionally plus a pairwise all-to-all)
/// simulated end-to-end on the discrete-event engine over a full-size
/// IB fat tree. Deterministic — `replicas` is ignored — and the
/// machine block only names the scenario's context (the fabric is
/// sized from the rank count).
#[derive(Debug, Clone)]
pub struct ScalabilityApp {
    /// Base rank count (power of two), used when no `ranks` sweep axis
    /// is declared.
    pub ranks: u32,
    /// Iterations to simulate per point.
    pub iters: u32,
    /// Add the complex class's pairwise all-to-all phase.
    pub complex: bool,
}

/// The `resilience` app skeleton: checkpoint/restart efficiency under
/// node failures, identical maths to the `f03b_resilience` registry
/// experiment.
#[derive(Debug, Clone)]
pub struct ResilienceApp {
    /// Total useful work per run, seconds.
    pub work_s: f64,
    /// Per-node MTBF, seconds.
    pub mtbf_node_s: f64,
    /// Checkpoint write time, seconds.
    pub checkpoint_s: f64,
    /// Restart (rework setup) time, seconds.
    pub restart_s: f64,
    /// Node count; defaults to the machine total (cluster + booster).
    pub n_nodes: Option<u64>,
    /// Checkpoint intervals to evaluate per sweep point.
    pub intervals: Vec<IntervalSpec>,
}

/// A checkpoint interval: absolute seconds or relative to the Daly
/// optimum of the point being evaluated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IntervalSpec {
    /// A fixed interval in seconds.
    Seconds(f64),
    /// `daly * factor`, computed per sweep point.
    DalyTimes(f64),
    /// `daly / divisor`, computed per sweep point (kept distinct from
    /// `DalyTimes` so `daly/4` is bitwise `daly / 4.0`, exactly as the
    /// registry experiment computes it).
    DalyOver(f64),
}

impl IntervalSpec {
    /// Resolve against a point's Daly-optimum interval.
    pub fn resolve(&self, daly: f64) -> f64 {
        match *self {
            IntervalSpec::Seconds(s) => s,
            IntervalSpec::DalyTimes(k) => daly * k,
            IntervalSpec::DalyOver(k) => daly / k,
        }
    }
}

/// One sweep axis: a parameter name plus its values.
#[derive(Debug, Clone)]
pub struct SweepAxis {
    /// Which [`ResilienceParams`] field the axis varies.
    pub param: String,
    /// The concrete values, in evaluation order.
    pub values: Vec<f64>,
}

/// Declarative fault-plan sources, compiled by
/// [`Scenario::fault_plan`].
#[derive(Debug, Clone, Default)]
pub struct FaultSpec {
    /// Explicit events.
    pub events: Vec<FaultEvent>,
    /// Seeded Poisson crash process, if declared.
    pub poisson: Option<PoissonSpec>,
    /// Periodic link-quality flaps, if declared.
    pub link_flaps: Option<FlapSpec>,
}

/// `[faults.poisson]`: seeded Poisson node-crash process.
#[derive(Debug, Clone)]
pub struct PoissonSpec {
    /// Failure domain.
    pub domain: Domain,
    /// Node count; defaults to the domain's machine size.
    pub n_nodes: Option<u32>,
    /// Per-node MTBF, seconds.
    pub mtbf_node_s: f64,
    /// Schedule horizon, seconds.
    pub horizon_s: f64,
    /// Severity mix `[transient, node, multi]`.
    pub weights: [f64; 3],
    /// RNG stream selector (combined with the scenario seed).
    pub stream: u64,
}

/// `[faults.link_flaps]`: periodic link-degrade windows.
#[derive(Debug, Clone)]
pub struct FlapSpec {
    /// Failure domain.
    pub domain: Domain,
    /// First flap onset, seconds.
    pub first_s: f64,
    /// Flap period, seconds.
    pub period_s: f64,
    /// Error rate during a flap.
    pub error_rate: f64,
    /// Flap duration, seconds.
    pub flap_s: f64,
    /// Number of flaps.
    pub count: u32,
}

/// `[trace]`: a synthetic job trace replayed through `deep_resmgr`.
#[derive(Debug, Clone)]
pub struct TraceSpec {
    /// Number of jobs in the trace.
    pub jobs: u32,
    /// Mean job interarrival time, seconds.
    pub mean_interarrival_s: f64,
    /// Maximum cluster nodes a job may request.
    pub max_cn: u32,
    /// Maximum booster nodes a phase may request.
    pub max_bn: u32,
    /// Mean cluster compute time per phase, seconds.
    pub mean_cn_time_s: f64,
    /// Mean booster offload time per phase, seconds.
    pub mean_bn_time_s: f64,
    /// Maximum phases per job.
    pub max_phases: u32,
    /// Fraction of jobs that never offload.
    pub pure_cluster_fraction: f64,
    /// Allocation policy: `static`, `dynamic`, or `backfill`.
    pub policy: String,
    /// Spare booster nodes held for failure replacement.
    pub spares: u32,
    /// Utilisation sampling period, seconds.
    pub sample_every_s: f64,
}

impl Scenario {
    /// Parse and validate a TOML scenario document.
    pub fn from_toml_str(input: &str) -> Result<Scenario, String> {
        Scenario::from_value(&crate::toml::parse(input)?)
    }

    /// Validate a parsed document (TOML- or JSON-sourced: `deep-serve`
    /// jobs arrive as JSON).
    pub fn from_value(doc: &Value) -> Result<Scenario, String> {
        let Value::Object(sections) = doc else {
            return Err("scenario document must be a table".to_string());
        };
        for (key, _) in sections {
            if !matches!(
                key.as_str(),
                "scenario" | "machine" | "app" | "sweep" | "faults" | "trace"
            ) {
                return Err(format!("unknown section '{key}'"));
            }
        }

        let meta = require_table(doc, "scenario")?;
        check_keys(meta, "scenario", &["name", "seed", "replicas"])?;
        let name = require_str(meta, "scenario", "name")?;
        if name.is_empty() || name.len() > 64 {
            return Err("scenario.name: must be 1..=64 characters".to_string());
        }
        let seed = require_u64(meta, "scenario", "seed")?;
        let replicas = opt_u64(meta, "scenario", "replicas")?.unwrap_or(1);
        if !(1..=1024).contains(&replicas) {
            return Err("scenario.replicas: must be in 1..=1024".to_string());
        }

        let machine = parse_machine(doc)?;
        let app = match doc.get("app") {
            None => None,
            Some(_) => Some(parse_app(require_table(doc, "app")?)?),
        };
        let sweep = parse_sweep(doc, app.as_ref())?;
        if !sweep.is_empty() && app.is_none() {
            return Err("sweep requires an 'app' block".to_string());
        }
        let faults = parse_faults(doc)?;
        let trace = match doc.get("trace") {
            None => None,
            Some(_) => Some(parse_trace(require_table(doc, "trace")?)?),
        };
        if app.is_none() && trace.is_none() {
            return Err("scenario must define an 'app' or a 'trace' block".to_string());
        }

        let sc = Scenario {
            name: name.to_string(),
            seed,
            replicas: replicas as u32,
            machine,
            app,
            sweep,
            faults,
            trace,
            doc: doc.clone(),
        };
        sc.sweep_points()?; // surface point-count errors at validation time
        sc.check_scalability_budget()?;
        Ok(sc)
    }

    /// Reject scalability runs whose simulated message count would be
    /// unreasonably large — scenario documents arrive from untrusted
    /// daemon peers, and the complex class is quadratic in ranks.
    fn check_scalability_budget(&self) -> Result<(), String> {
        let Some(AppSpec::Scalability(app)) = &self.app else {
            return Ok(());
        };
        let mut est: u128 = 0;
        for &r in &self.scalability_points() {
            let (r, log2) = (r as u128, r.trailing_zeros() as u128);
            let mut per_iter = (2 + log2) * r; // two halo dirs + allreduce rounds
            if app.complex {
                per_iter += r * (r - 1); // pairwise all-to-all rounds
            }
            est += per_iter * app.iters as u128;
        }
        if est > 1 << 28 {
            return Err(
                "app: scalability run too large (estimated messages exceed 2^28)".to_string(),
            );
        }
        Ok(())
    }

    /// Rank counts the scalability skeleton evaluates: the `ranks`
    /// sweep axis values in declaration order, or the app's base rank
    /// count when no axis is declared. Empty for other skeletons.
    pub fn scalability_points(&self) -> Vec<u32> {
        let Some(AppSpec::Scalability(app)) = &self.app else {
            return Vec::new();
        };
        match self.sweep.iter().find(|a| a.param == "ranks") {
            Some(axis) => axis.values.iter().map(|&v| v as u32).collect(),
            None => vec![app.ranks],
        }
    }

    /// The cross product of all sweep axes as `ResilienceParams`
    /// (first axis outermost). With no axes, a single point built from
    /// the app block.
    pub fn sweep_points(&self) -> Result<Vec<ResilienceParams>, String> {
        let Some(AppSpec::Resilience(app)) = &self.app else {
            return Ok(Vec::new());
        };
        let cfg = self.machine.config();
        let base = ResilienceParams {
            work_s: app.work_s,
            n_nodes: app
                .n_nodes
                .unwrap_or(u64::from(cfg.n_cluster) + u64::from(cfg.n_booster())),
            mtbf_node_s: app.mtbf_node_s,
            checkpoint_s: app.checkpoint_s,
            restart_s: app.restart_s,
        };
        // Bound the cross product from axis cardinalities alone,
        // before any point vector is allocated: documents arrive from
        // untrusted daemon peers, and a pair of large `values` axes
        // must never drive the materialization below.
        let mut total: usize = 1;
        for axis in &self.sweep {
            total = total
                .checked_mul(axis.values.len())
                .filter(|&t| t <= 4096)
                .ok_or_else(|| "sweep: too many points (cross product exceeds 4096)".to_string())?;
        }
        let mut points = Vec::with_capacity(total);
        points.push(base);
        for axis in &self.sweep {
            let mut next = Vec::with_capacity(points.len() * axis.values.len());
            for p in &points {
                for &v in &axis.values {
                    let mut q = *p;
                    match axis.param.as_str() {
                        "n_nodes" => q.n_nodes = v as u64,
                        "work_s" => q.work_s = v,
                        "mtbf_node_s" => q.mtbf_node_s = v,
                        "checkpoint_s" => q.checkpoint_s = v,
                        "restart_s" => q.restart_s = v,
                        _ => unreachable!("axis params validated in parse_sweep"),
                    }
                    next.push(q);
                }
            }
            points = next;
        }
        Ok(points)
    }

    /// Compile the declarative fault sources into one merged, ordered
    /// [`FaultPlan`].
    pub fn fault_plan(&self) -> FaultPlan {
        let cfg = self.machine.config();
        let mut plan = FaultPlan::new(self.faults.events.clone());
        if let Some(p) = &self.faults.poisson {
            let n_nodes = p.n_nodes.unwrap_or(match p.domain {
                Domain::Cluster => cfg.n_cluster,
                Domain::Booster => cfg.n_booster(),
            });
            plan = plan.merge(FaultPlan::poisson_crashes(
                p.domain,
                n_nodes,
                p.mtbf_node_s,
                p.horizon_s,
                p.weights,
                self.seed,
                p.stream,
            ));
        }
        if let Some(f) = &self.faults.link_flaps {
            plan = plan.merge(FaultPlan::link_flaps(
                f.domain,
                f.first_s,
                f.period_s,
                f.error_rate,
                f.flap_s,
                f.count,
            ));
        }
        plan
    }
}

// ---------------------------------------------------------------
// field helpers (exact error strings live here)
// ---------------------------------------------------------------

fn require_table<'v>(doc: &'v Value, name: &str) -> Result<&'v Value, String> {
    match doc.get(name) {
        Some(v @ Value::Object(_)) => Ok(v),
        Some(_) => Err(format!("'{name}' must be a table")),
        None => Err(format!("missing required section '{name}'")),
    }
}

fn check_keys(table: &Value, section: &str, allowed: &[&str]) -> Result<(), String> {
    let Value::Object(kv) = table else {
        unreachable!("check_keys is only called on tables")
    };
    for (key, _) in kv {
        if !allowed.contains(&key.as_str()) {
            return Err(format!("{section}: unknown key '{key}'"));
        }
    }
    Ok(())
}

fn require_str<'v>(table: &'v Value, section: &str, key: &str) -> Result<&'v str, String> {
    match table.get(key) {
        Some(Value::String(s)) => Ok(s),
        Some(_) => Err(format!("{section}.{key}: expected a string")),
        None => Err(format!("{section}: missing required key '{key}'")),
    }
}

fn require_u64(table: &Value, section: &str, key: &str) -> Result<u64, String> {
    match opt_u64(table, section, key)? {
        Some(v) => Ok(v),
        None => Err(format!("{section}: missing required key '{key}'")),
    }
}

fn opt_u64(table: &Value, section: &str, key: &str) -> Result<Option<u64>, String> {
    match table.get(key) {
        None => Ok(None),
        Some(v) => match v.as_u64() {
            Some(n) => Ok(Some(n)),
            None => Err(format!("{section}.{key}: expected a non-negative integer")),
        },
    }
}

fn require_f64(table: &Value, section: &str, key: &str) -> Result<f64, String> {
    match opt_f64(table, section, key)? {
        Some(v) => Ok(v),
        None => Err(format!("{section}: missing required key '{key}'")),
    }
}

fn opt_f64(table: &Value, section: &str, key: &str) -> Result<Option<f64>, String> {
    match table.get(key) {
        None => Ok(None),
        Some(Value::Number(n)) => Ok(Some(*n)),
        Some(_) => Err(format!("{section}.{key}: expected a number")),
    }
}

fn positive_f64(table: &Value, section: &str, key: &str) -> Result<f64, String> {
    let v = require_f64(table, section, key)?;
    if !(v.is_finite() && v > 0.0) {
        return Err(format!("{section}.{key}: must be finite and > 0"));
    }
    Ok(v)
}

fn range_u64(
    table: &Value,
    section: &str,
    key: &str,
    lo: u64,
    hi: u64,
) -> Result<Option<u64>, String> {
    match opt_u64(table, section, key)? {
        None => Ok(None),
        Some(v) if (lo..=hi).contains(&v) => Ok(Some(v)),
        Some(_) => Err(format!("{section}.{key}: must be in {lo}..={hi}")),
    }
}

fn parse_domain(table: &Value, section: &str) -> Result<Domain, String> {
    match require_str(table, section, "domain")? {
        "cluster" => Ok(Domain::Cluster),
        "booster" => Ok(Domain::Booster),
        other => Err(format!(
            "{section}.domain: unknown domain '{other}' (use 'cluster' or 'booster')"
        )),
    }
}

// ---------------------------------------------------------------
// section parsers
// ---------------------------------------------------------------

fn parse_machine(doc: &Value) -> Result<MachineSpec, String> {
    let table = require_table(doc, "machine")?;
    check_keys(
        table,
        "machine",
        &[
            "preset",
            "n_cluster",
            "booster_dims",
            "n_bi",
            "booster_link_error_rate",
        ],
    )?;
    let preset = require_str(table, "machine", "preset")?;
    if !matches!(preset, "small" | "medium" | "prototype") {
        return Err(format!(
            "machine: unknown preset '{preset}' (use 'small', 'medium', 'prototype')"
        ));
    }
    let n_cluster = range_u64(table, "machine", "n_cluster", 1, 1_048_576)?;
    let n_bi = range_u64(table, "machine", "n_bi", 1, 4096)?;
    let booster_dims = match table.get("booster_dims") {
        None => None,
        Some(Value::Array(items)) if items.len() == 3 => {
            let mut dims = [0u32; 3];
            for (i, item) in items.iter().enumerate() {
                match item.as_u64() {
                    Some(v) if (1..=1024).contains(&v) => dims[i] = v as u32,
                    _ => {
                        return Err(
                            "machine.booster_dims: each dimension must be in 1..=1024".to_string()
                        )
                    }
                }
            }
            Some((dims[0], dims[1], dims[2]))
        }
        Some(_) => return Err("machine.booster_dims: expected an array of 3 integers".to_string()),
    };
    let booster_link_error_rate = match opt_f64(table, "machine", "booster_link_error_rate")? {
        None => None,
        Some(v) if (0.0..=1.0).contains(&v) => Some(v),
        Some(_) => return Err("machine.booster_link_error_rate: must be in 0..=1".to_string()),
    };
    Ok(MachineSpec {
        preset: preset.to_string(),
        n_cluster: n_cluster.map(|v| v as u32),
        booster_dims,
        n_bi: n_bi.map(|v| v as u32),
        booster_link_error_rate,
    })
}

fn parse_app(table: &Value) -> Result<AppSpec, String> {
    match require_str(table, "app", "skeleton")? {
        "resilience" => Ok(AppSpec::Resilience(parse_resilience_app(table)?)),
        "scalability" => Ok(AppSpec::Scalability(parse_scalability_app(table)?)),
        skeleton => Err(format!(
            "app: unknown skeleton '{skeleton}' (use 'resilience' or 'scalability')"
        )),
    }
}

fn parse_scalability_app(table: &Value) -> Result<ScalabilityApp, String> {
    check_keys(table, "app", &["skeleton", "ranks", "iters", "complex"])?;
    let ranks = match range_u64(table, "app", "ranks", 2, 262_144)? {
        None => 64,
        Some(r) if r.is_power_of_two() => r as u32,
        Some(_) => return Err("app.ranks: must be a power of two".to_string()),
    };
    let iters = range_u64(table, "app", "iters", 1, 8)?.unwrap_or(1) as u32;
    let complex = match table.get("complex") {
        None => false,
        Some(Value::Bool(b)) => *b,
        Some(_) => return Err("app.complex: expected a boolean".to_string()),
    };
    Ok(ScalabilityApp {
        ranks,
        iters,
        complex,
    })
}

fn parse_resilience_app(table: &Value) -> Result<ResilienceApp, String> {
    check_keys(
        table,
        "app",
        &[
            "skeleton",
            "work_s",
            "mtbf_node_s",
            "checkpoint_s",
            "restart_s",
            "n_nodes",
            "intervals",
        ],
    )?;
    let intervals = match table.get("intervals") {
        None => vec![IntervalSpec::DalyTimes(1.0)],
        Some(Value::Array(items)) if !items.is_empty() => {
            // Bounds the execution-time work-unit vector (sweep points
            // × intervals) alongside the 4096-point sweep cap.
            if items.len() > 64 {
                return Err("app.intervals: must have at most 64 entries".to_string());
            }
            let mut out = Vec::with_capacity(items.len());
            for item in items {
                out.push(parse_interval(item)?);
            }
            out
        }
        Some(Value::Array(_)) => {
            return Err("app.intervals: must not be empty".to_string());
        }
        Some(_) => return Err("app.intervals: expected an array".to_string()),
    };
    Ok(ResilienceApp {
        work_s: positive_f64(table, "app", "work_s")?,
        mtbf_node_s: positive_f64(table, "app", "mtbf_node_s")?,
        checkpoint_s: positive_f64(table, "app", "checkpoint_s")?,
        restart_s: positive_f64(table, "app", "restart_s")?,
        n_nodes: range_u64(table, "app", "n_nodes", 1, 100_000_000)?,
        intervals,
    })
}

fn parse_interval(item: &Value) -> Result<IntervalSpec, String> {
    let bad = |s: &str| {
        format!("app: unknown interval '{s}' (use seconds, 'daly', 'daly*N' or 'daly/N')")
    };
    match item {
        Value::Number(n) if n.is_finite() && *n > 0.0 => Ok(IntervalSpec::Seconds(*n)),
        Value::Number(n) => Err(bad(&format!("{n}"))),
        Value::String(s) => {
            if s == "daly" {
                return Ok(IntervalSpec::DalyTimes(1.0));
            }
            if let Some(rest) = s.strip_prefix("daly*") {
                if let Ok(k) = rest.parse::<f64>() {
                    if k.is_finite() && k > 0.0 {
                        return Ok(IntervalSpec::DalyTimes(k));
                    }
                }
            }
            if let Some(rest) = s.strip_prefix("daly/") {
                if let Ok(k) = rest.parse::<f64>() {
                    if k.is_finite() && k > 0.0 {
                        return Ok(IntervalSpec::DalyOver(k));
                    }
                }
            }
            Err(bad(s))
        }
        _ => Err(bad("<non-scalar>")),
    }
}

fn parse_sweep(doc: &Value, app: Option<&AppSpec>) -> Result<Vec<SweepAxis>, String> {
    let Some(sweep) = doc.get("sweep") else {
        return Ok(Vec::new());
    };
    check_keys(sweep, "sweep", &["axes"])?;
    let axes = match sweep.get("axes") {
        None => return Ok(Vec::new()),
        Some(Value::Array(items)) => items,
        Some(_) => return Err("sweep.axes: expected an array of tables".to_string()),
    };
    let scalability = matches!(app, Some(AppSpec::Scalability(_)));
    let mut out: Vec<SweepAxis> = Vec::with_capacity(axes.len());
    for axis in axes {
        let param = require_str(axis, "sweep axis", "param")?;
        let section = format!("sweep axis '{param}'");
        check_keys(axis, &section, &["param", "values", "grid"])?;
        if !matches!(
            param,
            "n_nodes" | "work_s" | "mtbf_node_s" | "checkpoint_s" | "restart_s" | "ranks"
        ) {
            return Err(format!("sweep axis '{param}': unknown parameter"));
        }
        if (param == "ranks") != scalability {
            return Err(if scalability {
                format!("sweep axis '{param}': the 'scalability' skeleton only sweeps 'ranks'")
            } else {
                "sweep axis 'ranks': requires the 'scalability' skeleton".to_string()
            });
        }
        if out.iter().any(|a| a.param == param) {
            return Err(format!("sweep: duplicate axis '{param}'"));
        }
        let has_values = axis.get("values").is_some();
        let has_grid = axis.get("grid").is_some();
        if has_values && has_grid {
            return Err(format!(
                "sweep axis '{param}': give either 'values' or 'grid', not both"
            ));
        }
        let values = if has_values {
            match axis.get("values") {
                Some(Value::Array(items)) if !items.is_empty() => {
                    let mut vs = Vec::with_capacity(items.len());
                    for item in items {
                        match item {
                            Value::Number(n) if n.is_finite() => vs.push(*n),
                            _ => {
                                return Err(format!(
                                    "sweep axis '{param}': values must be finite numbers"
                                ))
                            }
                        }
                    }
                    vs
                }
                Some(Value::Array(_)) => {
                    return Err(format!("sweep axis '{param}': 'values' must not be empty"))
                }
                _ => return Err(format!("sweep axis '{param}': 'values' must be an array")),
            }
        } else if has_grid {
            let grid = axis
                .get("grid")
                .ok_or_else(|| format!("sweep axis '{param}': 'grid' must be a table"))?;
            if !matches!(grid, Value::Object(_)) {
                return Err(format!("sweep axis '{param}': 'grid' must be a table"));
            }
            check_keys(
                grid,
                &format!("{section}.grid"),
                &["start", "step", "count"],
            )?;
            let start = require_f64(grid, &section, "start")?;
            let step = require_f64(grid, &section, "step")?;
            let count = require_u64(grid, &section, "count")?;
            if !start.is_finite() || !step.is_finite() {
                return Err(format!("sweep axis '{param}': grid bounds must be finite"));
            }
            if step == 0.0 && count > 1 {
                return Err(format!(
                    "sweep axis '{param}': grid 'step' must be non-zero (the axis never advances)"
                ));
            }
            if !(1..=4096).contains(&count) {
                return Err(format!(
                    "sweep axis '{param}': grid 'count' must be in 1..=4096"
                ));
            }
            (0..count).map(|i| start + step * i as f64).collect()
        } else {
            return Err(format!("sweep axis '{param}': needs 'values' or 'grid'"));
        };
        if param == "ranks" {
            for &v in &values {
                let ok = v.fract() == 0.0
                    && (2.0..=262_144.0).contains(&v)
                    && (v as u64).is_power_of_two();
                if !ok {
                    return Err(
                        "sweep axis 'ranks': values must be powers of two in 2..=262144"
                            .to_string(),
                    );
                }
            }
        } else if param == "n_nodes" {
            for &v in &values {
                if v.fract() != 0.0 || v < 1.0 {
                    return Err(
                        "sweep axis 'n_nodes': values must be positive integers".to_string()
                    );
                }
            }
        } else {
            for &v in &values {
                if v <= 0.0 {
                    return Err(format!("sweep axis '{param}': values must be > 0"));
                }
            }
        }
        out.push(SweepAxis {
            param: param.to_string(),
            values,
        });
    }
    Ok(out)
}

fn parse_faults(doc: &Value) -> Result<FaultSpec, String> {
    let Some(faults) = doc.get("faults") else {
        return Ok(FaultSpec::default());
    };
    check_keys(faults, "faults", &["events", "poisson", "link_flaps"])?;
    let mut spec = FaultSpec::default();
    if let Some(events) = faults.get("events") {
        let Value::Array(items) = events else {
            return Err("faults.events: expected an array of tables".to_string());
        };
        for item in items {
            spec.events.push(parse_fault_event(item)?);
        }
    }
    if let Some(p) = faults.get("poisson") {
        if !matches!(p, Value::Object(_)) {
            return Err("'faults.poisson' must be a table".to_string());
        }
        check_keys(
            p,
            "faults.poisson",
            &[
                "domain",
                "n_nodes",
                "mtbf_node_s",
                "horizon_s",
                "weights",
                "stream",
            ],
        )?;
        let weights = match p.get("weights") {
            None => [0.7, 0.25, 0.05],
            Some(Value::Array(items)) if items.len() == 3 => {
                let mut w = [0.0f64; 3];
                for (i, item) in items.iter().enumerate() {
                    match item {
                        Value::Number(n) if n.is_finite() && *n >= 0.0 => w[i] = *n,
                        _ => {
                            return Err("faults.poisson.weights: must be 3 non-negative numbers"
                                .to_string())
                        }
                    }
                }
                w
            }
            Some(_) => {
                return Err("faults.poisson.weights: must be 3 non-negative numbers".to_string())
            }
        };
        spec.poisson = Some(PoissonSpec {
            domain: parse_domain(p, "faults.poisson")?,
            n_nodes: range_u64(p, "faults.poisson", "n_nodes", 1, 10_000_000)?.map(|v| v as u32),
            mtbf_node_s: positive_f64(p, "faults.poisson", "mtbf_node_s")?,
            horizon_s: positive_f64(p, "faults.poisson", "horizon_s")?,
            weights,
            stream: opt_u64(p, "faults.poisson", "stream")?.unwrap_or(1),
        });
    }
    if let Some(f) = faults.get("link_flaps") {
        if !matches!(f, Value::Object(_)) {
            return Err("'faults.link_flaps' must be a table".to_string());
        }
        check_keys(
            f,
            "faults.link_flaps",
            &[
                "domain",
                "first_s",
                "period_s",
                "error_rate",
                "flap_s",
                "count",
            ],
        )?;
        let error_rate = require_f64(f, "faults.link_flaps", "error_rate")?;
        if !(0.0..=1.0).contains(&error_rate) {
            return Err("faults.link_flaps.error_rate: must be in 0..=1".to_string());
        }
        spec.link_flaps = Some(FlapSpec {
            domain: parse_domain(f, "faults.link_flaps")?,
            first_s: positive_f64(f, "faults.link_flaps", "first_s")?,
            period_s: positive_f64(f, "faults.link_flaps", "period_s")?,
            error_rate,
            flap_s: positive_f64(f, "faults.link_flaps", "flap_s")?,
            count: range_u64(f, "faults.link_flaps", "count", 1, 100_000)?
                .ok_or_else(|| "faults.link_flaps: missing required key 'count'".to_string())?
                as u32,
        });
    }
    Ok(spec)
}

fn parse_fault_event(item: &Value) -> Result<FaultEvent, String> {
    if !matches!(item, Value::Object(_)) {
        return Err("faults.events: each event must be a table".to_string());
    }
    let kind_name = require_str(item, "faults.events", "kind")?;
    let at_s = positive_f64(item, "faults.events", "at_s")?;
    let section = format!("faults.events[{kind_name}]");
    let kind = match kind_name {
        "node_crash" => {
            check_keys(item, &section, &["kind", "at_s", "domain", "node", "severity"])?;
            let severity = match item.get("severity").and_then(|v| v.as_str()) {
                None | Some("node") => FailureSeverity::NodeLoss,
                Some("transient") => FailureSeverity::Transient,
                Some("multi") => FailureSeverity::MultiNodeLoss,
                Some(other) => {
                    return Err(format!(
                        "{section}.severity: unknown severity '{other}' (use 'transient', 'node', 'multi')"
                    ))
                }
            };
            FaultKind::NodeCrash {
                domain: parse_domain(item, &section)?,
                node: require_u64(item, &section, "node")? as u32,
                severity,
            }
        }
        "link_degrade" => {
            check_keys(
                item,
                &section,
                &["kind", "at_s", "domain", "error_rate", "duration_s"],
            )?;
            let error_rate = require_f64(item, &section, "error_rate")?;
            if !(0.0..=1.0).contains(&error_rate) {
                return Err(format!("{section}.error_rate: must be in 0..=1"));
            }
            FaultKind::LinkDegrade {
                domain: parse_domain(item, &section)?,
                error_rate,
                duration: SimDuration::from_secs_f64(positive_f64(item, &section, "duration_s")?),
            }
        }
        "nic_drop" => {
            check_keys(
                item,
                &section,
                &["kind", "at_s", "domain", "node", "drop_prob", "duration_s"],
            )?;
            let drop_prob = require_f64(item, &section, "drop_prob")?;
            if !(0.0..=1.0).contains(&drop_prob) {
                return Err(format!("{section}.drop_prob: must be in 0..=1"));
            }
            FaultKind::NicDrop {
                domain: parse_domain(item, &section)?,
                node: require_u64(item, &section, "node")? as u32,
                drop_prob,
                duration: SimDuration::from_secs_f64(positive_f64(item, &section, "duration_s")?),
            }
        }
        "bi_fail" => {
            check_keys(item, &section, &["kind", "at_s", "index", "duration_s"])?;
            FaultKind::BiFail {
                index: require_u64(item, &section, "index")? as usize,
                duration: SimDuration::from_secs_f64(positive_f64(item, &section, "duration_s")?),
            }
        }
        "pfs_stall" => {
            check_keys(item, &section, &["kind", "at_s", "server", "bytes"])?;
            FaultKind::PfsStall {
                server: require_u64(item, &section, "server")? as usize,
                bytes: require_u64(item, &section, "bytes")?,
            }
        }
        other => {
            return Err(format!(
                "faults.events: unknown kind '{other}' (use 'node_crash', 'link_degrade', 'nic_drop', 'bi_fail', 'pfs_stall')"
            ))
        }
    };
    Ok(FaultEvent {
        at: SimDuration::from_secs_f64(at_s),
        kind,
    })
}

fn parse_trace(table: &Value) -> Result<TraceSpec, String> {
    check_keys(
        table,
        "trace",
        &[
            "jobs",
            "mean_interarrival_s",
            "max_cn",
            "max_bn",
            "mean_cn_time_s",
            "mean_bn_time_s",
            "max_phases",
            "pure_cluster_fraction",
            "policy",
            "spares",
            "sample_every_s",
        ],
    )?;
    let policy = match table.get("policy") {
        None => "dynamic".to_string(),
        Some(Value::String(s)) if matches!(s.as_str(), "static" | "dynamic" | "backfill") => {
            s.clone()
        }
        Some(Value::String(s)) => {
            return Err(format!(
                "trace.policy: unknown policy '{s}' (use 'static', 'dynamic', 'backfill')"
            ))
        }
        Some(_) => return Err("trace.policy: expected a string".to_string()),
    };
    let pure_cluster_fraction = opt_f64(table, "trace", "pure_cluster_fraction")?.unwrap_or(0.3);
    if !(0.0..=1.0).contains(&pure_cluster_fraction) {
        return Err("trace.pure_cluster_fraction: must be in 0..=1".to_string());
    }
    Ok(TraceSpec {
        jobs: range_u64(table, "trace", "jobs", 1, 100_000)?
            .ok_or_else(|| "trace: missing required key 'jobs'".to_string())? as u32,
        mean_interarrival_s: positive_f64(table, "trace", "mean_interarrival_s")?,
        max_cn: range_u64(table, "trace", "max_cn", 1, 1_048_576)?.unwrap_or(4) as u32,
        max_bn: range_u64(table, "trace", "max_bn", 0, 1_048_576)?.unwrap_or(8) as u32,
        mean_cn_time_s: positive_f64(table, "trace", "mean_cn_time_s")?,
        mean_bn_time_s: positive_f64(table, "trace", "mean_bn_time_s")?,
        max_phases: range_u64(table, "trace", "max_phases", 1, 64)?.unwrap_or(3) as u32,
        pure_cluster_fraction,
        policy,
        spares: range_u64(table, "trace", "spares", 0, 4096)?.unwrap_or(0) as u32,
        sample_every_s: match opt_f64(table, "trace", "sample_every_s")? {
            None => 60.0,
            Some(v) if v.is_finite() && v > 0.0 => v,
            Some(_) => return Err("trace.sample_every_s: must be finite and > 0".to_string()),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use deep_json::object;

    /// The daemon validates untrusted documents with
    /// [`Scenario::from_value`]; axes large enough that their cross
    /// product would be a multi-terabyte allocation must be rejected
    /// from cardinalities alone, before any point vector exists.
    #[test]
    fn oversized_sweep_is_rejected_before_materialization() {
        let values: Vec<Value> = (0..1_000_000)
            .map(|i| Value::Number(i as f64 + 1.0))
            .collect();
        let axis = |param: &str| {
            object([
                ("param", param.into()),
                ("values", Value::Array(values.clone())),
            ])
        };
        let doc = object([
            (
                "scenario",
                object([("name", "dos".into()), ("seed", 1u64.into())]),
            ),
            ("machine", object([("preset", "small".into())])),
            (
                "app",
                object([
                    ("skeleton", "resilience".into()),
                    ("work_s", 1000.0.into()),
                    ("mtbf_node_s", 100_000.0.into()),
                    ("checkpoint_s", 10.0.into()),
                    ("restart_s", 30.0.into()),
                ]),
            ),
            (
                "sweep",
                object([(
                    "axes",
                    Value::Array(vec![axis("work_s"), axis("mtbf_node_s")]),
                )]),
            ),
        ]);
        let err = Scenario::from_value(&doc).unwrap_err();
        assert_eq!(err, "sweep: too many points (cross product exceeds 4096)");
    }

    #[test]
    fn intervals_are_capped() {
        let intervals: Vec<Value> = (0..65).map(|i| Value::Number(i as f64 + 1.0)).collect();
        let doc = object([
            (
                "scenario",
                object([("name", "caps".into()), ("seed", 1u64.into())]),
            ),
            ("machine", object([("preset", "small".into())])),
            (
                "app",
                object([
                    ("skeleton", "resilience".into()),
                    ("work_s", 1000.0.into()),
                    ("mtbf_node_s", 100_000.0.into()),
                    ("checkpoint_s", 10.0.into()),
                    ("restart_s", 30.0.into()),
                    ("intervals", Value::Array(intervals)),
                ]),
            ),
        ]);
        let err = Scenario::from_value(&doc).unwrap_err();
        assert_eq!(err, "app.intervals: must have at most 64 entries");
    }
}
