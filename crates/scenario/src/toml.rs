//! Dependency-free TOML-subset parser and serializer.
//!
//! Parses the slice of TOML that scenario files need into a
//! [`deep_json::Value`] tree (insertion order preserved; canonical
//! digests come from `deep_json::digest`, which sorts keys):
//!
//! * `#` comments, blank lines
//! * `key = value` pairs with bare (`[A-Za-z0-9_-]+`) or basic
//!   ("quoted") keys
//! * `[table]` and `[table.sub]` headers, `[[array-of-tables]]`
//! * basic strings with `\" \\ \n \t \r \uXXXX` escapes
//! * integers (underscore separators allowed), floats, booleans
//! * arrays (may span lines, trailing comma allowed) and inline tables
//!
//! Deliberately out of scope (each rejected with a line-numbered
//! error): dates, literal `'...'` strings, multi-line strings, and
//! dotted keys on the left of `=`. Every error message is of the form
//! `line N: <what>` and is asserted verbatim by the scenario
//! conformance corpus in `tests/scenario_fixtures/`.

use deep_json::Value;

/// Parse a TOML-subset document into an object [`Value`].
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        src: input.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut root = Value::Object(Vec::new());
    // Paths of explicitly declared `[table]` headers, to reject
    // duplicates.
    let mut declared: Vec<String> = Vec::new();
    // Where `key = value` lines currently land.
    let mut cursor: Vec<String> = Vec::new();

    p.skip_trivia();
    while !p.eof() {
        if p.peek() == Some(b'[') {
            p.bump();
            let array_table = p.peek() == Some(b'[');
            if array_table {
                p.bump();
            }
            let path = p.parse_header_path()?;
            p.expect_byte(b']')?;
            if array_table {
                p.expect_byte(b']')?;
            }
            let joined = path.join(".");
            if array_table {
                let arr = descend(&mut root, &path[..path.len() - 1], p.line)?;
                let table = ensure_entry(arr, path.last().unwrap());
                match table {
                    Value::Array(items) if items.iter().all(|v| matches!(v, Value::Object(_))) => {
                        items.push(Value::Object(Vec::new()));
                    }
                    Value::Object(kv) if kv.is_empty() => {
                        *table = Value::Array(vec![Value::Object(Vec::new())]);
                    }
                    _ => {
                        return Err(format!(
                            "line {}: key '{}' is not an array of tables",
                            p.line, joined
                        ))
                    }
                }
                // A fresh element resets sub-table declarations: a
                // later `[x.sub]` targets the new element, not a
                // duplicate of the previous element's `sub`.
                let prefix = format!("{joined}.");
                declared.retain(|d| !d.starts_with(&prefix));
            } else {
                if declared.iter().any(|d| d == &joined) {
                    return Err(format!("line {}: duplicate table '{}'", p.line, joined));
                }
                let table = {
                    let parent = descend(&mut root, &path[..path.len() - 1], p.line)?;
                    ensure_entry(parent, path.last().unwrap())
                };
                if !matches!(table, Value::Object(_)) {
                    return Err(format!("line {}: key '{}' is not a table", p.line, joined));
                }
                declared.push(joined);
            }
            cursor = path;
        } else {
            let key = p.parse_key()?;
            p.skip_inline_ws();
            if p.peek() == Some(b'.') {
                return Err(format!("line {}: dotted keys are not supported", p.line));
            }
            p.expect_byte(b'=')?;
            p.skip_inline_ws();
            let value = p.parse_value()?;
            let table = descend(&mut root, &cursor, p.line)?;
            let Value::Object(kv) = table else {
                unreachable!("descend always lands on a table")
            };
            if kv.iter().any(|(k, _)| k == &key) {
                return Err(format!("line {}: duplicate key '{}'", p.line, key));
            }
            kv.push((key, value));
        }
        p.expect_eol()?;
        p.skip_trivia();
    }
    Ok(root)
}

/// Walk `path` from `root`, creating empty tables as needed. A path
/// segment that names an array of tables continues into its last
/// element (TOML semantics for `[[x]]` followed by `[x.y]`).
fn descend<'v>(root: &'v mut Value, path: &[String], line: usize) -> Result<&'v mut Value, String> {
    let mut node = root;
    for (i, seg) in path.iter().enumerate() {
        let child = ensure_entry(node, seg);
        node = match child {
            Value::Object(_) => child,
            Value::Array(items) if items.iter().all(|v| matches!(v, Value::Object(_))) => {
                match items.last_mut() {
                    Some(last) => last,
                    None => {
                        return Err(format!(
                            "line {}: key '{}' is not a table",
                            line,
                            path[..=i].join(".")
                        ))
                    }
                }
            }
            _ => {
                return Err(format!(
                    "line {}: key '{}' is not a table",
                    line,
                    path[..=i].join(".")
                ))
            }
        };
    }
    Ok(node)
}

/// Fetch `key` from an object value, inserting an empty table if
/// absent. `node` must be an object (guaranteed by `descend`).
fn ensure_entry<'v>(node: &'v mut Value, key: &str) -> &'v mut Value {
    let Value::Object(kv) = node else {
        unreachable!("ensure_entry caller guarantees an object")
    };
    if let Some(idx) = kv.iter().position(|(k, _)| k == key) {
        return &mut kv[idx].1;
    }
    kv.push((key.to_string(), Value::Object(Vec::new())));
    &mut kv.last_mut().unwrap().1
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Parser<'a> {
    fn eof(&self) -> bool {
        self.pos >= self.src.len()
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    /// Spaces and tabs only.
    fn skip_inline_ws(&mut self) {
        while matches!(self.peek(), Some(b' ') | Some(b'\t') | Some(b'\r')) {
            self.bump();
        }
    }

    /// Whitespace, newlines, and `#` comments — between statements and
    /// inside brackets.
    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b' ') | Some(b'\t') | Some(b'\r') | Some(b'\n') => {
                    self.bump();
                }
                Some(b'#') => {
                    while !matches!(self.peek(), None | Some(b'\n')) {
                        self.bump();
                    }
                }
                _ => return,
            }
        }
    }

    fn expect_byte(&mut self, want: u8) -> Result<(), String> {
        self.skip_inline_ws();
        if self.peek() == Some(want) {
            self.bump();
            Ok(())
        } else {
            Err(format!("line {}: expected '{}'", self.line, want as char))
        }
    }

    /// After a statement: optional inline whitespace and comment, then
    /// newline or end of input.
    fn expect_eol(&mut self) -> Result<(), String> {
        self.skip_inline_ws();
        if self.peek() == Some(b'#') {
            while !matches!(self.peek(), None | Some(b'\n')) {
                self.bump();
            }
        }
        match self.peek() {
            None => Ok(()),
            Some(b'\n') => {
                self.bump();
                Ok(())
            }
            _ => Err(format!("line {}: expected end of line", self.line)),
        }
    }

    fn parse_key(&mut self) -> Result<String, String> {
        self.skip_inline_ws();
        match self.peek() {
            Some(b'"') => self.parse_basic_string(),
            Some(b'\'') => Err(format!(
                "line {}: literal ('-quoted) strings are not supported",
                self.line
            )),
            _ => {
                let start = self.pos;
                while matches!(self.peek(),
                    Some(b) if b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
                {
                    self.bump();
                }
                if self.pos == start {
                    return Err(format!("line {}: expected a key", self.line));
                }
                Ok(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
            }
        }
    }

    /// Dotted path inside `[...]` headers.
    fn parse_header_path(&mut self) -> Result<Vec<String>, String> {
        let mut path = vec![self.parse_key()?];
        loop {
            self.skip_inline_ws();
            if self.peek() == Some(b'.') {
                self.bump();
                path.push(self.parse_key()?);
            } else {
                return Ok(path);
            }
        }
    }

    fn parse_basic_string(&mut self) -> Result<String, String> {
        let start_line = self.line;
        self.bump(); // opening quote
        let mut out = String::new();
        loop {
            match self.bump() {
                None | Some(b'\n') => {
                    return Err(format!("line {start_line}: unterminated string"))
                }
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .bump()
                                .and_then(|b| (b as char).to_digit(16))
                                .ok_or_else(|| format!("line {}: invalid \\u escape", self.line))?;
                            code = code * 16 + d;
                        }
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| format!("line {}: invalid \\u escape", self.line))?,
                        );
                    }
                    _ => return Err(format!("line {}: unknown string escape", self.line)),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-assemble a UTF-8 sequence.
                    let start = self.pos - 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    for _ in 1..len {
                        self.bump();
                    }
                    match std::str::from_utf8(&self.src[start..self.pos]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => {
                            return Err(format!("line {}: invalid UTF-8 in string", self.line))
                        }
                    }
                }
            }
        }
    }

    fn parse_value(&mut self) -> Result<Value, String> {
        self.skip_inline_ws();
        match self.peek() {
            None => Err(format!("line {}: expected a value", self.line)),
            Some(b'"') => Ok(Value::String(self.parse_basic_string()?)),
            Some(b'\'') => Err(format!(
                "line {}: literal ('-quoted) strings are not supported",
                self.line
            )),
            Some(b'[') => {
                self.bump();
                let mut items = Vec::new();
                loop {
                    self.skip_trivia();
                    if self.peek() == Some(b']') {
                        self.bump();
                        return Ok(Value::Array(items));
                    }
                    items.push(self.parse_value()?);
                    self.skip_trivia();
                    match self.peek() {
                        Some(b',') => {
                            self.bump();
                        }
                        Some(b']') => {
                            self.bump();
                            return Ok(Value::Array(items));
                        }
                        _ => {
                            return Err(format!("line {}: expected ',' or ']' in array", self.line))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.bump();
                let mut kv: Vec<(String, Value)> = Vec::new();
                loop {
                    self.skip_trivia();
                    if self.peek() == Some(b'}') {
                        self.bump();
                        return Ok(Value::Object(kv));
                    }
                    let key = self.parse_key()?;
                    self.expect_byte(b'=')?;
                    self.skip_inline_ws();
                    let value = self.parse_value()?;
                    if kv.iter().any(|(k, _)| k == &key) {
                        return Err(format!("line {}: duplicate key '{}'", self.line, key));
                    }
                    kv.push((key, value));
                    self.skip_trivia();
                    match self.peek() {
                        Some(b',') => {
                            self.bump();
                        }
                        Some(b'}') => {
                            self.bump();
                            return Ok(Value::Object(kv));
                        }
                        _ => {
                            return Err(format!(
                                "line {}: expected ',' or '}}' in inline table",
                                self.line
                            ))
                        }
                    }
                }
            }
            _ => self.parse_bare(),
        }
    }

    /// Booleans and numbers — anything else is an error.
    fn parse_bare(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while matches!(self.peek(),
            Some(b) if !matches!(b, b' ' | b'\t' | b'\r' | b'\n' | b',' | b']' | b'}' | b'#'))
        {
            self.bump();
        }
        let token = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        if token.is_empty() {
            return Err(format!("line {}: expected a value", self.line));
        }
        match token.as_str() {
            "true" => return Ok(Value::Bool(true)),
            "false" => return Ok(Value::Bool(false)),
            _ => {}
        }
        let digits: String = token.chars().filter(|&c| c != '_').collect();
        if let Ok(i) = digits.parse::<i64>() {
            return Ok(Value::Number(i as f64));
        }
        // A digit run beyond i64 range (e.g. "10000000000000000000",
        // the serializer's rendering of 1e19) is a float: `to_toml`
        // prints integral f64s without '.' or exponent, so the parser
        // must take them back for the round-trip fixed point.
        let body = digits.strip_prefix(['+', '-']).unwrap_or(&digits);
        let bare_digits = !body.is_empty() && body.bytes().all(|b| b.is_ascii_digit());
        if bare_digits
            || (digits.contains(['.', 'e', 'E'])
                && !digits.contains("nan")
                && !digits.contains("inf"))
        {
            if let Ok(f) = digits.parse::<f64>() {
                if f.is_finite() {
                    return Ok(Value::Number(f));
                }
            }
        }
        Err(format!("line {}: invalid value '{}'", self.line, token))
    }
}

/// Serialize an object [`Value`] back to the TOML subset understood by
/// [`parse`]. `parse(to_toml(v)?) == v` for every `v` that `parse` can
/// produce (the round-trip fixed point asserted by the proptest
/// suite).
pub fn to_toml(doc: &Value) -> Result<String, String> {
    let Value::Object(kv) = doc else {
        return Err("top-level value must be a table".to_string());
    };
    let mut out = String::new();
    write_table(&mut out, &mut Vec::new(), kv)?;
    Ok(out)
}

fn is_table(v: &Value) -> bool {
    matches!(v, Value::Object(_))
}

/// Non-empty arrays whose elements are all objects serialize as
/// `[[path]]` sections; everything else is inline.
fn is_array_of_tables(v: &Value) -> bool {
    matches!(v, Value::Array(items)
        if !items.is_empty() && items.iter().all(|i| matches!(i, Value::Object(_))))
}

fn write_table(
    out: &mut String,
    path: &mut Vec<String>,
    entries: &[(String, Value)],
) -> Result<(), String> {
    for (k, v) in entries {
        if !is_table(v) && !is_array_of_tables(v) {
            out.push_str(&format!("{} = {}\n", fmt_key(k), fmt_inline(v)?));
        }
    }
    for (k, v) in entries {
        if let Value::Object(sub) = v {
            path.push(k.clone());
            out.push_str(&format!("\n[{}]\n", fmt_path(path)));
            write_table(out, path, sub)?;
            path.pop();
        } else if is_array_of_tables(v) {
            let Value::Array(items) = v else {
                unreachable!()
            };
            path.push(k.clone());
            for item in items {
                let Value::Object(sub) = item else {
                    unreachable!()
                };
                out.push_str(&format!("\n[[{}]]\n", fmt_path(path)));
                write_table(out, path, sub)?;
            }
            path.pop();
        }
    }
    Ok(())
}

fn fmt_path(path: &[String]) -> String {
    path.iter()
        .map(|s| fmt_key(s))
        .collect::<Vec<_>>()
        .join(".")
}

fn fmt_key(k: &str) -> String {
    let bare = !k.is_empty()
        && k.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-');
    if bare {
        k.to_string()
    } else {
        fmt_string(k)
    }
}

fn fmt_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn fmt_inline(v: &Value) -> Result<String, String> {
    match v {
        Value::Null => Err("null is not representable in TOML".to_string()),
        Value::Bool(b) => Ok(b.to_string()),
        Value::Number(n) => {
            if !n.is_finite() {
                return Err("non-finite numbers are not representable in TOML".to_string());
            }
            // Match deep_json's number rendering: integer-valued floats
            // inside the exact-i64 range print without a fraction (a
            // TOML integer), everything else uses Rust's shortest
            // round-trip decimal form. Both reparse to the same f64.
            if n.fract() == 0.0 && n.abs() < 9_007_199_254_740_992.0 {
                Ok(format!("{}", *n as i64))
            } else {
                Ok(format!("{n}"))
            }
        }
        Value::String(s) => Ok(fmt_string(s)),
        Value::Array(items) => {
            let parts: Result<Vec<_>, _> = items.iter().map(fmt_inline).collect();
            Ok(format!("[{}]", parts?.join(", ")))
        }
        Value::Object(kv) => {
            let parts: Result<Vec<_>, _> = kv
                .iter()
                .map(|(k, v)| Ok(format!("{} = {}", fmt_key(k), fmt_inline(v)?)))
                .collect::<Result<Vec<_>, String>>();
            Ok(format!("{{ {} }}", parts?.join(", ")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deep_json::object;

    #[test]
    fn parses_scalars_tables_and_arrays() {
        let doc = parse(
            "# header comment\n\
             title = \"hello\"\n\
             count = 3\n\
             ratio = 0.5\n\
             on = true\n\
             \n\
             [nested.sub]\n\
             xs = [1, 2, 3]\n\
             inline = { a = 1, b = \"two\" }\n",
        )
        .unwrap();
        assert_eq!(doc["title"].as_str(), Some("hello"));
        assert_eq!(doc["count"].as_f64(), Some(3.0));
        assert_eq!(doc["ratio"].as_f64(), Some(0.5));
        assert_eq!(doc["on"].as_bool(), Some(true));
        assert_eq!(doc["nested"]["sub"]["xs"][2].as_f64(), Some(3.0));
        assert_eq!(doc["nested"]["sub"]["inline"]["b"].as_str(), Some("two"));
    }

    #[test]
    fn arrays_of_tables_accumulate() {
        let doc =
            parse("[[sweep.axes]]\nparam = \"a\"\n\n[[sweep.axes]]\nparam = \"b\"\n").unwrap();
        let axes = doc["sweep"]["axes"].as_array().unwrap();
        assert_eq!(axes.len(), 2);
        assert_eq!(axes[1]["param"].as_str(), Some("b"));
    }

    #[test]
    fn subtables_repeat_per_array_of_tables_element() {
        let doc = parse(
            "[[run]]\nid = 1\n[run.limits]\ncpus = 2\n\n\
             [[run]]\nid = 2\n[run.limits]\ncpus = 4\n",
        )
        .unwrap();
        let runs = doc["run"].as_array().unwrap();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0]["limits"]["cpus"].as_f64(), Some(2.0));
        assert_eq!(runs[1]["limits"]["cpus"].as_f64(), Some(4.0));
        // But within one element a repeated header is still rejected.
        let err = parse("[[run]]\n[run.limits]\n[run.limits]\n").unwrap_err();
        assert_eq!(err, "line 3: duplicate table 'run.limits'");
    }

    #[test]
    fn multiline_arrays_and_underscored_ints() {
        let doc = parse("xs = [\n  1_000,\n  2_000, # comment\n]\n").unwrap();
        assert_eq!(doc["xs"][1].as_f64(), Some(2000.0));
    }

    #[test]
    fn exact_error_messages() {
        let cases = [
            ("a = 1\na = 2\n", "line 2: duplicate key 'a'"),
            ("[t]\n[t]\n", "line 2: duplicate table 't'"),
            ("a = \n", "line 1: expected a value"),
            ("a 1\n", "line 1: expected '='"),
            ("a = 1 2\n", "line 1: expected end of line"),
            ("a = 2020-01-01\n", "line 1: invalid value '2020-01-01'"),
            ("a = \"oops\n", "line 1: unterminated string"),
            (
                "a = 'literal'\n",
                "line 1: literal ('-quoted) strings are not supported",
            ),
            ("a.b = 1\n", "line 1: dotted keys are not supported"),
            ("a = 1\n[a]\n", "line 2: key 'a' is not a table"),
            ("a = [1, 2\n", "line 2: expected ',' or ']' in array"),
        ];
        for (src, want) in cases {
            assert_eq!(parse(src).unwrap_err(), want, "for input {src:?}");
        }
    }

    #[test]
    fn round_trips_through_serializer() {
        let doc = object([
            ("name", "weird \"key\"".into()),
            ("n", 1e-7.into()),
            ("big", 1.0e18.into()),
            (
                "xs",
                Value::Array(vec![1.0.into(), true.into(), "s".into()]),
            ),
            (
                "table",
                object([
                    ("inner", 2.5.into()),
                    (
                        "rows",
                        Value::Array(vec![
                            object([("a", 1.0.into())]),
                            object([("a", 2.0.into())]),
                        ]),
                    ),
                ]),
            ),
        ]);
        let text = to_toml(&doc).unwrap();
        let back = parse(&text).unwrap();
        assert_eq!(back, doc, "serialized form:\n{text}");
    }

    #[test]
    fn over_i64_integral_floats_round_trip() {
        // The serializer prints these as bare digit runs (Rust's f64
        // Display never uses exponent form), which overflow i64 — the
        // parser must still accept them as floats.
        let doc = object([
            ("big", 1.0e19.into()),
            ("neg", (-2.5e20).into()),
            ("huge", 1.5e300.into()),
        ]);
        let text = to_toml(&doc).unwrap();
        let back = parse(&text).unwrap();
        assert_eq!(back, doc, "serialized form:\n{text}");
        assert_eq!(
            parse("x = 10000000000000000000\n").unwrap()["x"].as_f64(),
            Some(1.0e19)
        );
        // Dates and other hyphenated tokens are still rejected.
        assert_eq!(
            parse("a = 2020-01-01\n").unwrap_err(),
            "line 1: invalid value '2020-01-01'"
        );
    }
}
