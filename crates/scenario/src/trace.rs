//! Trace-driven `deep_resmgr` replay: a scenario's `[trace]` block
//! describes a seeded synthetic job trace (arrival process, mixed
//! cluster/booster demand) which is replayed through the resource
//! manager together with the scenario's fault plan, reporting
//! fleet-scale utilisation and makespan plus a sampled utilisation
//! time series.
//!
//! Everything here is virtual-time simulation: same seed + same trace
//! block → bit-identical series regardless of wall clock or
//! `RAYON_NUM_THREADS` (the replay itself is single-threaded; sweeps
//! parallelise *across* scenario points, never inside a replay).

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use deep_apps::MixParams;
use deep_faults::plan::{Domain, FaultKind, FaultPlan};
use deep_json::{object, Value};
use deep_resmgr::{Policy, ResMgr, WorkloadReport};
use deep_simkit::{join_all, SimDuration, SimTime};

use crate::schema::TraceSpec;

/// One point of the sampled utilisation series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UtilSample {
    /// Sample time, seconds.
    pub t_s: f64,
    /// Cluster nodes busy.
    pub cn_busy: u32,
    /// Booster nodes allocated.
    pub bn_allocated: u32,
    /// Booster nodes actively offloading.
    pub bn_active: u32,
    /// Cluster capacity at sample time (net of failures).
    pub cn_total: u32,
    /// Booster capacity at sample time (net of failures).
    pub bn_total: u32,
}

/// Replay outcome: the final workload report plus the time series.
#[derive(Debug, Clone)]
pub struct TraceResult {
    /// Aggregate report from the resource manager.
    pub report: WorkloadReport,
    /// Utilisation samples at the configured cadence, starting at t=0.
    pub series: Vec<UtilSample>,
    /// Booster crash faults injected from the plan.
    pub bn_faults_injected: u32,
    /// Cluster crash faults injected from the plan.
    pub cn_faults_injected: u32,
}

/// Replay `spec` against a `cn_total`/`bn_total` machine, injecting
/// the `NodeCrash` events of `plan` (other fault kinds are
/// fabric/storage-level and do not reach the resource manager).
pub fn replay(
    seed: u64,
    cn_total: u32,
    bn_total: u32,
    spec: &TraceSpec,
    plan: &FaultPlan,
) -> TraceResult {
    let params = MixParams {
        n_jobs: spec.jobs,
        mean_interarrival: SimDuration::from_secs_f64(spec.mean_interarrival_s),
        max_cn: spec.max_cn.min(cn_total.max(1)),
        max_bn: spec.max_bn.min(bn_total),
        mean_cn_time: SimDuration::from_secs_f64(spec.mean_cn_time_s),
        mean_bn_time: SimDuration::from_secs_f64(spec.mean_bn_time_s),
        max_phases: spec.max_phases,
        pure_cluster_fraction: spec.pure_cluster_fraction,
    };
    let jobs = deep_apps::generate_mix(seed, params);
    let policy = match spec.policy.as_str() {
        "static" => Policy::StaticFcfs,
        "backfill" => Policy::DynamicBackfill,
        _ => Policy::DynamicFcfs,
    };

    let mut sim = deep_simkit::Simulation::new(seed);
    let ctx = sim.handle();
    let mgr = ResMgr::with_spares(&ctx, cn_total, bn_total, spec.spares, policy);
    let done = Rc::new(Cell::new(false));
    let samples: Rc<RefCell<Vec<UtilSample>>> = Rc::new(RefCell::new(Vec::new()));
    let bn_injected = Rc::new(Cell::new(0u32));
    let cn_injected = Rc::new(Cell::new(0u32));

    // Utilisation sampler: snapshot the gauges every period until the
    // driver reports completion. Spawned first so that at a shared
    // timestamp the sample sees the state *before* same-instant
    // arrivals — a fixed, documented tie-break.
    {
        let mgr = mgr.clone();
        let ctx2 = ctx.clone();
        let done = Rc::clone(&done);
        let samples = Rc::clone(&samples);
        let every = SimDuration::from_secs_f64(spec.sample_every_s);
        sim.spawn("trace-sampler", async move {
            loop {
                if done.get() {
                    break;
                }
                let g = mgr.gauges();
                samples.borrow_mut().push(UtilSample {
                    t_s: (ctx2.now() - SimTime::ZERO).as_secs_f64(),
                    cn_busy: g.cn_busy,
                    bn_allocated: g.bn_allocated,
                    bn_active: g.bn_active,
                    cn_total: g.cn_total,
                    bn_total: g.bn_total,
                });
                ctx2.sleep(every).await;
            }
        });
    }

    // Fault injector: walk the plan's node-crash events in order.
    {
        let mgr = mgr.clone();
        let ctx2 = ctx.clone();
        let done = Rc::clone(&done);
        let bn_injected = Rc::clone(&bn_injected);
        let cn_injected = Rc::clone(&cn_injected);
        let events: Vec<_> = plan
            .events()
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::NodeCrash { .. }))
            .cloned()
            .collect();
        sim.spawn("trace-injector", async move {
            for ev in events {
                let at = SimTime::ZERO + ev.at;
                if at > ctx2.now() {
                    ctx2.sleep_until(at).await;
                }
                // Stop injecting once the workload has drained: the
                // machine is idle and later crashes would only stretch
                // the reported makespan.
                if done.get() {
                    break;
                }
                if let FaultKind::NodeCrash { domain, .. } = ev.kind {
                    match domain {
                        Domain::Booster => {
                            mgr.inject_booster_failure(1);
                            bn_injected.set(bn_injected.get() + 1);
                        }
                        Domain::Cluster => {
                            mgr.inject_cluster_failure(1);
                            cn_injected.set(cn_injected.get() + 1);
                        }
                    }
                }
            }
        });
    }

    // Workload driver: replay arrivals and wait for every job.
    {
        let mgr = mgr.clone();
        let ctx2 = ctx.clone();
        let done = Rc::clone(&done);
        sim.spawn("trace-driver", async move {
            let mut handles = Vec::new();
            for (arrive, spec) in jobs {
                let at = SimTime::ZERO + arrive;
                if at > ctx2.now() {
                    ctx2.sleep_until(at).await;
                }
                handles.push(mgr.submit(spec));
            }
            join_all(handles).await;
            done.set(true);
        });
    }

    sim.run().assert_completed();
    let report = mgr.report();
    let series = samples.borrow().clone();
    TraceResult {
        report,
        series,
        bn_faults_injected: bn_injected.get(),
        cn_faults_injected: cn_injected.get(),
    }
}

impl TraceResult {
    /// Render as a JSON value with a stable member layout (the member
    /// order is part of the byte-identity contract).
    pub fn to_json(&self) -> Value {
        let r = &self.report;
        let series: Vec<Value> = self
            .series
            .iter()
            .map(|s| {
                object([
                    ("t_s", s.t_s.into()),
                    ("cn_busy", u64::from(s.cn_busy).into()),
                    ("bn_allocated", u64::from(s.bn_allocated).into()),
                    ("bn_active", u64::from(s.bn_active).into()),
                    ("cn_total", u64::from(s.cn_total).into()),
                    ("bn_total", u64::from(s.bn_total).into()),
                ])
            })
            .collect();
        object([
            ("jobs", (r.jobs.len() as u64).into()),
            ("jobs_aborted", u64::from(r.jobs_aborted).into()),
            ("makespan_s", r.makespan.as_secs_f64().into()),
            ("cn_utilization", r.cn_utilization.into()),
            ("bn_utilization", r.bn_utilization.into()),
            ("bn_allocated", r.bn_allocated.into()),
            ("bn_failures", u64::from(r.bn_failures).into()),
            ("bn_replaced", u64::from(r.bn_replaced).into()),
            ("requeues", u64::from(r.requeues).into()),
            (
                "bn_faults_injected",
                u64::from(self.bn_faults_injected).into(),
            ),
            (
                "cn_faults_injected",
                u64::from(self.cn_faults_injected).into(),
            ),
            ("samples", Value::Array(series)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Scenario;

    fn trace_scenario(seed: u64) -> Scenario {
        Scenario::from_toml_str(&format!(
            "[scenario]\nname = \"trace-test\"\nseed = {seed}\n\n\
             [machine]\npreset = \"small\"\n\n\
             [trace]\njobs = 16\nmean_interarrival_s = 15.0\n\
             mean_cn_time_s = 40.0\nmean_bn_time_s = 30.0\n\
             sample_every_s = 25.0\n\n\
             [faults.poisson]\ndomain = \"booster\"\nmtbf_node_s = 400.0\nhorizon_s = 600.0\n"
        ))
        .unwrap()
    }

    #[test]
    fn replay_is_deterministic_per_seed() {
        let sc = trace_scenario(11);
        let (cn, bn) = {
            let cfg = sc.machine.config();
            (cfg.n_cluster, cfg.n_booster())
        };
        let plan = sc.fault_plan();
        let trace = sc.trace.as_ref().unwrap();
        let a = replay(sc.seed, cn, bn, trace, &plan);
        let b = replay(sc.seed, cn, bn, trace, &plan);
        assert_eq!(a.to_json().to_json(), b.to_json().to_json());
        assert!(!a.series.is_empty());
        assert_eq!(a.report.jobs.len(), 16);
    }

    #[test]
    fn different_seeds_differ() {
        let sc1 = trace_scenario(11);
        let sc2 = trace_scenario(12);
        let cfg = sc1.machine.config();
        let (cn, bn) = (cfg.n_cluster, cfg.n_booster());
        let a = replay(
            sc1.seed,
            cn,
            bn,
            sc1.trace.as_ref().unwrap(),
            &sc1.fault_plan(),
        );
        let b = replay(
            sc2.seed,
            cn,
            bn,
            sc2.trace.as_ref().unwrap(),
            &sc2.fault_plan(),
        );
        assert_ne!(a.to_json().to_json(), b.to_json().to_json());
    }
}
