//! # deep-bench — shared measurement helpers for the figure-regeneration
//! binaries (`src/bin/f*.rs`) and the criterion benches.
//!
//! Each binary regenerates one figure / quantitative claim of the paper
//! (see DESIGN.md's experiment index) and prints a Markdown table plus a
//! short interpretation. Nothing here depends on wall-clock time: every
//! number is virtual time out of the deterministic simulator, so reruns
//! reproduce the tables bit-for-bit.

#![forbid(unsafe_code)]

pub mod des_scaling;
pub mod experiments;
pub mod sweep;

use std::cell::Cell;
use std::rc::Rc;

use deep_fabric::{pcie, EndpointOverhead, ExtollFabric, IbFabric, Network, NodeId, PcieBus};
use deep_psmpi::{launch_world, EpId, IbWire, MpiCtx, MpiParams, Universe};
use deep_simkit::{Sim, SimDuration, Simulation};

/// One uncontended transfer over a freshly built fabric; elapsed seconds.
pub fn probe_fabric(fabric: &str, bytes: u64) -> f64 {
    let mut sim = Simulation::new(1);
    let ctx = sim.handle();
    match fabric {
        "extoll" => {
            let f = Rc::new(ExtollFabric::new(&ctx, (4, 4, 4)));
            run_probe(&mut sim, async move {
                f.send_auto(NodeId(0), NodeId(1), bytes)
                    .await
                    .unwrap()
                    .elapsed
                    .as_secs_f64()
            })
        }
        "extoll-velo" => {
            let f = Rc::new(ExtollFabric::new(&ctx, (4, 4, 4)));
            run_probe(&mut sim, async move {
                f.velo_send(NodeId(0), NodeId(1), bytes)
                    .await
                    .unwrap()
                    .elapsed
                    .as_secs_f64()
            })
        }
        "extoll-rma" => {
            let f = Rc::new(ExtollFabric::new(&ctx, (4, 4, 4)));
            run_probe(&mut sim, async move {
                f.rma_put(NodeId(0), NodeId(1), bytes)
                    .await
                    .unwrap()
                    .elapsed
                    .as_secs_f64()
            })
        }
        "ib" => {
            let f = Rc::new(IbFabric::new(&ctx, 16));
            run_probe(&mut sim, async move {
                f.send(NodeId(0), NodeId(8), bytes)
                    .await
                    .unwrap()
                    .elapsed
                    .as_secs_f64()
            })
        }
        "pcie-dma" => {
            // Bare DMA (doorbell-only software path).
            let net = pcie_net(&ctx);
            run_probe(&mut sim, async move {
                net.transfer(
                    PcieBus::host(),
                    PcieBus::device(0),
                    bytes,
                    EndpointOverhead {
                        send: SimDuration::nanos(300),
                        recv: SimDuration::nanos(100),
                    },
                )
                .await
                .unwrap()
                .elapsed
                .as_secs_f64()
            })
        }
        "pcie-driver" => {
            // Full driver path (cudaMemcpy-era overhead).
            let net = pcie_net(&ctx);
            run_probe(&mut sim, async move {
                net.transfer(
                    PcieBus::host(),
                    PcieBus::device(0),
                    bytes,
                    EndpointOverhead {
                        send: SimDuration::micros(5),
                        recv: SimDuration::micros(1),
                    },
                )
                .await
                .unwrap()
                .elapsed
                .as_secs_f64()
            })
        }
        other => panic!("unknown fabric {other}"),
    }
}

fn pcie_net(ctx: &Sim) -> Rc<Network> {
    Rc::new(Network::new(
        ctx,
        Box::new(PcieBus::new(
            1,
            pcie::root_complex_spec(),
            pcie::pcie2_x16_spec(),
        )),
        4096,
        1,
    ))
}

fn run_probe(sim: &mut Simulation, fut: impl std::future::Future<Output = f64> + 'static) -> f64 {
    let h = sim.spawn("probe", fut);
    sim.run().assert_completed();
    h.try_result().expect("probe finished")
}

/// Run an MPI program on `n` ranks over a real simulated IB fabric and
/// return rank 0's `f64` result together with the final virtual time (s).
pub fn run_ib_ranks(
    seed: u64,
    n: u32,
    f: impl Fn(MpiCtx) -> deep_psmpi::LocalBoxFuture<'static, f64> + 'static,
) -> (f64, f64) {
    let mut sim = Simulation::new(seed);
    let ctx = sim.handle();
    let ib = Rc::new(IbFabric::new(&ctx, n));
    let uni = Universe::new(
        &ctx,
        Rc::new(IbWire::new(ib)),
        n as usize,
        MpiParams::default(),
    );
    let out = Rc::new(Cell::new(f64::NAN));
    let out2 = out.clone();
    let f = Rc::new(f);
    launch_world(&uni, "bench", (0..n).map(EpId).collect(), move |m| {
        let out = out2.clone();
        let f = f.clone();
        Box::pin(async move {
            let rank = m.rank();
            let v = f(m).await;
            if rank == 0 {
                out.set(v);
            }
        })
    });
    sim.run().assert_completed();
    (out.get(), sim.now().as_secs_f64())
}

/// Entry point for the thin experiment binaries: run the named
/// experiment and print its buffer. Panics (→ non-zero exit) on an
/// unknown name, which the registry test makes unreachable.
pub fn run_experiment_main(name: &str) {
    let out = experiments::run_to_string(name)
        .unwrap_or_else(|| panic!("experiment {name} is not in the registry"));
    print!("{out}");
}

/// Pretty size label.
pub fn size_label(bytes: u64) -> String {
    if bytes < 1 << 10 {
        format!("{bytes} B")
    } else if bytes < 1 << 20 {
        format!("{} KiB", bytes >> 10)
    } else {
        format!("{} MiB", bytes >> 20)
    }
}
