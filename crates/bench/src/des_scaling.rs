//! Full-DES weak-scaling skeleton at O(100k) ranks.
//!
//! This is the engine behind the F09 tail validation: the same two
//! communication skeletons `f09_scalability` models analytically —
//! **SpMV** (ring halo + small allreduce) and **complex** (SpMV plus a
//! pairwise all-to-all) — actually simulated over a full-size IB fat
//! tree, at rank counts up to and beyond 262 144. Three mechanisms make
//! that feasible where a naive one-process-per-rank, one-event-per-
//! message simulation is not:
//!
//! * **One process per fabric segment** (leaf switch), spawned into its
//!   own event-loop partition (`Sim::spawn_in`): 2¹⁸ ranks become
//!   ~14.5 k processes whose far-horizon compute timers live in private
//!   per-partition heaps instead of one shared `BinaryHeap`.
//! * **SoA per-rank state**: rank readiness, inbox arrival and send
//!   completion times are three flat `Vec<SimTime>`s shared by every
//!   segment — no per-rank objects, no per-rank futures.
//! * **Batched transfers** (`Network::schedule_batch`): each phase of
//!   an iteration (halo direction, collective round) is one batch over
//!   the contention engine, one kernel event — per-message `earliest`
//!   times carry each rank's skew through the phases, so virtual time
//!   only needs to advance once per iteration.
//!
//! The protocol is barrier-sequenced: every segment schedules its own
//! ranks' messages into the fabric, a zero-time barrier separates
//! "everyone has scheduled" from "everyone reads the arrivals", and the
//! driver process runs the global collective rounds before sleeping the
//! whole machine to the iteration's end. All cross-segment data flows
//! through the SoA arrays in rank order, and batches hit the link
//! horizons in segment order — a pure function of the configuration,
//! so the run (and its summary digest) is bit-identical everywhere.

use std::cell::RefCell;
use std::rc::Rc;

use deep_fabric::{BatchMsg, IbFabric, NodeId};
use deep_simkit::{Barrier, Sim, SimDuration, SimTime, Simulation};

/// Fixed per-rank compute per iteration under weak scaling (shared with
/// the analytic model in `f09_scalability`).
pub const COMPUTE: SimDuration = SimDuration::micros(2_000);
/// Halo payload per ring neighbour per iteration.
pub const HALO_BYTES: u64 = 64 << 10;
/// Per-pair block of the complex class's all-to-all phase.
pub const A2A_BLOCK: u64 = 4 << 10;
/// Hosts per leaf switch — one simulated process (and one event-loop
/// partition) per leaf.
const NODES_PER_LEAF: u32 = 18;

/// Configuration of one skeleton run.
#[derive(Debug, Clone, Copy)]
pub struct DesScalingConfig {
    /// Rank count; must be a power of two >= 2 (the collective phases
    /// use XOR-partner schedules).
    pub ranks: u32,
    /// Iterations to simulate (>= 1).
    pub iters: u32,
    /// Add the complex class's pairwise all-to-all phase.
    pub complex: bool,
    /// Master seed (the skeleton draws no randomness, but the seed is
    /// part of the simulation identity).
    pub seed: u64,
}

/// Summary of one skeleton run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesScalingResult {
    pub ranks: u32,
    pub iters: u32,
    /// Fabric segments (= leaf switches = extra event-loop partitions).
    pub segments: u32,
    /// Simulated seconds per iteration.
    pub iter_s: f64,
    /// Total simulated seconds.
    pub sim_s: f64,
    /// Logical point-to-point messages carried by the fabric.
    pub messages: u64,
    /// Kernel events (process polls) the partitioned loop executed.
    pub kernel_events: u64,
    /// FNV-1a 64 over the run's virtual-time trajectory (per-iteration
    /// end instants + message count) — the cross-thread golden.
    pub digest: u64,
}

/// Shared SoA state: one slot per rank in every array. Segments write
/// only their own ranks' `ready`/`send_done` slots and max-merge into
/// destinations' `inbox` slots; the barriers sequence the phases.
struct Shared {
    /// When each rank is ready to start its next communication step.
    ready: Vec<SimTime>,
    /// Latest incoming last-byte arrival (+ recv overhead) per rank in
    /// the current phase; reset to ZERO after each merge.
    inbox: Vec<SimTime>,
    /// Sender-side completion per rank in the current phase.
    send_done: Vec<SimTime>,
    /// Batch scratch, reused by every scheduling site.
    msgs: Vec<BatchMsg>,
    /// Completion scratch for [`deep_fabric::Network::schedule_batch`].
    done: Vec<SimTime>,
    /// Logical messages simulated.
    messages: u64,
    /// Running FNV-1a 64 digest of the virtual-time trajectory.
    digest: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn fnv_fold(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// One fabric segment: owns ranks `lo..hi`, runs the compute sleep and
/// schedules the two halo directions for its ranks each iteration.
// A coroutine entry point, not an API: its "arguments" are the spawn
// environment, and bundling them into a struct would only move the list.
#[allow(clippy::too_many_arguments)]
async fn segment(
    ctx: Sim,
    ib: Rc<IbFabric>,
    shared: Rc<RefCell<Shared>>,
    barrier: Barrier,
    lo: usize,
    hi: usize,
    ranks: usize,
    iters: u32,
) {
    let send_ov = ib.params().send_overhead;
    let recv_ov = ib.params().recv_overhead;
    for _ in 0..iters {
        ctx.sleep(COMPUTE).await;
        {
            // deep-lint: allow(partition-safety) — every access to
            // `shared` sits between barrier.wait() pairs: the phases
            // are globally sequenced, so no two partitions touch it at
            // the same (at,seq).
            let sh = &mut *shared.borrow_mut();
            let now = ctx.now();
            for r in lo..hi {
                sh.ready[r] = now;
            }
        }
        // Two halo directions: send right, then send left (the ring
        // sendrecv pair of the SpMV skeleton).
        for dir in [1usize, ranks - 1] {
            {
                let sh = &mut *shared.borrow_mut();
                sh.msgs.clear();
                for r in lo..hi {
                    sh.msgs.push(BatchMsg {
                        src: NodeId(r as u32),
                        dst: NodeId(((r + dir) % ranks) as u32),
                        bytes: HALO_BYTES,
                        earliest: sh.ready[r] + send_ov,
                    });
                }
                let (msgs, done) = (&sh.msgs, &mut sh.done);
                ib.network().schedule_batch(msgs, done);
                for (i, r) in (lo..hi).enumerate() {
                    sh.send_done[r] = sh.done[i];
                    let dst = (r + dir) % ranks;
                    let arrival = sh.done[i] + recv_ov;
                    if arrival > sh.inbox[dst] {
                        sh.inbox[dst] = arrival;
                    }
                }
                sh.messages += (hi - lo) as u64;
            }
            // Everyone has scheduled; arrivals are final.
            barrier.wait().await;
            {
                let sh = &mut *shared.borrow_mut();
                for r in lo..hi {
                    sh.ready[r] = sh.send_done[r].max(sh.inbox[r]);
                    sh.inbox[r] = SimTime::ZERO;
                }
            }
            // Everyone has merged; next phase may schedule.
            barrier.wait().await;
        }
        // The driver runs the collective rounds and sleeps the machine
        // to the iteration end; this wait returns at that instant.
        barrier.wait().await;
    }
}

/// The driver: lockstep with the segments through the halo phases, then
/// runs the collective rounds (allreduce, plus the pairwise all-to-all
/// for the complex class) as global batches and carries virtual time to
/// the iteration end.
async fn driver(
    ctx: Sim,
    ib: Rc<IbFabric>,
    shared: Rc<RefCell<Shared>>,
    barrier: Barrier,
    ranks: u32,
    iters: u32,
    complex: bool,
) {
    let send_ov = ib.params().send_overhead;
    let recv_ov = ib.params().recv_overhead;
    let n = ranks as usize;
    for _ in 0..iters {
        ctx.sleep(COMPUTE).await;
        for _halo_dir in 0..2 {
            barrier.wait().await; // segments scheduled
            barrier.wait().await; // segments merged
        }
        let t_end = {
            // deep-lint: allow(partition-safety) — the collective
            // rounds run after the "segments merged" barrier; only the
            // driver is live until it sleeps to the iteration end.
            let sh = &mut *shared.borrow_mut();
            // Dot-product allreduce: recursive doubling, log2(n) rounds
            // of 8-byte exchanges. Each round is one batch; per-message
            // `earliest` times carry every rank's skew, so no virtual
            // time passes while the rounds are laid into the fabric.
            let round_partners = |sh: &mut Shared, xor: usize, bytes: u64| {
                sh.msgs.clear();
                for r in 0..n {
                    sh.msgs.push(BatchMsg {
                        src: NodeId(r as u32),
                        dst: NodeId((r ^ xor) as u32),
                        bytes,
                        earliest: sh.ready[r] + send_ov,
                    });
                }
                let (msgs, done) = (&sh.msgs, &mut sh.done);
                ib.network().schedule_batch(msgs, done);
                for r in 0..n {
                    let p = r ^ xor;
                    sh.ready[r] = sh.done[r].max(sh.done[p] + recv_ov);
                }
                sh.messages += n as u64;
            };
            for k in 0..ranks.trailing_zeros() {
                round_partners(sh, 1usize << k, 8);
            }
            if complex {
                // Pairwise-exchange all-to-all: n-1 XOR rounds of one
                // block per rank — the linear-in-ranks phase that
                // collapses the complex class.
                for round in 1..n {
                    round_partners(sh, round, A2A_BLOCK);
                }
            }
            let t_end = sh.ready.iter().copied().max().unwrap_or_else(|| ctx.now());
            sh.digest = fnv_fold(sh.digest, t_end.as_nanos());
            t_end
        };
        ctx.sleep_until(t_end).await;
        // Release the segments into the next iteration at t_end.
        barrier.wait().await;
    }
}

/// Run the skeleton. Single-threaded and deterministic: the result
/// (including the digest) is a pure function of `cfg`.
pub fn run(cfg: DesScalingConfig) -> DesScalingResult {
    assert!(
        cfg.ranks >= 2 && cfg.ranks.is_power_of_two(),
        "des_scaling needs a power-of-two rank count >= 2, got {}",
        cfg.ranks
    );
    assert!(cfg.iters >= 1, "des_scaling needs at least one iteration");
    let mut sim = Simulation::new(cfg.seed);
    let ctx = sim.handle();
    let ib = Rc::new(IbFabric::new(&ctx, cfg.ranks));
    let n = cfg.ranks as usize;
    let segments = cfg.ranks.div_ceil(NODES_PER_LEAF);
    let shared = Rc::new(RefCell::new(Shared {
        ready: vec![SimTime::ZERO; n],
        inbox: vec![SimTime::ZERO; n],
        send_done: vec![SimTime::ZERO; n],
        msgs: Vec::with_capacity(n),
        done: Vec::with_capacity(n),
        messages: 0,
        digest: fnv_fold(FNV_OFFSET, cfg.ranks as u64),
    }));
    let barrier = Barrier::new(&ctx, segments as usize + 1);
    for s in 0..segments {
        let lo = (s * NODES_PER_LEAF) as usize;
        let hi = (((s + 1) * NODES_PER_LEAF).min(cfg.ranks)) as usize;
        let fut = segment(
            ctx.clone(),
            ib.clone(),
            shared.clone(),
            barrier.clone(),
            lo,
            hi,
            n,
            cfg.iters,
        );
        // One partition per leaf switch; partition 0 stays the driver's.
        ctx.spawn_in_fmt(s + 1, format_args!("leaf-{s}"), fut);
    }
    {
        let fut = driver(
            ctx.clone(),
            ib.clone(),
            shared.clone(),
            barrier.clone(),
            cfg.ranks,
            cfg.iters,
            cfg.complex,
        );
        // Partition 0 is the driver's home, matching the leaf layout.
        ctx.spawn_in(0, "driver", fut);
    }
    sim.run().assert_completed();
    // deep-lint: allow(partition-safety) — read-only snapshot after the
    // kernel has drained; no partition can still be running.
    let sh = shared.borrow();
    let sim_s = sim.now().as_secs_f64();
    let digest = fnv_fold(sh.digest, sh.messages);
    DesScalingResult {
        ranks: cfg.ranks,
        iters: cfg.iters,
        segments,
        iter_s: sim_s / cfg.iters as f64,
        sim_s,
        messages: sh.messages,
        kernel_events: sim.events_processed(),
        digest,
    }
}

/// The analytic (LogGP) per-iteration time of the same skeleton — what
/// `f09_scalability` plots for the full sweep. The DES above must land
/// within the documented tolerance of this for the SpMV class; for the
/// complex class the DES sits *above* it, because the pairwise
/// all-to-all sees spine contention the contention-free model ignores.
pub fn analytic_iter(m: &deep_psmpi::NetModel, ranks: u64, complex: bool) -> SimDuration {
    let spmv = COMPUTE + m.p2p(HALO_BYTES) * 2 + m.allreduce(ranks, 8);
    if complex {
        spmv + m.alltoall(ranks, A2A_BLOCK)
    } else {
        spmv
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deep_psmpi::NetModel;

    #[test]
    fn spmv_des_tracks_the_analytic_model_at_small_scale() {
        let r = run(DesScalingConfig {
            ranks: 64,
            iters: 3,
            complex: false,
            seed: 1,
        });
        let model = analytic_iter(&NetModel::ib_fdr(), 64, false).as_secs_f64();
        let rel = (r.iter_s - model) / model;
        assert!(
            rel.abs() < 0.05,
            "DES iter {:.3e}s vs model {model:.3e}s (rel {rel:+.3})",
            r.iter_s
        );
        assert_eq!(r.segments, 4); // ceil(64 / 18)
        assert!(r.messages > 0 && r.kernel_events > 0);
    }

    #[test]
    fn runs_are_bit_identical_and_scale_invariantly_seeded() {
        let cfg = DesScalingConfig {
            ranks: 128,
            iters: 2,
            complex: true,
            seed: 9,
        };
        let a = run(cfg);
        let b = run(cfg);
        assert_eq!(a, b, "same config must reproduce bit-identically");
        // The digest is sensitive to the configuration.
        let c = run(DesScalingConfig {
            complex: false,
            ..cfg
        });
        assert_ne!(a.digest, c.digest);
    }

    #[test]
    fn complex_class_is_slower_than_spmv() {
        let spmv = run(DesScalingConfig {
            ranks: 64,
            iters: 2,
            complex: false,
            seed: 1,
        });
        let cplx = run(DesScalingConfig {
            ranks: 64,
            iters: 2,
            complex: true,
            seed: 1,
        });
        // 63 all-to-all rounds dominate; the model says ~+135 us/iter.
        assert!(cplx.iter_s > spmv.iter_s * 1.05);
        // And the DES never beats the contention-free analytic bound.
        let model = analytic_iter(&NetModel::ib_fdr(), 64, true).as_secs_f64();
        assert!(cplx.iter_s >= model * 0.999);
    }
}
