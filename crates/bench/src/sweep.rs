//! Deterministic parallel sweep harness.
//!
//! An experiment sweep is a list of independent parameter points, each
//! evaluated by a pure, deterministic function (usually one simulator
//! run seeded from the point's index). [`par_sweep`] fans the points
//! across the rayon pool and returns results **in input order**, so a
//! sweep's output is a pure function of its inputs — bit-identical for
//! any `RAYON_NUM_THREADS`, including 1.
//!
//! Determinism is by construction, not by luck:
//! * the split tree over the index range depends only on the length and
//!   the pool width, never on thread timing (see `vendor/rayon`);
//! * each point derives its RNG stream from its *index*
//!   ([`index_stream`] + `SimRng::from_seed_stream`), so no draw depends
//!   on which worker ran which point;
//! * results land in index-ordered slots and any reduction happens
//!   after the barrier, on the caller's thread.

use rayon::prelude::*;

/// Evaluate `f` at every point, in parallel; results are returned in
/// input order. `f` gets the point's index alongside the point so it
/// can derive a per-point RNG stream.
///
/// Sweep points are *coarse* work units — whole simulations or table
/// rows, micro- to milliseconds each — so the leaf size is capped at 1:
/// every point is individually stealable. Under the default adaptive
/// threshold a short sweep (e.g. 26 experiments on 8 threads) would get
/// leaves of 3–4 points, serializing heavy neighbours behind each other
/// while other workers idle. The cap changes scheduling granularity
/// only, never result order (see `vendor/rayon`'s `with_max_len`).
pub fn par_sweep<P, R, F>(points: &[P], f: F) -> Vec<R>
where
    P: Sync,
    R: Send,
    F: Fn(usize, &P) -> R + Sync + Send,
{
    (0..points.len())
        .into_par_iter()
        .with_max_len(1)
        .map(|i| f(i, &points[i]))
        .collect()
}

/// The RNG stream id for sweep point `index` under base stream `base` —
/// the additive convention the resilience models already use
/// (`0xE401 + r`). Wrapping add, so any base is safe.
pub fn index_stream(base: u64, index: usize) -> u64 {
    base.wrapping_add(index as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use deep_simkit::SimRng;

    #[test]
    fn results_come_back_in_input_order() {
        let points: Vec<u64> = (0..100).rev().collect();
        let out = par_sweep(&points, |i, &p| (i, p * 2));
        for (i, &(idx, doubled)) in out.iter().enumerate() {
            assert_eq!(idx, i);
            assert_eq!(doubled, points[i] * 2);
        }
    }

    #[test]
    fn sweep_is_bit_identical_across_pool_widths() {
        // A draw-heavy float workload whose result would differ under
        // any reordering of draws or of the final accumulation.
        let points: Vec<u64> = (0..40).collect();
        let eval = |i: usize, &p: &u64| -> f64 {
            let mut rng = SimRng::from_seed_stream(7, index_stream(0x5EED, i));
            (0..200)
                .map(|_| rng.gen_range(0..p + 1) as f64)
                .sum::<f64>()
                / 200.0
        };
        let serial: Vec<f64> = points.iter().enumerate().map(|(i, p)| eval(i, p)).collect();
        for threads in [1usize, 2, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let par = pool.install(|| par_sweep(&points, eval));
            let same = serial
                .iter()
                .zip(&par)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "sweep diverged at {threads} threads");
        }
    }

    #[test]
    fn index_stream_is_the_additive_convention() {
        assert_eq!(index_stream(0xE401, 0), 0xE401);
        assert_eq!(index_stream(0xE401, 3), 0xE404);
        assert_eq!(index_stream(u64::MAX, 1), 0); // wraps, never panics
    }
}
