//! A30 (ablation) — ready-queue policy of the OmpSs runtime: FIFO vs
//! critical-path-first list scheduling, on the tiled Cholesky and on an
//! adversarial chain-plus-swarm DAG.

use std::fmt::Write as _;

use deep_apps::cholesky::{cholesky_graph, spd_matrix, TiledMatrix};
use deep_core::{fmt_f, Table};
use deep_hw::NodeModel;
use deep_ompss::{run_dataflow_policy, Access, RegionId, SchedPolicy, TaskCost, TaskGraph};
use deep_simkit::{SimDuration, Simulation};

fn run_case(graph: TaskGraph, workers: u32, policy: SchedPolicy) -> (f64, f64) {
    let node = NodeModel::xeon_phi_knc();
    let mut sim = Simulation::new(1);
    let ctx = sim.handle();
    let h = sim.spawn("run", async move {
        run_dataflow_policy(&ctx, graph, &node, workers, policy).await
    });
    sim.run().assert_completed();
    let r = h.try_result().unwrap();
    (r.makespan.as_secs_f64(), r.critical_path.as_secs_f64())
}

fn cholesky(nt: usize) -> TaskGraph {
    let ts = 16;
    let a = spd_matrix(nt * ts);
    let m = TiledMatrix::from_dense(&a, nt, ts);
    cholesky_graph(&m)
}

fn chain_plus_swarm() -> TaskGraph {
    let mut g = TaskGraph::new();
    for step in 0..12u64 {
        for i in 0..16u64 {
            g.add_task(
                "short",
                &[(RegionId(1000 + step * 32 + i), Access::InOut)],
                TaskCost::Fixed(SimDuration::micros(40)),
                0,
                None,
            );
        }
        g.add_task(
            "chain",
            &[(RegionId(0), Access::InOut)],
            TaskCost::Fixed(SimDuration::micros(120)),
            0,
            None,
        );
    }
    g
}

pub fn run(out: &mut String) {
    let mut t = Table::new(
        "A30",
        "dataflow ready-queue policy ablation (makespan, µs)",
        &[
            "workload",
            "workers",
            "FIFO",
            "CP-first",
            "CP-first wins",
            "cp bound",
        ],
    );
    // Flattened (case × policy) work-unit grid (EXPERIMENTS.md
    // convention): 10 independent simulations, each individually
    // stealable, instead of 5 cases that each hide an internal
    // `rayon::join` fighting the outer sweep for workers. Each unit
    // builds its own graph, so `run_case` is a pure function of
    // `(workload, workers, policy)` and the rows — assembled
    // sequentially by pairing each case's two policy units — are
    // identical at any thread count.
    #[derive(Clone, Copy)]
    enum Workload {
        Cholesky(usize),
        ChainSwarm,
    }
    let build = |w: Workload| match w {
        Workload::Cholesky(nt) => cholesky(nt),
        Workload::ChainSwarm => chain_plus_swarm(),
    };
    let cases: [(&str, Workload, u32); 5] = [
        ("cholesky 12x12", Workload::Cholesky(12), 16),
        ("cholesky 12x12", Workload::Cholesky(12), 60),
        ("cholesky 16x16", Workload::Cholesky(16), 60),
        ("chain+swarm", Workload::ChainSwarm, 4),
        ("chain+swarm", Workload::ChainSwarm, 8),
    ];
    let units: Vec<(Workload, u32, SchedPolicy)> = cases
        .iter()
        .flat_map(|&(_, wl, workers)| {
            [SchedPolicy::Fifo, SchedPolicy::CriticalPathFirst]
                .into_iter()
                .map(move |policy| (wl, workers, policy))
        })
        .collect();
    let runs = crate::sweep::par_sweep(&units, |_, &(wl, workers, policy)| {
        run_case(build(wl), workers, policy)
    });
    for (case_idx, &(name, _, workers)) in cases.iter().enumerate() {
        let (fifo, cp_bound) = runs[case_idx * 2];
        let (cpf, _) = runs[case_idx * 2 + 1];
        t.row(&[
            name.into(),
            workers.to_string(),
            fmt_f(fifo * 1e6),
            fmt_f(cpf * 1e6),
            format!("{:.2}x", fifo / cpf),
            fmt_f(cp_bound * 1e6),
        ]);
    }
    t.write_into(out);
    let _ = writeln!(
        out,
        "shape: priority scheduling matters when wide cheap parallelism can\n\
         starve the critical chain (chain+swarm); on Cholesky the dependence\n\
         structure already orders the panel factorisations, so the gain is\n\
         small — evidence for the paper's choice of a simple runtime."
    );
}
