//! F23 — slide 23: OmpSs tiled Cholesky, dataflow vs fork-join.
//!
//! "Decouple how we write (think sequential) from how it is executed":
//! dependence-driven out-of-order execution against the barrier-per-phase
//! baseline, across worker counts and tile grids, on the booster node
//! model. Results are verified numerically against a serial reference.

use std::fmt::Write as _;

use deep_apps::cholesky::{cholesky_graph, factorisation_error, spd_matrix, TiledMatrix};
use deep_core::{fmt_f, Table};
use deep_hw::NodeModel;
use deep_ompss::{run_dataflow, run_fork_join, RunReport};
use deep_simkit::Simulation;

fn run_case(nt: usize, ts: usize, workers: u32, dataflow: bool) -> (RunReport, f64) {
    let n = nt * ts;
    let a = spd_matrix(n);
    let m = TiledMatrix::from_dense(&a, nt, ts);
    let g = cholesky_graph(&m);
    let node = NodeModel::xeon_phi_knc();
    let mut sim = Simulation::new(1);
    let ctx = sim.handle();
    let h = sim.spawn("run", async move {
        if dataflow {
            run_dataflow(&ctx, g, &node, workers).await
        } else {
            run_fork_join(&ctx, g, &node, workers).await
        }
    });
    sim.run().assert_completed();
    let err = factorisation_error(&m.to_dense(), &a, n);
    (h.try_result().unwrap(), err)
}

pub fn run(out: &mut String) {
    let ts = 16;
    let mut t = Table::new(
        "F23",
        "tiled Cholesky on the KNC booster node: dataflow (OmpSs) vs fork-join",
        &[
            "tiles",
            "tasks",
            "workers",
            "dataflow",
            "fork-join",
            "dataflow wins",
            "dataflow eff",
            "cp bound",
            "max |LLt-A|",
        ],
    );
    for nt in [8usize, 12, 16] {
        for workers in [4u32, 16, 60] {
            let (df, err) = run_case(nt, ts, workers, true);
            let (fj, _) = run_case(nt, ts, workers, false);
            t.row(&[
                format!("{nt}x{nt}"),
                df.tasks.to_string(),
                workers.to_string(),
                format!("{}", df.makespan),
                format!("{}", fj.makespan),
                format!(
                    "{:.2}x",
                    fj.makespan.as_secs_f64() / df.makespan.as_secs_f64()
                ),
                fmt_f(df.efficiency()),
                format!("{}", df.critical_path),
                format!("{err:.1e}"),
            ]);
        }
    }
    t.write_into(out);
    let _ = writeln!(
        out,
        "shape: the dataflow schedule consistently beats the barrier schedule\n\
         (tasks of iteration k+1 start while iteration k's trailing update is\n\
         still running), the gap widening with workers until the critical path\n\
         binds; every run factorises the matrix exactly (error ~1e-13)."
    );
}
