//! F21 — slides 21 & 26–27: application startup via collective
//! `MPI_Comm_spawn` of the highly scalable code part onto the booster.
//!
//! Measures spawn cost vs the number of booster processes on the real
//! DEEP machine (control messages cross the CBP bridge, the launch fans
//! out over the EXTOLL torus as a binomial tree) and verifies the
//! O(log p) + per-process shape.

use std::fmt::Write as _;

use std::cell::Cell;
use std::rc::Rc;

use deep_core::{fmt_f, DeepConfig, DeepMachine, Table, BOOSTER_POOL, OFFLOAD_SERVER};
use deep_ompss::{booster_block, Offloader};
use deep_simkit::Simulation;

/// Spawn `n_procs` servers on a machine with a booster of `dims`; return
/// (spawn cost s, intercomm remote size).
fn spawn_cost(dims: (u32, u32, u32), n_procs: u32) -> (f64, u32) {
    let mut sim = Simulation::new(11);
    let ctx = sim.handle();
    let mut cfg = DeepConfig::medium();
    cfg.booster_dims = dims;
    cfg.n_bi = 4.min(cfg.n_booster());
    let machine = DeepMachine::build(&ctx, cfg);
    let out = Rc::new(Cell::new((0.0f64, 0u32)));
    let out2 = out.clone();
    machine.launch_cluster_app("spawner", move |m| {
        let out = out2.clone();
        Box::pin(async move {
            let world = m.world().clone();
            let t0 = m.sim().now();
            let inter = m
                .comm_spawn(&world, OFFLOAD_SERVER, n_procs, BOOSTER_POOL, 0)
                .await
                .expect("spawn");
            let dt = (m.sim().now() - t0).as_secs_f64();
            if m.rank() == 0 {
                out.set((dt, inter.remote_size()));
            }
            // Tear the servers down again so the run drains.
            let off = Offloader::new(inter);
            let block = booster_block(m.rank(), m.size(), n_procs);
            m.barrier(&world).await;
            off.shutdown(&m, block).await;
        })
    });
    sim.run().assert_completed();
    out.get()
}

pub fn run(out: &mut String) {
    let mut t = Table::new(
        "F21",
        "collective MPI_Comm_spawn cost vs booster process count",
        &[
            "booster procs",
            "torus",
            "spawn cost [ms]",
            "cost/proc [µs]",
        ],
    );
    let cases: [((u32, u32, u32), u32); 6] = [
        ((4, 2, 2), 16),
        ((4, 4, 2), 32),
        ((4, 4, 4), 64),
        ((8, 4, 4), 128),
        ((8, 8, 4), 256),
        ((8, 8, 8), 512),
    ];
    let mut series = Vec::new();
    for (dims, n) in cases {
        let (cost, remote) = spawn_cost(dims, n);
        assert_eq!(remote, n, "intercommunicator wired to all children");
        series.push((n, cost));
        t.row(&[
            n.to_string(),
            format!("{}x{}x{}", dims.0, dims.1, dims.2),
            fmt_f(cost * 1e3),
            fmt_f(cost / n as f64 * 1e6),
        ]);
    }
    t.write_into(out);

    let (n0, c0) = series[0];
    let (n1, c1) = *series.last().unwrap();
    let _ = writeln!(
        out,
        "scaling: {}x more processes cost {:.1}x more time — far below linear\n\
         (binomial fan-out over the booster fabric) with a fixed ~2 ms process-\n\
         manager negotiation floor. Children get their own MPI_COMM_WORLD and\n\
         the parent an intercommunicator, as slides 26-27 describe.",
        n1 / n0,
        c1 / c0
    );
}
