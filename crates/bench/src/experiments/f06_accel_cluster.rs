//! F06 — slides 6–7: the accelerated-cluster pathologies.
//!
//! 1. Offload round trip: host-staged PCIe (driver path) vs direct
//!    fabric-attached accelerator, across kernel-data sizes.
//! 2. GPU↔GPU cross-node transfer: D2H + IB + H2D staging vs a single
//!    direct-fabric hop (the "communication so far via main memory" cost).

use std::fmt::Write as _;

use crate::{probe_fabric, size_label};
use deep_core::{fmt_f, Table};

pub fn run(out: &mut String) {
    let mut t = Table::new(
        "F06",
        "offload data path: host-staged PCIe vs direct fabric [µs]",
        &["payload", "PCIe (driver)", "EXTOLL direct", "direct/PCIe"],
    );
    for shift in [10u32, 13, 16, 20, 24] {
        let bytes = 1u64 << shift;
        let p = probe_fabric("pcie-driver", bytes);
        let e = probe_fabric("extoll", bytes);
        t.row(&[
            size_label(bytes),
            fmt_f(p * 1e6),
            fmt_f(e * 1e6),
            fmt_f(e / p),
        ]);
    }
    t.write_into(out);

    // Cross-node accelerator-to-accelerator exchange.
    let mut t2 = Table::new(
        "F06b",
        "accelerator-to-accelerator across nodes [µs]",
        &[
            "payload",
            "staged: D2H + IB + H2D",
            "direct: EXTOLL hop",
            "staging penalty",
        ],
    );
    for shift in [10u32, 13, 16, 20, 24] {
        let bytes = 1u64 << shift;
        let staged = probe_fabric("pcie-driver", bytes)
            + probe_fabric("ib", bytes)
            + probe_fabric("pcie-driver", bytes);
        let direct = probe_fabric("extoll", bytes);
        t2.row(&[
            size_label(bytes),
            fmt_f(staged * 1e6),
            fmt_f(direct * 1e6),
            format!("{:.2}x", staged / direct),
        ]);
    }
    t2.write_into(out);
    let _ = writeln!(
        out,
        "shape: small transfers pay ~3 software/DMA overheads when staged\n\
         through the host; bulk transfers pay ~3 serializations. A directly\n\
         attached accelerator (cluster of accelerators, slide 7) removes both,\n\
         which is the architectural case for the booster."
    );
}
