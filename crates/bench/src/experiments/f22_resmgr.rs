//! F22 — slide 21 (resource management): static vs dynamic booster
//! assignment, plus EASY backfill, on synthetic heterogeneous job mixes.

use std::fmt::Write as _;

use deep_apps::{generate_mix, MixParams};
use deep_core::{fmt_f, Table};
use deep_resmgr::{run_workload, Policy, WorkloadReport};
use rayon::prelude::*;

pub fn run(out: &mut String) {
    // A contended machine: plenty of cluster nodes, scarce boosters —
    // the regime where assignment policy matters.
    let machine = (12u32, 16u32); // 12 CN, 16 BN
    let mix_params = MixParams {
        n_jobs: 32,
        mean_interarrival: deep_simkit::SimDuration::secs(8),
        max_cn: 8,
        max_bn: 12,
        mean_cn_time: deep_simkit::SimDuration::secs(50),
        mean_bn_time: deep_simkit::SimDuration::secs(50),
        max_phases: 3,
        pure_cluster_fraction: 0.2,
    };
    let mut t = Table::new(
        "F22",
        "booster assignment policy on heterogeneous job mixes (12 CN / 16 BN)",
        &[
            "mix seed",
            "policy",
            "makespan [s]",
            "BN active util",
            "BN allocated",
            "mean wait [s]",
            "mean BN wait [s]",
        ],
    );

    // Every (seed, policy) replica is an independent deterministic
    // simulation: farm them out across host cores with rayon. The grid
    // is already flat; `with_max_len(1)` makes each whole-workload unit
    // individually stealable (a leaf of 2–3 would serialize them).
    let cases: Vec<(u64, Policy)> = [1u64, 2, 3]
        .into_iter()
        .flat_map(|seed| {
            [
                Policy::StaticFcfs,
                Policy::DynamicFcfs,
                Policy::DynamicBackfill,
            ]
            .into_iter()
            .map(move |p| (seed, p))
        })
        .collect();
    let reports: Vec<((u64, Policy), WorkloadReport)> = cases
        .par_iter()
        .with_max_len(1)
        .map(|&(seed, policy)| {
            let mix = generate_mix(seed, mix_params);
            (
                (seed, policy),
                run_workload(seed, machine.0, machine.1, policy, mix),
            )
        })
        .collect();

    let mut speedups = Vec::new();
    for seed in [1u64, 2, 3] {
        let mut static_makespan = 0.0;
        for policy in [
            Policy::StaticFcfs,
            Policy::DynamicFcfs,
            Policy::DynamicBackfill,
        ] {
            let rep = &reports
                .iter()
                .find(|((s, p), _)| *s == seed && *p == policy)
                .expect("replica computed")
                .1;
            let n = rep.jobs.len() as f64;
            let mean_wait: f64 = rep.jobs.iter().map(|j| j.wait().as_secs_f64()).sum::<f64>() / n;
            let mean_bn_wait: f64 = rep
                .jobs
                .iter()
                .map(|j| j.bn_wait.as_secs_f64())
                .sum::<f64>()
                / n;
            let makespan = rep.makespan.as_secs_f64();
            if policy == Policy::StaticFcfs {
                static_makespan = makespan;
            } else if policy == Policy::DynamicFcfs {
                speedups.push(static_makespan / makespan);
            }
            t.row(&[
                seed.to_string(),
                format!("{policy:?}"),
                fmt_f(makespan),
                fmt_f(rep.bn_utilization),
                fmt_f(rep.bn_allocated),
                fmt_f(mean_wait),
                fmt_f(mean_bn_wait),
            ]);
        }
    }
    t.write_into(out);

    let avg: f64 = speedups.iter().sum::<f64>() / speedups.len() as f64;
    let _ = writeln!(
        out,
        "shape: dynamic assignment shortens the makespan by ~{:.0}% on average\n\
         and raises *useful* booster utilisation, while static assignment\n\
         shows the accelerated-cluster pathology — near-total allocation with\n\
         idle accelerators (slide 6: \"static assignment of accelerators to\n\
         CPUs\"). Backfill further trims queue waits.",
        (avg - 1.0) * 100.0
    );
}
