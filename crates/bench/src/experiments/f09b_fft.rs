//! F09b — slide 9's two application classes, measured on real kernels.
//!
//! * CG on a 2-D Laplacian: nearest-neighbour halo + allreduce (the
//!   "sparse matrix-vector, highly regular" class);
//! * pencil 2-D FFT: personalised all-to-all transpose (the "complex"
//!   class).
//!
//! Both kernels compute real numbers over the simulated fabric (verified
//! against serial references in the test suite); their *communication*
//! time is measured by the DES, and the *compute* time per rank comes
//! from the roofline model of a KNC booster node. Total = compute + comm,
//! exactly how the machine would spend its time.

use std::fmt::Write as _;

use deep_apps::{run_cg_ideal, run_fft_ideal};
use deep_core::{fmt_f, Table};
use deep_hw::{exec_time, KernelProfile, NodeModel};

pub fn run(out: &mut String) {
    let node = NodeModel::xeon_phi_knc();
    let fft_n = 256usize; // transpose: 2 MiB over p^2 messages per step
    let cg_n = 1024usize; // halo: 8 KiB rows + 8 B allreduces
    let cg_iters = 60u32;

    // Roofline compute of the whole problem (split over ranks).
    // FFT: two batches of n size-n FFTs -> ~ 2 * n * 5 n log2 n flops.
    let fft_flops = 2.0 * fft_n as f64 * 5.0 * fft_n as f64 * (fft_n as f64).log2();
    // CG: ~16 flops per grid point per iteration.
    let cg_flops = 16.0 * (cg_n * cg_n) as f64 * cg_iters as f64;
    let compute_s = |total_flops: f64, ranks: u32| {
        let k = KernelProfile {
            flops: total_flops / ranks as f64,
            bytes: total_flops / ranks as f64, // stream-ish intensity 1
            compute_efficiency: 0.5,
            bandwidth_efficiency: 0.6,
        };
        exec_time(&node, &k, node.cores).time.as_secs_f64()
    };

    let mut t = Table::new(
        "F09b",
        "strong scaling with real kernels on KNC nodes: FFT (alltoall) vs CG (halo)",
        &[
            "ranks",
            "FFT total [µs]",
            "FFT comm share",
            "FFT speedup",
            "CG total [ms]",
            "CG comm share",
            "CG speedup",
        ],
    );
    // The ten single-threaded DES kernel runs (5 rank counts × {FFT,
    // CG}) are this experiment's entire cost — run them as one flat
    // work-unit grid (EXPERIMENTS.md convention) instead of a serial
    // loop, then assemble rows (and the ranks=1 speedup baselines)
    // sequentially from the index-ordered results.
    let rank_counts = [1u32, 2, 4, 8, 16];
    let units: Vec<(u32, bool)> = rank_counts
        .iter()
        .flat_map(|&ranks| [(ranks, false), (ranks, true)])
        .collect();
    let comm_ns = crate::sweep::par_sweep(&units, |_, &(ranks, cg)| {
        if cg {
            run_cg_ideal(1, ranks, cg_n, cg_n, cg_iters, 1e-12).1
        } else {
            run_fft_ideal(1, ranks, fft_n).1
        }
    });
    let mut fft_base = None;
    let mut cg_base = None;
    for (i, &ranks) in rank_counts.iter().enumerate() {
        let (fft_comm_ns, cg_comm_ns) = (comm_ns[i * 2], comm_ns[i * 2 + 1]);
        let fft_total = compute_s(fft_flops, ranks) + fft_comm_ns as f64 / 1e9;
        let cg_total = compute_s(cg_flops, ranks) + cg_comm_ns as f64 / 1e9;
        let fb = *fft_base.get_or_insert(fft_total);
        let cb = *cg_base.get_or_insert(cg_total);
        t.row(&[
            ranks.to_string(),
            fmt_f(fft_total * 1e6),
            fmt_f(fft_comm_ns as f64 / 1e9 / fft_total),
            format!("{:.2}x", fb / fft_total),
            fmt_f(cg_total * 1e3),
            fmt_f(cg_comm_ns as f64 / 1e9 / cg_total),
            format!("{:.2}x", cb / cg_total),
        ]);
    }
    t.write_into(out);
    let _ = writeln!(
        out,
        "shape: CG's halo/allreduce pattern keeps most of its time in\n\
         compute and keeps speeding up; the FFT's transpose floods the\n\
         fabric with p^2 messages per step — its communication share grows\n\
         with rank count until scaling flattens and reverses. Slide 9's\n\
         two classes, measured rather than asserted."
    );
}
