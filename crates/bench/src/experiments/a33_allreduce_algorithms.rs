//! A33 (ablation) — allreduce algorithm selection: recursive doubling vs
//! ring (reduce-scatter + allgather) vs reduce+bcast, across payload
//! sizes and group sizes, on the simulated InfiniBand fabric.

use std::fmt::Write as _;

use std::rc::Rc;

use deep_core::{fmt_bytes, fmt_f, Table};
use deep_fabric::IbFabric;
use deep_psmpi::{launch_world, EpId, IbWire, MpiParams, ReduceOp, Universe, Value};
use deep_simkit::Simulation;

#[derive(Clone, Copy, PartialEq)]
enum Algo {
    RecursiveDoubling,
    Ring,
    ReduceBcast,
}

fn run_case(algo: Algo, ranks: u32, doubles: usize) -> f64 {
    let mut sim = Simulation::new(1);
    let ctx = sim.handle();
    let ib = Rc::new(IbFabric::new(&ctx, ranks));
    // Pin thresholds so the adaptive layer doesn't override the choice.
    let params = MpiParams {
        allreduce_ring_threshold: if algo == Algo::Ring { 0 } else { u64::MAX },
        ..MpiParams::default()
    };
    let uni = Universe::new(&ctx, Rc::new(IbWire::new(ib)), ranks as usize, params);
    launch_world(&uni, "ar", (0..ranks).map(EpId).collect(), move |m| {
        Box::pin(async move {
            let world = m.world().clone();
            let mine: Vec<f64> = vec![m.rank() as f64; doubles];
            let bytes = 8 * doubles as u64;
            for _ in 0..5 {
                match algo {
                    Algo::Ring => {
                        m.allreduce_ring(&world, ReduceOp::Sum, mine.clone()).await;
                    }
                    Algo::RecursiveDoubling => {
                        m.allreduce(&world, ReduceOp::Sum, Value::vec(mine.clone()), bytes)
                            .await;
                    }
                    Algo::ReduceBcast => {
                        let partial = m
                            .reduce(&world, 0, ReduceOp::Sum, Value::vec(mine.clone()), bytes)
                            .await;
                        m.bcast(&world, 0, partial.unwrap_or(Value::Unit), bytes)
                            .await;
                    }
                }
            }
        })
    });
    sim.run().assert_completed();
    sim.now().as_secs_f64() / 5.0
}

pub fn run(out: &mut String) {
    let mut t = Table::new(
        "A33",
        "allreduce algorithm ablation: time per operation [µs], 16 ranks on IB",
        &[
            "payload",
            "recursive doubling",
            "ring",
            "reduce+bcast",
            "best",
        ],
    );
    // The 5×3 (payload × algorithm) grid is the heaviest sweep in the
    // suite; flatten it so all 15 simulations fan out, then fold each
    // payload's three timings back in algorithm order.
    let payloads = [16usize, 1024, 32_768, 262_144, 1_048_576];
    let mut grid: Vec<(usize, Algo)> = Vec::new();
    for doubles in payloads {
        for algo in [Algo::RecursiveDoubling, Algo::Ring, Algo::ReduceBcast] {
            grid.push((doubles, algo));
        }
    }
    let times = crate::sweep::par_sweep(&grid, |_, &(doubles, algo)| run_case(algo, 16, doubles));
    for (i, doubles) in payloads.iter().enumerate() {
        let (rd, ring, rb) = (times[3 * i], times[3 * i + 1], times[3 * i + 2]);
        let best = if rd <= ring && rd <= rb {
            "rec-doubling"
        } else if ring <= rb {
            "ring"
        } else {
            "reduce+bcast"
        };
        t.row(&[
            fmt_bytes(8 * *doubles as u64),
            fmt_f(rd * 1e6),
            fmt_f(ring * 1e6),
            fmt_f(rb * 1e6),
            best.into(),
        ]);
    }
    t.write_into(out);
    let _ = writeln!(
        out,
        "shape: latency-bound small payloads favour the log-depth recursive\n\
         doubling; bandwidth-bound large payloads favour the ring, which\n\
         moves 2(n-1)/n of the data per rank instead of log2(n) full copies.\n\
         This crossover is exactly why the MPI layer selects by size\n\
         (MpiParams::allreduce_ring_threshold)."
    );
}
