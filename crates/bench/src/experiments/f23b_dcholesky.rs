//! F23b — the slide-23 kernel at booster scale: *distributed* tiled
//! Cholesky across MPI ranks (1-D block-cyclic, panel broadcast).
//!
//! Shows both halves of the paper's argument: the factorisation is
//! numerically exact over the simulated fabric, and the naive 1-D
//! bulk-synchronous formulation saturates quickly — the reason OmpSs-style
//! dependence-driven execution (F23) matters in the first place.

use std::fmt::Write as _;

use deep_apps::run_dcholesky_ideal;
use deep_core::{fmt_f, Table};

pub fn run(out: &mut String) {
    let (nt, ts) = (12usize, 64usize);
    let mut t = Table::new(
        "F23b",
        "distributed Cholesky (12x12 tiles of 64x64): strong scaling",
        &["ranks", "time [ms]", "speedup", "efficiency", "max |LLt-A|"],
    );
    // Six independent single-threaded DES factorisations — a flat
    // work-unit grid (EXPERIMENTS.md convention) instead of a serial
    // loop; the speedup baseline (ranks=1) folds in afterwards from the
    // index-ordered results.
    let rank_counts = [1u32, 2, 3, 4, 6, 12];
    let runs = crate::sweep::par_sweep(&rank_counts, |_, &ranks| {
        run_dcholesky_ideal(1, ranks, nt, ts)
    });
    let mut base = None;
    for (&ranks, (res, ns)) in rank_counts.iter().zip(&runs) {
        let ms = *ns as f64 / 1e6;
        let b = *base.get_or_insert(ms);
        t.row(&[
            ranks.to_string(),
            fmt_f(ms),
            format!("{:.2}x", b / ms),
            fmt_f(b / ms / ranks as f64),
            format!("{:.1e}", res.max_error),
        ]);
    }
    t.write_into(out);
    let _ = writeln!(
        out,
        "shape: the trailing update parallelises but every panel\n\
         factorisation serialises at its owner, so the bulk-synchronous\n\
         1-D formulation saturates around 2-3x regardless of rank count.\n\
         Compare F23: dependence-driven execution of the same kernel keeps\n\
         workers busy through the panel — the paper's case for OmpSs."
    );
}
