//! F09 — slide 9: application scalability classes.
//!
//! "Only few applications are capable to scale to O(300k) cores —
//! sparse matrix-vector codes, highly regular communication patterns.
//! Most applications are more complex."
//!
//! We weak-scale two per-iteration communication skeletons:
//! * **SpMV class** — nearest-neighbour halo + one small allreduce
//!   (logarithmic): parallel efficiency stays high to 262 144 ranks.
//! * **Complex class** — adds an all-to-all phase (linear in ranks):
//!   efficiency collapses around a few thousand ranks.
//!
//! Small rank counts run on the discrete-event simulator over a real IB
//! fabric; the full sweep uses the LogGP models validated against those
//! DES points (printed side by side).

use std::fmt::Write as _;

use deep_core::{fmt_f, Table};
use deep_psmpi::{NetModel, ReduceOp, Value};
use deep_simkit::SimDuration;

/// Fixed per-rank compute per iteration under weak scaling.
const COMPUTE: SimDuration = SimDuration::micros(2_000);
const HALO_BYTES: u64 = 64 << 10;
const A2A_BLOCK: u64 = 4 << 10;

fn spmv_iter_analytic(m: &NetModel, n: u64) -> SimDuration {
    // two halo exchanges + one dot-product allreduce
    COMPUTE + m.p2p(HALO_BYTES) * 2 + m.allreduce(n, 8)
}

fn complex_iter_analytic(m: &NetModel, n: u64) -> SimDuration {
    spmv_iter_analytic(m, n) + m.alltoall(n, A2A_BLOCK)
}

/// Measure one iteration of the skeleton on the DES over IB.
fn des_iter(n: u32, complex: bool) -> f64 {
    let iters = 10u32;
    let (_, total) = crate::run_ib_ranks(1, n, move |m| {
        Box::pin(async move {
            let world = m.world().clone();
            let size = world.size();
            for _ in 0..iters {
                m.sim().sleep(COMPUTE).await;
                // halo with ring neighbours
                let right = (m.rank() + 1) % size;
                let left = (m.rank() + size - 1) % size;
                if size > 1 {
                    m.sendrecv(
                        &world,
                        right,
                        7,
                        Value::Unit,
                        HALO_BYTES,
                        Some(left),
                        Some(7),
                    )
                    .await;
                    m.sendrecv(
                        &world,
                        left,
                        8,
                        Value::Unit,
                        HALO_BYTES,
                        Some(right),
                        Some(8),
                    )
                    .await;
                }
                m.allreduce(&world, ReduceOp::Sum, Value::F64(1.0), 8).await;
                if complex {
                    let blocks = (0..size).map(|_| Value::Unit).collect();
                    m.alltoall(&world, blocks, A2A_BLOCK).await;
                }
            }
            0.0
        })
    });
    total / iters as f64
}

pub fn run(out: &mut String) {
    let m = NetModel::ib_fdr();
    let base_spmv = spmv_iter_analytic(&m, 1).as_secs_f64();
    let base_cplx = complex_iter_analytic(&m, 1).as_secs_f64();

    let mut t = Table::new(
        "F09",
        "weak-scaling parallel efficiency by application class",
        &[
            "ranks",
            "SpMV eff (model)",
            "SpMV eff (DES)",
            "complex eff (model)",
            "complex eff (DES)",
        ],
    );
    // The six single-threaded DES runs dominate this experiment's wall
    // time — they used to hide pairwise inside `rayon::join`s nested
    // under a 9-point sweep, leaving the largest (64-rank) pair as an
    // Amdahl tail. Flatten them onto one (point × class) work-unit grid
    // (EXPERIMENTS.md convention) so all six independent simulations
    // are stealable at once; the closed-form analytic rows assemble
    // sequentially afterwards, so the table bytes never depend on the
    // thread count.
    let des_points = [4u32, 16, 64];
    let des_units: Vec<(u32, bool)> = des_points
        .iter()
        .flat_map(|&n| [(n, false), (n, true)])
        .collect();
    let des_effs = crate::sweep::par_sweep(&des_units, |_, &(n, complex)| {
        let base = if complex { base_cplx } else { base_spmv };
        base / des_iter(n, complex)
    });
    let exps = [2u32, 4, 6, 8, 10, 12, 14, 16, 18];
    for &exp in &exps {
        let n = 1u64 << exp;
        let spmv_eff = base_spmv / spmv_iter_analytic(&m, n).as_secs_f64();
        let cplx_eff = base_cplx / complex_iter_analytic(&m, n).as_secs_f64();
        let (spmv_des, cplx_des) = match des_points.iter().position(|&d| d as u64 == n) {
            Some(i) => (fmt_f(des_effs[i * 2]), fmt_f(des_effs[i * 2 + 1])),
            None => ("-".into(), "-".into()),
        };
        t.row(&[
            n.to_string(),
            fmt_f(spmv_eff),
            spmv_des,
            fmt_f(cplx_eff),
            cplx_des,
        ]);
    }
    t.write_into(out);

    let spmv_262k = base_spmv / spmv_iter_analytic(&m, 1 << 18).as_secs_f64();
    let cplx_4k = base_cplx / complex_iter_analytic(&m, 1 << 12).as_secs_f64();
    let _ = writeln!(
        out,
        "shape: the SpMV class holds {:.0}% efficiency at 262,144 ranks; the\n\
         complex class is already down to {:.0}% at 4,096 ranks and keeps\n\
         falling linearly — matching slide 9's claim that only regular sparse\n\
         codes reach O(300k) cores. DEEP's answer: run each class on the\n\
         hardware that suits it.",
        spmv_262k * 100.0,
        cplx_4k * 100.0
    );
}
