//! F09 — slide 9: application scalability classes.
//!
//! "Only few applications are capable to scale to O(300k) cores —
//! sparse matrix-vector codes, highly regular communication patterns.
//! Most applications are more complex."
//!
//! We weak-scale two per-iteration communication skeletons:
//! * **SpMV class** — nearest-neighbour halo + one small allreduce
//!   (logarithmic): parallel efficiency stays high to 262 144 ranks.
//! * **Complex class** — adds an all-to-all phase (linear in ranks):
//!   efficiency collapses around a few thousand ranks.
//!
//! Small rank counts run the skeleton rank-per-process through the full
//! MPI stack over a simulated IB fabric. The headline points — SpMV at
//! 262 144 ranks, complex at 4 096 — are **also discrete-event
//! measurements**, via the partitioned, batch-scheduled
//! [`crate::des_scaling`] engine (one process per leaf switch, SoA rank
//! state, one kernel event per phase batch). The LogGP model that used
//! to stand in for these points is now the *delta column*: the table
//! and the shape paragraph quote DES-measured efficiencies, with the
//! model's prediction printed beside them. For the SpMV class the two
//! agree within a fraction of a percent; for the complex class the DES
//! sits ~40% above the model at 4 096 ranks, because the pairwise
//! all-to-all queues on the fat tree's spine trunks — contention the
//! closed-form model cannot see.

use std::fmt::Write as _;

use deep_core::{fmt_f, Table};
use deep_psmpi::{NetModel, ReduceOp, Value};

use crate::des_scaling::{self, DesScalingConfig, A2A_BLOCK, COMPUTE, HALO_BYTES};

/// Measure one iteration of the skeleton rank-per-process through the
/// MPI stack (small rank counts only).
fn mpi_iter(n: u32, complex: bool) -> f64 {
    let iters = 10u32;
    let (_, total) = crate::run_ib_ranks(1, n, move |m| {
        Box::pin(async move {
            let world = m.world().clone();
            let size = world.size();
            for _ in 0..iters {
                m.sim().sleep(COMPUTE).await;
                // halo with ring neighbours
                let right = (m.rank() + 1) % size;
                let left = (m.rank() + size - 1) % size;
                if size > 1 {
                    m.sendrecv(
                        &world,
                        right,
                        7,
                        Value::Unit,
                        HALO_BYTES,
                        Some(left),
                        Some(7),
                    )
                    .await;
                    m.sendrecv(
                        &world,
                        left,
                        8,
                        Value::Unit,
                        HALO_BYTES,
                        Some(right),
                        Some(8),
                    )
                    .await;
                }
                m.allreduce(&world, ReduceOp::Sum, Value::F64(1.0), 8).await;
                if complex {
                    let blocks = (0..size).map(|_| Value::Unit).collect();
                    m.alltoall(&world, blocks, A2A_BLOCK).await;
                }
            }
            0.0
        })
    });
    total / iters as f64
}

/// One DES work unit of the (point × class) grid: either a
/// rank-per-process MPI run (small) or a full-scale partitioned
/// skeleton run (the headline points).
enum Unit {
    Mpi {
        n: u32,
        complex: bool,
    },
    Full {
        ranks: u32,
        iters: u32,
        complex: bool,
    },
}

/// Measured seconds per iteration, plus the full-run summary when the
/// unit went through the partitioned engine.
fn measure(u: &Unit) -> (f64, Option<des_scaling::DesScalingResult>) {
    match *u {
        Unit::Mpi { n, complex } => (mpi_iter(n, complex), None),
        Unit::Full {
            ranks,
            iters,
            complex,
        } => {
            let r = des_scaling::run(DesScalingConfig {
                ranks,
                iters,
                complex,
                seed: 1,
            });
            (r.iter_s, Some(r))
        }
    }
}

/// The two headline configurations: the paper's "O(300k) cores" SpMV
/// point, and the complex class at the scale where it has collapsed.
const SPMV_RANKS: u32 = 1 << 18;
const CPLX_RANKS: u32 = 1 << 12;

pub fn run(out: &mut String) {
    let m = NetModel::ib_fdr();
    let analytic = |n: u64, complex: bool| des_scaling::analytic_iter(&m, n, complex).as_secs_f64();
    let base_spmv = analytic(1, false);
    let base_cplx = analytic(1, true);

    // All eight independent DES simulations on one stealable work-unit
    // grid (EXPERIMENTS.md convention), heavy full-scale units first;
    // results come back in input order, so the table bytes never depend
    // on the thread count.
    let mpi_points = [4u32, 16, 64];
    let mut units: Vec<Unit> = vec![
        Unit::Full {
            ranks: SPMV_RANKS,
            iters: 2,
            complex: false,
        },
        Unit::Full {
            ranks: CPLX_RANKS,
            iters: 1,
            complex: true,
        },
    ];
    units.extend(
        mpi_points
            .iter()
            .flat_map(|&n| [(n, false), (n, true)])
            .map(|(n, complex)| Unit::Mpi { n, complex }),
    );
    let measured = crate::sweep::par_sweep(&units, |_, u| measure(u));
    let spmv_full = measured[0].1.expect("unit 0 is the full SpMV run");
    let cplx_full = measured[1].1.expect("unit 1 is the full complex run");

    let mut t = Table::new(
        "F09",
        "weak-scaling parallel efficiency by application class",
        &[
            "ranks",
            "SpMV eff (model)",
            "SpMV eff (DES)",
            "complex eff (model)",
            "complex eff (DES)",
        ],
    );
    let exps = [2u32, 4, 6, 8, 10, 12, 14, 16, 18];
    for &exp in &exps {
        let n = 1u64 << exp;
        let spmv_eff = base_spmv / analytic(n, false);
        let cplx_eff = base_cplx / analytic(n, true);
        let (mut spmv_des, mut cplx_des) = match mpi_points.iter().position(|&d| d as u64 == n) {
            Some(i) => (
                fmt_f(base_spmv / measured[2 + i * 2].0),
                fmt_f(base_cplx / measured[2 + i * 2 + 1].0),
            ),
            None => ("-".into(), "-".into()),
        };
        if n == SPMV_RANKS as u64 {
            spmv_des = fmt_f(base_spmv / spmv_full.iter_s);
        }
        if n == CPLX_RANKS as u64 {
            cplx_des = fmt_f(base_cplx / cplx_full.iter_s);
        }
        t.row(&[
            n.to_string(),
            fmt_f(spmv_eff),
            spmv_des,
            fmt_f(cplx_eff),
            cplx_des,
        ]);
    }
    t.write_into(out);

    // The headline points, with the LogGP prediction as the delta
    // column: DES-measured µs/iter vs model µs/iter.
    for (label, r) in [("SpMV", &spmv_full), ("complex", &cplx_full)] {
        let model = analytic(r.ranks as u64, r.ranks == CPLX_RANKS);
        let delta = (r.iter_s - model) / model * 100.0;
        let _ = writeln!(
            out,
            "des {label} @ {} ranks: {:.1} us/iter vs model {:.1} us (delta {delta:+.1}%) — \
             {} segments, {} messages, {} kernel events",
            r.ranks,
            r.iter_s * 1e6,
            model * 1e6,
            r.segments,
            r.messages,
            r.kernel_events,
        );
    }

    let spmv_262k = base_spmv / spmv_full.iter_s;
    let cplx_4k = base_cplx / cplx_full.iter_s;
    let _ = writeln!(
        out,
        "shape: measured end-to-end on the DES, the SpMV class holds {:.0}%\n\
         efficiency at 262,144 ranks (the LogGP model agrees to {:+.1}%); the\n\
         complex class is already down to {:.0}% at 4,096 ranks — {:.0}% *below*\n\
         the contention-free model, because the pairwise all-to-all queues on\n\
         the spine trunks — and keeps falling linearly. This matches slide 9's\n\
         claim that only regular sparse codes reach O(300k) cores. DEEP's\n\
         answer: run each class on the hardware that suits it.",
        spmv_262k * 100.0,
        (spmv_full.iter_s - analytic(SPMV_RANKS as u64, false))
            / analytic(SPMV_RANKS as u64, false)
            * 100.0,
        cplx_4k * 100.0,
        (1.0 - analytic(CPLX_RANKS as u64, true) / cplx_full.iter_s) * 100.0,
    );
}
