//! F14 — slides 11–14: the DEEP prototype system, quantitatively.
//!
//! Prints the machine inventory of the configured prototype — node
//! counts, fabric shapes, aggregate peaks and power — the numbers behind
//! the architecture diagram.

use std::fmt::Write as _;

use deep_core::{fmt_f, DeepConfig, Table};

pub fn run(out: &mut String) {
    let mut t = Table::new(
        "F14",
        "DEEP machine inventory",
        &[
            "configuration",
            "CN",
            "BN (torus)",
            "BIs",
            "peak [TF]",
            "booster share",
            "power [kW]",
            "GF/W",
        ],
    );
    for cfg in [
        DeepConfig::small(),
        DeepConfig::medium(),
        DeepConfig::prototype(),
    ] {
        let peak_tf = cfg.peak_flops() / 1e12;
        let booster_share =
            cfg.n_booster() as f64 * cfg.booster_node.peak_flops() / cfg.peak_flops();
        let kw = cfg.peak_power_w() / 1e3;
        let name = match cfg.n_cluster {
            4 => "small (tests)",
            16 => "medium (benches)",
            _ => "DEEP prototype",
        };
        t.row(&[
            name.into(),
            cfg.n_cluster.to_string(),
            format!(
                "{} ({}x{}x{})",
                cfg.n_booster(),
                cfg.booster_dims.0,
                cfg.booster_dims.1,
                cfg.booster_dims.2
            ),
            cfg.n_bi.to_string(),
            fmt_f(peak_tf),
            format!("{:.0}%", booster_share * 100.0),
            fmt_f(kw),
            fmt_f(cfg.peak_flops() / 1e9 / cfg.peak_power_w()),
        ]);
    }
    t.write_into(out);

    let proto = DeepConfig::prototype();
    let _ = writeln!(
        out,
        "the prototype: {} Xeon cluster nodes on an FDR fat tree + a {}-node\n\
         KNC booster on an 8x8x8 EXTOLL torus bridged by {} BIs — ~{:.0} TF\n\
         peak at ~{:.0} kW, with {:.0}% of the flops in the booster. That\n\
         asymmetry is the architecture: the cluster orchestrates, the\n\
         booster computes.",
        proto.n_cluster,
        proto.n_booster(),
        proto.n_bi,
        proto.peak_flops() / 1e12,
        proto.peak_power_w() / 1e3,
        proto.n_booster() as f64 * proto.booster_node.peak_flops() / proto.peak_flops() * 100.0
    );
}
