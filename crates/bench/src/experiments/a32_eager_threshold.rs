//! A32 (ablation) — the MPI eager/rendezvous threshold.
//!
//! Small thresholds force handshakes (extra round trip) onto medium
//! messages; huge thresholds buffer-copy bulk data and hide sender-side
//! completion semantics. Sweeps the threshold against a halo-exchange
//! workload and a one-sided stream of mixed sizes.

use std::fmt::Write as _;

use std::rc::Rc;

use deep_core::{fmt_bytes, fmt_f, Table};
use deep_fabric::IbFabric;
use deep_psmpi::{launch_world, EpId, IbWire, MpiParams, Universe, Value};
use deep_simkit::Simulation;

/// 8-rank halo exchange rounds with `msg` bytes per neighbour message.
fn halo_time(threshold: u64, msg: u64) -> f64 {
    let mut sim = Simulation::new(1);
    let ctx = sim.handle();
    let ib = Rc::new(IbFabric::new(&ctx, 8));
    let params = MpiParams {
        eager_threshold: threshold,
        ..MpiParams::default()
    };
    let uni = Universe::new(&ctx, Rc::new(IbWire::new(ib)), 8, params);
    launch_world(&uni, "halo", (0..8).map(EpId).collect(), move |m| {
        Box::pin(async move {
            let world = m.world().clone();
            let n = m.size();
            let right = (m.rank() + 1) % n;
            let left = (m.rank() + n - 1) % n;
            for _ in 0..50 {
                m.sendrecv(&world, right, 1, Value::Unit, msg, Some(left), Some(1))
                    .await;
            }
        })
    });
    sim.run().assert_completed();
    sim.now().as_secs_f64()
}

pub fn run(out: &mut String) {
    let sizes: [u64; 4] = [1 << 10, 16 << 10, 128 << 10, 1 << 20];
    let thresholds: [u64; 5] = [0, 4 << 10, 16 << 10, 128 << 10, 8 << 20];
    let mut t = Table::new(
        "A32",
        "eager/rendezvous threshold ablation: 50 halo rounds, 8 ranks [ms]",
        &[
            "msg size",
            "thr=0 (all rndv)",
            "thr=4K",
            "thr=16K (default)",
            "thr=128K",
            "thr=8M (all eager)",
        ],
    );
    // All 20 (size × threshold) cells are independent simulations; fan
    // the flat grid across the pool and reassemble rows in grid order.
    let mut grid: Vec<(u64, u64)> = Vec::new();
    for msg in sizes {
        for thr in thresholds {
            grid.push((msg, thr));
        }
    }
    let cells = crate::sweep::par_sweep(&grid, |_, &(msg, thr)| fmt_f(halo_time(thr, msg) * 1e3));
    for (i, msg) in sizes.iter().enumerate() {
        let mut row = vec![fmt_bytes(*msg)];
        row.extend_from_slice(&cells[i * thresholds.len()..(i + 1) * thresholds.len()]);
        t.row(&row);
    }
    t.write_into(out);
    let _ = writeln!(
        out,
        "shape: for small messages the all-rendezvous column pays an extra\n\
         round trip per message (~2x); for bulk messages eager-everything\n\
         costs an extra buffer copy and hides no latency. The 16-64 KiB\n\
         default used by ParaStation-class MPIs sits at the sweet spot."
    );
}
