//! F29 — slide 29: the global-MPI stack — ParaStation MPI over
//! InfiniBand and EXTOLL, joined by the Cluster–Booster Protocol through
//! the Booster Interfaces.
//!
//! Measures (a) aggregate cluster→booster throughput vs the number of
//! BIs under a many-flow load, and (b) the per-message latency overhead
//! of crossing the bridge vs staying inside one fabric.

use std::fmt::Write as _;

use std::rc::Rc;

use deep_cbp::{CbpConfig, CbpWire, CbpWireHandle};
use deep_core::{fmt_f, Table};
use deep_fabric::{ExtollFabric, IbFabric};
use deep_psmpi::Wire;
use deep_simkit::{Sim, Simulation};

fn machine(sim: &Sim, n_cluster: u32, n_bi: u32) -> Rc<CbpWire> {
    let ib = Rc::new(IbFabric::new(sim, n_cluster + n_bi));
    let extoll = Rc::new(ExtollFabric::new(sim, (4, 4, 4)));
    let stride = (64 / n_bi).max(1);
    let bis = (0..n_bi)
        .map(|i| (n_cluster + i, (i * stride) % 64))
        .collect();
    CbpWire::new(sim, ib, extoll, CbpConfig::new(n_cluster, 64, bis))
}

/// Aggregate bandwidth of 16 concurrent 16 MiB cluster→booster flows.
fn aggregate_bw(n_bi: u32) -> f64 {
    let mut sim = Simulation::new(3);
    let ctx = sim.handle();
    let w = machine(&ctx, 16, n_bi);
    let bytes_per_flow: u64 = 16 << 20;
    for c in 0..16u32 {
        let handle = CbpWireHandle(w.clone());
        let src = w.cluster_ep(c);
        let dst = w.booster_ep((c * 13 + 5) % 64);
        sim.spawn(format!("flow{c}"), async move {
            handle.transfer(src, dst, bytes_per_flow).await.unwrap();
        });
    }
    sim.run().assert_completed();
    16.0 * bytes_per_flow as f64 / sim.now().as_secs_f64()
}

/// Latency of one 64 B message: intra-cluster, intra-booster, bridged.
fn latencies() -> (f64, f64, f64) {
    let mut sim = Simulation::new(3);
    let ctx = sim.handle();
    let w = machine(&ctx, 16, 2);
    let h1 = {
        let handle = CbpWireHandle(w.clone());
        let (a, b) = (w.cluster_ep(0), w.cluster_ep(9));
        sim.spawn("cc", async move {
            handle
                .transfer(a, b, 64)
                .await
                .unwrap()
                .elapsed
                .as_secs_f64()
        })
    };
    let h2 = {
        let handle = CbpWireHandle(w.clone());
        let (a, b) = (w.booster_ep(0), w.booster_ep(21));
        sim.spawn("bb", async move {
            handle
                .transfer(a, b, 64)
                .await
                .unwrap()
                .elapsed
                .as_secs_f64()
        })
    };
    let h3 = {
        let handle = CbpWireHandle(w.clone());
        let (a, b) = (w.cluster_ep(1), w.booster_ep(33));
        sim.spawn("cb", async move {
            handle
                .transfer(a, b, 64)
                .await
                .unwrap()
                .elapsed
                .as_secs_f64()
        })
    };
    sim.run().assert_completed();
    (
        h1.try_result().unwrap(),
        h2.try_result().unwrap(),
        h3.try_result().unwrap(),
    )
}

pub fn run(out: &mut String) {
    let mut t = Table::new(
        "F29a",
        "aggregate cluster->booster throughput vs booster interfaces (16 flows)",
        &["BIs", "aggregate [GB/s]", "speedup vs 1 BI"],
    );
    let mut base = None;
    for n_bi in [1u32, 2, 4, 8, 16] {
        let bw = aggregate_bw(n_bi);
        let b = *base.get_or_insert(bw);
        t.row(&[n_bi.to_string(), fmt_f(bw / 1e9), format!("{:.2}x", bw / b)]);
    }
    t.write_into(out);

    let (cc, bb, cb) = latencies();
    let mut t2 = Table::new(
        "F29b",
        "64 B message latency by path",
        &["path", "latency [µs]"],
    );
    t2.row(&["cluster -> cluster (IB)".into(), fmt_f(cc * 1e6)]);
    t2.row(&["booster -> booster (EXTOLL)".into(), fmt_f(bb * 1e6)]);
    t2.row(&["cluster -> booster (CBP bridge)".into(), fmt_f(cb * 1e6)]);
    t2.write_into(out);
    let _ = writeln!(
        out,
        "shape: aggregate inter-world bandwidth scales with the BI count until\n\
         the 16 source NICs saturate; a bridged small message costs roughly\n\
         one IB + one EXTOLL traversal + the SMFU translation ({:.1}x a plain\n\
         IB message). Global MPI pays the bridge only on the comparatively\n\
         rare cluster<->booster messages (slides 8, 29).",
        cb / cc
    );
}
