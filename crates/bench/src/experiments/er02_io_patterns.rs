//! ER02 — parallel I/O patterns on the shared fabric: task-local (N-N),
//! shared-file (N-1), and SIONlib containers.
//!
//! Every cluster rank writes the same payload through the machine's file
//! layer onto the PFS (whose servers hang off the same InfiniBand fat
//! tree as the MPI traffic). The three patterns differ only in metadata
//! traffic and alignment padding — which is exactly where N-1 I/O
//! collapses and why SIONlib restores N-N performance from a single
//! shared container.

use std::fmt::Write as _;

use deep_core::{fmt_bytes, fmt_f, DeepConfig, DeepMachine, Table};
use deep_fabric::NodeId;
use deep_io::{FileLayerParams, WritePattern};
use deep_simkit::Simulation;

/// One write phase on a fresh machine; returns (goodput B/s, meta ops,
/// physical bytes, payload bytes).
fn run_phase(ranks: u32, bytes_per_rank: u64, pattern: WritePattern) -> (f64, u64, u64, u64) {
    let mut sim = Simulation::new(17);
    let ctx = sim.handle();
    let mut cfg = DeepConfig::medium();
    // Small application blocks against the FS alignment: the regime
    // where locking and padding dominate the shared file.
    cfg.storage.file_layer = FileLayerParams {
        shared_block_bytes: 1 << 19,
        ..FileLayerParams::default()
    };
    let machine = DeepMachine::build(&ctx, cfg);
    let layer = machine.file_layer();
    let clients: Vec<NodeId> = (0..ranks).map(NodeId).collect();
    let l = layer.clone();
    let h = sim.spawn("io-phase", async move {
        l.write_phase(&clients, bytes_per_rank, pattern).await
    });
    sim.run().assert_completed();
    let stats = h.try_result().unwrap();
    (
        stats.goodput_bps(),
        stats.meta_ops,
        stats.physical_bytes,
        stats.payload_bytes,
    )
}

pub fn run(out: &mut String) {
    let bytes_per_rank = 16u64 << 20;
    let patterns = [
        WritePattern::TaskLocal,
        WritePattern::SharedFile,
        WritePattern::Sion,
    ];

    let mut t = Table::new(
        "ER02",
        "write patterns onto the PFS (16 MiB per rank)",
        &[
            "ranks",
            "pattern",
            "goodput [GB/s]",
            "meta ops",
            "amplification",
        ],
    );
    for ranks in [4u32, 8, 16] {
        for pattern in patterns {
            let (goodput, meta, physical, payload) = run_phase(ranks, bytes_per_rank, pattern);
            t.row(&[
                ranks.to_string(),
                pattern.name().to_string(),
                fmt_f(goodput / 1e9),
                meta.to_string(),
                fmt_f(physical as f64 / payload as f64),
            ]);
        }
    }
    t.write_into(out);

    let _ = writeln!(
        out,
        "payload {} per rank; shape: task-local writes stream at the PFS\n\
         servers' aggregate bandwidth but cost one metadata create per\n\
         rank; the shared file serialises a lock grant per block on the\n\
         metadata server and pads every block to the FS alignment, so its\n\
         goodput collapses as ranks grow; the SION container opens once\n\
         collectively and then matches task-local streaming — N-N\n\
         performance from one file, the SIONlib claim.",
        fmt_bytes(bytes_per_rank)
    );
}
