//! F02 — slides 2 & 4: supercomputer performance evolution.
//!
//! Meuer's law (×1000/decade) against Moore's law (×~100/decade), fitted
//! on the historical Top500-#1 series the slide plots.

use std::fmt::Write as _;

use deep_core::{fmt_f, Table};
use deep_hw::generations::{
    fitted_factor_per_decade, juelich_lineage, meuer_factor, moore_factor, top500_number_one,
};

pub fn run(out: &mut String) {
    let series = top500_number_one();
    let mut t = Table::new(
        "F02",
        "performance evolution: Top500 #1 vs the two scaling laws",
        &[
            "year",
            "Top500 #1 [GF]",
            "Meuer projection [GF]",
            "Moore projection [GF]",
        ],
    );
    let (y0, v0) = series[0];
    for &(y, v) in &series {
        let dy = (y - y0) as f64;
        t.row(&[
            y.to_string(),
            fmt_f(v),
            fmt_f(v0 * meuer_factor(dy)),
            fmt_f(v0 * moore_factor(dy)),
        ]);
    }
    t.write_into(out);

    let fit = fitted_factor_per_decade(&series);
    let _ = writeln!(
        out,
        "fitted growth of the historical series: x{fit:.0} per decade"
    );
    let _ = writeln!(
        out,
        "Meuer's law says x1000; Moore's law alone gives x{:.0}.",
        moore_factor(10.0)
    );
    let _ = writeln!(
        out,
        "the gap (x{:.0}) is what parallelism growth contributed — the paper's\n\
         motivation for ever more (and more heterogeneous) parallelism.\n",
        fit / moore_factor(10.0)
    );

    let mut t2 = Table::new(
        "F02b",
        "Jülich lineage (slide 18 timeline)",
        &["system", "year", "peak [GF]", "power [kW]", "GF/W"],
    );
    for g in juelich_lineage() {
        t2.row(&[
            g.name.clone(),
            g.year.to_string(),
            fmt_f(g.peak_gflops),
            fmt_f(g.power_kw),
            fmt_f(g.peak_gflops / (g.power_kw * 1000.0)),
        ]);
    }
    t2.write_into(out);
}
