//! F08 — slide 8: "IB can be assumed as fast as PCIe besides latency";
//! larger messages are less latency-sensitive.
//!
//! Effective bandwidth vs message size for the bare-DMA PCIe path, the IB
//! verbs path and the EXTOLL path, reporting where the network fabrics
//! reach ≥90 % of PCIe's effective bandwidth.

use std::fmt::Write as _;

use crate::{probe_fabric, size_label};
use deep_core::{fmt_f, Table};

pub fn run(out: &mut String) {
    let mut t = Table::new(
        "F08",
        "effective bandwidth [GB/s] vs message size",
        &[
            "size",
            "PCIe (DMA)",
            "InfiniBand",
            "EXTOLL",
            "IB/PCIe",
            "EXTOLL/PCIe",
        ],
    );
    let mut ib_cross = None;
    let mut ex_cross = None;
    for shift in [6u32, 9, 12, 14, 16, 18, 20, 22, 24, 26] {
        let bytes = 1u64 << shift;
        let gb = |t: f64| bytes as f64 / t / 1e9;
        let p = gb(probe_fabric("pcie-dma", bytes));
        let i = gb(probe_fabric("ib", bytes));
        let e = gb(probe_fabric("extoll", bytes));
        if ib_cross.is_none() && i >= 0.9 * p {
            ib_cross = Some(bytes);
        }
        if ex_cross.is_none() && e >= 0.9 * p {
            ex_cross = Some(bytes);
        }
        t.row(&[
            size_label(bytes),
            fmt_f(p),
            fmt_f(i),
            fmt_f(e),
            fmt_f(i / p),
            fmt_f(e / p),
        ]);
    }
    t.write_into(out);
    let _ = writeln!(
        out,
        "IB reaches >=90% of PCIe bandwidth from {} payloads; EXTOLL from {}.",
        ib_cross.map(size_label).unwrap_or_else(|| "-".into()),
        ex_cross.map(size_label).unwrap_or_else(|| "-".into()),
    );
    let _ = writeln!(
        out,
        "below that, latency dominates — exactly the slide-8 claim: offload\n\
         *larger, less frequent* messages and the fabric is as good as the bus."
    );
}
