//! F25 — slides 25 & 30–31: offload invocation granularity.
//!
//! A fixed amount of HSCP work (flops + boundary data) is offloaded from
//! the cluster to the booster in K invocations. Few large invocations
//! amortise latency and the per-invocation protocol; many small ones are
//! latency-bound — quantifying "which data is to be copied before/after a
//! booster code part" and the paper's preference for coarse kernels.

use std::fmt::Write as _;

use std::cell::Cell;
use std::rc::Rc;

use deep_core::{fmt_f, DeepConfig, DeepMachine, Table, BOOSTER_POOL, OFFLOAD_SERVER};
use deep_hw::KernelProfile;
use deep_ompss::{booster_block, OffloadSpec, Offloader};
use deep_simkit::Simulation;

/// Total work split into `k` offload invocations; returns elapsed seconds
/// and bridge message count.
fn granularity_run(k: u32) -> (f64, u64) {
    let mut sim = Simulation::new(21);
    let ctx = sim.handle();
    let cfg = DeepConfig::small();
    let n_booster = cfg.n_booster();
    let machine = DeepMachine::build(&ctx, cfg);
    let out = Rc::new(Cell::new(0.0f64));
    let out2 = out.clone();
    machine.launch_cluster_app("granularity", move |m| {
        let out = out2.clone();
        Box::pin(async move {
            let world = m.world().clone();
            let inter = m
                .comm_spawn(&world, OFFLOAD_SERVER, n_booster, BOOSTER_POOL, 0)
                .await
                .unwrap();
            let off = Offloader::new(inter);
            let block = booster_block(m.rank(), m.size(), n_booster);

            // Fixed totals per cluster rank, split across k invocations.
            let total_flops = 5e10;
            let total_bytes_in = 16u64 << 20;
            let total_bytes_out = 16u64 << 20;
            let t0 = m.sim().now();
            for _ in 0..k {
                let spec = OffloadSpec {
                    in_bytes: total_bytes_in / k as u64,
                    out_bytes: total_bytes_out / k as u64,
                    kernel: KernelProfile {
                        flops: total_flops / k as f64 / n_booster as f64,
                        bytes: total_flops / k as f64 / n_booster as f64 / 4.0,
                        compute_efficiency: 0.8,
                        bandwidth_efficiency: 0.7,
                    },
                    cores: u32::MAX,
                    iters: 1,
                    internal_msg_bytes: 0,
                };
                off.run(&m, &spec, block.clone()).await;
            }
            let dt = (m.sim().now() - t0).as_secs_f64();
            m.barrier(&world).await;
            off.shutdown(&m, block).await;
            if m.rank() == 0 {
                out.set(dt);
            }
        })
    });
    sim.run().assert_completed();
    (out.get(), machine.cbp().bridged_traffic().messages)
}

pub fn run(out: &mut String) {
    let mut t = Table::new(
        "F25",
        "offload granularity: fixed work, K invocations (per cluster rank)",
        &[
            "invocations",
            "bytes/invocation",
            "elapsed [ms]",
            "bridge msgs",
            "slowdown vs coarsest",
        ],
    );
    // Seven independent DES points — one flat work-unit grid
    // (EXPERIMENTS.md convention) instead of a serial loop; the
    // coarsest-invocation baseline folds in afterwards from the
    // index-ordered results.
    let ks = [1u32, 4, 16, 64, 256, 1024, 4096];
    let runs = crate::sweep::par_sweep(&ks, |_, &k| granularity_run(k));
    let mut baseline = None;
    for (&k, &(dt, msgs)) in ks.iter().zip(&runs) {
        let base = *baseline.get_or_insert(dt);
        t.row(&[
            k.to_string(),
            deep_core::fmt_bytes((16 << 20) / k as u64),
            fmt_f(dt * 1e3),
            msgs.to_string(),
            format!("{:.2}x", dt / base),
        ]);
    }
    t.write_into(out);
    let _ = writeln!(
        out,
        "shape: elapsed time is roughly flat while invocations stay coarse\n\
         (bandwidth-bound), then climbs as per-invocation latency and protocol\n\
         overhead dominate — the quantitative case for offloading *complete*\n\
         parallel kernels rather than inner loops (slides 8, 25)."
    );
}
