//! F03b — slide 3's second exascale challenge: **resiliency**.
//!
//! Checkpoint/restart efficiency as machines grow from the DEEP prototype
//! (640 nodes) towards exascale part counts, with the checkpoint-interval
//! sweep compared against Daly's first-order optimum √(2·C·MTBF/n).

use std::fmt::Write as _;

use deep_core::{
    daly_optimum, fmt_f, mean_efficiency_batch, MeanEfficiency, ResilienceParams, Table,
};

pub fn run(out: &mut String) {
    let base = ResilienceParams {
        work_s: 500_000.0, // ~6 days of useful compute
        n_nodes: 640,
        mtbf_node_s: 5.0 * 365.0 * 86_400.0, // 5-year node MTBF
        checkpoint_s: 240.0,
        restart_s: 600.0,
    };

    // Sweep the interval at several machine sizes.
    let mut t = Table::new(
        "F03b",
        "checkpoint/restart efficiency vs interval and machine size",
        &[
            "nodes",
            "system MTBF [h]",
            "Daly interval [min]",
            "eff @ Daly/4",
            "eff @ Daly",
            "eff @ 4x Daly",
            "eff @ 24 h",
        ],
    );
    // Flattened work-unit grid (EXPERIMENTS.md convention): instead of
    // a 4-point sweep each nesting its own replica fan-outs, build all
    // (machine size × interval) cases up front and hand the batch API
    // one 16-case × 8-replica grid — 128 stealable units. Replica RNG
    // streams depend only on the replica index, so each batch element
    // is bit-identical to the per-case `mean_efficiency` call it
    // replaces; rows assemble sequentially in input order afterwards.
    let node_counts = [640u64, 10_000, 100_000, 1_000_000];
    const INTERVALS_PER_SIZE: usize = 4;
    let mut cases = Vec::with_capacity(node_counts.len() * INTERVALS_PER_SIZE);
    for &nodes in &node_counts {
        let p = ResilienceParams {
            n_nodes: nodes,
            ..base
        };
        let daly = daly_optimum(&p);
        for interval in [daly / 4.0, daly, daly * 4.0, 24.0 * 3600.0] {
            cases.push((p, interval));
        }
    }
    let means = mean_efficiency_batch(&cases, 7, 8);
    // Truncated replicas (configurations that cannot finish their work
    // within the simulator's wall cap) are flagged with "!".
    let eff = |m: &MeanEfficiency| {
        if m.truncated_runs > 0 {
            format!("{}!", fmt_f(m.efficiency))
        } else {
            fmt_f(m.efficiency)
        }
    };
    for (row_idx, &nodes) in node_counts.iter().enumerate() {
        let p = cases[row_idx * INTERVALS_PER_SIZE].0;
        let daly = daly_optimum(&p);
        let m = &means[row_idx * INTERVALS_PER_SIZE..(row_idx + 1) * INTERVALS_PER_SIZE];
        t.row(&[
            nodes.to_string(),
            fmt_f(p.mtbf_node_s / nodes as f64 / 3600.0),
            fmt_f(daly / 60.0),
            eff(&m[0]),
            eff(&m[1]),
            eff(&m[2]),
            eff(&m[3]),
        ]);
    }
    t.write_into(out);
    let _ = writeln!(
        out,
        "shape: at DEEP-prototype scale (640 nodes) resilience is nearly free\n\
         (~96% efficiency at the optimum); at 100k-1M parts the system MTBF\n\
         drops to minutes-hours and even optimally-placed checkpoints burn\n\
         10-40% of the machine, while naive daily checkpointing collapses —\n\
         the quantitative version of slide 3's \"resiliency\" bullet. Daly's\n\
         formula tracks the sweep optimum across three orders of magnitude."
    );
}
