//! Experiment registry: every figure-regeneration experiment as a
//! library function rendering into a caller-owned buffer.
//!
//! Each module holds the logic that used to live in the matching
//! `src/bin/` binary; the binary is now a thin wrapper over
//! [`run_to_string`]. Rendering into a `String` (instead of straight to
//! stdout) is what lets the `run_experiments` driver execute many
//! experiments concurrently without interleaving their output — each
//! run owns its buffer, and the driver prints buffers in registry
//! order.
//!
//! [`ALL`] is the single source of truth for "every experiment": the
//! driver iterates it, and a test checks it stays in sync with the
//! binaries on disk.

pub mod a30_scheduler_ablation;
pub mod a31_bi_selection;
pub mod a32_eager_threshold;
pub mod a33_allreduce_algorithms;
pub mod er01_checkpoint_levels;
pub mod er02_io_patterns;
pub mod er03_fault_sweep;
pub mod f02_evolution;
pub mod f03_exascale;
pub mod f03b_resilience;
pub mod f05_rationale;
pub mod f06_accel_cluster;
pub mod f08_direct_fabric;
pub mod f09_scalability;
pub mod f09b_fft;
pub mod f10_cluster_booster;
pub mod f14_architecture;
pub mod f15_energy;
pub mod f16_extoll;
pub mod f18_positioning;
pub mod f21_spawn;
pub mod f22_resmgr;
pub mod f23_cholesky;
pub mod f23b_dcholesky;
pub mod f25_offload;
pub mod f29_global_mpi;

/// One registered experiment.
pub struct Experiment {
    /// Binary / module name (e.g. `"er03_fault_sweep"`).
    pub name: &'static str,
    /// Render the experiment's full stdout into `out`.
    pub run: fn(&mut String),
    /// Static relative cost (≈ milliseconds of 1-thread wall on the
    /// reference host, minimum 1 — see the DESIGN.md §12 profile
    /// table). The suite driver starts experiments in descending weight
    /// (LPT order) so the heavy ones are in flight from t=0 instead of
    /// becoming the tail behind two dozen sub-millisecond table
    /// renders; output stays in registry order regardless. An estimate,
    /// not a measurement — only the *ordering* matters, and only
    /// coarsely.
    pub weight: u32,
}

/// Every experiment, in registry (= alphabetical = docs) order.
pub const ALL: &[Experiment] = &[
    Experiment {
        name: "a30_scheduler_ablation",
        run: a30_scheduler_ablation::run,
        weight: 15,
    },
    Experiment {
        name: "a31_bi_selection",
        run: a31_bi_selection::run,
        weight: 7,
    },
    Experiment {
        name: "a32_eager_threshold",
        run: a32_eager_threshold::run,
        weight: 18,
    },
    Experiment {
        name: "a33_allreduce_algorithms",
        run: a33_allreduce_algorithms::run,
        weight: 3400,
    },
    Experiment {
        name: "er01_checkpoint_levels",
        run: er01_checkpoint_levels::run,
        weight: 2,
    },
    Experiment {
        name: "er02_io_patterns",
        run: er02_io_patterns::run,
        weight: 2,
    },
    Experiment {
        name: "er03_fault_sweep",
        run: er03_fault_sweep::run,
        weight: 12,
    },
    Experiment {
        name: "f02_evolution",
        run: f02_evolution::run,
        weight: 1,
    },
    Experiment {
        name: "f03_exascale",
        run: f03_exascale::run,
        weight: 1,
    },
    Experiment {
        name: "f03b_resilience",
        run: f03b_resilience::run,
        weight: 140,
    },
    Experiment {
        name: "f05_rationale",
        run: f05_rationale::run,
        weight: 1,
    },
    Experiment {
        name: "f06_accel_cluster",
        run: f06_accel_cluster::run,
        weight: 1,
    },
    Experiment {
        name: "f08_direct_fabric",
        run: f08_direct_fabric::run,
        weight: 1,
    },
    Experiment {
        name: "f09_scalability",
        run: f09_scalability::run,
        weight: 1900,
    },
    Experiment {
        name: "f09b_fft",
        run: f09b_fft::run,
        weight: 2250,
    },
    Experiment {
        name: "f10_cluster_booster",
        run: f10_cluster_booster::run,
        weight: 66,
    },
    Experiment {
        name: "f14_architecture",
        run: f14_architecture::run,
        weight: 1,
    },
    Experiment {
        name: "f15_energy",
        run: f15_energy::run,
        weight: 1,
    },
    Experiment {
        name: "f16_extoll",
        run: f16_extoll::run,
        weight: 1,
    },
    Experiment {
        name: "f18_positioning",
        run: f18_positioning::run,
        weight: 1,
    },
    Experiment {
        name: "f21_spawn",
        run: f21_spawn::run,
        weight: 6,
    },
    Experiment {
        name: "f22_resmgr",
        run: f22_resmgr::run,
        weight: 10,
    },
    Experiment {
        name: "f23_cholesky",
        run: f23_cholesky::run,
        weight: 70,
    },
    Experiment {
        name: "f23b_dcholesky",
        run: f23b_dcholesky::run,
        weight: 1000,
    },
    Experiment {
        name: "f25_offload",
        run: f25_offload::run,
        weight: 350,
    },
    Experiment {
        name: "f29_global_mpi",
        run: f29_global_mpi::run,
        weight: 2,
    },
];

/// Look up an experiment by name.
pub fn find(name: &str) -> Option<&'static Experiment> {
    ALL.iter().find(|e| e.name == name)
}

/// Run one experiment to a fresh buffer; `None` for unknown names.
pub fn run_to_string(name: &str) -> Option<String> {
    let e = find(name)?;
    let mut out = String::new();
    (e.run)(&mut out);
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry and the binaries on disk must agree, so
    /// `run_experiments` cannot silently skip an experiment the way the
    /// old shell loop did.
    #[test]
    fn registry_matches_binaries_on_disk() {
        let bin_dir = concat!(env!("CARGO_MANIFEST_DIR"), "/src/bin");
        let mut on_disk: Vec<String> = std::fs::read_dir(bin_dir)
            .expect("src/bin exists")
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter_map(|f| f.strip_suffix(".rs").map(str::to_string))
            // Drivers, report tooling, and wall-clock benchmarks — not
            // experiments (their output is not deterministic tables).
            .filter(|n| n != "bench_report" && n != "run_experiments" && n != "des_scaling_bench")
            .collect();
        on_disk.sort();
        let registered: Vec<&str> = ALL.iter().map(|e| e.name).collect();
        assert_eq!(registered, on_disk, "registry out of sync with src/bin");
    }

    #[test]
    fn registry_is_sorted_and_unique() {
        for w in ALL.windows(2) {
            assert!(w[0].name < w[1].name, "{} !< {}", w[0].name, w[1].name);
        }
    }

    #[test]
    fn weights_are_positive_and_heavy_tail_is_marked() {
        for e in ALL {
            assert!(e.weight >= 1, "{} needs weight >= 1", e.name);
        }
        // The known suite tail must outrank every sub-ms experiment, or
        // LPT ordering degenerates back to alphabetical.
        for heavy in ["a33_allreduce_algorithms", "f09b_fft", "f23b_dcholesky"] {
            assert!(find(heavy).unwrap().weight >= 1000, "{heavy} is the tail");
        }
    }

    #[test]
    fn unknown_experiment_is_none() {
        assert!(run_to_string("no_such_experiment").is_none());
    }

    /// Smoke: a cheap experiment renders a table into its buffer.
    #[test]
    fn f02_renders_its_table() {
        let out = run_to_string("f02_evolution").unwrap();
        assert!(out.contains("### F02"), "missing table header:\n{out}");
    }
}
