//! F10 — slide 10: the Cluster-Booster Architecture.
//!
//! The coupled multi-physics proxy (complex main() + highly scalable
//! kernel) on three machines: a homogeneous cluster, a conventional
//! PCIe-accelerated cluster and the DEEP cluster-booster, sized for
//! comparable accelerator silicon.

use std::fmt::Write as _;

use deep_core::{
    fmt_bytes, fmt_f, run_on_accelerated, run_on_deep, run_on_pure_cluster, CoupledParams,
    DeepConfig, Table,
};

pub fn run(out: &mut String) {
    let p = CoupledParams::default();
    let reports = [
        run_on_pure_cluster(1, 16, p),
        run_on_accelerated(1, 16, p),
        run_on_deep(1, DeepConfig::medium(), p),
    ];

    let mut t = Table::new(
        "F10",
        "coupled proxy across architectures (4 steps, 10 internal iterations)",
        &[
            "architecture",
            "time-to-solution",
            "energy [kJ]",
            "CPU<->acc msgs/unit",
            "avg CPU<->acc msg",
        ],
    );
    for r in &reports {
        let per_unit = if r.acc_units > 0 {
            fmt_f(r.acc_messages as f64 / r.acc_units as f64)
        } else {
            "-".into()
        };
        let avg = r
            .acc_bytes
            .checked_div(r.acc_messages)
            .map_or_else(|| "-".into(), fmt_bytes);
        t.row(&[
            r.arch.clone(),
            format!("{}", r.elapsed),
            fmt_f(r.energy_joules / 1e3),
            per_unit,
            avg,
        ]);
    }
    t.write_into(out);

    let pure = &reports[0];
    let accel = &reports[1];
    let deep = &reports[2];
    let _ = writeln!(
        out,
        "cluster-booster vs accelerated cluster: {:.2}x faster, {:.2}x less\n\
         energy, {:.1}x fewer and {:.1}x larger CPU<->accelerator messages;\n\
         vs pure cluster: {:.2}x faster. The booster executes the whole\n\
         parallel kernel autonomously (slide 10: offloaded kernels relieve\n\
         the CPU-accelerator communication pressure).",
        accel.elapsed.as_secs_f64() / deep.elapsed.as_secs_f64(),
        accel.energy_joules / deep.energy_joules,
        (accel.acc_messages as f64 / accel.acc_units as f64)
            / (deep.acc_messages as f64 / deep.acc_units as f64),
        (deep.acc_bytes as f64 / deep.acc_messages as f64)
            / (accel.acc_bytes as f64 / accel.acc_messages as f64),
        pure.elapsed.as_secs_f64() / deep.elapsed.as_secs_f64(),
    );
}
