//! F03 — slide 3 (bonus): "Power consumption (are ~100 MW acceptable?)".
//!
//! Projects the facility power of a hypothetical 1-EFlop machine built
//! from each node type of the 2012/2013 era, the arithmetic behind the
//! paper's exascale anxiety.

use std::fmt::Write as _;

use deep_core::{fmt_f, Table};
use deep_hw::NodeModel;

pub fn run(out: &mut String) {
    let exa = 1e18;
    let mut t = Table::new(
        "F03",
        "what would an exaflop cost in power, per building block?",
        &[
            "node type",
            "peak/node [GF]",
            "GF/W",
            "nodes for 1 EF",
            "facility [MW]",
        ],
    );
    for node in [
        NodeModel::bluegene_p_node(),
        NodeModel::bluegene_q_node(),
        NodeModel::xeon_cluster_node(),
        NodeModel::gpu_k20x(),
        NodeModel::xeon_phi_knc(),
    ] {
        let nodes = exa / node.peak_flops();
        let mw = nodes * node.power.peak_w / 1e6;
        t.row(&[
            node.name.clone(),
            fmt_f(node.peak_flops() / 1e9),
            fmt_f(node.peak_gflops_per_watt()),
            format!("{:.2e}", nodes),
            fmt_f(mw),
        ]);
    }
    t.write_into(out);
    let _ = writeln!(
        out,
        "even the booster silicon of 2012 needs ~200 MW for an exaflop —\n\
         double the \"are ~100 MW acceptable?\" line of slide 3; Xeon-only\n\
         needs ~1 GW. Heterogeneity is not optional at exascale."
    );
}
