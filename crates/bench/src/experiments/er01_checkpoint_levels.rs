//! ER01 — the DEEP-ER storage hierarchy at work: multi-level checkpoint
//! cost and the resilience pay-off.
//!
//! Part 1 measures, on the simulated machine, the wall cost of one
//! checkpoint + restore at each level (L1 node-local NVM, L2 buddy over
//! EXTOLL, L3 PFS through the BI bridges) for a stencil-sized job state.
//!
//! Part 2 feeds those *measured* costs into the multi-level Monte-Carlo
//! resilience model and compares checkpoint policies under a realistic
//! failure-severity mix: L1-only (fast but fragile) against the SCR-style
//! L1/L2/L3 rotation.

use std::fmt::Write as _;

use deep_apps::StencilState;
use deep_core::{
    fmt_bytes, fmt_f, mean_multilevel_efficiency, measure_level_costs, DeepConfig,
    MultiLevelParams, Table,
};
use deep_io::CkptLevel;

pub fn run(out: &mut String) {
    let cfg = DeepConfig::small();
    let ranks = 8u32;
    // Job state sized from the application hook: a 4096² Jacobi field
    // split over 8 ranks (~16 MiB per rank), scaled 16x to a realistic
    // restart-relevant working set.
    let bytes_per_rank = 16 * StencilState::max_state_bytes(ranks, 4096, 4096);

    let costs = measure_level_costs(&cfg, ranks, bytes_per_rank, 1);

    let mut t = Table::new(
        "ER01a",
        "measured checkpoint cost per level (8 ranks)",
        &["level", "state/rank", "write [ms]", "restore [ms]", "vs L1"],
    );
    for (i, level) in CkptLevel::ALL.into_iter().enumerate() {
        t.row(&[
            level.name().to_string(),
            fmt_bytes(bytes_per_rank),
            fmt_f(costs[i].write_s * 1e3),
            fmt_f(costs[i].restore_s * 1e3),
            fmt_f(costs[i].write_s / costs[0].write_s),
        ]);
    }
    t.write_into(out);

    // Part 2: feed the measured costs into the resilience model. Flaky
    // machine (system MTBF ~ 1.7 h) with a severity mix in which 10% of
    // failures take out several nodes at once.
    let base = MultiLevelParams {
        work_s: 100_000.0,
        n_nodes: 640,
        mtbf_node_s: 0.45 * 365.0 * 86_400.0,
        interval_s: 600.0,
        levels: costs,
        l2_every: 4,
        l3_every: 16,
        restart_s: 120.0,
        severity_weights: [0.6, 0.3, 0.1],
    };

    let mut t = Table::new(
        "ER01b",
        "checkpoint policy under a failure-severity mix (measured level costs)",
        &["policy", "efficiency", "truncated runs"],
    );
    for (name, p) in [
        ("L1 only", base.l1_only()),
        ("L1+L2 (every 4th)", base.rotation_policy(4, 0)),
        ("L1+L2+L3 rotation", base),
    ] {
        let m = mean_multilevel_efficiency(&p, 7, 16);
        t.row(&[
            name.to_string(),
            fmt_f(m.efficiency),
            m.truncated_runs.to_string(),
        ]);
    }
    t.write_into(out);

    let _ = writeln!(
        out,
        "shape: the local NVM checkpoint is an order of magnitude cheaper\n\
         than draining the same state through the BI bridges onto the PFS\n\
         (ER01a), so the rotation policy checkpoints almost as cheaply as\n\
         L1-only — but when a failure takes out several nodes at once only\n\
         levels L2/L3 still hold a copy: L1-only loses all progress at\n\
         every multi-node event while the rotation recovers and finishes\n\
         (ER01b). Multi-level checkpointing buys PFS-grade durability at\n\
         near-NVM cost — the DEEP-ER resiliency argument, quantified."
    );
}
