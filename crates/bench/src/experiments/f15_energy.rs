//! F15 — slide 15: "Energy efficient: 5 GFlop/W" (Xeon Phi).
//!
//! Runs a DGEMM-like roofline kernel and a memory-bound SpMV on the
//! cluster node and the booster node, reporting sustained performance and
//! achieved energy efficiency from the power model.

use std::fmt::Write as _;

use deep_core::{fmt_f, Table};
use deep_hw::{exec_time, EnergyMeter, KernelProfile, NodeModel};

pub fn run(out: &mut String) {
    let nodes = [NodeModel::xeon_cluster_node(), NodeModel::xeon_phi_knc()];
    let kernels: [(&str, KernelProfile); 2] = [
        ("DGEMM n=4096", KernelProfile::dgemm(4096)),
        ("SpMV nnz=5e8", KernelProfile::spmv(500_000_000)),
    ];

    let mut t = Table::new(
        "F15",
        "sustained performance and energy efficiency per node",
        &[
            "node",
            "kernel",
            "time",
            "sustained [GF/s]",
            "bound",
            "achieved GF/W",
            "peak GF/W",
        ],
    );
    for node in &nodes {
        for (name, k) in &kernels {
            let pt = exec_time(node, k, node.cores);
            let mut meter = EnergyMeter::new();
            meter.record(&node.power, pt.time, 1.0);
            let eff = meter.gflops_per_watt(k.flops);
            t.row(&[
                node.name.clone(),
                (*name).into(),
                format!("{}", pt.time),
                fmt_f(pt.sustained_flops / 1e9),
                if pt.memory_bound { "memory" } else { "compute" }.into(),
                fmt_f(eff),
                fmt_f(node.peak_gflops_per_watt()),
            ]);
        }
    }
    t.write_into(out);

    let xeon = &nodes[0];
    let knc = &nodes[1];
    let _ = writeln!(
        out,
        "peak efficiency: KNC {:.2} GF/W vs Xeon node {:.2} GF/W — factor\n\
         {:.1}, reproducing the slide-15 \"5 GFlop/W\" claim (peak/TDP).\n\
         Note the flip side the paper also acknowledges: on memory-bound or\n\
         scalar code the booster's advantage shrinks or disappears, which is\n\
         why only the *highly scalable, vectorisable* kernels move there.",
        knc.peak_gflops_per_watt(),
        xeon.peak_gflops_per_watt(),
        knc.peak_gflops_per_watt() / xeon.peak_gflops_per_watt()
    );
}
