//! F18 — slide 18: positioning DEEP between highly scalable
//! architectures (Blue Gene) and low/medium-scalable clusters.
//!
//! For each application class we estimate sustained performance per MW on
//! three machines, using the roofline + network models. The figure's
//! point: BG-class machines win on regular codes, clusters win on complex
//! codes, and the DEEP machine spans both because each part of an
//! application runs on the side that suits it.

use std::fmt::Write as _;

use deep_core::{fmt_f, Table};
use deep_hw::{exec_time, exec_time_with_mode, KernelProfile, NodeModel};
use deep_psmpi::NetModel;

struct AppClass {
    name: &'static str,
    /// Per-node kernel (weak-scaled work unit).
    kernel: KernelProfile,
    /// Vectorises well?
    vectorised: bool,
    /// Communication fraction multiplier on a cluster-class network at
    /// scale (complex patterns hurt much more).
    comm_model: fn(&NetModel, u64) -> f64,
}

fn regular_comm(m: &NetModel, n: u64) -> f64 {
    (m.p2p(64 << 10) * 2 + m.allreduce(n, 8)).as_secs_f64()
}

fn complex_comm(m: &NetModel, n: u64) -> f64 {
    (m.alltoall(n, 4 << 10) + m.p2p(64 << 10) * 2).as_secs_f64()
}

pub fn run(out: &mut String) {
    let apps = [
        AppClass {
            name: "regular sparse (HSCP)",
            kernel: KernelProfile::spmv(40_000_000),
            vectorised: true,
            comm_model: regular_comm,
        },
        AppClass {
            name: "dense vector kernel",
            kernel: KernelProfile::dgemm(2048),
            vectorised: true,
            comm_model: regular_comm,
        },
        AppClass {
            name: "complex multiphysics",
            kernel: KernelProfile {
                flops: 2e9,
                bytes: 1e9,
                compute_efficiency: 0.6,
                bandwidth_efficiency: 0.5,
            },
            vectorised: false,
            comm_model: complex_comm,
        },
    ];

    // Machines: (name, node model, network, node count at ~1 MW).
    let machines: [(&str, NodeModel, NetModel); 3] = [
        (
            "BG/Q-like (highly scalable)",
            NodeModel::bluegene_q_node(),
            NetModel::extoll(), // BG torus: similar latency class
        ),
        (
            "Xeon cluster (low/medium)",
            NodeModel::xeon_cluster_node(),
            NetModel::ib_fdr(),
        ),
        (
            "DEEP cluster-booster",
            NodeModel::xeon_phi_knc(), // HSCP side; complex side handled below
            NetModel::extoll(),
        ),
    ];

    let mut t = Table::new(
        "F18",
        "sustained Gflop/s per MW by application class (weak-scaled to ~1 MW)",
        &["application class", "BG/Q-like", "Xeon cluster", "DEEP"],
    );

    for app in &apps {
        let mut cells = vec![app.name.to_string()];
        for (mi, (_, node, net)) in machines.iter().enumerate() {
            // DEEP runs complex code on its Xeon side, regular on booster.
            let (node, net) = if mi == 2 && !app.vectorised {
                (NodeModel::xeon_cluster_node(), NetModel::ib_fdr())
            } else {
                (node.clone(), *net)
            };
            let nodes_per_mw = (1e6 / node.power.peak_w) as u64;
            let p = if app.vectorised {
                exec_time(&node, &app.kernel, node.cores)
            } else {
                exec_time_with_mode(&node, &app.kernel, node.cores, false)
            };
            let t_comp = p.time.as_secs_f64();
            let t_comm = (app.comm_model)(&net, nodes_per_mw);
            let eff = t_comp / (t_comp + t_comm);
            let sustained_per_mw = p.sustained_flops * eff * nodes_per_mw as f64 / 1e9;
            cells.push(fmt_f(sustained_per_mw / 1e3)); // in TF/MW
        }
        t.row(&cells);
    }
    t.write_into(out);
    let _ = writeln!(
        out,
        "(values in TFlop/s per MW.) shape: the BG-like machine and the DEEP\n\
         booster dominate on regular/vectorisable classes; the Xeon cluster\n\
         wins on complex scalar code; only DEEP is near the top of *both*\n\
         rows — the dual positioning of slide 18."
    );
}
