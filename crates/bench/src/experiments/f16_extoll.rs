//! F16 — slide 16: the EXTOLL NIC features.
//!
//! * VELO small-message latency vs payload size (zero-copy MPI path);
//! * RMA streaming bandwidth vs payload size;
//! * per-hop latency scaling on the 3-D torus (6-link router);
//! * CRC + link-level retransmission under injected bit errors (RAS).

use std::fmt::Write as _;

use std::rc::Rc;

use crate::size_label;
use deep_core::{fmt_f, Table};
use deep_fabric::{ExtollFabric, FaultModel, NodeId};
use deep_simkit::Simulation;

pub fn run(out: &mut String) {
    // --- VELO latency + RMA bandwidth --------------------------------
    let mut t = Table::new(
        "F16a",
        "VELO latency and RMA bandwidth vs payload",
        &[
            "payload",
            "VELO latency [µs]",
            "RMA put [µs]",
            "RMA goodput [GB/s]",
        ],
    );
    for shift in [3u32, 6, 9, 12, 13, 16, 20, 24] {
        let bytes = 1u64 << shift;
        let velo = if bytes <= 8192 {
            fmt_f(crate::probe_fabric("extoll-velo", bytes) * 1e6)
        } else {
            "-".into() // beyond the VELO engine limit
        };
        let rma = crate::probe_fabric("extoll-rma", bytes);
        t.row(&[
            size_label(bytes),
            velo,
            fmt_f(rma * 1e6),
            fmt_f(bytes as f64 / rma / 1e9),
        ]);
    }
    t.write_into(out);

    // --- Torus hop scaling -------------------------------------------
    let mut t2 = Table::new(
        "F16b",
        "torus distance scaling (8x8x8, dimension-ordered routing)",
        &["hops", "VELO 8 B latency [µs]"],
    );
    for hops in 1..=12u32 {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let ext = Rc::new(ExtollFabric::new(&ctx, (8, 8, 8)));
        // Pick a destination at the wanted torus distance along the axes.
        let dst = match hops {
            1..=4 => NodeId(hops),
            5..=8 => NodeId(4 + 8 * (hops - 4)),
            _ => NodeId(4 + 8 * 4 + 64 * (hops - 8)),
        };
        assert_eq!(ext.hop_count(NodeId(0), dst), hops);
        let e = ext.clone();
        let h = sim.spawn("probe", async move {
            e.velo_send(NodeId(0), dst, 8).await.unwrap().elapsed
        });
        sim.run().assert_completed();
        t2.row(&[
            hops.to_string(),
            fmt_f(h.try_result().unwrap().as_nanos() as f64 / 1e3),
        ]);
    }
    t2.write_into(out);

    // --- RAS: goodput under injected CRC errors ----------------------
    let mut t3 = Table::new(
        "F16c",
        "link-level retransmission: 16 MiB RMA under segment error rates",
        &[
            "segment error rate",
            "retransmissions",
            "goodput [GB/s]",
            "vs clean",
        ],
    );
    let clean = {
        let mut sim = Simulation::new(7);
        let ctx = sim.handle();
        let ext = Rc::new(ExtollFabric::new(&ctx, (4, 4, 4)));
        let e = ext.clone();
        let h = sim.spawn("probe", async move {
            e.rma_put(NodeId(0), NodeId(3), 16 << 20).await.unwrap()
        });
        sim.run().assert_completed();
        h.try_result().unwrap().goodput_bps()
    };
    for rate in [0.0, 1e-4, 1e-3, 1e-2, 5e-2, 0.2] {
        let mut sim = Simulation::new(7);
        let ctx = sim.handle();
        let ext = Rc::new(
            ExtollFabric::new(&ctx, (4, 4, 4)).with_fault_model(FaultModel {
                segment_error_rate: rate,
                max_retries: 64,
            }),
        );
        let e = ext.clone();
        let h = sim.spawn("probe", async move {
            e.rma_put(NodeId(0), NodeId(3), 16 << 20).await.unwrap()
        });
        sim.run().assert_completed();
        let st = h.try_result().unwrap();
        t3.row(&[
            format!("{rate:.0e}"),
            st.retransmissions.to_string(),
            fmt_f(st.goodput_bps() / 1e9),
            fmt_f(st.goodput_bps() / clean),
        ]);
    }
    t3.write_into(out);
    let _ = writeln!(
        out,
        "shape: sub-µs VELO latency for small messages; RMA saturates the\n\
         ~7 GB/s link for bulk; latency grows by one 60 ns router hop per\n\
         torus step; CRC retransmission degrades goodput gracefully instead\n\
         of failing — the RAS behaviour slide 16 advertises."
    );
}
