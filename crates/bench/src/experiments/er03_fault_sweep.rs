//! ER03 — cross-validating the discrete-event resilience run against the
//! analytic Monte-Carlo model across a node-MTBF sweep.
//!
//! Each sweep point runs the multi-level checkpoint scenario twice per
//! replica from the *same* RNG stream: once as a discrete-event job on
//! the simulated DEEP machine (every checkpoint and restore is real
//! NVM/torus/PFS I/O, failures strike wherever virtual time finds the
//! job) and once through `simulate_multilevel`, the closed-form model
//! with fixed per-level costs. If the DES efficiency tracks the model at
//! every MTBF point, the cheap analytic model can be trusted for the
//! large design-space sweeps — and the DES fault machinery is pinned to
//! an independent implementation of the same physics.

use std::fmt::Write as _;

use deep_core::{fmt_f, Table};
use deep_faults::{er03_params, fault_sweep};

pub fn run(out: &mut String) {
    let (config, ranks, bytes_per_rank, base) = er03_params();
    // From "a failure every few minutes" to "failures are rare at this
    // job scale" (system MTBF = node MTBF / 8).
    let mtbfs = [100.0, 250.0, 600.0, 2000.0];
    let replicas = 10;
    let seed = 9;

    let points = fault_sweep(
        &config,
        ranks,
        bytes_per_rank,
        &base,
        &mtbfs,
        seed,
        replicas,
    );

    let mut t = Table::new(
        "ER03",
        "DES vs analytic multi-level resilience, swept over node MTBF",
        &[
            "node MTBF [s]",
            "system MTBF [s]",
            "DES eff",
            "MC eff",
            "gap",
            "DES trunc",
            "MC trunc",
        ],
    );
    let mut worst_gap = 0.0f64;
    for pt in &points {
        let gap = (pt.des.efficiency - pt.mc.efficiency).abs();
        worst_gap = worst_gap.max(gap);
        t.row(&[
            fmt_f(pt.mtbf_node_s),
            fmt_f(pt.mtbf_node_s / ranks as f64),
            fmt_f(pt.des.efficiency),
            fmt_f(pt.mc.efficiency),
            fmt_f(gap),
            pt.des.truncated_runs.to_string(),
            pt.mc.truncated_runs.to_string(),
        ]);
    }
    t.write_into(out);

    let _ = writeln!(
        out,
        "shape: both curves climb monotonically with node MTBF — frequent\n\
         failures burn wall time in restarts and lost segments, rare ones\n\
         leave only the checkpoint overhead — and the discrete-event run\n\
         stays within {} of the analytic model at every point (paired RNG\n\
         streams: same failure times, same severities). The residual gap\n\
         is the model's fixed per-level cost versus the machine's\n\
         state-dependent I/O timing. Agreement across the sweep is the\n\
         ER03 acceptance criterion, asserted in tests/experiment_shapes.rs.",
        fmt_f(worst_gap)
    );
}
