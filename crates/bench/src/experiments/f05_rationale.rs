//! F05 — slide 5: the rationale numbers.
//!
//! * Blue Gene/P → /Q: ≈ ×20 in compute at the same energy envelope.
//! * Commodity processors: only ×4–8 in 4 years.
//! * Conclusion: clusters must use accelerators → DEEP.

use std::fmt::Write as _;

use deep_core::{fmt_f, Table};
use deep_hw::NodeModel;

pub fn run(out: &mut String) {
    let mut t = Table::new(
        "F05",
        "generation steps: proprietary vs commodity",
        &[
            "comparison",
            "years",
            "speed factor",
            "power factor",
            "GF/W factor",
        ],
    );

    // Per-node Blue Gene step (P 2007 -> Q 2011).
    let p = NodeModel::bluegene_p_node();
    let q = NodeModel::bluegene_q_node();
    let bg_speed = q.peak_flops() / p.peak_flops();
    let bg_power = q.power.peak_w / p.power.peak_w;
    t.row(&[
        "BG/P node -> BG/Q node".into(),
        (q.year - p.year).to_string(),
        fmt_f(bg_speed),
        fmt_f(bg_power),
        fmt_f(q.peak_gflops_per_watt() / p.peak_gflops_per_watt()),
    ]);

    // Installation-level (Jülich): JUGENE 16-rack (223 TF, 2007) -> JUQUEEN
    // (5.9 PF, 2013) at a comparable machine-room envelope.
    t.row(&[
        "JUGENE (16r) -> JUQUEEN".into(),
        "6".into(),
        fmt_f(5_900_000.0 / 223_000.0),
        fmt_f(2_300.0 / 560.0),
        fmt_f((5_900_000.0 / 2_300.0) / (223_000.0 / 560.0)),
    ]);

    // Commodity per-socket peak: Nehalem-EP (2009) -> Sandy Bridge-EP (2012).
    let nehalem = 4.0 * 2.93e9 * 4.0;
    let snb = 8.0 * 2.7e9 * 8.0;
    t.row(&[
        "Nehalem-EP -> SandyBridge-EP socket".into(),
        "3-4".into(),
        fmt_f(snb / nehalem),
        "~1.0".into(),
        fmt_f(snb / nehalem),
    ]);

    // The accelerator answer: Xeon node vs Xeon Phi card (2012).
    let xeon = NodeModel::xeon_cluster_node();
    let knc = NodeModel::xeon_phi_knc();
    t.row(&[
        "Xeon node -> Xeon Phi (KNC)".into(),
        "0".into(),
        fmt_f(knc.peak_flops() / xeon.peak_flops()),
        fmt_f(knc.power.peak_w / xeon.power.peak_w),
        fmt_f(knc.peak_gflops_per_watt() / xeon.peak_gflops_per_watt()),
    ]);
    t.write_into(out);

    let _ = writeln!(
        out,
        "paper's claims: BG/P->BG/Q ~x20 at the same envelope (we get ~x{:.0}\n\
         per generation at Jülich, ~x15 per node); commodity CPUs x4-8 per\n\
         4 years (we get ~x{:.1}); accelerators close the gap at ~x5 better\n\
         energy efficiency — hence the booster.",
        5_900_000.0 / 223_000.0,
        snb / nehalem
    );
}
