//! A31 (ablation) — Booster-Interface selection policy in the
//! Cluster–Booster Protocol: static flow hashing vs least-loaded
//! (credit-based) selection, under skewed flow mixes.

use std::fmt::Write as _;

use std::rc::Rc;

use deep_cbp::{BiSelect, CbpConfig, CbpWire, CbpWireHandle};
use deep_core::{fmt_f, Table};
use deep_fabric::{ExtollFabric, IbFabric};
use deep_psmpi::Wire;
use deep_simkit::{Sim, Simulation};

fn machine(sim: &Sim, select: BiSelect, n_bi: u32) -> Rc<CbpWire> {
    let ib = Rc::new(IbFabric::new(sim, 16 + n_bi));
    let extoll = Rc::new(ExtollFabric::new(sim, (4, 4, 4)));
    let stride = 64 / n_bi;
    let mut cfg = CbpConfig::new(16, 64, (0..n_bi).map(|i| (16 + i, i * stride)).collect());
    cfg.bi_select = select;
    cfg.stripe_threshold = u64::MAX;
    CbpWire::new(sim, ib, extoll, cfg)
}

/// Run a skewed mix: flow c carries (c+1)·4 MiB. Returns (completion s,
/// byte imbalance max/mean over BIs).
fn run_mix(select: BiSelect, n_bi: u32, seed: u64) -> (f64, f64) {
    let mut sim = Simulation::new(seed);
    let ctx = sim.handle();
    let w = machine(&ctx, select, n_bi);
    for c in 0..16u32 {
        let handle = CbpWireHandle(w.clone());
        let src = w.cluster_ep(c);
        let dst = w.booster_ep((c * 11 + seed as u32) % 64);
        let bytes = (c as u64 % 8 + 1) * (4 << 20);
        sim.spawn(format!("f{c}"), async move {
            handle.transfer(src, dst, bytes).await.unwrap();
        });
    }
    sim.run().assert_completed();
    let per_bi = w.bi_traffic();
    let bytes: Vec<f64> = per_bi.iter().map(|s| s.bytes as f64).collect();
    let mean = bytes.iter().sum::<f64>() / bytes.len() as f64;
    let max = bytes.iter().cloned().fold(0.0, f64::max);
    (sim.now().as_secs_f64(), max / mean.max(1.0))
}

pub fn run(out: &mut String) {
    let mut t = Table::new(
        "A31",
        "BI selection ablation: 16 skewed flows",
        &[
            "BIs",
            "policy",
            "completion [ms]",
            "byte imbalance (max/mean)",
        ],
    );
    // Fully flattened (BIs × policy × seed) work-unit grid
    // (EXPERIMENTS.md convention): every unit is one independent
    // simulation, individually stealable, instead of 6 cases each
    // hiding a serial 3-seed loop. The per-case seed average folds in
    // seed order afterwards, so the table is identical at any thread
    // count — and to the pre-flattening nested form, since `run_mix` is
    // a pure function of `(policy, n_bi, seed)`.
    const SEEDS: u64 = 3;
    let mut cases: Vec<(u32, &str, BiSelect)> = Vec::new();
    for n_bi in [2u32, 4, 8] {
        for (name, sel) in [
            ("flow-hash", BiSelect::FlowHash),
            ("least-loaded", BiSelect::LeastLoaded),
        ] {
            cases.push((n_bi, name, sel));
        }
    }
    let units: Vec<(u32, BiSelect, u64)> = cases
        .iter()
        .flat_map(|&(n_bi, _, sel)| (1..=SEEDS).map(move |seed| (n_bi, sel, seed)))
        .collect();
    let mixes = crate::sweep::par_sweep(&units, |_, &(n_bi, sel, seed)| run_mix(sel, n_bi, seed));
    for (case_idx, &(n_bi, name, _)) in cases.iter().enumerate() {
        // Average over the 3 flow layouts, in seed order.
        let mut time = 0.0;
        let mut imb = 0.0;
        for &(t_, i_) in &mixes[case_idx * SEEDS as usize..(case_idx + 1) * SEEDS as usize] {
            time += t_;
            imb += i_;
        }
        t.row(&[
            n_bi.to_string(),
            name.into(),
            fmt_f(time / 3.0 * 1e3),
            fmt_f(imb / 3.0),
        ]);
    }
    t.write_into(out);
    let _ = writeln!(
        out,
        "shape: with few BIs every interface is saturated anyway and the\n\
         policies tie; with many BIs static hashing strands capacity (up to\n\
         ~2.3x byte imbalance at 8 BIs) while least-loaded selection\n\
         flattens it and trims the tail completion by ~20%. DEEP's actual\n\
         answer — few BIs plus striping of bulk transfers — avoids needing\n\
         adaptive selection at all."
    );
}
