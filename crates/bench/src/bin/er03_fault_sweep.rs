//! ER03 — cross-validating the discrete-event resilience run against the
//! analytic Monte-Carlo model across a node-MTBF sweep.
//!
//! Each sweep point runs the multi-level checkpoint scenario twice per
//! replica from the *same* RNG stream: once as a discrete-event job on
//! the simulated DEEP machine (every checkpoint and restore is real
//! NVM/torus/PFS I/O, failures strike wherever virtual time finds the
//! job) and once through `simulate_multilevel`, the closed-form model
//! with fixed per-level costs. If the DES efficiency tracks the model at
//! every MTBF point, the cheap analytic model can be trusted for the
//! large design-space sweeps — and the DES fault machinery is pinned to
//! an independent implementation of the same physics.
//!
//! Logic lives in `deep_bench::experiments::er03_fault_sweep` so the
//! `run_experiments` driver can run it in-process; this wrapper only
//! prints the rendered buffer.

#![forbid(unsafe_code)]

fn main() {
    deep_bench::run_experiment_main("er03_fault_sweep");
}
