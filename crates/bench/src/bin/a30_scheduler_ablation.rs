//! A30 (ablation) — ready-queue policy of the OmpSs runtime: FIFO vs
//! critical-path-first list scheduling, on the tiled Cholesky and on an
//! adversarial chain-plus-swarm DAG.
//!
//! Logic lives in `deep_bench::experiments::a30_scheduler_ablation` so the
//! `run_experiments` driver can run it in-process; this wrapper only
//! prints the rendered buffer.

#![forbid(unsafe_code)]

fn main() {
    deep_bench::run_experiment_main("a30_scheduler_ablation");
}
