//! A32 (ablation) — the MPI eager/rendezvous threshold.
//!
//! Small thresholds force handshakes (extra round trip) onto medium
//! messages; huge thresholds buffer-copy bulk data and hide sender-side
//! completion semantics. Sweeps the threshold against a halo-exchange
//! workload and a one-sided stream of mixed sizes.
//!
//! Logic lives in `deep_bench::experiments::a32_eager_threshold` so the
//! `run_experiments` driver can run it in-process; this wrapper only
//! prints the rendered buffer.

#![forbid(unsafe_code)]

fn main() {
    deep_bench::run_experiment_main("a32_eager_threshold");
}
