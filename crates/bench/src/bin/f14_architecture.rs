//! F14 — slides 11–14: the DEEP prototype system, quantitatively.
//!
//! Prints the machine inventory of the configured prototype — node
//! counts, fabric shapes, aggregate peaks and power — the numbers behind
//! the architecture diagram.
//!
//! Logic lives in `deep_bench::experiments::f14_architecture` so the
//! `run_experiments` driver can run it in-process; this wrapper only
//! prints the rendered buffer.

#![forbid(unsafe_code)]

fn main() {
    deep_bench::run_experiment_main("f14_architecture");
}
