//! F29 — slide 29: the global-MPI stack — ParaStation MPI over
//! InfiniBand and EXTOLL, joined by the Cluster–Booster Protocol through
//! the Booster Interfaces.
//!
//! Measures (a) aggregate cluster→booster throughput vs the number of
//! BIs under a many-flow load, and (b) the per-message latency overhead
//! of crossing the bridge vs staying inside one fabric.
//!
//! Logic lives in `deep_bench::experiments::f29_global_mpi` so the
//! `run_experiments` driver can run it in-process; this wrapper only
//! prints the rendered buffer.

#![forbid(unsafe_code)]

fn main() {
    deep_bench::run_experiment_main("f29_global_mpi");
}
