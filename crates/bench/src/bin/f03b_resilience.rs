//! F03b — slide 3's second exascale challenge: **resiliency**.
//!
//! Checkpoint/restart efficiency as machines grow from the DEEP prototype
//! (640 nodes) towards exascale part counts, with the checkpoint-interval
//! sweep compared against Daly's first-order optimum √(2·C·MTBF/n).
//!
//! Logic lives in `deep_bench::experiments::f03b_resilience` so the
//! `run_experiments` driver can run it in-process; this wrapper only
//! prints the rendered buffer.

#![forbid(unsafe_code)]

fn main() {
    deep_bench::run_experiment_main("f03b_resilience");
}
