//! F06 — slides 6–7: the accelerated-cluster pathologies.
//!
//! 1. Offload round trip: host-staged PCIe (driver path) vs direct
//!    fabric-attached accelerator, across kernel-data sizes.
//! 2. GPU↔GPU cross-node transfer: D2H + IB + H2D staging vs a single
//!    direct-fabric hop (the "communication so far via main memory" cost).
//!
//! Logic lives in `deep_bench::experiments::f06_accel_cluster` so the
//! `run_experiments` driver can run it in-process; this wrapper only
//! prints the rendered buffer.

#![forbid(unsafe_code)]

fn main() {
    deep_bench::run_experiment_main("f06_accel_cluster");
}
