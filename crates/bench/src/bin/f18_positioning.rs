//! F18 — slide 18: positioning DEEP between highly scalable
//! architectures (Blue Gene) and low/medium-scalable clusters.
//!
//! For each application class we estimate sustained performance per MW on
//! three machines, using the roofline + network models. The figure's
//! point: BG-class machines win on regular codes, clusters win on complex
//! codes, and the DEEP machine spans both because each part of an
//! application runs on the side that suits it.
//!
//! Logic lives in `deep_bench::experiments::f18_positioning` so the
//! `run_experiments` driver can run it in-process; this wrapper only
//! prints the rendered buffer.

#![forbid(unsafe_code)]

fn main() {
    deep_bench::run_experiment_main("f18_positioning");
}
