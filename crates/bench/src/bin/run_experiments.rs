//! Drive the full experiment suite in one process.
//!
//! Replaces the EXPERIMENTS.md shell loop (which silently skipped
//! binaries once): the registry in `deep_bench::experiments` is the
//! single source of truth, experiments fan out across the rayon pool —
//! each rendering into its own buffer, printed in registry order — and
//! any panic fails the whole run with a non-zero exit.
//!
//! ```text
//! run_experiments [--list] [--only a,b,c] [--json PATH] [--quiet]
//!                 [--cache-dir PATH]
//! ```
//!
//! * `--list`      — print registry names and exit.
//! * `--only`      — run a comma-separated subset (unknown names fail).
//! * `--json`      — also write machine-readable suite timings.
//! * `--quiet`     — suppress experiment output, keep the timing table.
//! * `--cache-dir` — memoise results across runs: each experiment's
//!   output is keyed by the canonical digest of its config
//!   (`deep_json::digest` over `{"experiment": name}`) and spilled to
//!   PATH; a later run with the same digest replays the stored bytes
//!   instead of simulating. The keying and spill format are shared
//!   with the `deep-serve` daemon, so a daemon pointed at the same
//!   directory serves these entries as cache hits (and vice versa) —
//!   sound only because experiment output is a pure function of the
//!   config, which the determinism suite enforces.
//!
//! Experiment *outputs* are deterministic at any `RAYON_NUM_THREADS`
//! (see DESIGN.md on the parallel determinism model); the wall-clock
//! table is measurement, not simulation, and varies run to run. A
//! worker that finishes its experiment steals queued work from others,
//! so per-experiment times under contention can exceed their solo
//! cost — the suite total is the honest number.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use deep_bench::experiments::{self, Experiment};
use deep_core::Table;
use rayon::prelude::*;

struct Outcome {
    name: &'static str,
    /// Rendered output, or the panic message.
    result: Result<String, String>,
    seconds: f64,
    /// Replayed from the digest cache instead of simulated.
    cached: bool,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn run_one(e: &Experiment) -> Outcome {
    let t0 = Instant::now();
    let result = catch_unwind(AssertUnwindSafe(|| {
        let mut out = String::new();
        (e.run)(&mut out);
        out
    }))
    .map_err(panic_message);
    Outcome {
        name: e.name,
        result,
        seconds: t0.elapsed().as_secs_f64(),
        cached: false,
    }
}

/// The cache key for an experiment: canonical digest of the same spec
/// JSON a `deep-serve` submission would carry.
fn cache_key(name: &str) -> u64 {
    deep_json::digest::digest(&deep_json::object([("experiment", name.into())]))
}

fn usage() -> ! {
    eprintln!(
        "usage: run_experiments [--list] [--only a,b,c] [--json PATH] [--quiet] \
         [--cache-dir PATH]"
    );
    std::process::exit(2);
}

fn main() {
    let mut only: Option<Vec<String>> = None;
    let mut json_path: Option<String> = None;
    let mut cache_dir: Option<String> = None;
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list" => {
                for e in experiments::ALL {
                    println!("{}", e.name);
                }
                return;
            }
            "--only" => {
                let names = args.next().unwrap_or_else(|| usage());
                only = Some(names.split(',').map(str::to_string).collect());
            }
            "--json" => json_path = Some(args.next().unwrap_or_else(|| usage())),
            "--cache-dir" => cache_dir = Some(args.next().unwrap_or_else(|| usage())),
            "--quiet" => quiet = true,
            _ => usage(),
        }
    }

    let selected: Vec<&Experiment> = match &only {
        None => experiments::ALL.iter().collect(),
        Some(names) => names
            .iter()
            .map(|n| {
                experiments::find(n).unwrap_or_else(|| {
                    eprintln!("unknown experiment: {n} (see --list)");
                    std::process::exit(2);
                })
            })
            .collect(),
    };

    // Cross-run memoisation: look every selected experiment up in the
    // digest cache first (sequential — the cache is &mut), run only
    // the misses in parallel, then spill the fresh results back.
    let mut cache = cache_dir.as_ref().map(|dir| {
        deep_json::cache::ResultCache::with_spill_dir(1024, std::path::Path::new(dir))
            .unwrap_or_else(|e| panic!("cannot open cache dir {dir}: {e}"))
    });
    let cached: Vec<Option<String>> = match cache.as_mut() {
        None => vec![None; selected.len()],
        Some(cache) => selected
            .iter()
            .map(|e| {
                cache
                    .get(cache_key(e.name))
                    .and_then(|v| v["output"].as_str().map(str::to_string))
            })
            .collect(),
    };

    // Execution order is heaviest-first (LPT list scheduling on the
    // registry's static weights) and every experiment is its own leaf
    // (`with_max_len(1)`), so the expensive experiments are in flight
    // from t=0 and individually stealable instead of queueing behind a
    // leaf-mate or starting last and becoming the suite's Amdahl tail.
    // Output stays in registry order: results scatter back into
    // registry-indexed slots below.
    let mut order: Vec<usize> = (0..selected.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(selected[i].weight));
    let threads = rayon::current_num_threads();
    let t0 = Instant::now();
    let by_order: Vec<Outcome> = order
        .par_iter()
        .with_max_len(1)
        .map(|&i| match &cached[i] {
            Some(output) => Outcome {
                name: selected[i].name,
                result: Ok(output.clone()),
                seconds: 0.0,
                cached: true,
            },
            None => run_one(selected[i]),
        })
        .collect();
    let suite_wall = t0.elapsed().as_secs_f64();
    let mut slots: Vec<Option<Outcome>> = (0..selected.len()).map(|_| None).collect();
    for (k, outcome) in by_order.into_iter().enumerate() {
        slots[order[k]] = Some(outcome);
    }
    let outcomes: Vec<Outcome> = slots
        .into_iter()
        .map(|s| s.expect("every slot ran"))
        .collect();

    if let Some(cache) = cache.as_mut() {
        for o in outcomes.iter().filter(|o| !o.cached) {
            if let Ok(output) = &o.result {
                // Same value shape as a deep-serve experiment result,
                // so daemon and driver can share the directory.
                let value = deep_json::object([
                    ("experiment", o.name.into()),
                    ("output", output.as_str().into()),
                ]);
                if let Err(e) = cache.insert(cache_key(o.name), value) {
                    eprintln!("warning: cache spill failed for {}: {e}", o.name);
                }
            }
        }
    }

    // Buffers print in registry order, regardless of completion order.
    let mut failures = 0usize;
    for o in &outcomes {
        match &o.result {
            Ok(out) => {
                if !quiet {
                    print!("{out}");
                }
            }
            Err(msg) => {
                failures += 1;
                println!("!! {} FAILED: {msg}\n", o.name);
            }
        }
    }

    let mut t = Table::new(
        "SUITE",
        &format!("per-experiment wall clock ({threads} threads)"),
        &["experiment", "seconds", "status"],
    );
    for o in &outcomes {
        t.row(&[
            o.name.to_string(),
            format!("{:.3}", o.seconds),
            match (&o.result, o.cached) {
                (Ok(_), true) => "ok (cached)",
                (Ok(_), false) => "ok",
                (Err(_), _) => "FAILED",
            }
            .to_string(),
        ]);
    }
    t.row(&[
        "TOTAL (suite wall)".to_string(),
        format!("{suite_wall:.3}"),
        format!("{}/{} ok", outcomes.len() - failures, outcomes.len()),
    ]);
    t.print();

    if let Some(path) = json_path {
        let mut j = String::from("{\n");
        let _ = writeln!(j, "  \"threads\": {threads},");
        let _ = writeln!(j, "  \"suite_wall_seconds\": {suite_wall:.6},");
        let _ = writeln!(j, "  \"failures\": {failures},");
        let _ = writeln!(j, "  \"experiments\": {{");
        for (i, o) in outcomes.iter().enumerate() {
            let comma = if i + 1 < outcomes.len() { "," } else { "" };
            let _ = writeln!(j, "    \"{}\": {:.6}{comma}", o.name, o.seconds);
        }
        let _ = writeln!(j, "  }}");
        j.push_str("}\n");
        std::fs::write(&path, &j).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("wrote {path}");
    }

    if failures > 0 {
        eprintln!("{failures} experiment(s) failed");
        std::process::exit(1);
    }
}
