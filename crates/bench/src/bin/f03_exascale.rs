//! F03 — slide 3 (bonus): "Power consumption (are ~100 MW acceptable?)".
//!
//! Projects the facility power of a hypothetical 1-EFlop machine built
//! from each node type of the 2012/2013 era, the arithmetic behind the
//! paper's exascale anxiety.
//!
//! Logic lives in `deep_bench::experiments::f03_exascale` so the
//! `run_experiments` driver can run it in-process; this wrapper only
//! prints the rendered buffer.

#![forbid(unsafe_code)]

fn main() {
    deep_bench::run_experiment_main("f03_exascale");
}
