//! F21 — slides 21 & 26–27: application startup via collective
//! `MPI_Comm_spawn` of the highly scalable code part onto the booster.
//!
//! Measures spawn cost vs the number of booster processes on the real
//! DEEP machine (control messages cross the CBP bridge, the launch fans
//! out over the EXTOLL torus as a binomial tree) and verifies the
//! O(log p) + per-process shape.
//!
//! Logic lives in `deep_bench::experiments::f21_spawn` so the
//! `run_experiments` driver can run it in-process; this wrapper only
//! prints the rendered buffer.

#![forbid(unsafe_code)]

fn main() {
    deep_bench::run_experiment_main("f21_spawn");
}
