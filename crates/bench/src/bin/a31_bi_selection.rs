//! A31 (ablation) — Booster-Interface selection policy in the
//! Cluster–Booster Protocol: static flow hashing vs least-loaded
//! (credit-based) selection, under skewed flow mixes.
//!
//! Logic lives in `deep_bench::experiments::a31_bi_selection` so the
//! `run_experiments` driver can run it in-process; this wrapper only
//! prints the rendered buffer.

#![forbid(unsafe_code)]

fn main() {
    deep_bench::run_experiment_main("a31_bi_selection");
}
