//! F15 — slide 15: "Energy efficient: 5 GFlop/W" (Xeon Phi).
//!
//! Runs a DGEMM-like roofline kernel and a memory-bound SpMV on the
//! cluster node and the booster node, reporting sustained performance and
//! achieved energy efficiency from the power model.
//!
//! Logic lives in `deep_bench::experiments::f15_energy` so the
//! `run_experiments` driver can run it in-process; this wrapper only
//! prints the rendered buffer.

#![forbid(unsafe_code)]

fn main() {
    deep_bench::run_experiment_main("f15_energy");
}
