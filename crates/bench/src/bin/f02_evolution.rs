//! F02 — slides 2 & 4: supercomputer performance evolution.
//!
//! Meuer's law (×1000/decade) against Moore's law (×~100/decade), fitted
//! on the historical Top500-#1 series the slide plots.
//!
//! Logic lives in `deep_bench::experiments::f02_evolution` so the
//! `run_experiments` driver can run it in-process; this wrapper only
//! prints the rendered buffer.

#![forbid(unsafe_code)]

fn main() {
    deep_bench::run_experiment_main("f02_evolution");
}
