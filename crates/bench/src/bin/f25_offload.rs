//! F25 — slides 25 & 30–31: offload invocation granularity.
//!
//! A fixed amount of HSCP work (flops + boundary data) is offloaded from
//! the cluster to the booster in K invocations. Few large invocations
//! amortise latency and the per-invocation protocol; many small ones are
//! latency-bound — quantifying "which data is to be copied before/after a
//! booster code part" and the paper's preference for coarse kernels.
//!
//! Logic lives in `deep_bench::experiments::f25_offload` so the
//! `run_experiments` driver can run it in-process; this wrapper only
//! prints the rendered buffer.

#![forbid(unsafe_code)]

fn main() {
    deep_bench::run_experiment_main("f25_offload");
}
