//! F05 — slide 5: the rationale numbers.
//!
//! * Blue Gene/P → /Q: ≈ ×20 in compute at the same energy envelope.
//! * Commodity processors: only ×4–8 in 4 years.
//! * Conclusion: clusters must use accelerators → DEEP.
//!
//! Logic lives in `deep_bench::experiments::f05_rationale` so the
//! `run_experiments` driver can run it in-process; this wrapper only
//! prints the rendered buffer.

#![forbid(unsafe_code)]

fn main() {
    deep_bench::run_experiment_main("f05_rationale");
}
