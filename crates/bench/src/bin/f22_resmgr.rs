//! F22 — slide 21 (resource management): static vs dynamic booster
//! assignment, plus EASY backfill, on synthetic heterogeneous job mixes.
//!
//! Logic lives in `deep_bench::experiments::f22_resmgr` so the
//! `run_experiments` driver can run it in-process; this wrapper only
//! prints the rendered buffer.

#![forbid(unsafe_code)]

fn main() {
    deep_bench::run_experiment_main("f22_resmgr");
}
