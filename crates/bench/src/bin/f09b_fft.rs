//! F09b — slide 9's two application classes, measured on real kernels.
//!
//! * CG on a 2-D Laplacian: nearest-neighbour halo + allreduce (the
//!   "sparse matrix-vector, highly regular" class);
//! * pencil 2-D FFT: personalised all-to-all transpose (the "complex"
//!   class).
//!
//! Both kernels compute real numbers over the simulated fabric (verified
//! against serial references in the test suite); their *communication*
//! time is measured by the DES, and the *compute* time per rank comes
//! from the roofline model of a KNC booster node. Total = compute + comm,
//! exactly how the machine would spend its time.
//!
//! Logic lives in `deep_bench::experiments::f09b_fft` so the
//! `run_experiments` driver can run it in-process; this wrapper only
//! prints the rendered buffer.

#![forbid(unsafe_code)]

fn main() {
    deep_bench::run_experiment_main("f09b_fft");
}
