//! A33 (ablation) — allreduce algorithm selection: recursive doubling vs
//! ring (reduce-scatter + allgather) vs reduce+bcast, across payload
//! sizes and group sizes, on the simulated InfiniBand fabric.
//!
//! Logic lives in `deep_bench::experiments::a33_allreduce_algorithms` so the
//! `run_experiments` driver can run it in-process; this wrapper only
//! prints the rendered buffer.

#![forbid(unsafe_code)]

fn main() {
    deep_bench::run_experiment_main("a33_allreduce_algorithms");
}
