//! A33 (ablation) — allreduce algorithm selection: recursive doubling vs
//! ring (reduce-scatter + allgather) vs reduce+bcast, across payload
//! sizes and group sizes, on the simulated InfiniBand fabric.

use std::rc::Rc;

use deep_core::{fmt_bytes, fmt_f, Table};
use deep_fabric::IbFabric;
use deep_psmpi::{launch_world, EpId, IbWire, MpiParams, ReduceOp, Universe, Value};
use deep_simkit::Simulation;

#[derive(Clone, Copy, PartialEq)]
enum Algo {
    RecursiveDoubling,
    Ring,
    ReduceBcast,
}

fn run(algo: Algo, ranks: u32, doubles: usize) -> f64 {
    let mut sim = Simulation::new(1);
    let ctx = sim.handle();
    let ib = Rc::new(IbFabric::new(&ctx, ranks));
    // Pin thresholds so the adaptive layer doesn't override the choice.
    let params = MpiParams {
        allreduce_ring_threshold: if algo == Algo::Ring { 0 } else { u64::MAX },
        ..MpiParams::default()
    };
    let uni = Universe::new(&ctx, Rc::new(IbWire::new(ib)), ranks as usize, params);
    launch_world(&uni, "ar", (0..ranks).map(EpId).collect(), move |m| {
        Box::pin(async move {
            let world = m.world().clone();
            let mine: Vec<f64> = vec![m.rank() as f64; doubles];
            let bytes = 8 * doubles as u64;
            for _ in 0..5 {
                match algo {
                    Algo::Ring => {
                        m.allreduce_ring(&world, ReduceOp::Sum, mine.clone()).await;
                    }
                    Algo::RecursiveDoubling => {
                        m.allreduce(&world, ReduceOp::Sum, Value::vec(mine.clone()), bytes)
                            .await;
                    }
                    Algo::ReduceBcast => {
                        let partial = m
                            .reduce(&world, 0, ReduceOp::Sum, Value::vec(mine.clone()), bytes)
                            .await;
                        m.bcast(&world, 0, partial.unwrap_or(Value::Unit), bytes)
                            .await;
                    }
                }
            }
        })
    });
    sim.run().assert_completed();
    sim.now().as_secs_f64() / 5.0
}

fn main() {
    let mut t = Table::new(
        "A33",
        "allreduce algorithm ablation: time per operation [µs], 16 ranks on IB",
        &[
            "payload",
            "recursive doubling",
            "ring",
            "reduce+bcast",
            "best",
        ],
    );
    for doubles in [16usize, 1024, 32_768, 262_144, 1_048_576] {
        let rd = run(Algo::RecursiveDoubling, 16, doubles);
        let ring = run(Algo::Ring, 16, doubles);
        let rb = run(Algo::ReduceBcast, 16, doubles);
        let best = if rd <= ring && rd <= rb {
            "rec-doubling"
        } else if ring <= rb {
            "ring"
        } else {
            "reduce+bcast"
        };
        t.row(&[
            fmt_bytes(8 * doubles as u64),
            fmt_f(rd * 1e6),
            fmt_f(ring * 1e6),
            fmt_f(rb * 1e6),
            best.into(),
        ]);
    }
    t.print();
    println!(
        "shape: latency-bound small payloads favour the log-depth recursive\n\
         doubling; bandwidth-bound large payloads favour the ring, which\n\
         moves 2(n-1)/n of the data per rank instead of log2(n) full copies.\n\
         This crossover is exactly why the MPI layer selects by size\n\
         (MpiParams::allreduce_ring_threshold)."
    );
}
