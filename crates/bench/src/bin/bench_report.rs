//! Turn the criterion shim's `CRITERION_JSON` stream into the committed
//! `BENCH_engine.json` report.
//!
//! Usage: `bench_report [criterion.jsonl] [BENCH_engine.json]
//! [--serve serve.json] [--des-scaling des.json] [--lint lint.json]
//! [--nproc N] [suite.json ...]`
//! (defaults: `target/criterion.jsonl`, `BENCH_engine.json`).
//! Trailing args are `run_experiments --json` outputs; their
//! `suite_wall_seconds` land in the `experiment_suite` block keyed by
//! thread count — along with the per-experiment wall-clock profile
//! (`profile_seconds_by_threads`) — with the N-vs-1 speedup when both
//! sides are present. `--nproc` records the host's core count next to
//! that speedup, so a committed report says what parallel hardware
//! produced it (a 1.0× "speedup" on a 1-core host is expected, not a
//! regression). `--serve` takes a `serve_bench` output and lands it in
//! a `serve` block (daemon jobs/s, cached vs uncached). `--des-scaling`
//! takes a `des_scaling_bench --json` output and lands it in a
//! `des_scaling` block (full-DES weak-scaling throughput plus the run's
//! determinism digest); an empty run — zero messages or kernel events,
//! or a malformed digest — is rejected rather than published. `--lint`
//! takes a `deep-lint --bench-cache` output and lands it in a `lint`
//! block (cold vs warm incremental scan wall time); a warm scan that
//! misses the cache or drops under 5× cold is rejected.
//!
//! Missing or regressed parallelism is a **hard failure** on a
//! multi-core host (`--nproc` ≥ 2): no multi-thread suite row, or a
//! multi-thread suite slower than the 1-thread run, exits non-zero so
//! CI cannot publish a report whose headline feature regressed. On a
//! 1-core host (or without `--nproc`) the same findings are warnings —
//! there, 1.0× is physics.
//!
//! The input is the JSONL stream the vendored criterion shim appends when
//! `CRITERION_JSON` is set — one line per completed benchmark. Lines may
//! repeat a benchmark name (e.g. `scripts/bench.sh` runs every suite
//! several times); the report keeps the **minimum** ns/iter per name,
//! which is robust against load spikes on shared machines.
//!
//! The headline block condenses the suites into four rates:
//! events/s (engine), transfers/s (fabric), collectives/s (MPI),
//! tasks/s (OmpSs graph build), and compares events/s against the
//! recorded pre-optimisation baseline.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Engine-suite baseline, measured at the seed of this optimisation pass
/// (commit 15d49ed) on the dev VM: minimum ns/iter over five interleaved
/// runs of the unmodified kernel. `engine/timers/1000` is the canonical
/// events/s workload (100 timer events per process × 1000 processes).
const BASELINE_COMMIT: &str = "15d49ed";
const BASELINE_ENGINE: &[(&str, u128, u64)] = &[
    ("engine/timers/10", 70_077, 1_000),
    ("engine/timers/100", 982_822, 10_000),
    ("engine/timers/1000", 11_205_258, 100_000),
    ("engine/channels/unbounded_pingpong", 270_337, 10_000),
    ("engine/channels/bounded_backpressure", 132_384, 10_000),
    ("engine/semaphore_contention", 530_797, 3_200),
];

/// One parsed benchmark result.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Entry {
    ns_per_iter: u128,
    elements: Option<u64>,
    bytes: Option<u64>,
}

impl Entry {
    /// Work items per wall-clock second, when a throughput annotation exists.
    fn per_sec(&self) -> Option<f64> {
        let n = self.elements.or(self.bytes)?;
        if self.ns_per_iter == 0 {
            return None;
        }
        Some(n as f64 * 1e9 / self.ns_per_iter as f64)
    }
}

/// Parse one shim-emitted JSONL line. Only the exact field layout the shim
/// writes is supported; anything else returns `None` (and is skipped).
fn parse_line(line: &str) -> Option<(String, Entry)> {
    let rest = line.trim().strip_prefix("{\"name\":\"")?;
    // The shim escapes only `"` and `\`; unescape while finding the close.
    let mut name = String::new();
    let mut chars = rest.char_indices();
    let tail = loop {
        let (i, c) = chars.next()?;
        match c {
            '\\' => name.push(chars.next()?.1),
            '"' => break &rest[i + 1..],
            _ => name.push(c),
        }
    };
    let ns: u128 = field(tail, "\"ns_per_iter\":")?.parse().ok()?;
    let elements = field(tail, "\"elements\":").and_then(|v| v.parse().ok());
    let bytes = field(tail, "\"bytes\":").and_then(|v| v.parse().ok());
    Some((
        name,
        Entry {
            ns_per_iter: ns,
            elements,
            bytes,
        },
    ))
}

/// Extract the digit run following `key` in `s`.
fn field<'a>(s: &'a str, key: &str) -> Option<&'a str> {
    let start = s.find(key)? + key.len();
    let rest = &s[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    (end > 0).then(|| &rest[..end])
}

/// Fold a JSONL stream into min-ns/iter per benchmark name.
fn collect(text: &str) -> BTreeMap<String, Entry> {
    let mut out: BTreeMap<String, Entry> = BTreeMap::new();
    for line in text.lines() {
        let Some((name, e)) = parse_line(line) else {
            continue;
        };
        out.entry(name)
            .and_modify(|best| {
                if e.ns_per_iter < best.ns_per_iter {
                    *best = e.clone();
                }
            })
            .or_insert(e);
    }
    out
}

/// Best rate among benchmarks whose name starts with `prefix`.
fn best_rate(results: &BTreeMap<String, Entry>, prefix: &str) -> Option<f64> {
    results
        .iter()
        .filter(|(name, _)| name.starts_with(prefix))
        .filter_map(|(_, e)| e.per_sec())
        .fold(None, |acc, r| Some(acc.map_or(r, |a: f64| a.max(r))))
}

/// One `run_experiments --json` result: thread count, suite wall, and
/// the per-experiment wall-clock profile.
#[derive(Debug, Clone, PartialEq)]
struct SuiteRun {
    threads: u64,
    wall: f64,
    /// (experiment, seconds) in the file's (= registry) order.
    profile: Vec<(String, f64)>,
}

/// Parse a `run_experiments --json` file.
fn parse_suite(text: &str) -> Option<SuiteRun> {
    let v = deep_json::from_str(text).ok()?;
    let profile = v
        .get("experiments")?
        .as_object()?
        .iter()
        .map(|(name, secs)| Some((name.clone(), secs.as_f64()?)))
        .collect::<Option<Vec<_>>>()?;
    Some(SuiteRun {
        threads: v.get("threads")?.as_u64()?,
        wall: v.get("suite_wall_seconds")?.as_f64()?,
        profile,
    })
}

fn fmt_rate(r: Option<f64>) -> String {
    match r {
        Some(v) => format!("{v:.0}"),
        None => "null".to_string(),
    }
}

/// Daemon throughput numbers from a `serve_bench` run.
#[derive(Debug, Clone, Copy, PartialEq)]
struct ServeStats {
    jobs: u64,
    uncached_jobs_per_s: f64,
    cached_jobs_per_s: f64,
    cache_speedup: f64,
    cached_service_micros_max: u64,
}

/// Parse a `serve_bench` output file.
fn parse_serve(text: &str) -> Option<ServeStats> {
    let v = deep_json::from_str(text).ok()?;
    let s = v.get("serve")?;
    Some(ServeStats {
        jobs: s.get("jobs")?.as_u64()?,
        uncached_jobs_per_s: s.get("uncached_jobs_per_s")?.as_f64()?,
        cached_jobs_per_s: s.get("cached_jobs_per_s")?.as_f64()?,
        cache_speedup: s.get("cache_speedup")?.as_f64()?,
        cached_service_micros_max: s.get("cached_service_micros_max")?.as_u64()?,
    })
}

/// Full-DES weak-scaling numbers from a `des_scaling_bench --json` run.
#[derive(Debug, Clone, PartialEq)]
struct DesStats {
    ranks: u64,
    iters: u64,
    class: String,
    segments: u64,
    iter_sim_seconds: f64,
    messages: u64,
    kernel_events: u64,
    events_per_sec: f64,
    wall_seconds: f64,
    digest: String,
}

/// Parse a `des_scaling_bench --json` output file.
fn parse_des_scaling(text: &str) -> Option<DesStats> {
    let v = deep_json::from_str(text).ok()?;
    let d = v.get("des_scaling")?;
    Some(DesStats {
        ranks: d.get("ranks")?.as_u64()?,
        iters: d.get("iters")?.as_u64()?,
        class: d.get("class")?.as_str()?.to_string(),
        segments: d.get("segments")?.as_u64()?,
        iter_sim_seconds: d.get("iter_sim_seconds")?.as_f64()?,
        messages: d.get("messages")?.as_u64()?,
        kernel_events: d.get("kernel_events")?.as_u64()?,
        events_per_sec: d.get("events_per_sec")?.as_f64()?,
        wall_seconds: d.get("wall_seconds")?.as_f64()?,
        digest: d.get("digest")?.as_str()?.to_string(),
    })
}

/// Interprocedural-lint timing from a `deep-lint --bench-cache` run.
#[derive(Debug, Clone, Copy, PartialEq)]
struct LintStats {
    files: u64,
    cold_wall_s: f64,
    warm_wall_s: f64,
    warm_cache_hits: u64,
    warm_speedup: f64,
    findings: u64,
}

/// Parse a `deep-lint --bench-cache` output file.
fn parse_lint(text: &str) -> Option<LintStats> {
    let v = deep_json::from_str(text).ok()?;
    let l = v.get("lint")?;
    Some(LintStats {
        files: l.get("files")?.as_u64()?,
        cold_wall_s: l.get("cold_wall_s")?.as_f64()?,
        warm_wall_s: l.get("warm_wall_s")?.as_f64()?,
        warm_cache_hits: l.get("warm_cache_hits")?.as_u64()?,
        warm_speedup: l.get("warm_speedup")?.as_f64()?,
        findings: l.get("findings")?.as_u64()?,
    })
}

/// The lint-cache gate: a warm incremental scan must be at least 5×
/// faster than cold, every file must come from the cache, and the run
/// must have covered a plausible workspace. Host-independent — the
/// ratio is between two runs on the same machine — so always hard.
const LINT_MIN_WARM_SPEEDUP: f64 = 5.0;

fn lint_gate(l: &LintStats) -> Result<(), String> {
    if l.files == 0 {
        return Err("lint run scanned zero files".to_string());
    }
    if l.warm_cache_hits != l.files {
        return Err(format!(
            "warm lint run missed the cache: {} hits for {} files",
            l.warm_cache_hits, l.files
        ));
    }
    if l.warm_speedup < LINT_MIN_WARM_SPEEDUP {
        return Err(format!(
            "incremental lint payoff regressed: warm scan only {:.2}x \
             faster than cold (required >= {LINT_MIN_WARM_SPEEDUP:.1}x)",
            l.warm_speedup
        ));
    }
    Ok(())
}

/// The des-scaling sanity gate. Unlike the parallel-payoff gate this one
/// is host-independent: a run that simulated nothing (zero messages or
/// kernel events, a non-positive simulated iteration) or whose digest is
/// not the `0x` + 16-hex form the determinism goldens pin must not be
/// published, on any hardware.
fn des_gate(d: &DesStats) -> Result<(), String> {
    if d.messages == 0 || d.kernel_events == 0 || d.iter_sim_seconds <= 0.0 {
        return Err(format!(
            "des_scaling run simulated nothing: {} messages, {} kernel events, \
             iter_sim_seconds {:.9}",
            d.messages, d.kernel_events, d.iter_sim_seconds
        ));
    }
    let hex = d.digest.strip_prefix("0x").unwrap_or("");
    if hex.len() != 16 || !hex.chars().all(|c| c.is_ascii_hexdigit()) {
        return Err(format!(
            "des_scaling digest '{}' is not a 0x-prefixed 16-digit hex value",
            d.digest
        ));
    }
    Ok(())
}

/// N-vs-1 suite speedup: best multi-thread wall against the 1-thread
/// wall, when both are present.
fn suite_speedup(suites: &[SuiteRun]) -> Option<f64> {
    let wall_1 = suites.iter().find(|s| s.threads == 1).map(|s| s.wall)?;
    let wall_best = suites
        .iter()
        .filter(|s| s.threads > 1)
        .map(|s| s.wall)
        .fold(None, |acc: Option<f64>, w| {
            Some(acc.map_or(w, |a| a.min(w)))
        })?;
    (wall_best > 0.0).then(|| wall_1 / wall_best)
}

/// The parallel-payoff gate. On a multi-core host (`--nproc` ≥ 2) a
/// suite that runs *slower* wide than serial — or that never ran wide
/// at all — is a regression in the thing this engine exists to deliver,
/// so it is a hard error, not a warning to scroll past. On a 1-core
/// host (or with no `--nproc`) a 1.0× "speedup" is physics, so the same
/// findings downgrade to warnings.
///
/// Returns `Err(message)` when the report must fail.
fn speedup_gate(suites: &[SuiteRun], host_nproc: Option<u64>) -> Result<(), String> {
    if suites.is_empty() {
        return Ok(());
    }
    let enforce = host_nproc.is_some_and(|n| n >= 2);
    let problem = match suite_speedup(suites) {
        None => Some(
            "suite_speedup_vs_1thread is null — no multi-thread suite row \
             (run run_experiments with RAYON_NUM_THREADS > 1)"
                .to_string(),
        ),
        Some(s) if s < 1.0 => Some(format!(
            "experiment-suite parallel regression: N-thread suite is {s:.2}x \
             the 1-thread wall (expected >= 1.0)"
        )),
        Some(_) => None,
    };
    match problem {
        Some(msg) if enforce => Err(msg),
        Some(msg) => {
            eprintln!("WARNING: {msg} (not fatal: host_nproc < 2 or unrecorded)");
            Ok(())
        }
        None => Ok(()),
    }
}

/// Render the full report as pretty-printed JSON. `suites` holds
/// (threads, suite_wall_seconds) pairs from `run_experiments --json`;
/// `serve` holds daemon throughput from `serve_bench`; `des` holds
/// full-DES weak-scaling throughput from `des_scaling_bench`;
/// `host_nproc` is the measuring host's core count (`--nproc`, null
/// when not passed).
fn render(
    results: &BTreeMap<String, Entry>,
    suites: &[SuiteRun],
    serve: Option<&ServeStats>,
    des: Option<&DesStats>,
    lint: Option<&LintStats>,
    host_nproc: Option<u64>,
) -> String {
    let events = results.get("engine/timers/1000").and_then(|e| e.per_sec());
    let transfers = best_rate(results, "fabric/transfers/");
    let collectives = best_rate(results, "mpi/");
    let tasks = best_rate(results, "ompss/");
    let sweep_1 = results
        .get("sweep/mc_multilevel/1thread")
        .and_then(|e| e.per_sec());
    let sweep_n = results
        .get("sweep/mc_multilevel/nthreads")
        .and_then(|e| e.per_sec());

    let (base_ns, base_elems) = BASELINE_ENGINE
        .iter()
        .find(|(n, _, _)| *n == "engine/timers/1000")
        .map(|&(_, ns, el)| (ns, el))
        .expect("baseline table has the canonical workload");
    let base_events = base_elems as f64 * 1e9 / base_ns as f64;
    let speedup = events.map(|e| e / base_events);

    let mut out = String::from("{\n");
    let _ = writeln!(
        out,
        "  \"generated_by\": \"scripts/bench.sh (criterion shim CRITERION_JSON stream, min ns/iter per bench)\","
    );
    let _ = writeln!(out, "  \"headline\": {{");
    let _ = writeln!(out, "    \"events_per_sec\": {},", fmt_rate(events));
    let _ = writeln!(out, "    \"transfers_per_sec\": {},", fmt_rate(transfers));
    let _ = writeln!(
        out,
        "    \"collectives_per_sec\": {},",
        fmt_rate(collectives)
    );
    let _ = writeln!(out, "    \"tasks_per_sec\": {}", fmt_rate(tasks));
    let _ = writeln!(out, "  }},");
    // Parallel sweep-harness trajectory: Monte-Carlo runs/s on a
    // 1-thread vs machine-width pool, and the experiment-suite wall
    // clock at each measured thread count.
    let _ = writeln!(out, "  \"experiment_suite\": {{");
    let _ = writeln!(
        out,
        "    \"sweep_runs_per_sec_1thread\": {},",
        fmt_rate(sweep_1)
    );
    let _ = writeln!(
        out,
        "    \"sweep_runs_per_sec_nthreads\": {},",
        fmt_rate(sweep_n)
    );
    let _ = writeln!(out, "    \"suite_wall_seconds_by_threads\": {{");
    for (i, s) in suites.iter().enumerate() {
        let comma = if i + 1 < suites.len() { "," } else { "" };
        let _ = writeln!(out, "      \"{}\": {:.3}{comma}", s.threads, s.wall);
    }
    let _ = writeln!(out, "    }},");
    // Where the time goes: per-experiment wall clock at each measured
    // thread count, so a committed report shows *which* experiments are
    // the tail, not just the total (DESIGN.md §12).
    let _ = writeln!(out, "    \"profile_seconds_by_threads\": {{");
    for (i, s) in suites.iter().enumerate() {
        let comma = if i + 1 < suites.len() { "," } else { "" };
        let _ = writeln!(out, "      \"{}\": {{", s.threads);
        for (j, (name, secs)) in s.profile.iter().enumerate() {
            let c = if j + 1 < s.profile.len() { "," } else { "" };
            let _ = writeln!(out, "        \"{name}\": {secs:.3}{c}");
        }
        let _ = writeln!(out, "      }}{comma}");
    }
    let _ = writeln!(out, "    }},");
    let speedup_text = suite_speedup(suites).map_or("null".to_string(), |s| format!("{s:.2}"));
    let _ = writeln!(out, "    \"suite_speedup_vs_1thread\": {speedup_text},");
    let nproc_text = host_nproc.map_or("null".to_string(), |n| n.to_string());
    let _ = writeln!(out, "    \"host_nproc\": {nproc_text}");
    let _ = writeln!(out, "  }},");
    // Daemon throughput (serve_bench): jobs/s cold vs served from the
    // config-digest cache.
    match serve {
        Some(s) => {
            let _ = writeln!(out, "  \"serve\": {{");
            let _ = writeln!(out, "    \"jobs\": {},", s.jobs);
            let _ = writeln!(
                out,
                "    \"uncached_jobs_per_s\": {:.2},",
                s.uncached_jobs_per_s
            );
            let _ = writeln!(
                out,
                "    \"cached_jobs_per_s\": {:.2},",
                s.cached_jobs_per_s
            );
            let _ = writeln!(out, "    \"cache_speedup\": {:.2},", s.cache_speedup);
            let _ = writeln!(
                out,
                "    \"cached_service_micros_max\": {}",
                s.cached_service_micros_max
            );
            let _ = writeln!(out, "  }},");
        }
        None => {
            let _ = writeln!(out, "  \"serve\": null,");
        }
    }
    // Full-DES weak scaling (des_scaling_bench): throughput of the
    // partitioned, batch-scheduled engine on the F09 skeleton, plus the
    // run's summary digest — the value CI compares across thread counts.
    match des {
        Some(d) => {
            let _ = writeln!(out, "  \"des_scaling\": {{");
            let _ = writeln!(out, "    \"ranks\": {},", d.ranks);
            let _ = writeln!(out, "    \"iters\": {},", d.iters);
            let _ = writeln!(out, "    \"class\": \"{}\",", d.class);
            let _ = writeln!(out, "    \"segments\": {},", d.segments);
            let _ = writeln!(out, "    \"iter_sim_seconds\": {:.9},", d.iter_sim_seconds);
            let _ = writeln!(out, "    \"messages\": {},", d.messages);
            let _ = writeln!(out, "    \"kernel_events\": {},", d.kernel_events);
            let _ = writeln!(out, "    \"events_per_sec\": {:.0},", d.events_per_sec);
            let _ = writeln!(out, "    \"wall_seconds\": {:.3},", d.wall_seconds);
            let _ = writeln!(out, "    \"digest\": \"{}\"", d.digest);
            let _ = writeln!(out, "  }},");
        }
        None => {
            let _ = writeln!(out, "  \"des_scaling\": null,");
        }
    }
    // Interprocedural lint cost (deep-lint --bench-cache): cold
    // whole-workspace scan vs warm incremental rescan on the summary
    // cache — the committed proof that the cache pays for itself.
    match lint {
        Some(l) => {
            let _ = writeln!(out, "  \"lint\": {{");
            let _ = writeln!(out, "    \"files\": {},", l.files);
            let _ = writeln!(out, "    \"cold_wall_s\": {:.3},", l.cold_wall_s);
            let _ = writeln!(out, "    \"warm_wall_s\": {:.3},", l.warm_wall_s);
            let _ = writeln!(out, "    \"warm_cache_hits\": {},", l.warm_cache_hits);
            let _ = writeln!(out, "    \"warm_speedup\": {:.2},", l.warm_speedup);
            let _ = writeln!(out, "    \"findings\": {}", l.findings);
            let _ = writeln!(out, "  }},");
        }
        None => {
            let _ = writeln!(out, "  \"lint\": null,");
        }
    }
    let _ = writeln!(out, "  \"baseline\": {{");
    let _ = writeln!(out, "    \"commit\": \"{BASELINE_COMMIT}\",");
    let _ = writeln!(out, "    \"events_per_sec\": {base_events:.0},");
    let _ = writeln!(out, "    \"engine_ns_per_iter\": {{");
    for (i, (name, ns, _)) in BASELINE_ENGINE.iter().enumerate() {
        let comma = if i + 1 < BASELINE_ENGINE.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(out, "      \"{name}\": {ns}{comma}");
    }
    let _ = writeln!(out, "    }}");
    let _ = writeln!(out, "  }},");
    let _ = writeln!(
        out,
        "  \"events_per_sec_speedup_vs_baseline\": {},",
        speedup.map_or("null".to_string(), |s| format!("{s:.2}"))
    );
    let _ = writeln!(out, "  \"results\": {{");
    for (i, (name, e)) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let mut extra = String::new();
        if let Some(n) = e.elements {
            let _ = write!(extra, ", \"elements\": {n}");
        }
        if let Some(n) = e.bytes {
            let _ = write!(extra, ", \"bytes\": {n}");
        }
        if let Some(r) = e.per_sec() {
            let _ = write!(extra, ", \"per_sec\": {r:.0}");
        }
        let _ = writeln!(
            out,
            "    \"{name}\": {{ \"ns_per_iter\": {}{extra} }}{comma}",
            e.ns_per_iter
        );
    }
    let _ = writeln!(out, "  }}");
    out.push_str("}\n");
    out
}

/// Sort suite runs and keep the best wall per thread count (with its
/// profile). On a single-core host the "machine width" pass also runs
/// with one thread, and a repeated key would make the JSON map invalid.
fn dedupe_suites(suites: &mut Vec<SuiteRun>) {
    suites.sort_by_key(|s| s.threads);
    suites.dedup_by(|later, kept| {
        let dup = later.threads == kept.threads;
        if dup && later.wall < kept.wall {
            std::mem::swap(later, kept);
        }
        dup
    });
}

fn main() {
    let mut positional: Vec<String> = Vec::new();
    let mut serve: Option<ServeStats> = None;
    let mut des: Option<DesStats> = None;
    let mut lint: Option<LintStats> = None;
    let mut host_nproc: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--serve" {
            let path = args.next().unwrap_or_else(|| {
                eprintln!("--serve needs a serve_bench output path");
                std::process::exit(2);
            });
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("cannot read serve file {path}: {e}"));
            serve = Some(
                parse_serve(&text).unwrap_or_else(|| panic!("{path} is not a serve_bench output")),
            );
        } else if arg == "--des-scaling" {
            let path = args.next().unwrap_or_else(|| {
                eprintln!("--des-scaling needs a des_scaling_bench --json output path");
                std::process::exit(2);
            });
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("cannot read des-scaling file {path}: {e}"));
            des = Some(
                parse_des_scaling(&text)
                    .unwrap_or_else(|| panic!("{path} is not a des_scaling_bench output")),
            );
        } else if arg == "--lint" {
            let path = args.next().unwrap_or_else(|| {
                eprintln!("--lint needs a deep-lint --bench-cache output path");
                std::process::exit(2);
            });
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("cannot read lint timing file {path}: {e}"));
            lint = Some(
                parse_lint(&text)
                    .unwrap_or_else(|| panic!("{path} is not a deep-lint --bench-cache output")),
            );
        } else if arg == "--nproc" {
            let n = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("--nproc needs a positive core count");
                std::process::exit(2);
            });
            if n == 0 {
                eprintln!("--nproc needs a positive core count");
                std::process::exit(2);
            }
            host_nproc = Some(n);
        } else {
            positional.push(arg);
        }
    }
    let mut positional = positional.into_iter();
    let input = positional
        .next()
        .unwrap_or_else(|| "target/criterion.jsonl".to_string());
    let output = positional
        .next()
        .unwrap_or_else(|| "BENCH_engine.json".to_string());
    let mut suites: Vec<SuiteRun> = Vec::new();
    for path in positional {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read suite file {path}: {e}"));
        let parsed = parse_suite(&text)
            .unwrap_or_else(|| panic!("{path} is not a run_experiments --json file"));
        suites.push(parsed);
    }
    dedupe_suites(&mut suites);
    // The parallel-payoff gate: on a multi-core host, missing or
    // regressed parallelism fails the report; see speedup_gate.
    if let Err(msg) = speedup_gate(&suites, host_nproc) {
        eprintln!("ERROR: {msg}");
        std::process::exit(1);
    }
    // The des-scaling sanity gate: an empty or malformed run must not
    // be published; see des_gate.
    if let Some(d) = &des {
        if let Err(msg) = des_gate(d) {
            eprintln!("ERROR: {msg}");
            std::process::exit(1);
        }
    }
    // The incremental-lint gate: a warm scan that misses the cache or
    // falls under the 5× payoff floor must not publish; see lint_gate.
    if let Some(l) = &lint {
        if let Err(msg) = lint_gate(l) {
            eprintln!("ERROR: {msg}");
            std::process::exit(1);
        }
    }
    let text = std::fs::read_to_string(&input)
        .unwrap_or_else(|e| panic!("cannot read {input}: {e} (run scripts/bench.sh first)"));
    let results = collect(&text);
    assert!(
        results.contains_key("engine/timers/1000"),
        "input has no engine/timers/1000 result; did the engine bench run?"
    );
    let report = render(
        &results,
        &suites,
        serve.as_ref(),
        des.as_ref(),
        lint.as_ref(),
        host_nproc,
    );
    std::fs::write(&output, &report).unwrap_or_else(|e| panic!("cannot write {output}: {e}"));
    println!("wrote {output} ({} benchmarks)", results.len());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trip() {
        let (name, e) =
            parse_line(r#"{"name":"engine/timers/1000","ns_per_iter":4460241,"elements":100000}"#)
                .unwrap();
        assert_eq!(name, "engine/timers/1000");
        assert_eq!(e.ns_per_iter, 4460241);
        assert_eq!(e.elements, Some(100000));
        assert_eq!(e.bytes, None);
        assert!((e.per_sec().unwrap() - 100000.0 * 1e9 / 4460241.0).abs() < 1e-6);
    }

    #[test]
    fn parse_escaped_name_and_bytes() {
        let (name, e) = parse_line(r#"{"name":"g/\"q\"","ns_per_iter":9,"bytes":64}"#).unwrap();
        assert_eq!(name, "g/\"q\"");
        assert_eq!(e.bytes, Some(64));
        assert!(parse_line("not json").is_none());
        assert!(parse_line(r#"{"name":"x","ns_per_iter":}"#).is_none());
    }

    #[test]
    fn collect_keeps_minimum_per_name() {
        let text = concat!(
            "{\"name\":\"a\",\"ns_per_iter\":10,\"elements\":5}\n",
            "garbage\n",
            "{\"name\":\"a\",\"ns_per_iter\":7,\"elements\":5}\n",
            "{\"name\":\"a\",\"ns_per_iter\":12,\"elements\":5}\n",
        );
        let m = collect(text);
        assert_eq!(m.len(), 1);
        assert_eq!(m["a"].ns_per_iter, 7);
    }

    #[test]
    fn report_headline_and_speedup() {
        let text = concat!(
            "{\"name\":\"engine/timers/1000\",\"ns_per_iter\":5000000,\"elements\":100000}\n",
            "{\"name\":\"fabric/transfers/torus\",\"ns_per_iter\":1000,\"elements\":2}\n",
            "{\"name\":\"mpi/allreduce/8\",\"ns_per_iter\":1000,\"elements\":4}\n",
            "{\"name\":\"ompss/cholesky_graph_build/8\",\"ns_per_iter\":1000,\"elements\":120}\n",
        );
        let report = render(&collect(text), &[], None, None, None, None);
        // 100000 elements / 5 ms = 20 M events/s; baseline ≈ 8.92 M → 2.24×.
        assert!(report.contains("\"events_per_sec\": 20000000"));
        assert!(report.contains("\"transfers_per_sec\": 2000000"));
        assert!(report.contains("\"collectives_per_sec\": 4000000"));
        assert!(report.contains("\"tasks_per_sec\": 120000000"));
        assert!(report.contains("\"events_per_sec_speedup_vs_baseline\": 2.24"));
        assert!(report.contains("\"commit\": \"15d49ed\""));
        // No suite files and no sweep bench → nulls, not a broken block.
        assert!(report.contains("\"sweep_runs_per_sec_1thread\": null"));
        assert!(report.contains("\"suite_speedup_vs_1thread\": null"));
    }

    /// A profile-less suite run, for tests about walls and speedups.
    fn sr(threads: u64, wall: f64) -> SuiteRun {
        SuiteRun {
            threads,
            wall,
            profile: Vec::new(),
        }
    }

    #[test]
    fn parse_suite_extracts_threads_wall_and_profile() {
        let text = "{\n  \"threads\": 4,\n  \"suite_wall_seconds\": 2.625000,\n  \
                    \"failures\": 0,\n  \"experiments\": {\n    \"a33\": 3.424,\n    \
                    \"f02\": 0.000\n  }\n}\n";
        let s = parse_suite(text).unwrap();
        assert_eq!((s.threads, s.wall), (4, 2.625));
        assert_eq!(
            s.profile,
            vec![("a33".to_string(), 3.424), ("f02".to_string(), 0.0)]
        );
        assert!(parse_suite("{}").is_none());
    }

    #[test]
    fn report_suite_block_speedup_and_profile() {
        let text = concat!(
            "{\"name\":\"engine/timers/1000\",\"ns_per_iter\":5000000,\"elements\":100000}\n",
            "{\"name\":\"sweep/mc_multilevel/1thread\",\"ns_per_iter\":64000000,\"elements\":64}\n",
            "{\"name\":\"sweep/mc_multilevel/nthreads\",\"ns_per_iter\":16000000,\"elements\":64}\n",
        );
        let mut one = sr(1, 8.4);
        one.profile = vec![("a33_allreduce_algorithms".to_string(), 3.424)];
        let report = render(&collect(text), &[one, sr(4, 2.1)], None, None, None, None);
        // 64 runs / 64 ms = 1000 runs/s single-threaded, 4000 wide.
        assert!(report.contains("\"sweep_runs_per_sec_1thread\": 1000"));
        assert!(report.contains("\"sweep_runs_per_sec_nthreads\": 4000"));
        assert!(report.contains("\"1\": 8.400"));
        assert!(report.contains("\"4\": 2.100"));
        assert!(report.contains("\"suite_speedup_vs_1thread\": 4.00"));
        // The per-experiment profile lands under the run's thread count.
        assert!(
            report.contains("\"a33_allreduce_algorithms\": 3.424"),
            "{report}"
        );
        assert!(deep_json::from_str(&report).is_ok(), "{report}");
    }

    #[test]
    fn duplicate_thread_counts_collapse_to_the_best_wall() {
        // Single-core host: both bench.sh passes report threads=1. The
        // kept row's profile must be the *best* run's profile.
        let mut slow = sr(1, 8.4);
        slow.profile = vec![("x".to_string(), 8.0)];
        let mut fast = sr(1, 6.7);
        fast.profile = vec![("x".to_string(), 6.0)];
        let mut suites = vec![slow, fast, sr(4, 2.1), sr(4, 2.5)];
        dedupe_suites(&mut suites);
        assert_eq!(
            suites
                .iter()
                .map(|s| (s.threads, s.wall))
                .collect::<Vec<_>>(),
            vec![(1, 6.7), (4, 2.1)]
        );
        assert_eq!(suites[0].profile, vec![("x".to_string(), 6.0)]);

        let report = render(&BTreeMap::new(), &suites, None, None, None, None);
        assert_eq!(report.matches("\"1\": 6.700").count(), 1, "{report}");
    }

    #[test]
    fn host_nproc_lands_next_to_the_suite_speedup() {
        let report = render(
            &BTreeMap::new(),
            &[sr(1, 8.4), sr(4, 2.1)],
            None,
            None,
            None,
            Some(4),
        );
        assert!(
            report.contains("\"suite_speedup_vs_1thread\": 4.00,\n    \"host_nproc\": 4"),
            "{report}"
        );
        // Without --nproc the field is an explicit null, not absent —
        // a committed report always says whether the host was recorded.
        let report = render(&BTreeMap::new(), &[], None, None, None, None);
        assert!(report.contains("\"host_nproc\": null"), "{report}");
        // The report stays valid JSON either way.
        assert!(deep_json::from_str(&report).is_ok(), "{report}");
    }

    #[test]
    fn suite_speedup_requires_both_sides() {
        assert_eq!(suite_speedup(&[]), None);
        assert_eq!(suite_speedup(&[sr(1, 8.4)]), None, "no multi-thread row");
        assert_eq!(suite_speedup(&[sr(2, 4.2)]), None, "no 1-thread row");
        let s = suite_speedup(&[sr(1, 8.4), sr(2, 4.2)]).unwrap();
        assert!((s - 2.0).abs() < 1e-9);
        // Best multi-thread wall wins.
        let s = suite_speedup(&[sr(1, 8.4), sr(2, 4.2), sr(4, 2.1)]).unwrap();
        assert!((s - 4.0).abs() < 1e-9);
        // A regression (slower than 1 thread) still reports honestly.
        let s = suite_speedup(&[sr(1, 2.0), sr(2, 4.0)]).unwrap();
        assert!((s - 0.5).abs() < 1e-9);
    }

    #[test]
    fn gate_fails_on_multicore_regression_or_missing_row() {
        // Multi-core host + regression → hard error.
        assert!(speedup_gate(&[sr(1, 2.0), sr(4, 4.0)], Some(4)).is_err());
        // Multi-core host + no multi-thread row → hard error.
        assert!(speedup_gate(&[sr(1, 2.0)], Some(4)).is_err());
        // Multi-core host + real speedup → pass.
        assert!(speedup_gate(&[sr(1, 8.0), sr(4, 2.0)], Some(4)).is_ok());
        // 1-core host: the same regression is a warning, not a failure.
        assert!(speedup_gate(&[sr(1, 2.0), sr(4, 4.0)], Some(1)).is_ok());
        assert!(speedup_gate(&[sr(1, 2.0)], Some(1)).is_ok());
        // No --nproc recorded: warn-only (can't claim the host is wide).
        assert!(speedup_gate(&[sr(1, 2.0), sr(4, 4.0)], None).is_ok());
        // No suite files at all: nothing to gate.
        assert!(speedup_gate(&[], Some(4)).is_ok());
    }

    #[test]
    fn serve_section_parses_and_renders() {
        let text = r#"{
  "serve": {
    "jobs": 16,
    "uncached_jobs_per_s": 12.50,
    "cached_jobs_per_s": 640.00,
    "cache_speedup": 51.20,
    "cached_service_micros_max": 812
  }
}"#;
        let stats = parse_serve(text).unwrap();
        assert_eq!(stats.jobs, 16);
        assert_eq!(stats.cached_service_micros_max, 812);
        let report = render(&BTreeMap::new(), &[], Some(&stats), None, None, None);
        assert!(report.contains("\"cached_jobs_per_s\": 640.00"), "{report}");
        assert!(report.contains("\"cache_speedup\": 51.20"), "{report}");
        // Without serve data the section is an explicit null, not absent.
        let report = render(&BTreeMap::new(), &[], None, None, None, None);
        assert!(report.contains("\"serve\": null"), "{report}");
        assert!(parse_serve("{}").is_none());
        assert!(parse_serve("not json").is_none());
    }

    /// A plausible `des_scaling_bench --json` output, as a test fixture.
    fn des_fixture() -> DesStats {
        parse_des_scaling(
            r#"{
  "des_scaling": {
    "ranks": 65536,
    "iters": 2,
    "class": "spmv",
    "segments": 3641,
    "iter_sim_seconds": 0.002051244,
    "messages": 1310720,
    "kernel_events": 1135639,
    "events_per_sec": 13500000,
    "wall_seconds": 0.181,
    "digest": "0x08b70910eb221787"
  }
}"#,
        )
        .unwrap()
    }

    #[test]
    fn des_scaling_section_parses_and_renders() {
        let d = des_fixture();
        assert_eq!((d.ranks, d.iters, d.segments), (65536, 2, 3641));
        assert_eq!(d.class, "spmv");
        assert_eq!(d.digest, "0x08b70910eb221787");
        let report = render(&BTreeMap::new(), &[], None, Some(&d), None, None);
        assert!(report.contains("\"ranks\": 65536"), "{report}");
        assert!(
            report.contains("\"iter_sim_seconds\": 0.002051244"),
            "{report}"
        );
        assert!(
            report.contains("\"digest\": \"0x08b70910eb221787\""),
            "{report}"
        );
        assert!(deep_json::from_str(&report).is_ok(), "{report}");
        // Without des data the section is an explicit null, not absent.
        let report = render(&BTreeMap::new(), &[], None, None, None, None);
        assert!(report.contains("\"des_scaling\": null"), "{report}");
        assert!(parse_des_scaling("{}").is_none());
        assert!(parse_des_scaling("not json").is_none());
    }

    #[test]
    fn des_gate_rejects_empty_runs_and_bad_digests() {
        assert!(des_gate(&des_fixture()).is_ok());
        let mut d = des_fixture();
        d.messages = 0;
        assert!(des_gate(&d).is_err(), "zero messages must not publish");
        let mut d = des_fixture();
        d.kernel_events = 0;
        assert!(des_gate(&d).is_err(), "zero kernel events must not publish");
        let mut d = des_fixture();
        d.iter_sim_seconds = 0.0;
        assert!(
            des_gate(&d).is_err(),
            "empty simulated time must not publish"
        );
        let mut d = des_fixture();
        d.digest = "0xdeadbeef".to_string();
        assert!(des_gate(&d).is_err(), "short digest must not publish");
        let mut d = des_fixture();
        d.digest = "08b70910eb221787".to_string();
        assert!(des_gate(&d).is_err(), "unprefixed digest must not publish");
    }

    /// A plausible `deep-lint --bench-cache` output, as a test fixture.
    fn lint_fixture() -> LintStats {
        parse_lint(
            r#"{
  "lint": {
    "files": 202,
    "cold_wall_s": 0.292,
    "warm_wall_s": 0.028,
    "warm_cache_hits": 202,
    "warm_speedup": 10.43,
    "findings": 0
  }
}"#,
        )
        .unwrap()
    }

    #[test]
    fn lint_section_parses_and_renders() {
        let l = lint_fixture();
        assert_eq!((l.files, l.warm_cache_hits, l.findings), (202, 202, 0));
        assert_eq!(l.warm_speedup, 10.43);
        let report = render(&BTreeMap::new(), &[], None, None, Some(&l), None);
        assert!(report.contains("\"files\": 202"), "{report}");
        assert!(report.contains("\"warm_speedup\": 10.43"), "{report}");
        assert!(report.contains("\"cold_wall_s\": 0.292"), "{report}");
        assert!(deep_json::from_str(&report).is_ok(), "{report}");
        // Without lint data the section is an explicit null, not absent.
        let report = render(&BTreeMap::new(), &[], None, None, None, None);
        assert!(report.contains("\"lint\": null"), "{report}");
        assert!(parse_lint("{}").is_none());
        assert!(parse_lint("not json").is_none());
    }

    #[test]
    fn lint_gate_rejects_cache_misses_and_weak_speedups() {
        assert!(lint_gate(&lint_fixture()).is_ok());
        let mut l = lint_fixture();
        l.files = 0;
        l.warm_cache_hits = 0;
        assert!(lint_gate(&l).is_err(), "empty scan must not publish");
        let mut l = lint_fixture();
        l.warm_cache_hits = l.files - 1;
        assert!(lint_gate(&l).is_err(), "a cache miss must not publish");
        let mut l = lint_fixture();
        l.warm_speedup = 4.99;
        assert!(
            lint_gate(&l).is_err(),
            "sub-5x incremental payoff must not publish"
        );
        // The boundary itself passes: the gate is >=, not >.
        let mut l = lint_fixture();
        l.warm_speedup = LINT_MIN_WARM_SPEEDUP;
        assert!(lint_gate(&l).is_ok());
    }
}
