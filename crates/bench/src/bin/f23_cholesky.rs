//! F23 — slide 23: OmpSs tiled Cholesky, dataflow vs fork-join.
//!
//! "Decouple how we write (think sequential) from how it is executed":
//! dependence-driven out-of-order execution against the barrier-per-phase
//! baseline, across worker counts and tile grids, on the booster node
//! model. Results are verified numerically against a serial reference.
//!
//! Logic lives in `deep_bench::experiments::f23_cholesky` so the
//! `run_experiments` driver can run it in-process; this wrapper only
//! prints the rendered buffer.

#![forbid(unsafe_code)]

fn main() {
    deep_bench::run_experiment_main("f23_cholesky");
}
