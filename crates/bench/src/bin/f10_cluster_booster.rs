//! F10 — slide 10: the Cluster-Booster Architecture.
//!
//! The coupled multi-physics proxy (complex main() + highly scalable
//! kernel) on three machines: a homogeneous cluster, a conventional
//! PCIe-accelerated cluster and the DEEP cluster-booster, sized for
//! comparable accelerator silicon.
//!
//! Logic lives in `deep_bench::experiments::f10_cluster_booster` so the
//! `run_experiments` driver can run it in-process; this wrapper only
//! prints the rendered buffer.

#![forbid(unsafe_code)]

fn main() {
    deep_bench::run_experiment_main("f10_cluster_booster");
}
