//! F23b — the slide-23 kernel at booster scale: *distributed* tiled
//! Cholesky across MPI ranks (1-D block-cyclic, panel broadcast).
//!
//! Shows both halves of the paper's argument: the factorisation is
//! numerically exact over the simulated fabric, and the naive 1-D
//! bulk-synchronous formulation saturates quickly — the reason OmpSs-style
//! dependence-driven execution (F23) matters in the first place.
//!
//! Logic lives in `deep_bench::experiments::f23b_dcholesky` so the
//! `run_experiments` driver can run it in-process; this wrapper only
//! prints the rendered buffer.

#![forbid(unsafe_code)]

fn main() {
    deep_bench::run_experiment_main("f23b_dcholesky");
}
