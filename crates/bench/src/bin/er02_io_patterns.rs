//! ER02 — parallel I/O patterns on the shared fabric: task-local (N-N),
//! shared-file (N-1), and SIONlib containers.
//!
//! Every cluster rank writes the same payload through the machine's file
//! layer onto the PFS (whose servers hang off the same InfiniBand fat
//! tree as the MPI traffic). The three patterns differ only in metadata
//! traffic and alignment padding — which is exactly where N-1 I/O
//! collapses and why SIONlib restores N-N performance from a single
//! shared container.
//!
//! Logic lives in `deep_bench::experiments::er02_io_patterns` so the
//! `run_experiments` driver can run it in-process; this wrapper only
//! prints the rendered buffer.

#![forbid(unsafe_code)]

fn main() {
    deep_bench::run_experiment_main("er02_io_patterns");
}
