//! F16 — slide 16: the EXTOLL NIC features.
//!
//! * VELO small-message latency vs payload size (zero-copy MPI path);
//! * RMA streaming bandwidth vs payload size;
//! * per-hop latency scaling on the 3-D torus (6-link router);
//! * CRC + link-level retransmission under injected bit errors (RAS).
//!
//! Logic lives in `deep_bench::experiments::f16_extoll` so the
//! `run_experiments` driver can run it in-process; this wrapper only
//! prints the rendered buffer.

#![forbid(unsafe_code)]

fn main() {
    deep_bench::run_experiment_main("f16_extoll");
}
