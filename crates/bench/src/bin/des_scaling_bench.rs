//! Wall-clock throughput of the full-DES weak-scaling skeleton
//! (`deep_bench::des_scaling`) — the `des_scaling` block of
//! `BENCH_engine.json`.
//!
//! Usage:
//! `des_scaling_bench [--ranks N] [--iters K] [--complex] [--json PATH] [--digest-only]`
//! (defaults: 65 536 ranks, 2 iterations, SpMV class, JSON to stdout).
//!
//! This is the one measurement in the suite where wall clock *is* the
//! result: the simulated numbers are deterministic (pinned by the run's
//! digest, which CI compares across `RAYON_NUM_THREADS` settings), and
//! what the benchmark adds is how fast the partitioned, batch-scheduled
//! engine chews through them. `events_per_sec` is the rate an unbatched
//! engine would have needed to match: kernel events actually executed
//! plus one per fabric message, since every batched message replaces at
//! least one timer event of a per-message event loop.
//!
//! `--digest-only` prints just the digest line, so shell scripts can
//! `cmp` determinism across thread counts without parsing JSON (wall
//! seconds legitimately differ between runs).

#![forbid(unsafe_code)]

use deep_bench::des_scaling::{run, DesScalingConfig};

fn main() {
    let mut cfg = DesScalingConfig {
        ranks: 65_536,
        iters: 2,
        complex: false,
        seed: 1,
    };
    let mut json_path: Option<String> = None;
    let mut digest_only = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut num = |name: &str| -> u32 {
            args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("{name} needs a positive integer");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--ranks" => cfg.ranks = num("--ranks"),
            "--iters" => cfg.iters = num("--iters"),
            "--complex" => cfg.complex = true,
            "--digest-only" => digest_only = true,
            "--json" => {
                json_path = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--json needs an output path");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }

    let t0 = std::time::Instant::now();
    let r = run(cfg);
    let wall = t0.elapsed().as_secs_f64();

    if digest_only {
        println!("digest 0x{:016x}", r.digest);
        return;
    }

    let equivalent_events = r.kernel_events + r.messages;
    let json = format!(
        "{{\n  \"des_scaling\": {{\n    \"ranks\": {},\n    \"iters\": {},\n    \
         \"class\": \"{}\",\n    \"segments\": {},\n    \"iter_sim_seconds\": {:.9},\n    \
         \"messages\": {},\n    \"kernel_events\": {},\n    \"events_per_sec\": {:.0},\n    \
         \"wall_seconds\": {:.3},\n    \"digest\": \"0x{:016x}\"\n  }}\n}}\n",
        r.ranks,
        r.iters,
        if cfg.complex { "complex" } else { "spmv" },
        r.segments,
        r.iter_s,
        r.messages,
        r.kernel_events,
        equivalent_events as f64 / wall,
        wall,
        r.digest,
    );
    match json_path {
        Some(path) => {
            std::fs::write(&path, &json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            println!(
                "wrote {path} ({} ranks, {:.2}M equivalent events/s)",
                r.ranks,
                equivalent_events as f64 / wall / 1e6
            );
        }
        None => print!("{json}"),
    }
}
