//! F09 — slide 9: application scalability classes.
//!
//! "Only few applications are capable to scale to O(300k) cores —
//! sparse matrix-vector codes, highly regular communication patterns.
//! Most applications are more complex."
//!
//! We weak-scale two per-iteration communication skeletons:
//! * **SpMV class** — nearest-neighbour halo + one small allreduce
//!   (logarithmic): parallel efficiency stays high to 262 144 ranks.
//! * **Complex class** — adds an all-to-all phase (linear in ranks):
//!   efficiency collapses around a few thousand ranks.
//!
//! Small rank counts run on the discrete-event simulator over a real IB
//! fabric; the full sweep uses the LogGP models validated against those
//! DES points (printed side by side).
//!
//! Logic lives in `deep_bench::experiments::f09_scalability` so the
//! `run_experiments` driver can run it in-process; this wrapper only
//! prints the rendered buffer.

#![forbid(unsafe_code)]

fn main() {
    deep_bench::run_experiment_main("f09_scalability");
}
