//! F08 — slide 8: "IB can be assumed as fast as PCIe besides latency";
//! larger messages are less latency-sensitive.
//!
//! Effective bandwidth vs message size for the bare-DMA PCIe path, the IB
//! verbs path and the EXTOLL path, reporting where the network fabrics
//! reach ≥90 % of PCIe's effective bandwidth.
//!
//! Logic lives in `deep_bench::experiments::f08_direct_fabric` so the
//! `run_experiments` driver can run it in-process; this wrapper only
//! prints the rendered buffer.

#![forbid(unsafe_code)]

fn main() {
    deep_bench::run_experiment_main("f08_direct_fabric");
}
