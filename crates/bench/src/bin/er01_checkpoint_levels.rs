//! ER01 — the DEEP-ER storage hierarchy at work: multi-level checkpoint
//! cost and the resilience pay-off.
//!
//! Part 1 measures, on the simulated machine, the wall cost of one
//! checkpoint + restore at each level (L1 node-local NVM, L2 buddy over
//! EXTOLL, L3 PFS through the BI bridges) for a stencil-sized job state.
//!
//! Part 2 feeds those *measured* costs into the multi-level Monte-Carlo
//! resilience model and compares checkpoint policies under a realistic
//! failure-severity mix: L1-only (fast but fragile) against the SCR-style
//! L1/L2/L3 rotation.
//!
//! Logic lives in `deep_bench::experiments::er01_checkpoint_levels` so the
//! `run_experiments` driver can run it in-process; this wrapper only
//! prints the rendered buffer.

#![forbid(unsafe_code)]

fn main() {
    deep_bench::run_experiment_main("er01_checkpoint_levels");
}
