//! Criterion benches of the fabric contention engine: transfers per
//! second of wall time across topologies.

use std::rc::Rc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use deep_fabric::{
    fattree::{ib_fdr_host_spec, ib_fdr_trunk_spec},
    torus::extoll_link_spec,
    EndpointOverhead, FatTree, Network, NodeId, Torus3D,
};
use deep_simkit::Simulation;

fn run_transfers(topo: &str, n_transfers: u64) {
    let mut sim = Simulation::new(1);
    let ctx = sim.handle();
    let net: Rc<Network> = match topo {
        "torus" => Rc::new(Network::new(
            &ctx,
            Box::new(Torus3D::new((8, 8, 8), extoll_link_spec())),
            4096,
            1,
        )),
        "fattree" => Rc::new(Network::new(
            &ctx,
            Box::new(FatTree::new(
                512,
                18,
                18,
                ib_fdr_host_spec(),
                ib_fdr_trunk_spec(),
            )),
            4096,
            1,
        )),
        _ => unreachable!(),
    };
    let n_nodes = net.num_nodes() as u32;
    for i in 0..n_transfers {
        let net = net.clone();
        let src = NodeId((i as u32 * 37) % n_nodes);
        let dst = NodeId((i as u32 * 101 + 13) % n_nodes);
        sim.spawn(format!("x{i}"), async move {
            if src != dst {
                net.transfer(
                    src,
                    dst,
                    4096 + (64 * i) % 65536,
                    EndpointOverhead::default(),
                )
                .await
                .unwrap();
            }
        });
    }
    sim.run().assert_completed();
}

fn bench_transfers(c: &mut Criterion) {
    let mut g = c.benchmark_group("fabric/transfers");
    for topo in ["torus", "fattree"] {
        let n = 2000u64;
        g.throughput(Throughput::Elements(n));
        g.bench_with_input(BenchmarkId::from_parameter(topo), &topo, |b, &topo| {
            b.iter(|| run_transfers(topo, n))
        });
    }
    g.finish();
}

fn bench_routing(c: &mut Criterion) {
    use deep_fabric::Topology;
    let torus = Torus3D::new((16, 16, 16), extoll_link_spec());
    let mut path = Vec::with_capacity(32);
    c.bench_function("fabric/torus_dor_route", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(911);
            path.clear();
            torus.route(
                NodeId(i % 4096),
                NodeId((i.wrapping_mul(2654435761)) % 4096),
                &mut path,
            );
            path.len()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_transfers, bench_routing
}
criterion_main!(benches);
