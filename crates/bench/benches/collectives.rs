//! Criterion benches of the simulated MPI layer: collectives over a real
//! fat-tree fabric, measured in wall time per simulated operation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use deep_psmpi::{ReduceOp, Value};

fn run_collective(op: &str, ranks: u32, repeats: u32) {
    let op = op.to_string();
    deep_bench::run_ib_ranks(1, ranks, move |m| {
        let op = op.clone();
        Box::pin(async move {
            let world = m.world().clone();
            for _ in 0..repeats {
                match op.as_str() {
                    "barrier" => m.barrier(&world).await,
                    "allreduce" => {
                        m.allreduce(&world, ReduceOp::Sum, Value::F64(1.0), 1024)
                            .await;
                    }
                    "bcast" => {
                        m.bcast(&world, 0, Value::F64(1.0), 4096).await;
                    }
                    "alltoall" => {
                        let blocks = (0..world.size()).map(|_| Value::Unit).collect();
                        m.alltoall(&world, blocks, 1024).await;
                    }
                    _ => unreachable!(),
                }
            }
            0.0
        })
    });
}

fn bench_collectives(c: &mut Criterion) {
    for op in ["barrier", "allreduce", "bcast", "alltoall"] {
        let mut g = c.benchmark_group(format!("mpi/{op}"));
        for ranks in [8u32, 32, 128] {
            // alltoall at 128 ranks is O(n^2) messages per op; scale reps.
            let repeats = if op == "alltoall" { 3 } else { 10 };
            g.throughput(Throughput::Elements(repeats as u64));
            g.bench_with_input(BenchmarkId::from_parameter(ranks), &ranks, |b, &n| {
                b.iter(|| run_collective(op, n, repeats))
            });
        }
        g.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_collectives
}
criterion_main!(benches);
