//! Parallel sweep throughput: the same Monte-Carlo resilience sweep on
//! a 1-thread pool vs a pool sized to the machine. The per-replica work
//! is a full multi-level checkpoint/restart simulation, i.e. the real
//! unit of the experiment suite — so `nthreads / 1thread` is the
//! committed measure of what the work-stealing pool buys (tracked as
//! `sweep_runs_per_sec` in BENCH_engine.json).
//!
//! Both sides produce bit-identical results (asserted in
//! `tests/parallel_determinism.rs`); only the wall clock differs.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use deep_core::{mean_multilevel_efficiency, LevelCost, MultiLevelParams};
use rayon::ThreadPoolBuilder;

const REPLICAS: u32 = 64;

fn params() -> MultiLevelParams {
    MultiLevelParams {
        // Large enough that one replica is several ms of simulation —
        // the scheduler's per-task overhead must be invisible against
        // the grain, or the nthreads/1thread ratio in BENCH_engine.json
        // measures pool overhead instead of parallel payoff. (At the
        // old 2 000 s the whole 64-replica sweep was ~100 µs of work
        // and the N-thread side lost to fork/join cost.)
        work_s: 100_000.0,
        n_nodes: 64,
        mtbf_node_s: 40_000.0,
        interval_s: 10.0,
        levels: [
            LevelCost {
                write_s: 0.5,
                restore_s: 0.5,
            },
            LevelCost {
                write_s: 2.0,
                restore_s: 2.0,
            },
            LevelCost {
                write_s: 8.0,
                restore_s: 6.0,
            },
        ],
        l2_every: 2,
        l3_every: 4,
        restart_s: 30.0,
        severity_weights: [0.6, 0.3, 0.1],
    }
}

fn bench_sweep(c: &mut Criterion) {
    let p = params();
    let mut g = c.benchmark_group("sweep/mc_multilevel");
    g.throughput(Throughput::Elements(REPLICAS as u64));

    let one = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
    g.bench_function("1thread", |b| {
        b.iter(|| one.install(|| mean_multilevel_efficiency(&p, 11, REPLICAS)))
    });

    let n = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1);
    let full = ThreadPoolBuilder::new().num_threads(n).build().unwrap();
    g.bench_function("nthreads", |b| {
        b.iter(|| full.install(|| mean_multilevel_efficiency(&p, 11, REPLICAS)))
    });
    g.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
