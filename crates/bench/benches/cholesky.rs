//! Criterion benches of the OmpSs layer: dependence-graph construction
//! and dataflow execution of the tiled Cholesky (including the real tile
//! arithmetic).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use deep_apps::cholesky::{cholesky_graph, spd_matrix, TiledMatrix};
use deep_hw::NodeModel;
use deep_ompss::run_dataflow;
use deep_simkit::Simulation;

fn bench_graph_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("ompss/cholesky_graph_build");
    for nt in [8usize, 16, 24] {
        let ts = 8;
        let a = spd_matrix(nt * ts);
        let tasks = (nt * (nt + 1) * (nt + 2)) / 6 + nt * (nt - 1) / 2;
        g.throughput(Throughput::Elements(tasks as u64));
        g.bench_with_input(BenchmarkId::from_parameter(nt), &nt, |b, &nt| {
            b.iter(|| {
                let m = TiledMatrix::from_dense(&a, nt, ts);
                cholesky_graph(&m).len()
            })
        });
    }
    g.finish();
}

fn bench_dataflow_run(c: &mut Criterion) {
    let mut g = c.benchmark_group("ompss/cholesky_dataflow");
    for nt in [8usize, 12] {
        let ts = 16;
        let a = spd_matrix(nt * ts);
        g.bench_with_input(BenchmarkId::from_parameter(nt), &nt, |b, &nt| {
            b.iter(|| {
                let m = TiledMatrix::from_dense(&a, nt, ts);
                let graph = cholesky_graph(&m);
                let node = NodeModel::xeon_phi_knc();
                let mut sim = Simulation::new(1);
                let ctx = sim.handle();
                let h = sim.spawn(
                    "run",
                    async move { run_dataflow(&ctx, graph, &node, 60).await },
                );
                sim.run().assert_completed();
                h.try_result().unwrap().makespan
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_graph_build, bench_dataflow_run
}
criterion_main!(benches);
