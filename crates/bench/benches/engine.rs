//! Criterion benches of the simulation kernel itself: how fast does the
//! engine push virtual events? (These measure real wall time of the
//! simulator — the figure binaries measure *virtual* time.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use deep_simkit::{bounded, channel, Semaphore, SimDuration, Simulation};

fn bench_timer_wheel(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine/timers");
    for n_procs in [10u64, 100, 1000] {
        let events = n_procs * 100;
        g.throughput(Throughput::Elements(events));
        g.bench_with_input(BenchmarkId::from_parameter(n_procs), &n_procs, |b, &n| {
            b.iter(|| {
                let mut sim = Simulation::new(1);
                for i in 0..n {
                    let ctx = sim.handle();
                    sim.spawn(format!("p{i}"), async move {
                        for k in 0..100u64 {
                            ctx.sleep(SimDuration::nanos(1 + (i * 7 + k) % 97)).await;
                        }
                    });
                }
                sim.run().assert_completed();
                sim.now()
            })
        });
    }
    g.finish();
}

fn bench_channels(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine/channels");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("unbounded_pingpong", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(1);
            let ctx = sim.handle();
            let (tx_a, rx_a) = channel::<u64>(&ctx);
            let (tx_b, rx_b) = channel::<u64>(&ctx);
            sim.spawn("ping", async move {
                for i in 0..5_000u64 {
                    tx_a.send(i).await.unwrap();
                    rx_b.recv().await.unwrap();
                }
            });
            sim.spawn("pong", async move {
                for _ in 0..5_000u64 {
                    let v = rx_a.recv().await.unwrap();
                    tx_b.send(v).await.unwrap();
                }
            });
            sim.run().assert_completed();
        })
    });
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("bounded_backpressure", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(1);
            let ctx = sim.handle();
            let (tx, rx) = bounded::<u64>(&ctx, 8);
            sim.spawn("producer", async move {
                for i in 0..10_000u64 {
                    tx.send(i).await.unwrap();
                }
            });
            let ctx2 = ctx.clone();
            sim.spawn("consumer", async move {
                let mut sum = 0u64;
                while let Ok(v) = rx.recv().await {
                    sum += v;
                    if sum.is_multiple_of(64) {
                        ctx2.sleep(SimDuration::nanos(1)).await;
                    }
                }
                sum
            });
            sim.run().assert_completed();
        })
    });
    g.finish();
}

fn bench_semaphore(c: &mut Criterion) {
    c.bench_function("engine/semaphore_contention", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(1);
            let ctx = sim.handle();
            let sem = Semaphore::new(&ctx, 4);
            for i in 0..64 {
                let sem = sem.clone();
                let ctx = ctx.clone();
                sim.spawn(format!("w{i}"), async move {
                    for _ in 0..50 {
                        let g = sem.acquire().await;
                        ctx.sleep(SimDuration::nanos(10)).await;
                        drop(g);
                    }
                });
            }
            sim.run().assert_completed();
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_timer_wheel, bench_channels, bench_semaphore
}
criterion_main!(benches);
