//! Experiment reporting: small tables that print as Markdown (for
//! EXPERIMENTS.md) and serialise as JSON (for machine consumption).

use deep_json::{object, Value};

/// A table of experiment results.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment identifier (e.g. "F16").
    pub id: String,
    /// Title shown above the table.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table.
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Table {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Render as GitHub-flavoured Markdown.
    pub fn to_markdown(&self) -> String {
        let mut s = format!("### {} — {}\n\n", self.id, self.title);
        s.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        s.push_str(&format!(
            "|{}|\n",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        ));
        for r in &self.rows {
            s.push_str(&format!("| {} |\n", r.join(" | ")));
        }
        s
    }

    /// Render as a JSON object string.
    pub fn to_json(&self) -> String {
        object([
            ("id", self.id.as_str().into()),
            ("title", self.title.as_str().into()),
            ("headers", self.headers.clone().into()),
            (
                "rows",
                Value::Array(self.rows.iter().map(|r| r.clone().into()).collect()),
            ),
        ])
        .to_json_pretty()
    }

    /// Print Markdown followed by a JSON trailer (the format the
    /// figure-regeneration binaries emit).
    pub fn print(&self) {
        println!("{}", self.to_markdown());
    }

    /// Append exactly what [`Table::print`] would write to stdout
    /// (Markdown plus the trailing newline) to a string buffer, so
    /// experiments can render into per-run buffers when driven in
    /// parallel.
    pub fn write_into(&self, out: &mut String) {
        out.push_str(&self.to_markdown());
        out.push('\n');
    }
}

/// Format a float with engineering-style precision.
pub fn fmt_f(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

/// Format a byte count using binary units.
pub fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 30 {
        format!("{:.1} GiB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.1} MiB", b as f64 / (1u64 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1} KiB", b as f64 / 1024.0)
    } else {
        format!("{b} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_shape() {
        let mut t = Table::new("F00", "demo", &["a", "b"]);
        t.row(&["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("### F00 — demo"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
        assert!(md.contains("|---|---|"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("F00", "demo", &["a", "b"]);
        t.row(&["1".into()]);
    }

    #[test]
    fn json_roundtrip_contains_rows() {
        let mut t = Table::new("F01", "j", &["x"]);
        t.row(&["42".into()]);
        let j = t.to_json();
        assert!(j.contains("\"F01\""));
        assert!(j.contains("\"42\""));
    }

    #[test]
    fn write_into_matches_print_bytes() {
        let mut t = Table::new("F02", "w", &["a"]);
        t.row(&["7".into()]);
        let mut buf = String::new();
        t.write_into(&mut buf);
        assert_eq!(buf, format!("{}\n", t.to_markdown()));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_f(0.0), "0");
        assert_eq!(fmt_f(123.456), "123");
        assert_eq!(fmt_f(1.234), "1.23");
        assert_eq!(fmt_f(0.1234), "0.1234");
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.0 KiB");
        assert_eq!(fmt_bytes(3 << 20), "3.0 MiB");
        assert_eq!(fmt_bytes(5 << 30), "5.0 GiB");
    }
}
