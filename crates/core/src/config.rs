//! Machine configurations and presets.

use deep_hw::NodeModel;
use deep_io::StorageConfig;
use deep_json::object;
use deep_psmpi::MpiParams;

/// Configuration of a DEEP cluster-booster machine.
#[derive(Debug, Clone)]
pub struct DeepConfig {
    /// Cluster nodes (InfiniBand hosts).
    pub n_cluster: u32,
    /// Booster torus dimensions (EXTOLL).
    pub booster_dims: (u32, u32, u32),
    /// Booster-interface node count.
    pub n_bi: u32,
    /// Cluster node hardware.
    pub cluster_node: NodeModel,
    /// Booster node hardware.
    pub booster_node: NodeModel,
    /// MPI protocol parameters (not serialised; defaults on load).
    pub mpi: MpiParams,
    /// Per-segment CRC-error probability injected on every EXTOLL link
    /// (0.0 = clean links). Retransmission is handled by the fabric's
    /// link-level retry (slide 16 RAS).
    pub booster_link_error_rate: f64,
    /// Storage hierarchy (DEEP-ER): node-local NVM, the shared PFS behind
    /// the cluster fabric, and the file-layer tunables.
    pub storage: StorageConfig,
}

impl DeepConfig {
    /// Total booster nodes.
    pub fn n_booster(&self) -> u32 {
        self.booster_dims.0 * self.booster_dims.1 * self.booster_dims.2
    }

    /// The DEEP prototype described in the paper's project slides:
    /// 128 Xeon cluster nodes, a 512-node KNC booster on an 8×8×8 EXTOLL
    /// torus, 8 booster interfaces.
    pub fn prototype() -> DeepConfig {
        DeepConfig {
            n_cluster: 128,
            booster_dims: (8, 8, 8),
            n_bi: 8,
            cluster_node: NodeModel::xeon_cluster_node(),
            booster_node: NodeModel::xeon_phi_knc(),
            mpi: MpiParams::default(),
            booster_link_error_rate: 0.0,
            storage: StorageConfig::default(),
        }
    }

    /// A laptop-friendly configuration for tests and examples:
    /// 4 cluster nodes, a 2×2×2 booster, 2 BIs.
    pub fn small() -> DeepConfig {
        DeepConfig {
            n_cluster: 4,
            booster_dims: (2, 2, 2),
            n_bi: 2,
            cluster_node: NodeModel::xeon_cluster_node(),
            booster_node: NodeModel::xeon_phi_knc(),
            mpi: MpiParams::default(),
            booster_link_error_rate: 0.0,
            storage: StorageConfig::default(),
        }
    }

    /// A mid-size configuration: 16 cluster nodes, 4×4×4 booster, 4 BIs.
    pub fn medium() -> DeepConfig {
        DeepConfig {
            n_cluster: 16,
            booster_dims: (4, 4, 4),
            n_bi: 4,
            cluster_node: NodeModel::xeon_cluster_node(),
            booster_node: NodeModel::xeon_phi_knc(),
            mpi: MpiParams::default(),
            booster_link_error_rate: 0.0,
            storage: StorageConfig::default(),
        }
    }

    /// Aggregate peak flops of the whole machine.
    pub fn peak_flops(&self) -> f64 {
        self.n_cluster as f64 * self.cluster_node.peak_flops()
            + self.n_booster() as f64 * self.booster_node.peak_flops()
    }

    /// Aggregate peak power draw in watts.
    pub fn peak_power_w(&self) -> f64 {
        self.n_cluster as f64 * self.cluster_node.power.peak_w
            + self.n_booster() as f64 * self.booster_node.power.peak_w
    }

    /// Serialise to a JSON string (MPI parameters are runtime-only and
    /// are restored to defaults on load).
    pub fn to_json(&self) -> String {
        object([
            ("n_cluster", self.n_cluster.into()),
            (
                "booster_dims",
                vec![
                    self.booster_dims.0,
                    self.booster_dims.1,
                    self.booster_dims.2,
                ]
                .into(),
            ),
            ("n_bi", self.n_bi.into()),
            ("cluster_node", self.cluster_node.to_json()),
            ("booster_node", self.booster_node.to_json()),
            (
                "booster_link_error_rate",
                self.booster_link_error_rate.into(),
            ),
            ("storage", self.storage.to_json_value()),
        ])
        .to_json_pretty()
    }

    /// Parse a configuration serialised by [`DeepConfig::to_json`].
    pub fn from_json(text: &str) -> Option<DeepConfig> {
        let v = deep_json::from_str(text).ok()?;
        let dims = v.get("booster_dims")?.as_array()?;
        if dims.len() != 3 {
            return None;
        }
        Some(DeepConfig {
            n_cluster: v.get("n_cluster")?.as_u64()? as u32,
            booster_dims: (
                dims[0].as_u64()? as u32,
                dims[1].as_u64()? as u32,
                dims[2].as_u64()? as u32,
            ),
            n_bi: v.get("n_bi")?.as_u64()? as u32,
            cluster_node: NodeModel::from_json(v.get("cluster_node")?)?,
            booster_node: NodeModel::from_json(v.get("booster_node")?)?,
            mpi: MpiParams::default(),
            booster_link_error_rate: v.get("booster_link_error_rate")?.as_f64()?,
            storage: StorageConfig::from_json_value(v.get("storage")?)?,
        })
    }
}

/// Re-export for callers that want to build richer documents around a
/// serialised [`DeepConfig`].
pub use deep_json::Value as JsonValue;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_matches_paper_scale() {
        let c = DeepConfig::prototype();
        assert_eq!(c.n_booster(), 512);
        // ~500 TF booster + ~44 TF cluster ≈ 0.55 PF peak.
        let pf = c.peak_flops() / 1e15;
        assert!((0.4..0.7).contains(&pf), "peak {pf} PF");
        // Booster dominates the flops (that's the point).
        let booster_share = c.n_booster() as f64 * c.booster_node.peak_flops() / c.peak_flops();
        assert!(booster_share > 0.85);
    }

    #[test]
    fn config_serializes() {
        let c = DeepConfig::small();
        let j = c.to_json();
        let back = DeepConfig::from_json(&j).unwrap();
        assert_eq!(back.n_cluster, 4);
        assert_eq!(back.n_booster(), 8);
        assert_eq!(back.cluster_node, c.cluster_node);
        assert_eq!(back.booster_node, c.booster_node);
        assert_eq!(back.storage, c.storage);
    }

    #[test]
    fn storage_survives_the_config_roundtrip() {
        let mut c = DeepConfig::small();
        c.storage.pfs.n_servers = 5;
        c.storage.local.write_bps = 4.2e9;
        let back = DeepConfig::from_json(&c.to_json()).unwrap();
        assert_eq!(back.storage, c.storage);
    }
}
