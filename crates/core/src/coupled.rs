//! The coupled multi-physics proxy application (experiments F10, F18).
//!
//! Mirrors the application structure of slide 21: a `main()` part with
//! complex, all-to-all communication that belongs on cluster nodes, and a
//! **highly scalable code part** (HSCP) — a regular, iterative kernel —
//! that belongs on accelerators. The same proxy runs on three machines:
//!
//! * pure cluster — HSCP on the Xeons themselves;
//! * accelerated cluster — HSCP on PCIe GPUs, where every internal halo
//!   exchange must stage through host memory (D2H → IB → H2D);
//! * DEEP cluster-booster — HSCP offloaded *as a whole kernel* to the
//!   booster, whose internal communication stays on EXTOLL.
//!
//! The drivers measure time-to-solution, energy, and the CPU↔accelerator
//! traffic the paper argues the cluster-booster design slashes.

use std::cell::RefCell;
use std::rc::Rc;

use deep_hw::{roofline, EnergyMeter, KernelProfile, NodeModel};
use deep_ompss::{booster_block, OffloadSpec, Offloader};
use deep_psmpi::{launch_world, ReduceOp, Value};
use deep_simkit::{SimDuration, Simulation};

use crate::baselines::AcceleratedCluster;
use crate::config::DeepConfig;
use crate::machine::{DeepMachine, BOOSTER_POOL, OFFLOAD_SERVER};

/// Workload parameters, per coupled time step.
#[derive(Debug, Clone, Copy)]
pub struct CoupledParams {
    /// Time steps of the coupled simulation.
    pub steps: u32,
    /// Complex (scalar-ish) flops per cluster rank per step.
    pub cluster_flops_per_rank: f64,
    /// All-to-all block size among cluster ranks per step.
    pub alltoall_bytes: u64,
    /// HSCP flops per step (whole machine).
    pub hscp_flops_total: f64,
    /// HSCP memory traffic per step (whole machine).
    pub hscp_bytes_total: f64,
    /// Internal iterations of the HSCP per step.
    pub hscp_iters: u32,
    /// Internal exchange payload per iteration per unit.
    pub halo_bytes: u64,
    /// Input shipped to each accelerator unit per step.
    pub offload_in_bytes: u64,
    /// Output shipped back from each accelerator unit per step.
    pub offload_out_bytes: u64,
}

impl Default for CoupledParams {
    fn default() -> Self {
        CoupledParams {
            steps: 4,
            cluster_flops_per_rank: 2e9,
            alltoall_bytes: 64 << 10,
            hscp_flops_total: 4e12,
            hscp_bytes_total: 8e11,
            hscp_iters: 10,
            halo_bytes: 64 << 10,
            offload_in_bytes: 4 << 20,
            offload_out_bytes: 4 << 20,
        }
    }
}

/// Outcome of one coupled run on one architecture.
#[derive(Debug, Clone)]
pub struct CoupledReport {
    /// Architecture label.
    pub arch: String,
    /// Time to solution.
    pub elapsed: SimDuration,
    /// Total energy in joules.
    pub energy_joules: f64,
    /// CPU↔accelerator messages (0 on the pure cluster).
    pub acc_messages: u64,
    /// CPU↔accelerator bytes.
    pub acc_bytes: u64,
    /// Cluster nodes used.
    pub cluster_nodes: u32,
    /// Accelerator units used (GPUs or booster nodes).
    pub acc_units: u32,
}

/// The complex cluster-code profile: low arithmetic intensity, poorly
/// vectorisable — it runs at the node's scalar fraction of peak.
fn cluster_kernel(p: &CoupledParams) -> KernelProfile {
    KernelProfile {
        flops: p.cluster_flops_per_rank,
        bytes: p.cluster_flops_per_rank / 2.0,
        compute_efficiency: 1.0, // scalar derating applied via exec mode
        bandwidth_efficiency: 0.5,
    }
}

/// Per-unit HSCP kernel for `units` accelerator units (whole step).
fn hscp_kernel(p: &CoupledParams, units: u32) -> KernelProfile {
    KernelProfile {
        flops: p.hscp_flops_total / units as f64,
        bytes: p.hscp_bytes_total / units as f64,
        compute_efficiency: 0.8,
        bandwidth_efficiency: 0.7,
    }
}

fn energy_of(
    n_nodes: u32,
    node: &NodeModel,
    busy: SimDuration,
    idle: SimDuration,
    busy_util: f64,
) -> f64 {
    let mut m = EnergyMeter::new();
    m.record(&node.power, busy, busy_util);
    m.record(&node.power, idle, 0.0);
    m.joules() * n_nodes as f64
}

/// Run the proxy on a DEEP machine.
pub fn run_on_deep(seed: u64, config: DeepConfig, p: CoupledParams) -> CoupledReport {
    let mut sim = Simulation::new(seed);
    let ctx = sim.handle();
    let machine = DeepMachine::build(&ctx, config.clone());
    let n_booster = config.n_booster();
    let out: Rc<RefCell<Option<(SimDuration, SimDuration, SimDuration)>>> =
        Rc::new(RefCell::new(None));
    let out2 = out.clone();
    let cluster_node = config.cluster_node.clone();

    machine.launch_cluster_app("coupled-main", move |m| {
        let out = out2.clone();
        let cluster_node = cluster_node.clone();
        Box::pin(async move {
            let world = m.world().clone();
            let size = world.size();
            let t_start = m.sim().now();
            let inter = m
                .comm_spawn(&world, OFFLOAD_SERVER, n_booster, BOOSTER_POOL, 0)
                .await
                .expect("booster spawn");
            let off = Offloader::new(inter);
            let block = booster_block(m.rank(), size, n_booster);
            let t_spawned = m.sim().now();
            let mut t_cluster = SimDuration::ZERO;
            let mut t_offload = SimDuration::ZERO;

            for _ in 0..p.steps {
                // Complex main() part on the cluster.
                let t0 = m.sim().now();
                let ck = cluster_kernel(&p);
                let t =
                    roofline::exec_time_with_mode(&cluster_node, &ck, cluster_node.cores, false);
                m.sim().sleep(t.time).await;
                let blocks = (0..size).map(|_| Value::Unit).collect();
                m.alltoall(&world, blocks, p.alltoall_bytes).await;
                t_cluster += m.sim().now() - t0;

                // The HSCP, offloaded whole to the booster.
                let t1 = m.sim().now();
                let spec = OffloadSpec {
                    in_bytes: p.offload_in_bytes,
                    out_bytes: p.offload_out_bytes,
                    kernel: hscp_kernel(&p, n_booster),
                    cores: u32::MAX, // all booster cores
                    iters: p.hscp_iters,
                    internal_msg_bytes: p.halo_bytes,
                };
                off.run(&m, &spec, block.clone()).await;
                m.barrier(&world).await;
                t_offload += m.sim().now() - t1;
            }
            off.shutdown(&m, block).await;
            if m.rank() == 0 {
                *out.borrow_mut() = Some((t_spawned - t_start, t_cluster, t_offload));
            }
            let _ = m.allreduce(&world, ReduceOp::Sum, Value::U64(1), 8).await;
        })
    });
    sim.run().assert_completed();

    let (t_spawn, t_cluster, t_offload) = out.borrow_mut().take().expect("rank 0 reported");
    let traffic = machine.cbp().bridged_traffic();
    let elapsed = t_spawn + t_cluster + t_offload;
    let energy = energy_of(
        config.n_cluster,
        &config.cluster_node,
        t_cluster,
        t_offload + t_spawn,
        0.9,
    ) + energy_of(
        config.n_booster(),
        &config.booster_node,
        t_offload,
        t_cluster + t_spawn,
        0.9,
    );
    CoupledReport {
        arch: "deep-cluster-booster".into(),
        elapsed,
        energy_joules: energy,
        acc_messages: traffic.messages,
        acc_bytes: traffic.bytes,
        cluster_nodes: config.n_cluster,
        acc_units: n_booster,
    }
}

/// Run the proxy on a homogeneous Xeon cluster of `n_nodes`.
pub fn run_on_pure_cluster(seed: u64, n_nodes: u32, p: CoupledParams) -> CoupledReport {
    let mut sim = Simulation::new(seed);
    let ctx = sim.handle();
    let uni = crate::baselines::homogeneous_cluster(&ctx, n_nodes, Default::default());
    let node = NodeModel::xeon_cluster_node();
    let node2 = node.clone();
    let out: Rc<RefCell<Option<SimDuration>>> = Rc::new(RefCell::new(None));
    let out2 = out.clone();

    launch_world(
        &uni,
        "coupled-pure",
        (0..n_nodes).map(deep_psmpi::EpId).collect(),
        move |m| {
            let out = out2.clone();
            let node = node2.clone();
            Box::pin(async move {
                let world = m.world().clone();
                let size = world.size();
                let t_start = m.sim().now();
                for _ in 0..p.steps {
                    let ck = cluster_kernel(&p);
                    let t = roofline::exec_time_with_mode(&node, &ck, node.cores, false);
                    m.sim().sleep(t.time).await;
                    let blocks = (0..size).map(|_| Value::Unit).collect();
                    m.alltoall(&world, blocks, p.alltoall_bytes).await;

                    // HSCP in place on the Xeons.
                    let per_iter = hscp_kernel(&p, size).scaled(1.0 / p.hscp_iters as f64);
                    for _ in 0..p.hscp_iters {
                        let t = roofline::exec_time(&node, &per_iter, node.cores);
                        m.sim().sleep(t.time).await;
                        m.allreduce(&world, ReduceOp::Sum, Value::F64(1.0), p.halo_bytes)
                            .await;
                    }
                }
                if m.rank() == 0 {
                    *out.borrow_mut() = Some(m.sim().now() - t_start);
                }
            })
        },
    );
    sim.run().assert_completed();

    let elapsed = out.borrow_mut().take().expect("rank 0 reported");
    let energy = energy_of(n_nodes, &node, elapsed, SimDuration::ZERO, 1.0);
    CoupledReport {
        arch: "pure-cluster".into(),
        elapsed,
        energy_joules: energy,
        acc_messages: 0,
        acc_bytes: 0,
        cluster_nodes: n_nodes,
        acc_units: 0,
    }
}

/// Run the proxy on an accelerated cluster (`n_nodes`, one GPU each).
pub fn run_on_accelerated(seed: u64, n_nodes: u32, p: CoupledParams) -> CoupledReport {
    let mut sim = Simulation::new(seed);
    let ctx = sim.handle();
    let gpu = NodeModel::gpu_k20x();
    let ac = Rc::new(AcceleratedCluster::build(
        &ctx,
        n_nodes,
        gpu.clone(),
        Default::default(),
    ));
    let host = NodeModel::xeon_cluster_node();
    let host2 = host.clone();
    let out: Rc<RefCell<Option<(SimDuration, SimDuration)>>> = Rc::new(RefCell::new(None));
    let out2 = out.clone();
    let ac2 = ac.clone();

    launch_world(&ac.universe, "coupled-accel", ac.eps(), move |m| {
        let out = out2.clone();
        let host = host2.clone();
        let ac = ac2.clone();
        Box::pin(async move {
            let world = m.world().clone();
            let size = world.size();
            let my_gpu = ac.nodes[m.rank() as usize].clone();
            let t_start = m.sim().now();
            let mut t_gpu_busy = SimDuration::ZERO;
            for _ in 0..p.steps {
                // Complex main() part, identical to the other machines.
                let ck = cluster_kernel(&p);
                let t = roofline::exec_time_with_mode(&host, &ck, host.cores, false);
                m.sim().sleep(t.time).await;
                let blocks = (0..size).map(|_| Value::Unit).collect();
                m.alltoall(&world, blocks, p.alltoall_bytes).await;

                // HSCP on the GPU: ship input, iterate with staged halos,
                // ship output (slide 7: "communication via main memory").
                my_gpu.h2d(p.offload_in_bytes).await;
                let per_iter = hscp_kernel(&p, size).scaled(1.0 / p.hscp_iters as f64);
                for _ in 0..p.hscp_iters {
                    let t = roofline::exec_time(&my_gpu.gpu, &per_iter, my_gpu.gpu.cores);
                    m.sim().sleep(t.time).await;
                    t_gpu_busy += t.time;
                    // Halo staged through the host on both ends.
                    my_gpu.d2h(p.halo_bytes).await;
                    m.allreduce(&world, ReduceOp::Sum, Value::F64(1.0), p.halo_bytes)
                        .await;
                    my_gpu.h2d(p.halo_bytes).await;
                }
                my_gpu.d2h(p.offload_out_bytes).await;
            }
            if m.rank() == 0 {
                *out.borrow_mut() = Some((m.sim().now() - t_start, t_gpu_busy));
            }
        })
    });
    sim.run().assert_completed();

    let (elapsed, gpu_busy) = out.borrow_mut().take().expect("rank 0 reported");
    let traffic = ac.total_acc_traffic();
    let energy = energy_of(n_nodes, &host, elapsed, SimDuration::ZERO, 0.9)
        + energy_of(
            n_nodes,
            &gpu,
            gpu_busy,
            elapsed.saturating_sub(gpu_busy),
            0.9,
        );
    CoupledReport {
        arch: "accelerated-cluster".into(),
        elapsed,
        energy_joules: energy,
        acc_messages: traffic.messages,
        acc_bytes: traffic.bytes,
        cluster_nodes: n_nodes,
        acc_units: n_nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_params() -> CoupledParams {
        CoupledParams {
            steps: 2,
            ..CoupledParams::default()
        }
    }

    #[test]
    fn all_three_architectures_complete() {
        let p = quick_params();
        let deep = run_on_deep(1, DeepConfig::small(), p);
        let pure = run_on_pure_cluster(1, 4, p);
        let accel = run_on_accelerated(1, 4, p);
        assert!(deep.elapsed > SimDuration::ZERO);
        assert!(pure.elapsed > SimDuration::ZERO);
        assert!(accel.elapsed > SimDuration::ZERO);
        assert_eq!(pure.acc_messages, 0);
        assert!(deep.acc_messages > 0);
        assert!(accel.acc_messages > 0);
    }

    #[test]
    fn deep_offloads_coarser_than_accelerated_cluster() {
        // Per paper slide 8: less frequent, larger CPU↔accelerator
        // messages. Compare messages *per accelerator unit*.
        let p = quick_params();
        let deep = run_on_deep(1, DeepConfig::small(), p);
        let accel = run_on_accelerated(1, 4, p);
        let deep_per_unit = deep.acc_messages as f64 / deep.acc_units as f64;
        let accel_per_unit = accel.acc_messages as f64 / accel.acc_units as f64;
        assert!(
            accel_per_unit > deep_per_unit * 2.0,
            "accelerated {accel_per_unit} vs deep {deep_per_unit} messages/unit"
        );
        let deep_avg_msg = deep.acc_bytes as f64 / deep.acc_messages as f64;
        let accel_avg_msg = accel.acc_bytes as f64 / accel.acc_messages as f64;
        assert!(
            deep_avg_msg > accel_avg_msg,
            "deep messages are larger: {deep_avg_msg} vs {accel_avg_msg}"
        );
    }

    #[test]
    fn reports_have_consistent_energy() {
        let p = quick_params();
        for rep in [
            run_on_deep(1, DeepConfig::small(), p),
            run_on_pure_cluster(1, 4, p),
            run_on_accelerated(1, 4, p),
        ] {
            assert!(
                rep.energy_joules > 0.0,
                "{}: energy {}",
                rep.arch,
                rep.energy_joules
            );
            // Sanity: energy ≤ whole machine at peak for the duration.
            let all_peak = (rep.cluster_nodes as f64 * 350.0 + rep.acc_units as f64 * 250.0)
                * rep.elapsed.as_secs_f64();
            assert!(rep.energy_joules <= all_peak * 1.05);
        }
    }
}
