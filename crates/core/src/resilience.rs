//! Checkpoint/restart resilience model — the second exascale challenge of
//! slide 3 ("Resiliency") and the takeaways of slide 32.
//!
//! A long-running application on `n` nodes checkpoints every `interval`;
//! node failures arrive as a Poisson process with per-node MTBF `mtbf`;
//! each failure rolls the application back to the last checkpoint and
//! costs a restart. The simulator measures the achieved efficiency
//! (useful work / wall time) and the experiment compares the best
//! interval against Daly's first-order optimum √(2·C·MTBF/n).
//!
//! The multi-level variant ([`simulate_multilevel`]) models the DEEP-ER
//! storage hierarchy: checkpoints rotate over L1 (node-local NVM), L2
//! (buddy replica) and L3 (PFS), failures carry a *severity* (transient,
//! node loss, multi-node loss), and recovery rolls back to the newest
//! checkpoint on a level that survived — the [`deep_io::CommitLog`]
//! bookkeeping is shared with the DES checkpoint engine, and the
//! per-level costs are meant to be measured from it (see
//! [`crate::storage::measure_level_costs`]).

use deep_io::{CkptLevel, CommitLog, FailureSeverity};
use deep_simkit::SimRng;
use rayon::prelude::*;

/// Parameters of one resilience scenario.
#[derive(Debug, Clone, Copy)]
pub struct ResilienceParams {
    /// Useful work to complete, in seconds of failure-free compute.
    pub work_s: f64,
    /// Nodes the job runs on (failure rate scales linearly).
    pub n_nodes: u64,
    /// Per-node mean time between failures, seconds.
    pub mtbf_node_s: f64,
    /// Time to write one checkpoint, seconds.
    pub checkpoint_s: f64,
    /// Time to restart after a failure, seconds.
    pub restart_s: f64,
}

/// Outcome of a simulated run.
#[derive(Debug, Clone, Copy)]
pub struct ResilienceOutcome {
    /// Wall time to finish the work.
    pub wall_s: f64,
    /// Useful work / wall time.
    pub efficiency: f64,
    /// Failures suffered.
    pub failures: u64,
    /// Checkpoints written.
    pub checkpoints: u64,
    /// True when the run hit the wall-time cap before completing its
    /// work — the configuration cannot make progress.
    pub truncated: bool,
}

impl ResilienceOutcome {
    /// Efficiency of `done_s` seconds of useful work over `wall_s` of
    /// wall time. A run that never started (zero wall) has efficiency
    /// 0.0 — explicitly, not NaN.
    pub fn compute_efficiency(done_s: f64, wall_s: f64) -> f64 {
        if wall_s <= 0.0 {
            0.0
        } else {
            done_s / wall_s
        }
    }
}

/// Mean over replicas, with truncation surfaced instead of averaged away.
#[derive(Debug, Clone, Copy)]
pub struct MeanEfficiency {
    /// Mean efficiency over all replicas (truncated ones included, at the
    /// efficiency they achieved before the cap).
    pub efficiency: f64,
    /// How many replicas were cut off before finishing their work.
    pub truncated_runs: u32,
}

/// Daly's first-order optimal checkpoint interval.
pub fn daly_optimum(p: &ResilienceParams) -> f64 {
    (2.0 * p.checkpoint_s * p.mtbf_node_s / p.n_nodes as f64).sqrt()
}

/// Simulate one run with checkpoints every `interval_s`.
///
/// If the machine cannot make progress (interval + checkpoint far above
/// the system MTBF, so segments virtually never complete), the run is cut
/// off at 1000× the useful work and reported with `truncated` set and the
/// efficiency achieved by then — the honest "this configuration does not
/// work" answer instead of a non-terminating simulation.
pub fn simulate_run(p: &ResilienceParams, interval_s: f64, rng: &mut SimRng) -> ResilienceOutcome {
    assert!(interval_s > 0.0 && p.work_s > 0.0);
    let wall_cap = 1000.0 * p.work_s;
    let system_mtbf = p.mtbf_node_s / p.n_nodes as f64;
    let mut wall = 0.0f64;
    let mut done = 0.0f64; // checkpointed work
    let mut failures = 0u64;
    let mut checkpoints = 0u64;
    let mut next_failure = rng.gen_exp(system_mtbf);

    while done < p.work_s && wall < wall_cap {
        // Attempt one segment: work until the next checkpoint (or the end).
        let segment = interval_s.min(p.work_s - done);
        let attempt = segment
            + if done + segment < p.work_s {
                p.checkpoint_s
            } else {
                0.0 // no checkpoint needed after the last segment
            };
        if wall + attempt <= next_failure {
            // Segment (and its checkpoint) completes.
            wall += attempt;
            done += segment;
            if done < p.work_s {
                checkpoints += 1;
            }
        } else {
            // Failure mid-segment: lose everything since the checkpoint.
            failures += 1;
            wall = next_failure + p.restart_s;
            next_failure = wall + rng.gen_exp(system_mtbf);
        }
    }
    ResilienceOutcome {
        wall_s: wall,
        efficiency: ResilienceOutcome::compute_efficiency(done.min(p.work_s), wall),
        failures,
        checkpoints,
        truncated: done < p.work_s,
    }
}

/// Mean efficiency over `replicas` independent runs (deterministic in
/// `seed`).
pub fn mean_efficiency(
    p: &ResilienceParams,
    interval_s: f64,
    seed: u64,
    replicas: u32,
) -> MeanEfficiency {
    // Each replica draws from its own index-derived RNG stream, so the
    // draws are independent of execution order. The parallel collect
    // fills index-ordered slots and the fold below runs sequentially
    // after the barrier — the mean is bit-identical to the serial loop
    // at any thread count.
    let outcomes: Vec<ResilienceOutcome> = (0..replicas)
        .into_par_iter()
        .map(|r| {
            let mut rng = SimRng::from_seed_stream(seed, 0xC4E0 + r as u64);
            simulate_run(p, interval_s, &mut rng)
        })
        .collect();
    reduce_outcomes(&outcomes, replicas)
}

/// Fold per-replica outcomes into a mean, in replica-index order.
///
/// Public so flattened (case × replica) drivers (e.g.
/// `deep_faults::sweep::fault_sweep`) can reduce their own replica
/// chunks with bitwise the same accumulation this module uses.
pub fn reduce_outcomes(outcomes: &[ResilienceOutcome], replicas: u32) -> MeanEfficiency {
    let mut total = 0.0;
    let mut truncated_runs = 0;
    for out in outcomes {
        total += out.efficiency;
        truncated_runs += u32::from(out.truncated);
    }
    MeanEfficiency {
        efficiency: total / replicas as f64,
        truncated_runs,
    }
}

/// Mean efficiency for a whole batch of `(params, interval)` cases,
/// flattened onto one (case × replica) work-unit grid.
///
/// Bit-identical to calling [`mean_efficiency`] per case: replica `r`'s
/// RNG stream (`0xC4E0 + r`) depends only on `r`, never on the case
/// index, and each case's chunk is reduced in replica order with the
/// same fold. What changes is *scheduling*: one flat grid of
/// `cases × replicas` units gives the pool real grain to steal instead
/// of `cases` nested drives each fanning out `replicas` tiny jobs —
/// this is the nested-parallelism rule of DESIGN.md §12.
pub fn mean_efficiency_batch(
    cases: &[(ResilienceParams, f64)],
    seed: u64,
    replicas: u32,
) -> Vec<MeanEfficiency> {
    assert!(replicas > 0, "at least one replica per case");
    let rep = replicas as usize;
    let outcomes: Vec<ResilienceOutcome> = (0..cases.len() * rep)
        .into_par_iter()
        .map(|u| {
            let (p, interval_s) = &cases[u / rep];
            let r = (u % rep) as u64;
            let mut rng = SimRng::from_seed_stream(seed, 0xC4E0 + r);
            simulate_run(p, *interval_s, &mut rng)
        })
        .collect();
    outcomes
        .chunks_exact(rep)
        .map(|chunk| reduce_outcomes(chunk, replicas))
        .collect()
}

/// Batch form of [`mean_multilevel_efficiency`] over one flattened
/// (case × replica) grid; see [`mean_efficiency_batch`] for why this is
/// bit-identical to the per-case calls.
pub fn mean_multilevel_efficiency_batch(
    cases: &[MultiLevelParams],
    seed: u64,
    replicas: u32,
) -> Vec<MeanEfficiency> {
    assert!(replicas > 0, "at least one replica per case");
    let rep = replicas as usize;
    let outcomes: Vec<ResilienceOutcome> = (0..cases.len() * rep)
        .into_par_iter()
        .map(|u| {
            let r = (u % rep) as u64;
            let mut rng = SimRng::from_seed_stream(seed, 0xE401 + r);
            simulate_multilevel(&cases[u / rep], &mut rng)
        })
        .collect();
    outcomes
        .chunks_exact(rep)
        .map(|chunk| reduce_outcomes(chunk, replicas))
        .collect()
}

// ---------------------------------------------------------------------
// Multi-level checkpointing (DEEP-ER).

/// Cost of one checkpoint level, measured or assumed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LevelCost {
    /// Seconds to write one checkpoint at this level.
    pub write_s: f64,
    /// Seconds to restore one checkpoint from this level.
    pub restore_s: f64,
}

/// Parameters of a multi-level resilience scenario.
#[derive(Debug, Clone, Copy)]
pub struct MultiLevelParams {
    /// Useful work to complete, seconds.
    pub work_s: f64,
    /// Nodes the job runs on.
    pub n_nodes: u64,
    /// Per-node MTBF, seconds.
    pub mtbf_node_s: f64,
    /// Checkpoint interval, seconds.
    pub interval_s: f64,
    /// Per-level costs, indexed L1, L2, L3.
    pub levels: [LevelCost; 3],
    /// Every `l2_every`-th checkpoint is written at L2 (0 = never).
    pub l2_every: u32,
    /// Every `l3_every`-th checkpoint is written at L3 (0 = never);
    /// takes precedence over L2 when both hit.
    pub l3_every: u32,
    /// Base restart cost (reboot, relaunch) before the level restore.
    pub restart_s: f64,
    /// Relative weights of failure severities
    /// [transient, node loss, multi-node loss].
    pub severity_weights: [f64; 3],
}

impl MultiLevelParams {
    /// The SCR-style default rotation: mostly L1, every 4th checkpoint to
    /// the buddy, every 16th to the PFS.
    pub fn rotation_policy(mut self, l2_every: u32, l3_every: u32) -> MultiLevelParams {
        self.l2_every = l2_every;
        self.l3_every = l3_every;
        self
    }

    /// An L1-only policy (what a machine without the deeper levels does).
    pub fn l1_only(mut self) -> MultiLevelParams {
        self.l2_every = 0;
        self.l3_every = 0;
        self
    }

    /// The level the `count`-th checkpoint is written at under the
    /// rotation (L3 takes precedence over L2 when both divide `count`).
    pub fn level_for(&self, count: u64) -> CkptLevel {
        if self.l3_every > 0 && count.is_multiple_of(self.l3_every as u64) {
            CkptLevel::L3Pfs
        } else if self.l2_every > 0 && count.is_multiple_of(self.l2_every as u64) {
            CkptLevel::L2Partner
        } else {
            CkptLevel::L1Local
        }
    }

    /// Draw a failure severity from the configured weight mix.
    pub fn draw_severity(&self, rng: &mut SimRng) -> FailureSeverity {
        let total: f64 = self.severity_weights.iter().sum();
        assert!(total > 0.0, "severity weights must not all be zero");
        let mut u = rng.gen_f64() * total;
        for (i, &w) in self.severity_weights.iter().enumerate() {
            u -= w;
            if u < 0.0 {
                return FailureSeverity::ALL[i];
            }
        }
        FailureSeverity::MultiNodeLoss
    }
}

fn level_index(level: CkptLevel) -> usize {
    match level {
        CkptLevel::L1Local => 0,
        CkptLevel::L2Partner => 1,
        CkptLevel::L3Pfs => 2,
    }
}

/// Work marks are stored in the [`CommitLog`] in milliseconds.
pub fn mark_of(done_s: f64) -> u64 {
    (done_s * 1e3).round() as u64
}

/// Simulate one multi-level run.
///
/// Failures carry a severity; the [`CommitLog`] invalidates the levels
/// that do not survive it, and recovery rolls back to the newest
/// surviving checkpoint (restored at that level's cost). If *no* level
/// survives, the job starts over from zero — which is what dooms an
/// L1-only policy under multi-node failures.
pub fn simulate_multilevel(p: &MultiLevelParams, rng: &mut SimRng) -> ResilienceOutcome {
    assert!(p.interval_s > 0.0 && p.work_s > 0.0);
    let wall_cap = 1000.0 * p.work_s;
    let system_mtbf = p.mtbf_node_s / p.n_nodes as f64;
    let mut wall = 0.0f64;
    let mut done = 0.0f64;
    let mut failures = 0u64;
    let mut checkpoints = 0u64;
    let mut log = CommitLog::new();
    let mut next_failure = rng.gen_exp(system_mtbf);

    while done < p.work_s && wall < wall_cap {
        let segment = p.interval_s.min(p.work_s - done);
        let last = done + segment >= p.work_s;
        let level = p.level_for(checkpoints + 1);
        let attempt = segment
            + if last {
                0.0
            } else {
                p.levels[level_index(level)].write_s
            };
        if wall + attempt <= next_failure {
            wall += attempt;
            done += segment;
            if !last {
                checkpoints += 1;
                log.commit(level, mark_of(done));
            }
        } else {
            failures += 1;
            let severity = p.draw_severity(rng);
            log.fail(severity);
            wall = next_failure + p.restart_s;
            match log.best() {
                Some((level, mark)) => {
                    wall += p.levels[level_index(level)].restore_s;
                    done = mark as f64 / 1e3;
                }
                None => {
                    // Nothing survived: start over from the beginning.
                    done = 0.0;
                }
            }
            next_failure = wall + rng.gen_exp(system_mtbf);
        }
    }
    ResilienceOutcome {
        wall_s: wall,
        efficiency: ResilienceOutcome::compute_efficiency(done.min(p.work_s), wall),
        failures,
        checkpoints,
        truncated: done < p.work_s,
    }
}

/// Mean multi-level efficiency over `replicas` runs (deterministic in
/// `seed`).
pub fn mean_multilevel_efficiency(
    p: &MultiLevelParams,
    seed: u64,
    replicas: u32,
) -> MeanEfficiency {
    // Same construction as [`mean_efficiency`]: per-replica streams
    // (0xE401 + r — the DES replica in `deep-faults` pairs with these
    // draw-for-draw), ordered collect, reduce after the barrier.
    let outcomes: Vec<ResilienceOutcome> = (0..replicas)
        .into_par_iter()
        .map(|r| {
            let mut rng = SimRng::from_seed_stream(seed, 0xE401 + r as u64);
            simulate_multilevel(p, &mut rng)
        })
        .collect();
    reduce_outcomes(&outcomes, replicas)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> ResilienceParams {
        ResilienceParams {
            work_s: 100_000.0,
            n_nodes: 640, // DEEP prototype: 128 CN + 512 BN
            mtbf_node_s: 5.0 * 365.0 * 86_400.0,
            checkpoint_s: 120.0,
            restart_s: 300.0,
        }
    }

    fn ml_base() -> MultiLevelParams {
        MultiLevelParams {
            work_s: 100_000.0,
            n_nodes: 640,
            mtbf_node_s: 0.5 * 365.0 * 86_400.0, // flaky enough to matter
            interval_s: 1800.0,
            levels: [
                LevelCost {
                    write_s: 10.0,
                    restore_s: 8.0,
                },
                LevelCost {
                    write_s: 30.0,
                    restore_s: 25.0,
                },
                LevelCost {
                    write_s: 240.0,
                    restore_s: 200.0,
                },
            ],
            l2_every: 4,
            l3_every: 16,
            restart_s: 300.0,
            severity_weights: [0.7, 0.25, 0.05],
        }
    }

    #[test]
    fn no_failures_means_pure_checkpoint_overhead() {
        let mut p = base();
        p.mtbf_node_s = f64::INFINITY;
        let mut rng = SimRng::from_seed_stream(1, 1);
        let interval = 3600.0;
        let out = simulate_run(&p, interval, &mut rng);
        assert_eq!(out.failures, 0);
        assert!(!out.truncated);
        // Efficiency ≈ τ / (τ + C) with the final checkpoint elided.
        let expect = p.work_s / (p.work_s + out.checkpoints as f64 * p.checkpoint_s);
        assert!((out.efficiency - expect).abs() < 1e-12);
        assert!(out.efficiency > 0.96);
    }

    #[test]
    fn failures_cost_efficiency() {
        let mut flaky = base();
        flaky.mtbf_node_s /= 200.0; // much flakier nodes
        let good = mean_efficiency(&base(), 3600.0, 1, 8).efficiency;
        let bad = mean_efficiency(&flaky, 3600.0, 1, 8).efficiency;
        assert!(bad < good, "flaky {bad} vs good {good}");
    }

    #[test]
    fn daly_interval_is_near_the_sweep_optimum() {
        // At exascale-ish scale, the sweep's best interval should be
        // within a factor ~2 of Daly's formula.
        let p = ResilienceParams {
            work_s: 500_000.0,
            n_nodes: 100_000,
            mtbf_node_s: 5.0 * 365.0 * 86_400.0,
            checkpoint_s: 240.0,
            restart_s: 600.0,
        };
        let daly = daly_optimum(&p);
        let mut best = (0.0f64, 0.0f64);
        for mult in [0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0] {
            let eff = mean_efficiency(&p, daly * mult, 1, 6).efficiency;
            if eff > best.1 {
                best = (mult, eff);
            }
        }
        assert!(
            (0.25..=4.0).contains(&best.0),
            "optimum {}x Daly (eff {})",
            best.0,
            best.1
        );
    }

    #[test]
    fn bigger_machines_hurt_at_fixed_interval() {
        let mut p = base();
        let small = mean_efficiency(&p, 3600.0, 1, 8).efficiency;
        p.n_nodes *= 100;
        let big = mean_efficiency(&p, 3600.0, 1, 8).efficiency;
        assert!(big < small, "scale must hurt: {big} vs {small}");
    }

    #[test]
    fn determinism() {
        let p = base();
        assert_eq!(
            mean_efficiency(&p, 1800.0, 9, 4).efficiency,
            mean_efficiency(&p, 1800.0, 9, 4).efficiency
        );
        let m = ml_base();
        assert_eq!(
            mean_multilevel_efficiency(&m, 9, 4).efficiency,
            mean_multilevel_efficiency(&m, 9, 4).efficiency
        );
    }

    #[test]
    fn zero_wall_is_zero_efficiency() {
        assert_eq!(ResilienceOutcome::compute_efficiency(0.0, 0.0), 0.0);
        assert_eq!(ResilienceOutcome::compute_efficiency(10.0, 0.0), 0.0);
        assert_eq!(ResilienceOutcome::compute_efficiency(10.0, -1.0), 0.0);
        assert_eq!(ResilienceOutcome::compute_efficiency(50.0, 100.0), 0.5);
    }

    #[test]
    fn hopeless_configuration_reports_truncation() {
        // Interval + checkpoint far above the system MTBF: no segment
        // ever completes, the run is cut off and flagged.
        let p = ResilienceParams {
            work_s: 1000.0,
            n_nodes: 1_000_000,
            mtbf_node_s: 86_400.0, // system MTBF ≈ 86 ms
            checkpoint_s: 120.0,
            restart_s: 300.0,
        };
        let mean = mean_efficiency(&p, 500.0, 3, 4);
        assert_eq!(mean.truncated_runs, 4);
        assert!(mean.efficiency < 0.01);
    }

    #[test]
    fn multilevel_survives_multi_node_failures_l1_only_does_not() {
        // All failures are multi-node: only L3 checkpoints help.
        let mut p = ml_base();
        p.severity_weights = [0.0, 0.0, 1.0];
        p.mtbf_node_s = 0.05 * 365.0 * 86_400.0;
        let multi = mean_multilevel_efficiency(&p, 5, 6);
        let l1 = mean_multilevel_efficiency(&p.l1_only(), 5, 6);
        assert_eq!(multi.truncated_runs, 0, "rotation must finish");
        assert!(
            l1.efficiency < multi.efficiency,
            "L1-only {} vs rotation {}",
            l1.efficiency,
            multi.efficiency
        );
    }

    #[test]
    fn rotation_efficiency_tracks_l1_under_mild_failures() {
        // Mostly-transient failures: the rotation should cost little
        // compared to pure L1 checkpointing.
        let p = ml_base();
        let rotation = mean_multilevel_efficiency(&p, 11, 8).efficiency;
        let l1 = mean_multilevel_efficiency(&p.l1_only(), 11, 8).efficiency;
        assert!(
            rotation > 0.9 * l1,
            "rotation {rotation} should be within 10% of L1-only {l1}"
        );
    }
}
