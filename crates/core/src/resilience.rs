//! Checkpoint/restart resilience model — the second exascale challenge of
//! slide 3 ("Resiliency") and the takeaways of slide 32.
//!
//! A long-running application on `n` nodes checkpoints every `interval`;
//! node failures arrive as a Poisson process with per-node MTBF `mtbf`;
//! each failure rolls the application back to the last checkpoint and
//! costs a restart. The simulator measures the achieved efficiency
//! (useful work / wall time) and the experiment compares the best
//! interval against Daly's first-order optimum √(2·C·MTBF/n).

use deep_simkit::SimRng;

/// Parameters of one resilience scenario.
#[derive(Debug, Clone, Copy)]
pub struct ResilienceParams {
    /// Useful work to complete, in seconds of failure-free compute.
    pub work_s: f64,
    /// Nodes the job runs on (failure rate scales linearly).
    pub n_nodes: u64,
    /// Per-node mean time between failures, seconds.
    pub mtbf_node_s: f64,
    /// Time to write one checkpoint, seconds.
    pub checkpoint_s: f64,
    /// Time to restart after a failure, seconds.
    pub restart_s: f64,
}

/// Outcome of a simulated run.
#[derive(Debug, Clone, Copy)]
pub struct ResilienceOutcome {
    /// Wall time to finish the work.
    pub wall_s: f64,
    /// Useful work / wall time.
    pub efficiency: f64,
    /// Failures suffered.
    pub failures: u64,
    /// Checkpoints written.
    pub checkpoints: u64,
}

/// Daly's first-order optimal checkpoint interval.
pub fn daly_optimum(p: &ResilienceParams) -> f64 {
    (2.0 * p.checkpoint_s * p.mtbf_node_s / p.n_nodes as f64).sqrt()
}

/// Simulate one run with checkpoints every `interval_s`.
///
/// If the machine cannot make progress (interval + checkpoint far above
/// the system MTBF, so segments virtually never complete), the run is cut
/// off at 1000× the useful work and reported with the efficiency achieved
/// by then — the honest "this configuration does not work" answer instead
/// of a non-terminating simulation.
pub fn simulate_run(p: &ResilienceParams, interval_s: f64, rng: &mut SimRng) -> ResilienceOutcome {
    assert!(interval_s > 0.0 && p.work_s > 0.0);
    let wall_cap = 1000.0 * p.work_s;
    let system_mtbf = p.mtbf_node_s / p.n_nodes as f64;
    let mut wall = 0.0f64;
    let mut done = 0.0f64; // checkpointed work
    let mut failures = 0u64;
    let mut checkpoints = 0u64;
    let mut next_failure = rng.gen_exp(system_mtbf);

    while done < p.work_s && wall < wall_cap {
        // Attempt one segment: work until the next checkpoint (or the end).
        let segment = interval_s.min(p.work_s - done);
        let attempt = segment + if done + segment < p.work_s {
            p.checkpoint_s
        } else {
            0.0 // no checkpoint needed after the last segment
        };
        if wall + attempt <= next_failure {
            // Segment (and its checkpoint) completes.
            wall += attempt;
            done += segment;
            if done < p.work_s {
                checkpoints += 1;
            }
        } else {
            // Failure mid-segment: lose everything since the checkpoint.
            failures += 1;
            wall = next_failure + p.restart_s;
            next_failure = wall + rng.gen_exp(system_mtbf);
        }
    }
    ResilienceOutcome {
        wall_s: wall,
        efficiency: done.min(p.work_s) / wall.max(f64::MIN_POSITIVE),
        failures,
        checkpoints,
    }
}

/// Mean efficiency over `replicas` independent runs (deterministic in
/// `seed`).
pub fn mean_efficiency(p: &ResilienceParams, interval_s: f64, seed: u64, replicas: u32) -> f64 {
    let mut total = 0.0;
    for r in 0..replicas {
        let mut rng = SimRng::from_seed_stream(seed, 0xC4E0 + r as u64);
        total += simulate_run(p, interval_s, &mut rng).efficiency;
    }
    total / replicas as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> ResilienceParams {
        ResilienceParams {
            work_s: 100_000.0,
            n_nodes: 640, // DEEP prototype: 128 CN + 512 BN
            mtbf_node_s: 5.0 * 365.0 * 86_400.0,
            checkpoint_s: 120.0,
            restart_s: 300.0,
        }
    }

    #[test]
    fn no_failures_means_pure_checkpoint_overhead() {
        let mut p = base();
        p.mtbf_node_s = f64::INFINITY;
        let mut rng = SimRng::from_seed_stream(1, 1);
        let interval = 3600.0;
        let out = simulate_run(&p, interval, &mut rng);
        assert_eq!(out.failures, 0);
        // Efficiency ≈ τ / (τ + C) with the final checkpoint elided.
        let expect = p.work_s / (p.work_s + out.checkpoints as f64 * p.checkpoint_s);
        assert!((out.efficiency - expect).abs() < 1e-12);
        assert!(out.efficiency > 0.96);
    }

    #[test]
    fn failures_cost_efficiency() {
        let mut flaky = base();
        flaky.mtbf_node_s /= 200.0; // much flakier nodes
        let good = mean_efficiency(&base(), 3600.0, 1, 8);
        let bad = mean_efficiency(&flaky, 3600.0, 1, 8);
        assert!(bad < good, "flaky {bad} vs good {good}");
    }

    #[test]
    fn daly_interval_is_near_the_sweep_optimum() {
        // At exascale-ish scale, the sweep's best interval should be
        // within a factor ~2 of Daly's formula.
        let p = ResilienceParams {
            work_s: 500_000.0,
            n_nodes: 100_000,
            mtbf_node_s: 5.0 * 365.0 * 86_400.0,
            checkpoint_s: 240.0,
            restart_s: 600.0,
        };
        let daly = daly_optimum(&p);
        let mut best = (0.0f64, 0.0f64);
        for mult in [0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0] {
            let eff = mean_efficiency(&p, daly * mult, 1, 6);
            if eff > best.1 {
                best = (mult, eff);
            }
        }
        assert!(
            (0.25..=4.0).contains(&best.0),
            "optimum {}x Daly (eff {})",
            best.0,
            best.1
        );
    }

    #[test]
    fn bigger_machines_hurt_at_fixed_interval() {
        let mut p = base();
        let small = mean_efficiency(&p, 3600.0, 1, 8);
        p.n_nodes *= 100;
        let big = mean_efficiency(&p, 3600.0, 1, 8);
        assert!(big < small, "scale must hurt: {big} vs {small}");
    }

    #[test]
    fn determinism() {
        let p = base();
        assert_eq!(
            mean_efficiency(&p, 1800.0, 9, 4),
            mean_efficiency(&p, 1800.0, 9, 4)
        );
    }
}
