//! Assembly of a complete DEEP machine: InfiniBand cluster + EXTOLL
//! booster + booster interfaces + a global-MPI universe over the
//! Cluster–Booster Protocol.

use std::rc::Rc;

use deep_cbp::{CbpConfig, CbpWire, CbpWireHandle};
use deep_fabric::{ExtollFabric, IbFabric};
use deep_ompss::offload_server;
use deep_psmpi::{launch_world, EpId, LocalBoxFuture, MpiCtx, Universe};
use deep_simkit::{ProcHandle, Sim};

use crate::config::DeepConfig;

/// Command name under which the generic offload server is registered.
pub const OFFLOAD_SERVER: &str = "deep-offload-server";

/// Name of the booster endpoint pool.
pub const BOOSTER_POOL: &str = "booster";

/// A live DEEP machine inside one simulation.
pub struct DeepMachine {
    sim: Sim,
    config: DeepConfig,
    cbp: Rc<CbpWire>,
    universe: Rc<Universe>,
}

impl DeepMachine {
    /// Build the machine: fabrics, bridge, universe, booster pool, and the
    /// generic offload server registration.
    pub fn build(sim: &Sim, config: DeepConfig) -> DeepMachine {
        let n_booster = config.n_booster();
        assert!(config.n_bi >= 1 && config.n_bi <= n_booster);
        let ib = Rc::new(IbFabric::new(sim, config.n_cluster + config.n_bi));
        let mut extoll_fabric = ExtollFabric::new(sim, config.booster_dims);
        if config.booster_link_error_rate > 0.0 {
            extoll_fabric = extoll_fabric.with_fault_model(deep_fabric::FaultModel {
                segment_error_rate: config.booster_link_error_rate,
                max_retries: 32,
            });
        }
        let extoll = Rc::new(extoll_fabric);
        // Spread BI entry points evenly over the torus.
        let stride = (n_booster / config.n_bi).max(1);
        let bis = (0..config.n_bi)
            .map(|i| (config.n_cluster + i, (i * stride) % n_booster))
            .collect();
        let cbp = CbpWire::new(
            sim,
            ib,
            extoll,
            CbpConfig::new(config.n_cluster, n_booster, bis),
        );
        let universe = Universe::new(
            sim,
            Rc::new(CbpWireHandle(cbp.clone())),
            cbp.num_endpoints() as usize,
            config.mpi,
        );
        universe.add_pool(
            BOOSTER_POOL,
            (0..n_booster).map(|j| cbp.booster_ep(j)).collect(),
        );
        universe.register_app(OFFLOAD_SERVER, offload_server(config.booster_node.clone()));
        DeepMachine {
            sim: sim.clone(),
            config,
            cbp,
            universe,
        }
    }

    /// The simulation handle.
    pub fn sim(&self) -> &Sim {
        &self.sim
    }

    /// The machine configuration.
    pub fn config(&self) -> &DeepConfig {
        &self.config
    }

    /// The cluster-booster bridge (traffic statistics live here).
    pub fn cbp(&self) -> &Rc<CbpWire> {
        &self.cbp
    }

    /// The global-MPI universe.
    pub fn universe(&self) -> &Rc<Universe> {
        &self.universe
    }

    /// Endpoints of the cluster nodes.
    pub fn cluster_eps(&self) -> Vec<EpId> {
        (0..self.config.n_cluster)
            .map(|i| self.cbp.cluster_ep(i))
            .collect()
    }

    /// Register an additional application for `comm_spawn`.
    pub fn register_app(&self, name: &str, f: deep_psmpi::universe::AppFn) {
        self.universe.register_app(name, f);
    }

    /// Launch the cluster-side application across all cluster nodes
    /// (the `mpiexec` analogue of slide 21's `main()` part).
    pub fn launch_cluster_app(
        &self,
        name: &str,
        f: impl Fn(MpiCtx) -> LocalBoxFuture<'static, ()> + 'static,
    ) -> Vec<ProcHandle<()>> {
        launch_world(&self.universe, name, self.cluster_eps(), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deep_ompss::{booster_block, OffloadSpec, Offloader};
    use deep_psmpi::{ReduceOp, Value};
    use deep_simkit::Simulation;

    #[test]
    fn machine_builds_and_boots() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let m = DeepMachine::build(&ctx, DeepConfig::small());
        assert_eq!(m.cluster_eps().len(), 4);
        assert_eq!(m.universe().pool_available(BOOSTER_POOL), 8);
        sim.run().assert_completed();
    }

    #[test]
    fn end_to_end_offload_on_the_small_machine() {
        let mut sim = Simulation::new(2);
        let ctx = sim.handle();
        let m = DeepMachine::build(&ctx, DeepConfig::small());
        let cbp = m.cbp().clone();
        m.launch_cluster_app("main", move |mpi| {
            Box::pin(async move {
                let world = mpi.world().clone();
                // Spawn the whole booster (slide 21: collective spawn of
                // the highly scalable code part).
                let inter = mpi
                    .comm_spawn(&world, OFFLOAD_SERVER, 8, BOOSTER_POOL, 0)
                    .await
                    .expect("booster spawn");
                let off = Offloader::new(inter);
                let block = booster_block(mpi.rank(), mpi.size(), 8);
                let spec = OffloadSpec {
                    in_bytes: 256 << 10,
                    out_bytes: 256 << 10,
                    kernel: deep_hw::KernelProfile::stencil2d(1 << 20),
                    cores: 60,
                    iters: 4,
                    internal_msg_bytes: 1024,
                };
                off.run(&mpi, &spec, block.clone()).await;
                // A cluster-side collective still works afterwards.
                let s = mpi
                    .allreduce(&world, ReduceOp::Sum, Value::U64(1), 8)
                    .await;
                assert_eq!(s.as_u64(), 4);
                off.shutdown(&mpi, block).await;
            })
        });
        sim.run().assert_completed();
        let traffic = cbp.bridged_traffic();
        assert!(traffic.bytes >= 8 * (512 << 10), "payload crossed bridge");
    }

    #[test]
    fn prototype_machine_builds() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let m = DeepMachine::build(&ctx, DeepConfig::prototype());
        assert_eq!(m.universe().pool_available(BOOSTER_POOL), 512);
        sim.run().assert_completed();
    }
}
