//! Assembly of a complete DEEP machine: InfiniBand cluster + EXTOLL
//! booster + booster interfaces + a global-MPI universe over the
//! Cluster–Booster Protocol, plus the DEEP-ER storage hierarchy (PFS
//! servers on the cluster fabric, node-local NVM, multi-level
//! checkpointing).

use std::rc::Rc;

use deep_cbp::{CbpConfig, CbpWire, CbpWireHandle};
use deep_fabric::{ExtollFabric, IbFabric, NodeId};
use deep_io::{BridgeNode, CheckpointManager, FileLayer, ParallelFs};
use deep_ompss::offload_server;
use deep_psmpi::{launch_world, EpId, LocalBoxFuture, MpiCtx, Universe};
use deep_simkit::{ProcHandle, Sim};

use crate::config::DeepConfig;

/// Command name under which the generic offload server is registered.
pub const OFFLOAD_SERVER: &str = "deep-offload-server";

/// Name of the booster endpoint pool.
pub const BOOSTER_POOL: &str = "booster";

/// A live DEEP machine inside one simulation.
pub struct DeepMachine {
    sim: Sim,
    config: DeepConfig,
    cbp: Rc<CbpWire>,
    universe: Rc<Universe>,
    extoll: Rc<ExtollFabric>,
    pfs: Rc<ParallelFs>,
    bridges: Vec<BridgeNode>,
}

impl DeepMachine {
    /// Build the machine: fabrics, bridge, universe, booster pool, the
    /// generic offload server registration, and the PFS servers (which
    /// share the cluster's InfiniBand fabric, so file I/O contends with
    /// MPI traffic on the same links).
    pub fn build(sim: &Sim, config: DeepConfig) -> DeepMachine {
        let n_booster = config.n_booster();
        assert!(config.n_bi >= 1 && config.n_bi <= n_booster);
        let n_pfs = config.storage.pfs.n_servers.max(1);
        // IB hosts: cluster nodes, then BI nodes, then the PFS servers.
        let ib = Rc::new(IbFabric::new(sim, config.n_cluster + config.n_bi + n_pfs));
        let mut extoll_fabric = ExtollFabric::new(sim, config.booster_dims);
        if config.booster_link_error_rate > 0.0 {
            extoll_fabric = extoll_fabric.with_fault_model(deep_fabric::FaultModel {
                segment_error_rate: config.booster_link_error_rate,
                max_retries: 32,
            });
        }
        let extoll = Rc::new(extoll_fabric);
        // Spread BI entry points evenly over the torus.
        let stride = (n_booster / config.n_bi).max(1);
        let bis: Vec<(u32, u32)> = (0..config.n_bi)
            .map(|i| (config.n_cluster + i, (i * stride) % n_booster))
            .collect();
        let bridges = bis
            .iter()
            .map(|&(ib_host, torus)| BridgeNode {
                torus: NodeId(torus),
                ib: NodeId(ib_host),
            })
            .collect();
        let pfs_nodes: Vec<NodeId> = (0..n_pfs)
            .map(|i| NodeId(config.n_cluster + config.n_bi + i))
            .collect();
        let pfs = ParallelFs::new(sim, ib.clone(), &pfs_nodes, &config.storage.pfs);
        let cbp = CbpWire::new(
            sim,
            ib,
            extoll.clone(),
            CbpConfig::new(config.n_cluster, n_booster, bis),
        );
        let universe = Universe::new(
            sim,
            Rc::new(CbpWireHandle(cbp.clone())),
            cbp.num_endpoints() as usize,
            config.mpi,
        );
        universe.add_pool(
            BOOSTER_POOL,
            (0..n_booster).map(|j| cbp.booster_ep(j)).collect(),
        );
        universe.register_app(OFFLOAD_SERVER, offload_server(config.booster_node.clone()));
        DeepMachine {
            sim: sim.clone(),
            config,
            cbp,
            universe,
            extoll,
            pfs,
            bridges,
        }
    }

    /// The simulation handle.
    pub fn sim(&self) -> &Sim {
        &self.sim
    }

    /// The machine configuration.
    pub fn config(&self) -> &DeepConfig {
        &self.config
    }

    /// The cluster-booster bridge (traffic statistics live here).
    pub fn cbp(&self) -> &Rc<CbpWire> {
        &self.cbp
    }

    /// The global-MPI universe.
    pub fn universe(&self) -> &Rc<Universe> {
        &self.universe
    }

    /// The booster's EXTOLL fabric.
    pub fn extoll(&self) -> &Rc<ExtollFabric> {
        &self.extoll
    }

    /// The parallel file system attached to the cluster fabric.
    pub fn pfs(&self) -> &Rc<ParallelFs> {
        &self.pfs
    }

    /// The booster-interface bridges (torus side + IB side).
    pub fn bridges(&self) -> &[BridgeNode] {
        &self.bridges
    }

    /// A SIONlib-style file layer over this machine's PFS.
    pub fn file_layer(&self) -> Rc<FileLayer> {
        FileLayer::new(&self.sim, self.pfs.clone(), self.config.storage.file_layer)
    }

    /// A multi-level checkpoint manager for a booster job on the first
    /// `ranks` torus nodes, each with the configured node-local NVM, L2
    /// buddies over EXTOLL, and L3 draining through the BI bridges onto
    /// the PFS.
    pub fn checkpoint_manager(&self, ranks: u32) -> Rc<CheckpointManager> {
        assert!(
            ranks >= 2 && ranks <= self.config.n_booster(),
            "checkpoint job must fit the booster"
        );
        CheckpointManager::new(
            &self.sim,
            self.extoll.clone(),
            self.pfs.clone(),
            (0..ranks).map(NodeId).collect(),
            self.bridges.clone(),
            self.config.storage.local.clone(),
        )
    }

    /// Endpoints of the cluster nodes.
    pub fn cluster_eps(&self) -> Vec<EpId> {
        (0..self.config.n_cluster)
            .map(|i| self.cbp.cluster_ep(i))
            .collect()
    }

    /// Register an additional application for `comm_spawn`.
    pub fn register_app(&self, name: &str, f: deep_psmpi::universe::AppFn) {
        self.universe.register_app(name, f);
    }

    /// Launch the cluster-side application across all cluster nodes
    /// (the `mpiexec` analogue of slide 21's `main()` part).
    pub fn launch_cluster_app(
        &self,
        name: &str,
        f: impl Fn(MpiCtx) -> LocalBoxFuture<'static, ()> + 'static,
    ) -> Vec<ProcHandle<()>> {
        launch_world(&self.universe, name, self.cluster_eps(), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deep_ompss::{booster_block, OffloadSpec, Offloader};
    use deep_psmpi::{ReduceOp, Value};
    use deep_simkit::Simulation;

    #[test]
    fn machine_builds_and_boots() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let m = DeepMachine::build(&ctx, DeepConfig::small());
        assert_eq!(m.cluster_eps().len(), 4);
        assert_eq!(m.universe().pool_available(BOOSTER_POOL), 8);
        sim.run().assert_completed();
    }

    #[test]
    fn end_to_end_offload_on_the_small_machine() {
        let mut sim = Simulation::new(2);
        let ctx = sim.handle();
        let m = DeepMachine::build(&ctx, DeepConfig::small());
        let cbp = m.cbp().clone();
        m.launch_cluster_app("main", move |mpi| {
            Box::pin(async move {
                let world = mpi.world().clone();
                // Spawn the whole booster (slide 21: collective spawn of
                // the highly scalable code part).
                let inter = mpi
                    .comm_spawn(&world, OFFLOAD_SERVER, 8, BOOSTER_POOL, 0)
                    .await
                    .expect("booster spawn");
                let off = Offloader::new(inter);
                let block = booster_block(mpi.rank(), mpi.size(), 8);
                let spec = OffloadSpec {
                    in_bytes: 256 << 10,
                    out_bytes: 256 << 10,
                    kernel: deep_hw::KernelProfile::stencil2d(1 << 20),
                    cores: 60,
                    iters: 4,
                    internal_msg_bytes: 1024,
                };
                off.run(&mpi, &spec, block.clone()).await;
                // A cluster-side collective still works afterwards.
                let s = mpi.allreduce(&world, ReduceOp::Sum, Value::U64(1), 8).await;
                assert_eq!(s.as_u64(), 4);
                off.shutdown(&mpi, block).await;
            })
        });
        sim.run().assert_completed();
        let traffic = cbp.bridged_traffic();
        assert!(traffic.bytes >= 8 * (512 << 10), "payload crossed bridge");
    }

    #[test]
    fn storage_is_wired_into_the_machine() {
        let mut sim = Simulation::new(4);
        let ctx = sim.handle();
        let m = DeepMachine::build(&ctx, DeepConfig::small());
        assert_eq!(m.pfs().n_servers(), 2);
        assert_eq!(m.bridges().len(), 2);
        // PFS servers sit past the cluster and BI hosts on the IB fabric.
        assert_eq!(m.pfs().server_nodes(), vec![NodeId(6), NodeId(7)]);
        let mgr = m.checkpoint_manager(8);
        let pfs = m.pfs().clone();
        sim.spawn("ckpt", async move {
            mgr.checkpoint(deep_io::CkptLevel::L3Pfs, 1 << 20, 1).await;
        });
        sim.run().assert_completed();
        // The L3 checkpoint crossed onto the PFS server devices.
        assert_eq!(pfs.stats().bytes_written, 8 << 20);
    }

    #[test]
    fn prototype_machine_builds() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let m = DeepMachine::build(&ctx, DeepConfig::prototype());
        assert_eq!(m.universe().pool_available(BOOSTER_POOL), 512);
        sim.run().assert_completed();
    }
}
