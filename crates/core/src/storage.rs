//! Bridging the DES storage models into the analytic resilience model:
//! checkpoint and restore costs per level are *measured* on a simulated
//! DEEP machine (NVM writes, EXTOLL buddy transfers, BI-bridge drains
//! onto the PFS) rather than assumed.

use deep_io::CkptLevel;
use deep_simkit::Simulation;

use crate::config::DeepConfig;
use crate::machine::DeepMachine;
use crate::resilience::LevelCost;

/// Measure the wall-clock cost of one checkpoint + one restore at every
/// level, for a booster job of `ranks` ranks with `bytes_per_rank` of
/// state each, on the machine described by `config`. Deterministic in
/// `seed`.
///
/// The returned costs are what [`crate::resilience::MultiLevelParams`]
/// expects in its `levels` field — this is the DEEP-ER story end to end:
/// the storage hierarchy's simulated performance feeds the checkpoint
/// policy trade-off.
pub fn measure_level_costs(
    config: &DeepConfig,
    ranks: u32,
    bytes_per_rank: u64,
    seed: u64,
) -> [LevelCost; 3] {
    let mut sim = Simulation::new(seed);
    let ctx = sim.handle();
    let machine = DeepMachine::build(&ctx, config.clone());
    let mgr = machine.checkpoint_manager(ranks);
    let h = sim.spawn("measure-levels", async move {
        let mut costs = [LevelCost {
            write_s: 0.0,
            restore_s: 0.0,
        }; 3];
        // Ascending marks: after each checkpoint the restore picks that
        // (newest) level, so each level's restore path is measured too.
        for (i, level) in CkptLevel::ALL.into_iter().enumerate() {
            let op = mgr.checkpoint(level, bytes_per_rank, (i + 1) as u64).await;
            costs[i].write_s = op.elapsed.as_secs_f64();
            let restore = mgr
                .restore(bytes_per_rank)
                .await
                .expect("nothing failed: restore must succeed");
            assert_eq!(restore.level, level);
            costs[i].restore_s = restore.elapsed.as_secs_f64();
        }
        costs
    });
    sim.run().assert_completed();
    h.try_result().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_costs_are_ordered_and_deterministic() {
        let cfg = DeepConfig::small();
        let costs = measure_level_costs(&cfg, 8, 16 << 20, 1);
        assert!(costs[0].write_s > 0.0);
        assert!(
            costs[0].write_s < costs[1].write_s,
            "L1 {} must beat L2 {}",
            costs[0].write_s,
            costs[1].write_s
        );
        assert!(
            costs[1].write_s < costs[2].write_s,
            "L2 {} must beat L3 {}",
            costs[1].write_s,
            costs[2].write_s
        );
        let again = measure_level_costs(&cfg, 8, 16 << 20, 1);
        assert_eq!(costs, again);
    }

    #[test]
    fn l1_is_much_faster_than_l3() {
        // The ER01 acceptance shape: local NVM beats the PFS by a wide
        // margin for the same state size.
        let costs = measure_level_costs(&DeepConfig::small(), 8, 64 << 20, 2);
        assert!(
            costs[2].write_s >= 5.0 * costs[0].write_s,
            "L3 {} should be ≥5x L1 {}",
            costs[2].write_s,
            costs[0].write_s
        );
    }
}
