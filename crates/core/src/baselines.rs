//! Baseline architectures the paper positions DEEP against:
//!
//! * a **homogeneous cluster** (InfiniBand + Xeon only);
//! * a conventional **accelerated cluster** (slides 6–7): one GPU per
//!   node behind PCIe, statically bound, every device transfer staged
//!   through host memory.

use std::cell::RefCell;
use std::rc::Rc;

use deep_fabric::{pcie, EndpointOverhead, IbFabric, Network, PcieBus};
use deep_hw::NodeModel;
use deep_psmpi::{EpId, IbWire, MpiParams, Universe};
use deep_simkit::{Sim, SimDuration};

/// Build a plain InfiniBand cluster universe of `n_nodes` Xeon nodes.
pub fn homogeneous_cluster(sim: &Sim, n_nodes: u32, mpi: MpiParams) -> Rc<Universe> {
    let ib = Rc::new(IbFabric::new(sim, n_nodes));
    Universe::new(sim, Rc::new(IbWire::new(ib)), n_nodes as usize, mpi)
}

/// Per-transfer counters of a PCIe-attached accelerator.
#[derive(Debug, Default, Clone, Copy)]
pub struct AccTraffic {
    /// Host↔device crossings.
    pub messages: u64,
    /// Bytes crossed.
    pub bytes: u64,
}

/// One node's PCIe-attached GPU: the "communication so far via main
/// memory" device of slide 7. Owns a private host↔device bus.
pub struct AcceleratedNode {
    bus: Rc<Network>,
    /// Driver/launch overhead per DMA (cudaMemcpy-era software path).
    dma_overhead: EndpointOverhead,
    traffic: RefCell<AccTraffic>,
    /// The accelerator silicon.
    pub gpu: NodeModel,
}

impl AcceleratedNode {
    /// Build a node with one GPU on a PCIe 2.0 ×16 bus.
    pub fn new(sim: &Sim, gpu: NodeModel, node_index: u64) -> AcceleratedNode {
        let bus = Network::new(
            sim,
            Box::new(PcieBus::new(
                1,
                pcie::root_complex_spec(),
                pcie::pcie2_x16_spec(),
            )),
            4096,
            0x9C1E ^ node_index,
        );
        AcceleratedNode {
            bus: Rc::new(bus),
            dma_overhead: EndpointOverhead {
                send: SimDuration::micros(5),
                recv: SimDuration::micros(1),
            },
            traffic: RefCell::new(AccTraffic::default()),
            gpu,
        }
    }

    fn count(&self, bytes: u64) {
        let mut t = self.traffic.borrow_mut();
        t.messages += 1;
        t.bytes += bytes;
    }

    /// Copy host → device.
    pub async fn h2d(&self, bytes: u64) {
        self.count(bytes);
        self.bus
            .transfer(
                PcieBus::host(),
                PcieBus::device(0),
                bytes,
                self.dma_overhead,
            )
            .await
            .expect("PCIe transfer");
    }

    /// Copy device → host.
    pub async fn d2h(&self, bytes: u64) {
        self.count(bytes);
        self.bus
            .transfer(
                PcieBus::device(0),
                PcieBus::host(),
                bytes,
                self.dma_overhead,
            )
            .await
            .expect("PCIe transfer");
    }

    /// Host↔device traffic so far.
    pub fn traffic(&self) -> AccTraffic {
        *self.traffic.borrow()
    }
}

/// A full accelerated cluster: IB universe + one GPU per node.
pub struct AcceleratedCluster {
    /// The MPI universe among the host CPUs.
    pub universe: Rc<Universe>,
    /// Per-node accelerators, indexed by rank.
    pub nodes: Vec<Rc<AcceleratedNode>>,
}

impl AcceleratedCluster {
    /// Build with `n_nodes` hosts, each carrying one `gpu`.
    pub fn build(sim: &Sim, n_nodes: u32, gpu: NodeModel, mpi: MpiParams) -> AcceleratedCluster {
        let universe = homogeneous_cluster(sim, n_nodes, mpi);
        let nodes = (0..n_nodes)
            .map(|i| Rc::new(AcceleratedNode::new(sim, gpu.clone(), i as u64)))
            .collect();
        AcceleratedCluster { universe, nodes }
    }

    /// Endpoints of the host ranks.
    pub fn eps(&self) -> Vec<EpId> {
        (0..self.nodes.len() as u32).map(EpId).collect()
    }

    /// Aggregate host↔device traffic across the machine.
    pub fn total_acc_traffic(&self) -> AccTraffic {
        let mut total = AccTraffic::default();
        for n in &self.nodes {
            let t = n.traffic();
            total.messages += t.messages;
            total.bytes += t.bytes;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deep_simkit::Simulation;

    #[test]
    fn h2d_d2h_roundtrip_costs_time_and_counts_traffic() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let node = Rc::new(AcceleratedNode::new(&ctx, NodeModel::gpu_k20x(), 0));
        let n2 = node.clone();
        let h = sim.spawn("copy", async move {
            let t0 = n2.bus.sim().now();
            n2.h2d(64 << 20).await;
            n2.d2h(64 << 20).await;
            (n2.bus.sim().now() - t0).as_secs_f64()
        });
        sim.run().assert_completed();
        let t = h.try_result().unwrap();
        // 2 × 64 MiB at ~6.2 GB/s ≈ 21.6 ms plus overheads.
        assert!((0.02..0.03).contains(&t), "roundtrip {t}");
        let tr = node.traffic();
        assert_eq!(tr.messages, 2);
        assert_eq!(tr.bytes, 2 * (64 << 20));
    }

    #[test]
    fn small_transfers_are_overhead_dominated() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let node = Rc::new(AcceleratedNode::new(&ctx, NodeModel::gpu_k20x(), 0));
        let h = sim.spawn("small", async move {
            let t0 = node.bus.sim().now();
            node.h2d(64).await;
            (node.bus.sim().now() - t0).as_nanos()
        });
        sim.run().assert_completed();
        let ns = h.try_result().unwrap();
        // ≥ 6 µs of driver overhead vs ~10 ns of wire time.
        assert!(ns >= 6_000, "small DMA cost {ns} ns");
    }

    #[test]
    fn accelerated_cluster_builds() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let ac = AcceleratedCluster::build(&ctx, 8, NodeModel::gpu_k20x(), MpiParams::default());
        assert_eq!(ac.eps().len(), 8);
        assert_eq!(ac.total_acc_traffic().messages, 0);
        sim.run().assert_completed();
    }
}
