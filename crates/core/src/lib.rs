//! # deep-core — the DEEP cluster-booster platform library
//!
//! The paper's contribution as an adoptable API (all other `deep-*`
//! crates are the substrates it assembles):
//!
//! * [`config::DeepConfig`] — machine description with presets, including
//!   the 128-CN / 512-BN prototype of the DEEP project;
//! * [`machine::DeepMachine`] — a live machine: InfiniBand cluster +
//!   EXTOLL booster + booster interfaces + a global-MPI universe over the
//!   Cluster–Booster Protocol, with the booster pre-registered as a
//!   spawnable pool and a generic offload server installed;
//! * [`baselines`] — the architectures the paper argues against: a
//!   homogeneous cluster and a PCIe-accelerated cluster;
//! * [`coupled`] — the coupled multi-physics proxy application running on
//!   all three architectures (experiment F10);
//! * [`resilience`] — checkpoint/restart efficiency models: single-level
//!   with Daly's optimum (F03b) and the multi-level L1/L2/L3 policy under
//!   a failure-severity mix (ER01);
//! * [`storage`] — bridges the simulated DEEP-ER storage hierarchy
//!   (`deep-io`) to the resilience model by measuring per-level
//!   checkpoint/restore costs on the machine;
//! * [`report`] — Markdown/JSON tables used by the figure-regeneration
//!   binaries.
//!
//! ## Quickstart
//!
//! ```
//! use deep_core::{DeepConfig, DeepMachine, BOOSTER_POOL, OFFLOAD_SERVER};
//! use deep_simkit::Simulation;
//!
//! let mut sim = Simulation::new(42);
//! let machine = DeepMachine::build(&sim.handle(), DeepConfig::small());
//! machine.launch_cluster_app("hello", |mpi| {
//!     Box::pin(async move {
//!         let world = mpi.world().clone();
//!         // Spawn the whole booster and tear it down again.
//!         let inter = mpi
//!             .comm_spawn(&world, OFFLOAD_SERVER, 8, BOOSTER_POOL, 0)
//!             .await
//!             .unwrap();
//!         assert_eq!(inter.remote_size(), 8);
//!         let off = deep_ompss::Offloader::new(inter);
//!         let block = deep_ompss::booster_block(mpi.rank(), mpi.size(), 8);
//!         off.shutdown(&mpi, block).await;
//!     })
//! });
//! sim.run().assert_completed();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod config;
pub mod coupled;
pub mod machine;
pub mod report;
pub mod resilience;
pub mod storage;

pub use baselines::{AcceleratedCluster, AcceleratedNode};
pub use config::DeepConfig;
pub use coupled::{
    run_on_accelerated, run_on_deep, run_on_pure_cluster, CoupledParams, CoupledReport,
};
pub use machine::{DeepMachine, BOOSTER_POOL, OFFLOAD_SERVER};
pub use report::{fmt_bytes, fmt_f, Table};
pub use resilience::{
    daly_optimum, mark_of, mean_efficiency, mean_efficiency_batch, mean_multilevel_efficiency,
    mean_multilevel_efficiency_batch, reduce_outcomes, simulate_multilevel, simulate_run,
    LevelCost, MeanEfficiency, MultiLevelParams, ResilienceOutcome, ResilienceParams,
};
pub use storage::measure_level_costs;
