//! # deep-ompss — an OmpSs-style task runtime with booster offload
//!
//! The programming-model layer of the DEEP reproduction (slides 22–23,
//! 30–31):
//!
//! * [`graph::TaskGraph`] — tasks declare `input`/`output`/`inout`
//!   accesses on data regions; RAW/WAR/WAW dependences are derived
//!   automatically, exactly like OmpSs pragmas;
//! * [`runtime::run_dataflow`] — dependence-driven out-of-order execution
//!   on simulated workers; [`runtime::run_fork_join`] — the barrier-based
//!   baseline it is compared against (experiment F23);
//! * [`offload`] — the offload abstraction: a cluster-side
//!   [`offload::Offloader`] drives booster ranks running
//!   [`offload::offload_server`] via global MPI, shipping data before and
//!   after each offloaded parallel kernel (experiments F10, F25).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gantt;
pub mod graph;
pub mod offload;
pub mod runtime;

pub use gantt::{occupancy, render_gantt, to_chrome_trace};
pub use graph::{Access, Device, RegionId, TaskBody, TaskCost, TaskGraph, TaskId};
pub use offload::{
    booster_block, offload_server, run_hybrid_dataflow, OffloadReport, OffloadSpec, Offloader,
};
pub use runtime::{
    run_dataflow, run_dataflow_policy, run_fork_join, task_time, RunReport, SchedPolicy,
};
