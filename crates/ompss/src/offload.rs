//! The OmpSs offload abstraction over global MPI (slides 25, 30–31).
//!
//! A cluster-side [`Offloader`] drives booster ranks running the
//! [`offload_server`] program (started via `MPI_Comm_spawn`). Each
//! invocation ships input data to the booster ranks, executes a parallel
//! kernel there — including the kernel's *internal* regular communication
//! (slide 10: "complex kernels to be offloaded expected to have regular
//! communication patterns") — and ships results back.
//!
//! This encodes the paper's low-level offloading semantics: *which* code
//! runs on the booster (a registered program), *where* (a rank range),
//! *which data* moves before/after, and at *what granularity* (experiment
//! F25 sweeps invocation granularity against communication pressure).

use deep_hw::{roofline, KernelProfile, NodeModel};
use deep_psmpi::{wait_all, Comm, MpiCtx, Value};
use deep_simkit::{SimDuration, SimTime};
use std::ops::Range;
use std::rc::Rc;

/// Tags used by the offload protocol (kept far from user tag space).
const TAG_CMD: u32 = 0x6000_0001;
const TAG_IN: u32 = 0x6000_0002;
const TAG_OUT: u32 = 0x6000_0003;

/// One offload invocation, per participating booster rank.
#[derive(Debug, Clone, Copy)]
pub struct OffloadSpec {
    /// Input bytes shipped to each booster rank.
    pub in_bytes: u64,
    /// Output bytes shipped back from each booster rank.
    pub out_bytes: u64,
    /// Kernel work profile per booster rank.
    pub kernel: KernelProfile,
    /// Cores each booster rank uses.
    pub cores: u32,
    /// Internal iterations of the kernel (compute + regular exchange).
    pub iters: u32,
    /// Bytes allreduced among booster ranks per internal iteration.
    pub internal_msg_bytes: u64,
}

impl OffloadSpec {
    fn encode(&self) -> Value {
        Value::List(Rc::new(vec![
            Value::U64(1),
            Value::U64(self.in_bytes),
            Value::U64(self.out_bytes),
            Value::F64(self.kernel.flops),
            Value::F64(self.kernel.bytes),
            Value::F64(self.kernel.compute_efficiency),
            Value::F64(self.kernel.bandwidth_efficiency),
            Value::U64(self.cores as u64),
            Value::U64(self.iters as u64),
            Value::U64(self.internal_msg_bytes),
        ]))
    }

    fn decode(v: &Value) -> Option<OffloadSpec> {
        let items = v.as_list();
        if items[0].as_u64() == 0 {
            return None; // shutdown
        }
        Some(OffloadSpec {
            in_bytes: items[1].as_u64(),
            out_bytes: items[2].as_u64(),
            kernel: KernelProfile {
                flops: items[3].as_f64(),
                bytes: items[4].as_f64(),
                compute_efficiency: items[5].as_f64(),
                bandwidth_efficiency: items[6].as_f64(),
            },
            cores: items[7].as_u64() as u32,
            iters: items[8].as_u64() as u32,
            internal_msg_bytes: items[9].as_u64(),
        })
    }

    fn shutdown_msg() -> Value {
        Value::List(Rc::new(vec![Value::U64(0)]))
    }
}

/// Block assignment of booster ranks to cluster ranks: cluster rank `c`
/// of `n_cluster` drives this contiguous range of `n_booster` ranks.
pub fn booster_block(c: u32, n_cluster: u32, n_booster: u32) -> Range<u32> {
    let per = n_booster / n_cluster;
    let extra = n_booster % n_cluster;
    let start = c * per + c.min(extra);
    let len = per + u32::from(c < extra);
    start..start + len
}

/// The booster-side server program body. Register the result with the
/// universe under a command name and `comm_spawn` it:
///
/// loops receiving commands from any parent rank, executes the kernel
/// (with its internal booster-world allreduces), replies with the output
/// data, and terminates on a shutdown command.
pub fn offload_server(node: NodeModel) -> deep_psmpi::universe::AppFn {
    Rc::new(move |m: MpiCtx| {
        let node = node.clone();
        Box::pin(async move {
            let world = m.world().clone();
            let parent = m
                .parent()
                .expect("offload server must be spawned, not launched")
                .clone();
            loop {
                let cmd = m.recv(&parent, None, Some(TAG_CMD)).await;
                let Some(spec) = OffloadSpec::decode(&cmd.value) else {
                    break;
                };
                let driver = cmd.src;
                // Pull the input payload from the same driver.
                if spec.in_bytes > 0 {
                    m.recv(&parent, Some(driver), Some(TAG_IN)).await;
                }
                // Compute with internal regular communication.
                let per_iter = spec.kernel.scaled(1.0 / spec.iters.max(1) as f64);
                for _ in 0..spec.iters.max(1) {
                    let t = roofline::exec_time(&node, &per_iter, spec.cores.min(node.cores));
                    m.sim().sleep(t.time).await;
                    if spec.internal_msg_bytes > 0 && world.size() > 1 {
                        m.allreduce(
                            &world,
                            deep_psmpi::ReduceOp::Sum,
                            Value::F64(1.0),
                            spec.internal_msg_bytes,
                        )
                        .await;
                    }
                }
                // Ship the results back.
                m.send(&parent, driver, TAG_OUT, Value::Unit, spec.out_bytes)
                    .await;
            }
        })
    })
}

/// Report of one offload invocation.
#[derive(Debug, Clone, Copy)]
pub struct OffloadReport {
    /// Wall time of the whole invocation (inputs → results back).
    pub elapsed: SimDuration,
    /// When the invocation started.
    pub started_at: SimTime,
    /// Booster ranks driven.
    pub ranks: u32,
}

/// Cluster-side driver for a spawned offload-server world.
pub struct Offloader {
    inter: Comm,
}

impl Offloader {
    /// Wrap the parent side of the inter-communicator returned by
    /// `comm_spawn` of an [`offload_server`] program.
    pub fn new(inter: Comm) -> Offloader {
        assert!(inter.is_inter(), "offloader needs an inter-communicator");
        Offloader { inter }
    }

    /// The inter-communicator in use.
    pub fn inter(&self) -> &Comm {
        &self.inter
    }

    /// Run one offload invocation on booster ranks `ranks` (this cluster
    /// rank's block). Ships inputs, waits for all results.
    pub async fn run(&self, m: &MpiCtx, spec: &OffloadSpec, ranks: Range<u32>) -> OffloadReport {
        let started_at = m.sim().now();
        let n = ranks.len() as u32;
        let mut sends = Vec::with_capacity(ranks.len() * 2);
        for r in ranks.clone() {
            sends.push(m.isend(&self.inter, r, TAG_CMD, spec.encode(), 128));
            if spec.in_bytes > 0 {
                sends.push(m.isend(&self.inter, r, TAG_IN, Value::Unit, spec.in_bytes));
            }
        }
        wait_all(sends).await;
        let mut recvs = Vec::with_capacity(ranks.len());
        for r in ranks {
            recvs.push(m.irecv(&self.inter, Some(r), Some(TAG_OUT)));
        }
        wait_all(recvs).await;
        OffloadReport {
            elapsed: m.sim().now() - started_at,
            started_at,
            ranks: n,
        }
    }

    /// Tell booster ranks `ranks` to terminate.
    pub async fn shutdown(&self, m: &MpiCtx, ranks: Range<u32>) {
        for r in ranks {
            m.send(&self.inter, r, TAG_CMD, OffloadSpec::shutdown_msg(), 64)
                .await;
        }
    }
}

// ---------------------------------------------------------------------------
// Hybrid dataflow: a task graph where `Device::Booster` tasks execute on
// the spawned booster world (slides 30-31: the OmpSs offload abstraction
// lowers device tasks onto the DEEP runtime, which ships data and invokes
// the kernel over global MPI).
// ---------------------------------------------------------------------------

use crate::graph::{Device, TaskGraph, TaskId};
use crate::runtime::{task_time, RunReport};

/// Execute `graph` with dependence-driven scheduling where host tasks run
/// on `host_workers` local cores of `host_node` and booster-annotated
/// tasks are offloaded through `offloader` onto `block`.
///
/// Host workers and offload "slots" draw from the same ready queue: while
/// one worker blocks on a booster invocation, the others keep executing
/// host tasks — the overlap the offload model is designed for.
pub async fn run_hybrid_dataflow(
    m: &MpiCtx,
    offloader: Rc<Offloader>,
    block: Range<u32>,
    graph: TaskGraph,
    host_node: &NodeModel,
    host_workers: u32,
) -> RunReport {
    use deep_simkit::channel;
    use std::cell::RefCell;

    assert!(host_workers >= 1);
    let sim = m.sim().clone();
    let host_node = host_node.clone();
    let n_tasks = graph.len();
    let total_work = graph.total_work(|t| task_time(&host_node, &graph.tasks[t.0 as usize].cost));
    let critical_path =
        graph.critical_path(|t| task_time(&host_node, &graph.tasks[t.0 as usize].cost));
    let start = sim.now();
    if n_tasks == 0 {
        return RunReport {
            makespan: deep_simkit::SimDuration::ZERO,
            tasks: 0,
            total_work,
            critical_path,
            workers: host_workers,
            trace: Vec::new(),
        };
    }

    enum Msg {
        Run(TaskId),
        Stop,
    }
    let (tx, rx) = channel::<Msg>(&sim);
    let roots = graph.roots();
    struct St {
        graph: TaskGraph,
        remaining: Vec<u32>,
        completed: usize,
        trace: Vec<(SimTime, SimTime, u32)>,
    }
    let remaining = graph.tasks.iter().map(|t| t.n_preds).collect();
    let state = Rc::new(RefCell::new(St {
        graph,
        remaining,
        completed: 0,
        trace: vec![(SimTime::ZERO, SimTime::ZERO, 0); n_tasks],
    }));
    for t in roots {
        tx.try_send(Msg::Run(t)).ok();
    }

    let mut workers = Vec::with_capacity(host_workers as usize);
    for w in 0..host_workers {
        let rx = rx.clone();
        let tx = tx.clone();
        let state = state.clone();
        let sim2 = sim.clone();
        let node = host_node.clone();
        let m2 = m.clone();
        let off = offloader.clone();
        let block = block.clone();
        workers.push(sim.spawn(format!("hybrid-worker{w}"), async move {
            while let Ok(Msg::Run(t)) = rx.recv().await {
                let (cost, device, body) = {
                    let mut st = state.borrow_mut();
                    let n = &mut st.graph.tasks[t.0 as usize];
                    (n.cost, n.device, n.body.take())
                };
                let t_start = sim2.now();
                match device {
                    Device::Host => {
                        sim2.sleep(task_time(&node, &cost)).await;
                    }
                    Device::Booster {
                        in_bytes,
                        out_bytes,
                    } => {
                        let kernel = match cost {
                            crate::graph::TaskCost::Kernel { profile, .. } => profile,
                            crate::graph::TaskCost::Fixed(_) => {
                                // Fixed-cost booster tasks: model as a pure
                                // communication+wait of that duration.
                                deep_hw::KernelProfile {
                                    flops: 0.0,
                                    bytes: 0.0,
                                    compute_efficiency: 1.0,
                                    bandwidth_efficiency: 1.0,
                                }
                            }
                        };
                        let spec = OffloadSpec {
                            in_bytes,
                            out_bytes,
                            kernel,
                            cores: u32::MAX,
                            iters: 1,
                            internal_msg_bytes: 0,
                        };
                        off.run(&m2, &spec, block.clone()).await;
                        if let crate::graph::TaskCost::Fixed(d) = cost {
                            sim2.sleep(d).await;
                        }
                    }
                }
                if let Some(b) = body {
                    b();
                }
                let t_end = sim2.now();
                let mut newly = Vec::new();
                let all_done = {
                    let mut st = state.borrow_mut();
                    st.trace[t.0 as usize] = (t_start, t_end, w);
                    st.completed += 1;
                    let succs = st.graph.tasks[t.0 as usize].successors.clone();
                    for s in succs {
                        st.remaining[s.0 as usize] -= 1;
                        if st.remaining[s.0 as usize] == 0 {
                            newly.push(s);
                        }
                    }
                    st.completed == n_tasks
                };
                for s in newly {
                    tx.try_send(Msg::Run(s)).ok();
                }
                if all_done {
                    for _ in 0..host_workers {
                        tx.try_send(Msg::Stop).ok();
                    }
                }
            }
        }));
    }
    drop(tx);
    drop(rx);
    deep_simkit::join_all(workers).await;

    let st = Rc::try_unwrap(state)
        .ok()
        .expect("workers done")
        .into_inner();
    RunReport {
        makespan: sim.now() - start,
        tasks: n_tasks,
        total_work,
        critical_path,
        workers: host_workers,
        trace: st.trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deep_psmpi::{launch_world, EpId, IdealWire, MpiParams, Universe};
    use deep_simkit::Simulation;
    use std::cell::Cell;

    fn knc() -> NodeModel {
        NodeModel::xeon_phi_knc()
    }

    fn run_offload(spec: OffloadSpec, n_booster: u32) -> f64 {
        let mut sim = Simulation::new(5);
        let ctx = sim.handle();
        let wire = Rc::new(IdealWire::new(&ctx, SimDuration::micros(1), 6e9));
        let uni = Universe::new(&ctx, wire, 2 + n_booster as usize, MpiParams::default());
        uni.add_pool("booster", (2..2 + n_booster).map(EpId).collect());
        uni.register_app("server", offload_server(knc()));
        let out = Rc::new(Cell::new(0.0f64));
        let out2 = out.clone();
        launch_world(&uni, "cluster", vec![EpId(0), EpId(1)], move |m| {
            let out = out2.clone();
            Box::pin(async move {
                let world = m.world().clone();
                let inter = m
                    .comm_spawn(&world, "server", n_booster, "booster", 0)
                    .await
                    .unwrap();
                let off = Offloader::new(inter);
                let my_block = booster_block(m.rank(), m.size(), n_booster);
                let rep = off.run(&m, &spec, my_block.clone()).await;
                if m.rank() == 0 {
                    out.set(rep.elapsed.as_secs_f64());
                }
                m.barrier(&world).await;
                off.shutdown(&m, my_block).await;
            })
        });
        sim.run().assert_completed();
        out.get()
    }

    fn base_spec() -> OffloadSpec {
        OffloadSpec {
            in_bytes: 1 << 20,
            out_bytes: 1 << 20,
            kernel: KernelProfile::dgemm(1024),
            cores: 60,
            iters: 4,
            internal_msg_bytes: 4096,
        }
    }

    #[test]
    fn offload_roundtrip_completes() {
        let t = run_offload(base_spec(), 8);
        assert!(t > 0.0);
    }

    #[test]
    fn bigger_kernels_take_longer() {
        let small = run_offload(base_spec(), 8);
        let mut big = base_spec();
        big.kernel = KernelProfile::dgemm(2048); // 8x the flops
        let t_big = run_offload(big, 8);
        assert!(
            t_big > small * 2.0,
            "8x flops must show up in elapsed: {small} vs {t_big}"
        );
    }

    #[test]
    fn data_volume_shows_up_in_elapsed() {
        let small = run_offload(
            OffloadSpec {
                in_bytes: 1 << 10,
                out_bytes: 1 << 10,
                iters: 1,
                internal_msg_bytes: 0,
                kernel: KernelProfile::dgemm(256),
                cores: 60,
            },
            4,
        );
        let big = run_offload(
            OffloadSpec {
                in_bytes: 64 << 20,
                out_bytes: 64 << 20,
                iters: 1,
                internal_msg_bytes: 0,
                kernel: KernelProfile::dgemm(256),
                cores: 60,
            },
            4,
        );
        assert!(
            big > small * 5.0,
            "64 MiB vs 1 KiB transfers: {small} vs {big}"
        );
    }

    #[test]
    fn block_assignment_covers_all_ranks_disjointly() {
        for (n_cluster, n_booster) in [(2u32, 8u32), (3, 8), (4, 10), (8, 8), (5, 3)] {
            let mut seen = vec![false; n_booster as usize];
            for c in 0..n_cluster {
                for r in booster_block(c, n_cluster, n_booster) {
                    assert!(!seen[r as usize], "rank {r} assigned twice");
                    seen[r as usize] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "every booster rank assigned");
        }
    }

    #[test]
    fn spec_encoding_roundtrips() {
        let spec = base_spec();
        let decoded = OffloadSpec::decode(&spec.encode()).unwrap();
        assert_eq!(decoded.in_bytes, spec.in_bytes);
        assert_eq!(decoded.out_bytes, spec.out_bytes);
        assert_eq!(decoded.cores, spec.cores);
        assert_eq!(decoded.iters, spec.iters);
        assert!((decoded.kernel.flops - spec.kernel.flops).abs() < 1.0);
        assert!(OffloadSpec::decode(&OffloadSpec::shutdown_msg()).is_none());
    }
}
