//! Task graphs with OmpSs-style region dependencies.
//!
//! Slide 23's programming model: tasks declare `input` / `output` /
//! `inout` accesses on data regions; the runtime derives the dependence
//! DAG (RAW, WAR, WAW) and executes tasks out of order as dependences
//! allow — "decouple how we write (think sequential) from how it is
//! executed".

use std::collections::BTreeMap;

use deep_hw::KernelProfile;
use deep_simkit::SimDuration;

/// Identifier of a data region (e.g. one matrix tile).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionId(pub u64);

impl RegionId {
    /// Convenience constructor for 2-D tile grids.
    pub fn tile(i: u64, j: u64) -> RegionId {
        RegionId(i << 32 | j)
    }
}

/// How a task accesses a region (the OmpSs pragma clauses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// `input`: read.
    In,
    /// `output`: write without reading.
    Out,
    /// `inout`: read-modify-write.
    InOut,
}

/// Identifier of a task within one graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u32);

/// Cost model of a task.
#[derive(Debug, Clone, Copy)]
pub enum TaskCost {
    /// A roofline kernel using `cores` cores of the executing node.
    Kernel {
        /// The work profile.
        profile: KernelProfile,
        /// Cores the task occupies.
        cores: u32,
    },
    /// A fixed duration regardless of hardware.
    Fixed(SimDuration),
}

/// A task body: arbitrary host-side work executed when the task runs
/// (used to verify numerical correctness of e.g. Cholesky).
pub type TaskBody = Box<dyn FnOnce()>;

/// Where a task executes (the OmpSs `device` clause of slides 30-31).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Device {
    /// On the local (cluster-side) worker pool.
    Host,
    /// Offloaded to the booster: ships `in_bytes` before and `out_bytes`
    /// after the kernel, which runs on the booster ranks.
    Booster {
        /// Input bytes shipped per invocation.
        in_bytes: u64,
        /// Output bytes shipped back.
        out_bytes: u64,
    },
}

pub(crate) struct TaskNode {
    pub(crate) name: String,
    pub(crate) cost: TaskCost,
    pub(crate) body: Option<TaskBody>,
    /// Fork-join phase for the barrier-based baseline scheduler.
    pub(crate) phase: u32,
    pub(crate) device: Device,
    pub(crate) successors: Vec<TaskId>,
    pub(crate) n_preds: u32,
}

/// A dependence DAG under construction or execution.
pub struct TaskGraph {
    pub(crate) tasks: Vec<TaskNode>,
    // BTreeMap rather than HashMap: today these are only read by key,
    // but region bookkeeping sits directly upstream of dependence-edge
    // creation — ordered maps make any future iteration deterministic
    // by construction (deep-lint rule D1).
    last_writer: BTreeMap<RegionId, TaskId>,
    readers_since_write: BTreeMap<RegionId, Vec<TaskId>>,
    n_edges: usize,
}

impl Default for TaskGraph {
    fn default() -> Self {
        Self::new()
    }
}

impl TaskGraph {
    /// An empty graph.
    pub fn new() -> TaskGraph {
        TaskGraph {
            tasks: Vec::new(),
            last_writer: BTreeMap::new(),
            readers_since_write: BTreeMap::new(),
            n_edges: 0,
        }
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True if no tasks were added.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Number of dependence edges.
    pub fn n_edges(&self) -> usize {
        self.n_edges
    }

    /// Submit a task, deriving its dependences from the access list.
    /// Returns its id. Submission order is the sequential-program order.
    pub fn add_task(
        &mut self,
        name: impl Into<String>,
        accesses: &[(RegionId, Access)],
        cost: TaskCost,
        phase: u32,
        body: Option<TaskBody>,
    ) -> TaskId {
        let id = TaskId(self.tasks.len() as u32);
        // Collect predecessor set (deduplicated, deterministic order).
        let mut preds: Vec<TaskId> = Vec::new();
        let push_pred = |preds: &mut Vec<TaskId>, p: TaskId| {
            if p != id && !preds.contains(&p) {
                preds.push(p);
            }
        };
        for &(region, mode) in accesses {
            match mode {
                Access::In => {
                    if let Some(&w) = self.last_writer.get(&region) {
                        push_pred(&mut preds, w); // RAW
                    }
                }
                Access::Out | Access::InOut => {
                    if let Some(&w) = self.last_writer.get(&region) {
                        push_pred(&mut preds, w); // WAW (and RAW for InOut)
                    }
                    if let Some(readers) = self.readers_since_write.get(&region) {
                        for &r in readers {
                            push_pred(&mut preds, r); // WAR
                        }
                    }
                }
            }
        }
        // Update region bookkeeping after computing preds.
        for &(region, mode) in accesses {
            match mode {
                Access::In => {
                    self.readers_since_write.entry(region).or_default().push(id);
                }
                Access::Out | Access::InOut => {
                    self.last_writer.insert(region, id);
                    self.readers_since_write.insert(region, Vec::new());
                }
            }
        }
        self.tasks.push(TaskNode {
            name: name.into(),
            cost,
            body,
            phase,
            device: Device::Host,
            successors: Vec::new(),
            n_preds: preds.len() as u32,
        });
        self.n_edges += preds.len();
        for p in preds {
            self.tasks[p.0 as usize].successors.push(id);
        }
        id
    }

    /// Mark the most recently added task for booster execution (the
    /// OmpSs `device(booster)` clause). Returns `self` for chaining-ish
    /// use right after `add_task`.
    pub fn set_device(&mut self, t: TaskId, device: Device) {
        self.tasks[t.0 as usize].device = device;
    }

    /// The device a task is annotated for.
    pub fn device(&self, t: TaskId) -> Device {
        self.tasks[t.0 as usize].device
    }

    /// Take a task's body for out-of-band execution (tests, tools).
    pub fn take_body(&mut self, t: TaskId) -> Option<TaskBody> {
        self.tasks[t.0 as usize].body.take()
    }

    /// Tasks with no predecessors, in submission order.
    pub fn roots(&self) -> Vec<TaskId> {
        self.tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.n_preds == 0)
            .map(|(i, _)| TaskId(i as u32))
            .collect()
    }

    /// Predecessor count of a task.
    pub fn n_preds(&self, t: TaskId) -> u32 {
        self.tasks[t.0 as usize].n_preds
    }

    /// Successors of a task.
    pub fn successors(&self, t: TaskId) -> &[TaskId] {
        &self.tasks[t.0 as usize].successors
    }

    /// Task name.
    pub fn name(&self, t: TaskId) -> &str {
        &self.tasks[t.0 as usize].name
    }

    /// Highest phase id in the graph.
    pub fn max_phase(&self) -> u32 {
        self.tasks.iter().map(|t| t.phase).max().unwrap_or(0)
    }

    /// A topological order (submission order is always one, because
    /// dependences only point backwards); verifies acyclicity by Kahn's
    /// algorithm and panics if the edge bookkeeping is corrupt.
    pub fn topo_order(&self) -> Vec<TaskId> {
        let mut indeg: Vec<u32> = self.tasks.iter().map(|t| t.n_preds).collect();
        let mut order = Vec::with_capacity(self.tasks.len());
        let mut queue: std::collections::VecDeque<TaskId> = self.roots().into();
        while let Some(t) = queue.pop_front() {
            order.push(t);
            for &s in &self.tasks[t.0 as usize].successors {
                indeg[s.0 as usize] -= 1;
                if indeg[s.0 as usize] == 0 {
                    queue.push_back(s);
                }
            }
        }
        assert_eq!(
            order.len(),
            self.tasks.len(),
            "dependence graph has a cycle"
        );
        order
    }

    /// Critical-path length under a per-task time function.
    pub fn critical_path(&self, exec: impl Fn(TaskId) -> SimDuration) -> SimDuration {
        let order = self.topo_order();
        let mut finish = vec![SimDuration::ZERO; self.tasks.len()];
        let mut best = SimDuration::ZERO;
        for t in order {
            let mut start = SimDuration::ZERO;
            // finish[] of preds is already computed (topological order);
            // scan preds via successors is awkward, so compute forward:
            // start = max over preds' finish — track via incoming relax.
            // We instead relax successors after computing our own finish.
            let own = finish[t.0 as usize].max(start);
            start = own;
            let f = start + exec(t);
            finish[t.0 as usize] = f;
            best = best.max(f);
            for &s in &self.tasks[t.0 as usize].successors {
                finish[s.0 as usize] = finish[s.0 as usize].max(f);
            }
        }
        best
    }

    /// Total work under a per-task time function.
    pub fn total_work(&self, exec: impl Fn(TaskId) -> SimDuration) -> SimDuration {
        (0..self.tasks.len()).map(|i| exec(TaskId(i as u32))).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixed(us: u64) -> TaskCost {
        TaskCost::Fixed(SimDuration::micros(us))
    }

    #[test]
    fn raw_dependence() {
        let mut g = TaskGraph::new();
        let a = g.add_task("w", &[(RegionId(1), Access::Out)], fixed(1), 0, None);
        let b = g.add_task("r", &[(RegionId(1), Access::In)], fixed(1), 0, None);
        assert_eq!(g.successors(a), &[b]);
        assert_eq!(g.n_preds(b), 1);
        assert_eq!(g.roots(), vec![a]);
    }

    #[test]
    fn war_and_waw_dependences() {
        let mut g = TaskGraph::new();
        let w1 = g.add_task("w1", &[(RegionId(1), Access::Out)], fixed(1), 0, None);
        let r1 = g.add_task("r1", &[(RegionId(1), Access::In)], fixed(1), 0, None);
        let r2 = g.add_task("r2", &[(RegionId(1), Access::In)], fixed(1), 0, None);
        let w2 = g.add_task("w2", &[(RegionId(1), Access::Out)], fixed(1), 0, None);
        // w2 depends on both readers (WAR) and the previous writer (WAW).
        assert_eq!(g.n_preds(w2), 3);
        assert!(g.successors(r1).contains(&w2));
        assert!(g.successors(r2).contains(&w2));
        assert!(g.successors(w1).contains(&w2));
        let _ = (w1, r1, r2);
    }

    #[test]
    fn independent_regions_are_parallel() {
        let mut g = TaskGraph::new();
        for i in 0..10 {
            g.add_task(
                format!("t{i}"),
                &[(RegionId(i), Access::InOut)],
                fixed(1),
                0,
                None,
            );
        }
        assert_eq!(g.roots().len(), 10);
        assert_eq!(g.n_edges(), 0);
    }

    #[test]
    fn readers_between_writes_do_not_chain_to_later_reads() {
        let mut g = TaskGraph::new();
        let w = g.add_task("w", &[(RegionId(1), Access::Out)], fixed(1), 0, None);
        let r1 = g.add_task("r1", &[(RegionId(1), Access::In)], fixed(1), 0, None);
        let r2 = g.add_task("r2", &[(RegionId(1), Access::In)], fixed(1), 0, None);
        // Readers are mutually independent.
        assert!(!g.successors(r1).contains(&r2));
        assert_eq!(g.n_preds(r2), 1);
        let _ = w;
    }

    #[test]
    fn duplicate_accesses_create_one_edge() {
        let mut g = TaskGraph::new();
        let a = g.add_task(
            "a",
            &[(RegionId(1), Access::Out), (RegionId(2), Access::Out)],
            fixed(1),
            0,
            None,
        );
        let b = g.add_task(
            "b",
            &[(RegionId(1), Access::In), (RegionId(2), Access::In)],
            fixed(1),
            0,
            None,
        );
        assert_eq!(g.n_preds(b), 1, "two RAW paths collapse to one edge");
        assert_eq!(g.successors(a), &[b]);
    }

    #[test]
    fn topo_order_is_consistent() {
        let mut g = TaskGraph::new();
        let mut ids = Vec::new();
        for k in 0..4u64 {
            ids.push(g.add_task(
                format!("k{k}"),
                &[(RegionId(k), Access::In), (RegionId(k + 1), Access::InOut)],
                fixed(1),
                k as u32,
                None,
            ));
        }
        let order = g.topo_order();
        assert_eq!(order.len(), 4);
        // Chain: each task before its successor.
        for w in order.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn critical_path_of_chain_equals_total_work() {
        let mut g = TaskGraph::new();
        for _ in 0..5 {
            g.add_task("c", &[(RegionId(0), Access::InOut)], fixed(10), 0, None);
        }
        let exec = |_t: TaskId| SimDuration::micros(10);
        assert_eq!(g.critical_path(exec), SimDuration::micros(50));
        assert_eq!(g.total_work(exec), SimDuration::micros(50));
    }

    #[test]
    fn critical_path_of_independent_tasks_is_one_task() {
        let mut g = TaskGraph::new();
        for i in 0..5 {
            g.add_task("p", &[(RegionId(i), Access::InOut)], fixed(10), 0, None);
        }
        assert_eq!(
            g.critical_path(|_| SimDuration::micros(10)),
            SimDuration::micros(10)
        );
    }
}
