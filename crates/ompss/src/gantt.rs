//! ASCII Gantt rendering of execution traces — the visual counterpart of
//! slide 23's dataflow argument: fork-join traces show idle "staircases"
//! at every barrier that dataflow traces fill with ready tasks.

use deep_simkit::SimTime;

use crate::runtime::RunReport;

/// Render a worker-by-time occupancy chart, `width` columns wide.
/// Each cell shows how busy that worker was in that time slice:
/// `█` ≥ 87 %, `▓` ≥ 62 %, `▒` ≥ 37 %, `░` ≥ 12 %, `·` otherwise.
pub fn render_gantt(report: &RunReport, width: usize) -> String {
    assert!(width >= 4);
    let end = report
        .trace
        .iter()
        .map(|&(_, e, _)| e)
        .max()
        .unwrap_or(SimTime::ZERO);
    if end == SimTime::ZERO {
        return String::from("(empty trace)\n");
    }
    let total = end.as_nanos() as f64;
    let mut busy = vec![vec![0.0f64; width]; report.workers as usize];
    for &(s, e, w) in &report.trace {
        let (s, e) = (s.as_nanos() as f64, e.as_nanos() as f64);
        let first = ((s / total) * width as f64).floor() as usize;
        let last = (((e / total) * width as f64).ceil() as usize).min(width);
        let row = &mut busy[w as usize];
        for (col, cell) in row.iter_mut().enumerate().take(last).skip(first) {
            let c0 = col as f64 / width as f64 * total;
            let c1 = (col + 1) as f64 / width as f64 * total;
            let overlap = (e.min(c1) - s.max(c0)).max(0.0);
            *cell += overlap / (c1 - c0);
        }
    }
    let mut out = String::new();
    for (w, row) in busy.iter().enumerate() {
        out.push_str(&format!("w{w:<3}|"));
        for &b in row {
            out.push(match b {
                x if x >= 0.87 => '█',
                x if x >= 0.62 => '▓',
                x if x >= 0.37 => '▒',
                x if x >= 0.12 => '░',
                _ => '·',
            });
        }
        out.push_str("|\n");
    }
    out.push_str(&format!(
        "    0{:>width$}\n",
        format!("{}", report.makespan),
        width = width
    ));
    out
}

/// Overall occupancy fraction of the trace (busy worker-time / total).
pub fn occupancy(report: &RunReport) -> f64 {
    let end = report
        .trace
        .iter()
        .map(|&(_, e, _)| e)
        .max()
        .unwrap_or(SimTime::ZERO);
    if end == SimTime::ZERO {
        return 0.0;
    }
    let busy: f64 = report
        .trace
        .iter()
        .map(|&(s, e, _)| (e - s).as_secs_f64())
        .sum();
    busy / (end.as_secs_f64() * report.workers as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Access, RegionId, TaskCost, TaskGraph};
    use crate::runtime::run_dataflow;
    use deep_hw::NodeModel;
    use deep_simkit::{SimDuration, Simulation};

    fn run(n_tasks: u64, workers: u32) -> RunReport {
        let mut g = TaskGraph::new();
        for i in 0..n_tasks {
            g.add_task(
                "t",
                &[(RegionId(i), Access::InOut)],
                TaskCost::Fixed(SimDuration::micros(10)),
                0,
                None,
            );
        }
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let node = NodeModel::xeon_cluster_node();
        let h = sim.spawn(
            "run",
            async move { run_dataflow(&ctx, g, &node, workers).await },
        );
        sim.run().assert_completed();
        h.try_result().unwrap()
    }

    #[test]
    fn gantt_has_one_row_per_worker_plus_axis() {
        let r = run(16, 4);
        let g = render_gantt(&r, 40);
        assert_eq!(g.lines().count(), 5);
        for (w, line) in g.lines().take(4).enumerate() {
            assert!(line.starts_with(&format!("w{w}")));
        }
    }

    #[test]
    fn saturated_schedule_renders_full_blocks() {
        // 16 equal tasks on 4 workers: perfectly packed.
        let r = run(16, 4);
        let g = render_gantt(&r, 16);
        let full = g.chars().filter(|&c| c == '█').count();
        assert!(full >= 56, "mostly saturated: {full} full cells\n{g}");
        assert!((occupancy(&r) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn idle_workers_render_empty() {
        // 1 task, 4 workers: three rows are idle.
        let r = run(1, 4);
        let g = render_gantt(&r, 10);
        let idle_rows = g
            .lines()
            .take(4)
            .filter(|l| l.chars().all(|c| !"█▓▒░".contains(c)))
            .count();
        assert_eq!(idle_rows, 3);
        assert!((occupancy(&r) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn empty_graph_is_handled() {
        let r = run(0, 2);
        assert_eq!(render_gantt(&r, 10), "(empty trace)\n");
        assert_eq!(occupancy(&r), 0.0);
    }
}

/// Render the trace as Chrome trace-event JSON (open in
/// `chrome://tracing` or Perfetto): one complete event per task, one
/// "thread" per worker.
pub fn to_chrome_trace(report: &RunReport, names: &[String]) -> String {
    let mut out = String::from("[");
    for (i, &(s, e, w)) in report.trace.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let name = names
            .get(i)
            .map(String::as_str)
            .unwrap_or("task")
            .replace('"', "'");
        out.push_str(&format!(
            "{{\"name\":\"{name}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}}}",
            s.as_nanos() as f64 / 1e3,
            (e - s).as_nanos() as f64 / 1e3,
            w
        ));
    }
    out.push(']');
    out
}

#[cfg(test)]
mod chrome_tests {
    use super::*;
    use crate::graph::{Access, RegionId, TaskCost, TaskGraph};
    use crate::runtime::run_dataflow;
    use deep_hw::NodeModel;
    use deep_simkit::{SimDuration, Simulation};

    #[test]
    fn chrome_trace_is_valid_json_with_one_event_per_task() {
        let mut g = TaskGraph::new();
        let mut names = Vec::new();
        for i in 0..5 {
            names.push(format!("task\"{i}\"")); // quote to test escaping
            g.add_task(
                &names[i as usize],
                &[(RegionId(i), Access::InOut)],
                TaskCost::Fixed(SimDuration::micros(5)),
                0,
                None,
            );
        }
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let node = NodeModel::xeon_cluster_node();
        let h = sim.spawn("run", async move { run_dataflow(&ctx, g, &node, 2).await });
        sim.run().assert_completed();
        let r = h.try_result().unwrap();
        let json = to_chrome_trace(&r, &names);
        // Must parse as a JSON array of 5 objects.
        let parsed: deep_json::Value = deep_json::from_str(&json).expect("valid JSON");
        assert_eq!(parsed.as_array().unwrap().len(), 5);
        for ev in parsed.as_array().unwrap() {
            assert_eq!(ev["ph"], "X");
            assert!(ev["dur"].as_f64().unwrap() > 0.0);
        }
    }
}
