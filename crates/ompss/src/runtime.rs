//! Task-graph execution on simulated workers.
//!
//! Two schedulers, matching experiment F23's comparison:
//!
//! * [`run_dataflow`] — the OmpSs model: a task becomes runnable the
//!   moment its dependences are satisfied; idle workers pull from a FIFO
//!   ready queue.
//! * [`run_fork_join`] — the conventional barrier model: tasks execute
//!   phase by phase (parallel-for within a phase, global barrier between
//!   phases), as a loop-parallel Cholesky would.

use std::cell::RefCell;
use std::rc::Rc;

use deep_hw::{roofline, NodeModel};
use deep_simkit::{channel, join_all, Receiver, Sender, Sim, SimDuration, SimTime};

use crate::graph::{TaskCost, TaskGraph, TaskId};

/// Execution report of one scheduled run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Wall time from start to last task completion.
    pub makespan: SimDuration,
    /// Tasks executed.
    pub tasks: usize,
    /// Sum of task execution times.
    pub total_work: SimDuration,
    /// Dependence-graph critical path under the same cost model.
    pub critical_path: SimDuration,
    /// Workers used.
    pub workers: u32,
    /// Per-task (start, end, worker) trace, indexed by task id.
    pub trace: Vec<(SimTime, SimTime, u32)>,
}

impl RunReport {
    /// Parallel efficiency: total work / (makespan × workers).
    pub fn efficiency(&self) -> f64 {
        if self.makespan == SimDuration::ZERO {
            return 1.0;
        }
        self.total_work.as_secs_f64() / (self.makespan.as_secs_f64() * self.workers as f64)
    }

    /// Speedup over serial execution of the same work.
    pub fn speedup(&self) -> f64 {
        if self.makespan == SimDuration::ZERO {
            return 1.0;
        }
        self.total_work.as_secs_f64() / self.makespan.as_secs_f64()
    }
}

/// Time one task takes on `node` under its cost model.
pub fn task_time(node: &NodeModel, cost: &TaskCost) -> SimDuration {
    match cost {
        TaskCost::Kernel { profile, cores } => {
            roofline::exec_time(node, profile, (*cores).min(node.cores)).time
        }
        TaskCost::Fixed(d) => *d,
    }
}

/// Ready-queue ordering policy for the dataflow scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPolicy {
    /// First-come first-served (submission order as dependences resolve).
    Fifo,
    /// Critical-path-first: tasks with the longest remaining dependence
    /// chain run first (classic list scheduling; an ablation of the
    /// Nanos++ priority support).
    CriticalPathFirst,
}

enum WorkerMsg {
    Token,
    Stop,
}

/// Shared ready set honouring the policy.
struct ReadySet {
    policy: SchedPolicy,
    fifo: std::collections::VecDeque<TaskId>,
    heap: std::collections::BinaryHeap<(u64, std::cmp::Reverse<u32>)>,
    /// Bottom levels (ns) for CriticalPathFirst.
    bottom: Vec<u64>,
}

impl ReadySet {
    fn new(policy: SchedPolicy, bottom: Vec<u64>) -> Self {
        ReadySet {
            policy,
            fifo: std::collections::VecDeque::new(),
            heap: std::collections::BinaryHeap::new(),
            bottom,
        }
    }

    fn push(&mut self, t: TaskId) {
        match self.policy {
            SchedPolicy::Fifo => self.fifo.push_back(t),
            SchedPolicy::CriticalPathFirst => self
                .heap
                .push((self.bottom[t.0 as usize], std::cmp::Reverse(t.0))),
        }
    }

    fn pop(&mut self) -> Option<TaskId> {
        match self.policy {
            SchedPolicy::Fifo => self.fifo.pop_front(),
            SchedPolicy::CriticalPathFirst => {
                self.heap.pop().map(|(_, std::cmp::Reverse(i))| TaskId(i))
            }
        }
    }
}

struct ExecState {
    graph: TaskGraph,
    remaining_preds: Vec<u32>,
    completed: usize,
    trace: Vec<(SimTime, SimTime, u32)>,
}

/// Execute `graph` with dependence-driven (OmpSs) scheduling on
/// `n_workers` cores of `node`, FIFO ready queue. Consumes the graph.
pub async fn run_dataflow(
    sim: &Sim,
    graph: TaskGraph,
    node: &NodeModel,
    n_workers: u32,
) -> RunReport {
    run_dataflow_policy(sim, graph, node, n_workers, SchedPolicy::Fifo).await
}

/// Execute with an explicit ready-queue policy (scheduler ablation).
pub async fn run_dataflow_policy(
    sim: &Sim,
    graph: TaskGraph,
    node: &NodeModel,
    n_workers: u32,
    policy: SchedPolicy,
) -> RunReport {
    assert!(n_workers >= 1);
    let node = node.clone();
    let n_tasks = graph.len();
    let total_work = graph.total_work(|t| task_time(&node, &graph.tasks[t.0 as usize].cost));
    let critical_path = graph.critical_path(|t| task_time(&node, &graph.tasks[t.0 as usize].cost));
    let start = sim.now();
    if n_tasks == 0 {
        return RunReport {
            makespan: SimDuration::ZERO,
            tasks: 0,
            total_work,
            critical_path,
            workers: n_workers,
            trace: Vec::new(),
        };
    }

    let (tx, rx): (Sender<WorkerMsg>, Receiver<WorkerMsg>) = channel(sim);
    let roots = graph.roots();
    // Bottom levels for priority scheduling: longest path (in task time)
    // from each task to a sink, computed in reverse topological order.
    let bottom: Vec<u64> = {
        let order = graph.topo_order();
        let mut bl = vec![0u64; n_tasks];
        for &t in order.iter().rev() {
            let own = task_time(&node, &graph.tasks[t.0 as usize].cost).as_nanos();
            let best_succ = graph.tasks[t.0 as usize]
                .successors
                .iter()
                .map(|s| bl[s.0 as usize])
                .max()
                .unwrap_or(0);
            bl[t.0 as usize] = own + best_succ;
        }
        bl
    };
    let ready = Rc::new(RefCell::new(ReadySet::new(policy, bottom)));
    let remaining_preds = graph.tasks.iter().map(|t| t.n_preds).collect();
    let state = Rc::new(RefCell::new(ExecState {
        graph,
        remaining_preds,
        completed: 0,
        trace: vec![(SimTime::ZERO, SimTime::ZERO, 0); n_tasks],
    }));
    for t in roots {
        ready.borrow_mut().push(t);
        tx.try_send(WorkerMsg::Token).ok();
    }

    let mut workers = Vec::with_capacity(n_workers as usize);
    for w in 0..n_workers {
        let rx = rx.clone();
        let tx = tx.clone();
        let state = state.clone();
        let ready = ready.clone();
        let sim2 = sim.clone();
        let node = node.clone();
        workers.push(sim.spawn(format!("ompss-worker{w}"), async move {
            while let Ok(msg) = rx.recv().await {
                let t = match msg {
                    WorkerMsg::Token => ready
                        .borrow_mut()
                        .pop()
                        .expect("a token always has a matching ready task"),
                    WorkerMsg::Stop => break,
                };
                let (cost, body) = {
                    let mut st = state.borrow_mut();
                    let node_t = &mut st.graph.tasks[t.0 as usize];
                    (node_t.cost, node_t.body.take())
                };
                let t_start = sim2.now();
                sim2.sleep(task_time(&node, &cost)).await;
                if let Some(b) = body {
                    b();
                }
                let t_end = sim2.now();
                // Completion: release successors.
                let mut newly_ready = Vec::new();
                let all_done = {
                    let mut st = state.borrow_mut();
                    st.trace[t.0 as usize] = (t_start, t_end, w);
                    st.completed += 1;
                    let succs = st.graph.tasks[t.0 as usize].successors.clone();
                    for s in succs {
                        st.remaining_preds[s.0 as usize] -= 1;
                        if st.remaining_preds[s.0 as usize] == 0 {
                            newly_ready.push(s);
                        }
                    }
                    st.completed == n_tasks
                };
                for s in newly_ready {
                    ready.borrow_mut().push(s);
                    tx.try_send(WorkerMsg::Token).ok();
                }
                if all_done {
                    for _ in 0..n_workers {
                        tx.try_send(WorkerMsg::Stop).ok();
                    }
                }
            }
        }));
    }
    drop(tx);
    drop(rx);
    join_all(workers).await;

    let state = Rc::try_unwrap(state)
        .ok()
        .expect("workers finished")
        .into_inner();
    RunReport {
        makespan: sim.now() - start,
        tasks: n_tasks,
        total_work,
        critical_path,
        workers: n_workers,
        trace: state.trace,
    }
}

/// Execute `graph` with barrier-synchronised phases (the fork-join
/// baseline): all tasks of phase *p* finish before phase *p+1* starts;
/// within a phase, tasks run on the worker pool in submission order.
pub async fn run_fork_join(
    sim: &Sim,
    graph: TaskGraph,
    node: &NodeModel,
    n_workers: u32,
) -> RunReport {
    assert!(n_workers >= 1);
    let node = node.clone();
    let n_tasks = graph.len();
    let total_work = graph.total_work(|t| task_time(&node, &graph.tasks[t.0 as usize].cost));
    let critical_path = graph.critical_path(|t| task_time(&node, &graph.tasks[t.0 as usize].cost));
    let start = sim.now();
    let max_phase = graph.max_phase();
    let mut trace = vec![(SimTime::ZERO, SimTime::ZERO, 0u32); n_tasks];

    let mut tasks = graph.tasks;
    for phase in 0..=max_phase {
        // Collect this phase's tasks in submission order.
        let phase_tasks: Vec<(usize, TaskCost, Option<crate::graph::TaskBody>)> = tasks
            .iter_mut()
            .enumerate()
            .filter(|(_, t)| t.phase == phase)
            .map(|(i, t)| (i, t.cost, t.body.take()))
            .collect();
        if phase_tasks.is_empty() {
            continue;
        }
        // Static round-robin over workers, like a parallel for.
        let mut per_worker: Vec<Vec<(usize, TaskCost, Option<crate::graph::TaskBody>)>> =
            (0..n_workers).map(|_| Vec::new()).collect();
        for (k, item) in phase_tasks.into_iter().enumerate() {
            per_worker[k % n_workers as usize].push(item);
        }
        let mut handles = Vec::new();
        let trace_cell = Rc::new(RefCell::new(std::mem::take(&mut trace)));
        for (w, chunk) in per_worker.into_iter().enumerate() {
            let sim2 = sim.clone();
            let node = node.clone();
            let trace_cell = trace_cell.clone();
            handles.push(sim.spawn(format!("fj-worker{w}"), async move {
                for (i, cost, body) in chunk {
                    let t0 = sim2.now();
                    sim2.sleep(task_time(&node, &cost)).await;
                    if let Some(b) = body {
                        b();
                    }
                    trace_cell.borrow_mut()[i] = (t0, sim2.now(), w as u32);
                }
            }));
        }
        join_all(handles).await; // the barrier
        trace = Rc::try_unwrap(trace_cell).expect("phase done").into_inner();
    }

    RunReport {
        makespan: sim.now() - start,
        tasks: n_tasks,
        total_work,
        critical_path,
        workers: n_workers,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Access, RegionId};
    use deep_simkit::Simulation;

    fn fixed(us: u64) -> TaskCost {
        TaskCost::Fixed(SimDuration::micros(us))
    }

    fn node() -> NodeModel {
        NodeModel::xeon_cluster_node()
    }

    #[test]
    fn independent_tasks_run_in_parallel() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let mut g = TaskGraph::new();
        for i in 0..8 {
            g.add_task("t", &[(RegionId(i), Access::InOut)], fixed(100), 0, None);
        }
        let h = sim.spawn(
            "run",
            async move { run_dataflow(&ctx, g, &node(), 4).await },
        );
        sim.run().assert_completed();
        let r = h.try_result().unwrap();
        // 8 tasks × 100us over 4 workers = 200us.
        assert_eq!(r.makespan, SimDuration::micros(200));
        assert!((r.efficiency() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn chain_runs_serially_regardless_of_workers() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let mut g = TaskGraph::new();
        for _ in 0..5 {
            g.add_task("c", &[(RegionId(0), Access::InOut)], fixed(100), 0, None);
        }
        let h = sim.spawn(
            "run",
            async move { run_dataflow(&ctx, g, &node(), 8).await },
        );
        sim.run().assert_completed();
        let r = h.try_result().unwrap();
        assert_eq!(r.makespan, SimDuration::micros(500));
        assert_eq!(r.makespan, r.critical_path);
    }

    #[test]
    fn bodies_execute_exactly_once_in_dependence_order() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let log: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
        let mut g = TaskGraph::new();
        for i in 0..4u32 {
            let log = log.clone();
            g.add_task(
                format!("t{i}"),
                &[(RegionId(0), Access::InOut)],
                fixed(10),
                0,
                Some(Box::new(move || log.borrow_mut().push(i))),
            );
        }
        let h = sim.spawn(
            "run",
            async move { run_dataflow(&ctx, g, &node(), 4).await },
        );
        sim.run().assert_completed();
        assert_eq!(*log.borrow(), vec![0, 1, 2, 3]);
        assert_eq!(h.try_result().unwrap().tasks, 4);
    }

    #[test]
    fn dataflow_beats_fork_join_on_staggered_dag() {
        // Diamond-ish DAG where phases force idle time: phase p has one
        // long task and many short ones; dataflow lets the next phase's
        // independent tasks start early.
        fn build() -> TaskGraph {
            let mut g = TaskGraph::new();
            for p in 0..4u64 {
                // one long task per phase, chained on region 0
                g.add_task(
                    "long",
                    &[(RegionId(0), Access::InOut)],
                    fixed(400),
                    p as u32,
                    None,
                );
                // short independent tasks chained per their own region
                for i in 1..8u64 {
                    g.add_task(
                        "short",
                        &[(RegionId(i), Access::InOut)],
                        fixed(50),
                        p as u32,
                        None,
                    );
                }
            }
            g
        }
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let h = sim.spawn("run", async move {
            let df = run_dataflow(&ctx, build(), &node(), 4).await;
            let fj = run_fork_join(&ctx, build(), &node(), 4).await;
            (df.makespan, fj.makespan)
        });
        sim.run().assert_completed();
        let (df, fj) = h.try_result().unwrap();
        assert!(
            df < fj,
            "dataflow ({df}) must beat fork-join ({fj}) on staggered DAGs"
        );
    }

    #[test]
    fn fork_join_respects_phase_barriers() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let log: Rc<RefCell<Vec<(u32, u64)>>> = Rc::new(RefCell::new(Vec::new()));
        let mut g = TaskGraph::new();
        for p in 0..3u32 {
            for i in 0..4u64 {
                let log = log.clone();
                let ctx2 = ctx.clone();
                g.add_task(
                    "t",
                    &[(RegionId(100 + i), Access::InOut)],
                    fixed(10 * (i + 1)),
                    p,
                    Some(Box::new(move || {
                        log.borrow_mut().push((p, ctx2.now().as_nanos()))
                    })),
                );
            }
        }
        let h = sim.spawn(
            "run",
            async move { run_fork_join(&ctx, g, &node(), 4).await },
        );
        sim.run().assert_completed();
        let _ = h.try_result().unwrap();
        let l = log.borrow();
        // Every phase-p+1 task body runs at or after all phase-p bodies.
        for &(p1, t1) in l.iter() {
            for &(p2, t2) in l.iter() {
                if p2 > p1 {
                    assert!(t2 >= t1, "phase {p2} at {t2} before phase {p1} at {t1}");
                }
            }
        }
    }

    #[test]
    fn trace_is_complete_and_well_formed() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let mut g = TaskGraph::new();
        for i in 0..6 {
            g.add_task("t", &[(RegionId(i % 2), Access::InOut)], fixed(10), 0, None);
        }
        let h = sim.spawn(
            "run",
            async move { run_dataflow(&ctx, g, &node(), 2).await },
        );
        sim.run().assert_completed();
        let r = h.try_result().unwrap();
        assert_eq!(r.trace.len(), 6);
        for &(s, e, w) in &r.trace {
            assert!(e > s, "every task has positive duration");
            assert!(w < 2);
        }
    }

    #[test]
    fn kernel_cost_uses_roofline() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let mut g = TaskGraph::new();
        let profile = deep_hw::KernelProfile::dgemm(512);
        g.add_task(
            "dgemm",
            &[(RegionId(0), Access::InOut)],
            TaskCost::Kernel { profile, cores: 1 },
            0,
            None,
        );
        let nm = node();
        let expect = roofline::exec_time(&nm, &profile, 1).time;
        let h = sim.spawn("run", async move { run_dataflow(&ctx, g, &nm, 1).await });
        sim.run().assert_completed();
        assert_eq!(h.try_result().unwrap().makespan, expect);
    }
}

#[cfg(test)]
mod policy_tests {
    use super::*;
    use crate::graph::{Access, RegionId, TaskGraph};
    use deep_simkit::Simulation;

    /// An adversarial DAG: one long dependency chain plus a swarm of
    /// short independent tasks submitted *before* each chain link. FIFO
    /// keeps starving the chain behind the swarm; critical-path-first
    /// runs the chain eagerly.
    fn adversarial() -> TaskGraph {
        let mut g = TaskGraph::new();
        for step in 0..8u64 {
            for i in 0..12u64 {
                g.add_task(
                    "short",
                    &[(RegionId(100 + step * 16 + i), Access::InOut)],
                    TaskCost::Fixed(SimDuration::micros(40)),
                    0,
                    None,
                );
            }
            g.add_task(
                "chain",
                &[(RegionId(0), Access::InOut)],
                TaskCost::Fixed(SimDuration::micros(100)),
                0,
                None,
            );
        }
        g
    }

    fn run_policy(policy: SchedPolicy) -> SimDuration {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let node = NodeModel::xeon_cluster_node();
        let h = sim.spawn("run", async move {
            run_dataflow_policy(&ctx, adversarial(), &node, 4, policy).await
        });
        sim.run().assert_completed();
        h.try_result().unwrap().makespan
    }

    #[test]
    fn critical_path_first_beats_fifo_on_chain_plus_swarm() {
        let fifo = run_policy(SchedPolicy::Fifo);
        let cp = run_policy(SchedPolicy::CriticalPathFirst);
        assert!(
            cp < fifo,
            "critical-path-first ({cp}) must beat FIFO ({fifo}) here"
        );
        // The chain (8 × 100 µs) lower-bounds any schedule.
        assert!(cp >= SimDuration::micros(800));
    }

    #[test]
    fn both_policies_execute_everything_correctly() {
        use std::cell::RefCell;
        use std::rc::Rc;
        for policy in [SchedPolicy::Fifo, SchedPolicy::CriticalPathFirst] {
            let mut sim = Simulation::new(1);
            let ctx = sim.handle();
            let node = NodeModel::xeon_cluster_node();
            let count = Rc::new(RefCell::new(0u32));
            let mut g = TaskGraph::new();
            for i in 0..30u64 {
                let count = count.clone();
                g.add_task(
                    format!("t{i}"),
                    &[(RegionId(i % 5), Access::InOut)],
                    TaskCost::Fixed(SimDuration::micros(i % 7 + 1)),
                    0,
                    Some(Box::new(move || *count.borrow_mut() += 1)),
                );
            }
            let h = sim.spawn("run", async move {
                run_dataflow_policy(&ctx, g, &node, 3, policy).await
            });
            sim.run().assert_completed();
            assert_eq!(h.try_result().unwrap().tasks, 30);
            assert_eq!(*count.borrow(), 30, "{policy:?}");
        }
    }
}
