//! Property-based tests of the dependence tracker: any dataflow-scheduled
//! execution must be *serialisation-equivalent* — every task observes the
//! same region values it would observe in sequential program order.

use std::cell::RefCell;
use std::rc::Rc;

use deep_hw::NodeModel;
use deep_ompss::{run_dataflow, Access, RegionId, TaskCost, TaskGraph};
use deep_simkit::{SimDuration, Simulation};
use proptest::prelude::*;

/// A randomly generated task: regions it touches and how.
#[derive(Debug, Clone)]
struct RandTask {
    accesses: Vec<(u64, u8)>, // (region, 0=In 1=Out 2=InOut)
    cost_ns: u64,
}

fn rand_task() -> impl Strategy<Value = RandTask> {
    (prop::collection::vec((0u64..6, 0u8..3), 1..4), 1u64..500).prop_map(
        |(mut accesses, cost_ns)| {
            // A task may touch each region only once; dedupe by region.
            accesses.sort_by_key(|a| a.0);
            accesses.dedup_by_key(|a| a.0);
            RandTask { accesses, cost_ns }
        },
    )
}

/// Sequentially execute the access semantics: regions hold the id of
/// their last writer; reads observe that id.
fn sequential_reads(tasks: &[RandTask]) -> Vec<Vec<(u64, i64)>> {
    let mut region_val: std::collections::HashMap<u64, i64> = std::collections::HashMap::new();
    let mut observed = Vec::with_capacity(tasks.len());
    for (i, t) in tasks.iter().enumerate() {
        let mut mine = Vec::new();
        for &(r, mode) in &t.accesses {
            if mode == 0 || mode == 2 {
                mine.push((r, *region_val.get(&r).unwrap_or(&-1)));
            }
            if mode == 1 || mode == 2 {
                region_val.insert(r, i as i64);
            }
        }
        observed.push(mine);
    }
    observed
}

type Observed = Rc<RefCell<Vec<Vec<(u64, i64)>>>>;

fn build_graph(
    tasks: &[RandTask],
    observed: Observed,
    region_val: Rc<RefCell<std::collections::HashMap<u64, i64>>>,
) -> TaskGraph {
    let mut g = TaskGraph::new();
    for (i, t) in tasks.iter().enumerate() {
        let accesses: Vec<(RegionId, Access)> = t
            .accesses
            .iter()
            .map(|&(r, mode)| {
                (
                    RegionId(r),
                    match mode {
                        0 => Access::In,
                        1 => Access::Out,
                        _ => Access::InOut,
                    },
                )
            })
            .collect();
        let observed = observed.clone();
        let region_val = region_val.clone();
        let t2 = t.clone();
        g.add_task(
            format!("t{i}"),
            &accesses,
            TaskCost::Fixed(SimDuration::nanos(t.cost_ns)),
            0,
            Some(Box::new(move || {
                let mut vals = region_val.borrow_mut();
                let mut mine = Vec::new();
                for &(r, mode) in &t2.accesses {
                    if mode == 0 || mode == 2 {
                        mine.push((r, *vals.get(&r).unwrap_or(&-1)));
                    }
                    if mode == 1 || mode == 2 {
                        vals.insert(r, i as i64);
                    }
                }
                observed.borrow_mut()[i] = mine;
            })),
        );
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Dataflow execution observes exactly the sequential region values,
    /// for any task mix and any worker count.
    #[test]
    fn dataflow_is_serialisation_equivalent(
        tasks in prop::collection::vec(rand_task(), 1..25),
        workers in 1u32..9,
    ) {
        let expect = sequential_reads(&tasks);
        let observed = Rc::new(RefCell::new(vec![Vec::new(); tasks.len()]));
        let region_val = Rc::new(RefCell::new(std::collections::HashMap::new()));
        let g = build_graph(&tasks, observed.clone(), region_val);

        let mut sim = Simulation::new(3);
        let ctx = sim.handle();
        let node = NodeModel::xeon_cluster_node();
        let h = sim.spawn("run", async move {
            run_dataflow(&ctx, g, &node, workers).await
        });
        sim.run().assert_completed();
        let report = h.try_result().unwrap();
        prop_assert_eq!(report.tasks, tasks.len());
        prop_assert_eq!(&*observed.borrow(), &expect);
    }

    /// The graph is always acyclic and the edge count is stable across
    /// identical rebuilds.
    #[test]
    fn graph_construction_is_deterministic(tasks in prop::collection::vec(rand_task(), 1..40)) {
        let mk = || {
            let mut g = TaskGraph::new();
            for (i, t) in tasks.iter().enumerate() {
                let accesses: Vec<(RegionId, Access)> = t
                    .accesses
                    .iter()
                    .map(|&(r, mode)| {
                        (RegionId(r), match mode {
                            0 => Access::In,
                            1 => Access::Out,
                            _ => Access::InOut,
                        })
                    })
                    .collect();
                g.add_task(
                    format!("t{i}"),
                    &accesses,
                    TaskCost::Fixed(SimDuration::nanos(t.cost_ns)),
                    0,
                    None,
                );
            }
            g
        };
        let a = mk();
        let b = mk();
        prop_assert_eq!(a.n_edges(), b.n_edges());
        // topo_order panics on cycles; reaching here proves acyclicity.
        prop_assert_eq!(a.topo_order().len(), tasks.len());
    }

    /// Makespan is bounded below by the critical path and above by the
    /// serial time, for any worker count.
    #[test]
    fn makespan_bounds(
        tasks in prop::collection::vec(rand_task(), 1..25),
        workers in 1u32..9,
    ) {
        let g = {
            let mut g = TaskGraph::new();
            for (i, t) in tasks.iter().enumerate() {
                let accesses: Vec<(RegionId, Access)> = t
                    .accesses
                    .iter()
                    .map(|&(r, mode)| {
                        (RegionId(r), match mode {
                            0 => Access::In,
                            1 => Access::Out,
                            _ => Access::InOut,
                        })
                    })
                    .collect();
                g.add_task(
                    format!("t{i}"),
                    &accesses,
                    TaskCost::Fixed(SimDuration::nanos(t.cost_ns)),
                    0,
                    None,
                );
            }
            g
        };
        let mut sim = Simulation::new(3);
        let ctx = sim.handle();
        let node = NodeModel::xeon_cluster_node();
        let h = sim.spawn("run", async move {
            run_dataflow(&ctx, g, &node, workers).await
        });
        sim.run().assert_completed();
        let r = h.try_result().unwrap();
        prop_assert!(r.makespan >= r.critical_path, "cp {} > makespan {}", r.critical_path, r.makespan);
        prop_assert!(r.makespan <= r.total_work, "makespan above serial time");
    }
}
