//! Property-based tests: every collective must compute exactly what a
//! sequential reference computes, for arbitrary group sizes, roots and
//! payloads.

use std::cell::RefCell;
use std::rc::Rc;

use deep_psmpi::{launch_world, EpId, IdealWire, MpiCtx, MpiParams, ReduceOp, Universe, Value};
use deep_simkit::{SimDuration, Simulation};
use proptest::prelude::*;

fn run_ranks<T: Clone + 'static>(
    n: u32,
    f: impl Fn(MpiCtx) -> std::pin::Pin<Box<dyn std::future::Future<Output = T>>> + 'static,
) -> Vec<T> {
    let mut sim = Simulation::new(9);
    let ctx = sim.handle();
    let wire = Rc::new(IdealWire::new(&ctx, SimDuration::micros(1), 5e9));
    let uni = Universe::new(&ctx, wire, n as usize, MpiParams::default());
    let results: Rc<RefCell<Vec<Option<T>>>> = Rc::new(RefCell::new(vec![None; n as usize]));
    let r2 = results.clone();
    let f = Rc::new(f);
    launch_world(&uni, "t", (0..n).map(EpId).collect(), move |m| {
        let results = r2.clone();
        let f = f.clone();
        Box::pin(async move {
            let rank = m.rank() as usize;
            let v = f(m).await;
            results.borrow_mut()[rank] = Some(v);
        })
    });
    sim.run().assert_completed();
    let out = results
        .borrow_mut()
        .iter_mut()
        .map(|v| v.take().unwrap())
        .collect();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// allreduce(Sum) of random per-rank vectors equals the elementwise sum.
    #[test]
    fn allreduce_matches_reference(
        n in 1u32..12,
        len in 1usize..16,
        seed in 0u64..1000,
    ) {
        let data: Vec<Vec<f64>> = (0..n)
            .map(|r| {
                (0..len)
                    .map(|i| ((seed + r as u64 * 31 + i as u64 * 7) % 1000) as f64 / 10.0)
                    .collect()
            })
            .collect();
        let expect: Vec<f64> = (0..len)
            .map(|i| data.iter().map(|v| v[i]).sum())
            .collect();
        let data2 = data.clone();
        let res = run_ranks(n, move |m| {
            let mine = data2[m.rank() as usize].clone();
            Box::pin(async move {
                let world = m.world().clone();
                m.allreduce(&world, ReduceOp::Sum, Value::vec(mine), 8 * len as u64)
                    .await
            })
        });
        for v in res {
            let got = v.as_vec();
            for (g, e) in got.iter().zip(expect.iter()) {
                prop_assert!((g - e).abs() < 1e-9 * e.abs().max(1.0));
            }
        }
    }

    /// bcast from an arbitrary root delivers the root's exact vector.
    #[test]
    fn bcast_any_root(n in 1u32..12, root_pick in 0u32..12, len in 1usize..16) {
        let root = root_pick % n;
        let res = run_ranks(n, move |m| {
            Box::pin(async move {
                let world = m.world().clone();
                let payload = if m.rank() == root {
                    Value::vec((0..len).map(|i| i as f64 + 0.5).collect())
                } else {
                    Value::Unit
                };
                m.bcast(&world, root, payload, 8 * len as u64).await
            })
        });
        let expect: Vec<f64> = (0..len).map(|i| i as f64 + 0.5).collect();
        for v in res {
            prop_assert_eq!(v.as_vec(), &expect[..]);
        }
    }

    /// gather at an arbitrary root collects rank-indexed values.
    #[test]
    fn gather_any_root(n in 1u32..12, root_pick in 0u32..12) {
        let root = root_pick % n;
        let res = run_ranks(n, move |m| {
            Box::pin(async move {
                let world = m.world().clone();
                m.gather(&world, root, Value::U64(m.rank() as u64 * 3 + 1), 8).await
            })
        });
        for (r, v) in res.iter().enumerate() {
            if r as u32 == root {
                let vals: Vec<u64> =
                    v.as_ref().unwrap().iter().map(|x| x.as_u64()).collect();
                prop_assert_eq!(vals, (0..n as u64).map(|x| x * 3 + 1).collect::<Vec<_>>());
            } else {
                prop_assert!(v.is_none());
            }
        }
    }

    /// alltoall is an exact transpose for arbitrary group sizes.
    #[test]
    fn alltoall_transposes(n in 1u32..10) {
        let res = run_ranks(n, move |m| {
            Box::pin(async move {
                let world = m.world().clone();
                let blocks = (0..m.size())
                    .map(|d| Value::U64((m.rank() as u64) << 16 | d as u64))
                    .collect();
                m.alltoall(&world, blocks, 8).await
            })
        });
        for (r, blocks) in res.iter().enumerate() {
            for (s, v) in blocks.iter().enumerate() {
                prop_assert_eq!(v.as_u64(), (s as u64) << 16 | r as u64);
            }
        }
    }

    /// comm_split groups are exact partitions and sub-collectives work.
    #[test]
    fn comm_split_partitions(n in 2u32..12, colors in 1u32..4) {
        let res = run_ranks(n, move |m| {
            Box::pin(async move {
                let world = m.world().clone();
                let color = m.rank() % colors;
                let sub = m.comm_split(&world, color, m.rank()).await;
                let total = m
                    .allreduce(&sub, ReduceOp::Sum, Value::U64(1), 8)
                    .await
                    .as_u64();
                (color, sub.size(), total)
            })
        });
        for (r, &(color, size, total)) in res.iter().enumerate() {
            let expect = (0..n).filter(|x| x % colors == r as u32 % colors).count() as u32;
            prop_assert_eq!(color, r as u32 % colors);
            prop_assert_eq!(size, expect);
            prop_assert_eq!(total as u32, expect, "sub-communicator is isolated");
        }
    }
}
