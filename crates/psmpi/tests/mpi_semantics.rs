//! MPI semantics integration tests: point-to-point protocols, matching
//! rules, collectives correctness across group sizes, communicator
//! management, and determinism.

use std::cell::RefCell;
use std::rc::Rc;

use deep_fabric::IbFabric;
use deep_psmpi::{
    launch_world, EpId, IbWire, IdealWire, MpiCtx, MpiParams, ReduceOp, Universe, Value,
};
use deep_simkit::{Sim, SimDuration, Simulation};

/// Run `n` ranks of `f` on an ideal wire; return each rank's result.
fn run_ranks<T: Clone + 'static>(
    n: u32,
    f: impl Fn(MpiCtx) -> std::pin::Pin<Box<dyn std::future::Future<Output = T>>> + 'static,
) -> Vec<T> {
    run_ranks_seeded(n, 42, f)
}

fn run_ranks_seeded<T: Clone + 'static>(
    n: u32,
    seed: u64,
    f: impl Fn(MpiCtx) -> std::pin::Pin<Box<dyn std::future::Future<Output = T>>> + 'static,
) -> Vec<T> {
    let mut sim = Simulation::new(seed);
    let ctx = sim.handle();
    let wire = Rc::new(IdealWire::new(&ctx, SimDuration::micros(1), 5e9));
    let uni = Universe::new(&ctx, wire, n as usize, MpiParams::default());
    let results: Rc<RefCell<Vec<Option<T>>>> = Rc::new(RefCell::new(vec![None; n as usize]));
    let r2 = results.clone();
    let f = Rc::new(f);
    launch_world(&uni, "t", (0..n).map(EpId).collect(), move |m| {
        let results = r2.clone();
        let f = f.clone();
        Box::pin(async move {
            let rank = m.rank() as usize;
            let v = f(m).await;
            results.borrow_mut()[rank] = Some(v);
        })
    });
    sim.run().assert_completed();
    let out = results
        .borrow_mut()
        .iter_mut()
        .map(|v| v.take().unwrap())
        .collect();
    out
}

/// World sizes exercised for every collective: powers of two and not.
const SIZES: [u32; 6] = [1, 2, 3, 4, 7, 16];

#[test]
fn p2p_eager_roundtrip() {
    let res = run_ranks(2, |m| {
        Box::pin(async move {
            let world = m.world().clone();
            if m.rank() == 0 {
                m.send_val(&world, 1, 5, Value::U64(123)).await;
                0
            } else {
                let msg = m.recv(&world, Some(0), Some(5)).await;
                assert_eq!(msg.src, 0);
                assert_eq!(msg.tag, 5);
                msg.value.as_u64()
            }
        })
    });
    assert_eq!(res, vec![0, 123]);
}

#[test]
fn p2p_rendezvous_large_message() {
    // 1 MiB >> eager threshold: rendezvous path.
    let res = run_ranks(2, |m| {
        Box::pin(async move {
            let world = m.world().clone();
            let n = 131_072; // 1 MiB of f64
            if m.rank() == 0 {
                let data: Vec<f64> = (0..n).map(|i| i as f64).collect();
                let t0 = m.sim().now();
                m.send(&world, 1, 1, Value::vec(data), 8 * n as u64).await;
                // Rendezvous: send completes only after the receiver pulled
                // the data, so at least the transfer time elapsed.
                (m.sim().now() - t0).as_nanos() as f64
            } else {
                m.sim().sleep(SimDuration::millis(1)).await; // receiver late
                let msg = m.recv(&world, Some(0), None).await;
                let v = msg.value.as_vec();
                assert_eq!(v.len(), n);
                assert_eq!(v[n - 1], (n - 1) as f64);
                0.0
            }
        })
    });
    // Sender blocked ≥ 1 ms (until the late receiver posted).
    assert!(
        res[0] >= 1_000_000.0,
        "rendezvous send must block: {}",
        res[0]
    );
}

#[test]
fn messages_between_same_pair_do_not_overtake() {
    let res = run_ranks(2, |m| {
        Box::pin(async move {
            let world = m.world().clone();
            if m.rank() == 0 {
                for i in 0..50u64 {
                    m.send_val(&world, 1, 9, Value::U64(i)).await;
                }
                Vec::new()
            } else {
                let mut got = Vec::new();
                for _ in 0..50 {
                    got.push(m.recv(&world, Some(0), Some(9)).await.value.as_u64());
                }
                got
            }
        })
    });
    assert_eq!(res[1], (0..50).collect::<Vec<_>>());
}

#[test]
fn any_source_any_tag_receive_all() {
    let res = run_ranks(4, |m| {
        Box::pin(async move {
            let world = m.world().clone();
            if m.rank() == 0 {
                let mut sum = 0;
                for _ in 0..3 {
                    let msg = m.recv(&world, None, None).await;
                    sum += msg.value.as_u64();
                }
                sum
            } else {
                m.send_val(&world, 0, m.rank(), Value::U64(m.rank() as u64 * 10))
                    .await;
                0
            }
        })
    });
    assert_eq!(res[0], 10 + 20 + 30);
}

#[test]
fn isend_irecv_overlap() {
    let res = run_ranks(2, |m| {
        Box::pin(async move {
            let world = m.world().clone();
            let peer = 1 - m.rank();
            // Both ranks exchange simultaneously without deadlock.
            let s = m.isend(&world, peer, 3, Value::U64(m.rank() as u64), 8);
            let r = m.irecv(&world, Some(peer), Some(3));
            let msg = r.wait().await;
            s.wait().await;
            msg.value.as_u64()
        })
    });
    assert_eq!(res, vec![1, 0]);
}

#[test]
fn barrier_synchronizes_all_sizes() {
    for n in SIZES {
        let res = run_ranks(n, move |m| {
            Box::pin(async move {
                let world = m.world().clone();
                // Rank r arrives at its own time.
                m.sim()
                    .sleep(SimDuration::micros(m.rank() as u64 * 50))
                    .await;
                m.barrier(&world).await;
                m.sim().now().as_nanos()
            })
        });
        let latest_arrival = (n as u64 - 1) * 50_000;
        for (r, &t) in res.iter().enumerate() {
            assert!(
                t >= latest_arrival,
                "n={n} rank {r} left the barrier at {t} before the last arrival"
            );
        }
    }
}

#[test]
fn bcast_delivers_root_value() {
    for n in SIZES {
        for root in [0, n - 1] {
            let res = run_ranks(n, move |m| {
                Box::pin(async move {
                    let world = m.world().clone();
                    let v = if m.rank() == root {
                        Value::vec(vec![3.25, -1.0])
                    } else {
                        Value::Unit
                    };
                    m.bcast(&world, root, v, 16).await
                })
            });
            for v in res {
                assert_eq!(v, Value::vec(vec![3.25, -1.0]), "n={n} root={root}");
            }
        }
    }
}

#[test]
fn reduce_sums_exactly() {
    for n in SIZES {
        let res = run_ranks(n, move |m| {
            Box::pin(async move {
                let world = m.world().clone();
                let contrib = Value::vec(vec![m.rank() as f64, 1.0]);
                m.reduce(&world, 0, ReduceOp::Sum, contrib, 16).await
            })
        });
        let expect = (0..n as u64).sum::<u64>() as f64;
        for (r, v) in res.iter().enumerate() {
            if r == 0 {
                let s = v.as_ref().unwrap().as_vec();
                assert_eq!(s[0], expect, "n={n}");
                assert_eq!(s[1], n as f64);
            } else {
                assert!(v.is_none(), "non-root must get None");
            }
        }
    }
}

#[test]
fn allreduce_all_ops_all_sizes() {
    for n in SIZES {
        for op in [ReduceOp::Sum, ReduceOp::Max, ReduceOp::Min] {
            let res = run_ranks(n, move |m| {
                Box::pin(async move {
                    let world = m.world().clone();
                    m.allreduce(&world, op, Value::F64(m.rank() as f64 + 1.0), 8)
                        .await
                })
            });
            let expect = match op {
                ReduceOp::Sum => (1..=n as u64).sum::<u64>() as f64,
                ReduceOp::Max => n as f64,
                ReduceOp::Min => 1.0,
                ReduceOp::Prod => unreachable!(),
            };
            for v in &res {
                assert_eq!(v.as_f64(), expect, "n={n} op={op:?}");
            }
        }
    }
}

#[test]
fn gather_collects_in_rank_order() {
    for n in SIZES {
        let res = run_ranks(n, move |m| {
            Box::pin(async move {
                let world = m.world().clone();
                m.gather(&world, 0, Value::U64(m.rank() as u64 * 7), 8)
                    .await
            })
        });
        let got = res[0].as_ref().unwrap();
        let vals: Vec<u64> = got.iter().map(|v| v.as_u64()).collect();
        assert_eq!(vals, (0..n as u64).map(|r| r * 7).collect::<Vec<_>>());
    }
}

#[test]
fn scatter_distributes_by_rank() {
    for n in SIZES {
        let res = run_ranks(n, move |m| {
            Box::pin(async move {
                let world = m.world().clone();
                let values = if m.rank() == 0 {
                    Some((0..m.size() as u64).map(|r| Value::U64(r * 3)).collect())
                } else {
                    None
                };
                m.scatter(&world, 0, values, 8).await.as_u64()
            })
        });
        assert_eq!(res, (0..n as u64).map(|r| r * 3).collect::<Vec<_>>());
    }
}

#[test]
fn allgather_everyone_sees_everything() {
    for n in SIZES {
        let res = run_ranks(n, move |m| {
            Box::pin(async move {
                let world = m.world().clone();
                m.allgather(&world, Value::U64(m.rank() as u64 + 100), 8)
                    .await
            })
        });
        for (r, blocks) in res.iter().enumerate() {
            let vals: Vec<u64> = blocks.iter().map(|v| v.as_u64()).collect();
            assert_eq!(
                vals,
                (100..100 + n as u64).collect::<Vec<_>>(),
                "rank {r} n={n}"
            );
        }
    }
}

#[test]
fn alltoall_is_a_transpose() {
    for n in SIZES {
        let res = run_ranks(n, move |m| {
            Box::pin(async move {
                let world = m.world().clone();
                let blocks = (0..m.size())
                    .map(|d| Value::U64((m.rank() as u64) * 1000 + d as u64))
                    .collect();
                m.alltoall(&world, blocks, 8).await
            })
        });
        for (r, blocks) in res.iter().enumerate() {
            for (s, v) in blocks.iter().enumerate() {
                assert_eq!(
                    v.as_u64(),
                    (s as u64) * 1000 + r as u64,
                    "n={n} rank {r} block {s}"
                );
            }
        }
    }
}

#[test]
fn comm_split_groups_by_color_and_orders_by_key() {
    let res = run_ranks(8, |m| {
        Box::pin(async move {
            let world = m.world().clone();
            let color = m.rank() % 2;
            let key = m.size() - m.rank(); // reverse order within group
            let sub = m.comm_split(&world, color, key).await;
            // Sub-communicator works: sum the *old* ranks within the group.
            let total = m
                .allreduce(&sub, ReduceOp::Sum, Value::U64(m.rank() as u64), 8)
                .await;
            (sub.size(), sub.rank(), total.as_u64())
        })
    });
    for (r, &(size, sub_rank, total)) in res.iter().enumerate() {
        assert_eq!(size, 4);
        let expect_total = if r % 2 == 0 { 2 + 4 + 6 } else { 1 + 3 + 5 + 7 };
        assert_eq!(total, expect_total, "rank {r}");
        // Reverse key ordering: highest old rank gets sub-rank 0.
        let group: Vec<u32> = (0..8u32).filter(|x| x % 2 == r as u32 % 2).collect();
        let pos = group.iter().rev().position(|&x| x == r as u32).unwrap() as u32;
        assert_eq!(sub_rank, pos, "rank {r}");
    }
}

#[test]
fn comm_dup_isolates_traffic() {
    let res = run_ranks(2, |m| {
        Box::pin(async move {
            let world = m.world().clone();
            let dup = m.comm_dup(&world).await;
            if m.rank() == 0 {
                // Same tag, different communicators: matching must keep
                // them apart.
                m.send_val(&world, 1, 5, Value::U64(111)).await;
                m.send_val(&dup, 1, 5, Value::U64(222)).await;
                0
            } else {
                // Receive on dup first — must get the dup message even
                // though the world message arrived earlier.
                let d = m.recv(&dup, Some(0), Some(5)).await.value.as_u64();
                let w = m.recv(&world, Some(0), Some(5)).await.value.as_u64();
                d * 1000 + w
            }
        })
    });
    assert_eq!(res[1], 222 * 1000 + 111);
}

#[test]
fn collectives_work_over_a_real_ib_fabric() {
    let mut sim = Simulation::new(7);
    let ctx: Sim = sim.handle();
    let ib = Rc::new(IbFabric::new(&ctx, 16));
    let wire = Rc::new(IbWire::new(ib));
    let uni = Universe::new(&ctx, wire, 16, MpiParams::default());
    let results = Rc::new(RefCell::new(Vec::new()));
    let r2 = results.clone();
    launch_world(&uni, "ib", (0..16).map(EpId).collect(), move |m| {
        let results = r2.clone();
        Box::pin(async move {
            let world = m.world().clone();
            let v = m
                .allreduce(&world, ReduceOp::Sum, Value::F64(1.0), 8 << 10)
                .await;
            results.borrow_mut().push(v.as_f64());
        })
    });
    sim.run().assert_completed();
    assert_eq!(*results.borrow(), vec![16.0; 16]);
}

#[test]
fn identical_seeds_give_identical_timings() {
    fn total_time(seed: u64) -> u64 {
        let mut sim = Simulation::new(seed);
        let ctx = sim.handle();
        let wire = Rc::new(IdealWire::new(&ctx, SimDuration::micros(1), 5e9));
        let uni = Universe::new(&ctx, wire, 8, MpiParams::default());
        launch_world(&uni, "d", (0..8).map(EpId).collect(), |m| {
            Box::pin(async move {
                let world = m.world().clone();
                for _ in 0..5 {
                    m.allreduce(&world, ReduceOp::Sum, Value::F64(1.0), 64)
                        .await;
                    m.barrier(&world).await;
                }
            })
        });
        sim.run().assert_completed();
        sim.now().as_nanos()
    }
    assert_eq!(total_time(1), total_time(1));
}

#[test]
fn traffic_stats_count_messages_and_bytes() {
    let mut sim = Simulation::new(1);
    let ctx = sim.handle();
    let wire = Rc::new(IdealWire::new(&ctx, SimDuration::micros(1), 5e9));
    let uni = Universe::new(&ctx, wire, 2, MpiParams::default());
    let u2 = uni.clone();
    launch_world(&uni, "s", vec![EpId(0), EpId(1)], move |m| {
        Box::pin(async move {
            let world = m.world().clone();
            if m.rank() == 0 {
                m.send(&world, 1, 0, Value::Unit, 1000).await;
                m.send(&world, 1, 0, Value::Unit, 100_000).await; // rendezvous
            } else {
                m.recv(&world, Some(0), None).await;
                m.recv(&world, Some(0), None).await;
            }
        })
    });
    sim.run().assert_completed();
    let t = u2.traffic();
    assert_eq!(t.messages, 2);
    assert_eq!(t.bytes, 101_000);
    assert_eq!(t.rendezvous, 1);
}

#[test]
fn scan_computes_prefix_sums() {
    for n in SIZES {
        let res = run_ranks(n, move |m| {
            Box::pin(async move {
                let world = m.world().clone();
                m.scan(&world, ReduceOp::Sum, Value::U64(m.rank() as u64 + 1), 8)
                    .await
                    .as_u64()
            })
        });
        for (r, &v) in res.iter().enumerate() {
            let expect: u64 = (1..=r as u64 + 1).sum();
            assert_eq!(v, expect, "n={n} rank {r}");
        }
    }
}

#[test]
fn reduce_scatter_block_reduces_per_slot() {
    for n in [2u32, 3, 5, 8] {
        let res = run_ranks(n, move |m| {
            Box::pin(async move {
                let world = m.world().clone();
                // Rank r contributes value (r+1)*10 + slot for each slot.
                let contribs = (0..m.size())
                    .map(|slot| Value::U64(((m.rank() + 1) * 10 + slot) as u64))
                    .collect();
                m.reduce_scatter_block(&world, ReduceOp::Sum, contribs, 8)
                    .await
                    .as_u64()
            })
        });
        for (slot, &v) in res.iter().enumerate() {
            let expect: u64 = (1..=n as u64).map(|r| r * 10 + slot as u64).sum();
            assert_eq!(v, expect, "n={n} slot {slot}");
        }
    }
}

#[test]
fn ring_allreduce_matches_recursive_doubling() {
    // Same numerical result from both algorithms; ring triggers above the
    // threshold (payload >= 256 KiB = 32768 doubles).
    let len = 40_000usize;
    let res = run_ranks(4, move |m| {
        Box::pin(async move {
            let world = m.world().clone();
            let mine: Vec<f64> = (0..len)
                .map(|i| (m.rank() as f64 + 1.0) * (i % 7) as f64)
                .collect();
            // Large payload → ring path.
            let big = m
                .allreduce(
                    &world,
                    ReduceOp::Sum,
                    Value::vec(mine.clone()),
                    8 * len as u64,
                )
                .await;
            // Force the recursive-doubling path by lying about the size.
            let small = m
                .allreduce(&world, ReduceOp::Sum, Value::vec(mine), 64)
                .await;
            let d: f64 = big
                .as_vec()
                .iter()
                .zip(small.as_vec())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            d
        })
    });
    for (r, &d) in res.iter().enumerate() {
        assert!(d < 1e-9, "rank {r}: ring vs rd max diff {d}");
    }
}

#[test]
fn ring_allreduce_uneven_lengths() {
    // Vector length not divisible by the group size.
    let len = 13usize;
    let res = run_ranks(5, move |m| {
        Box::pin(async move {
            let world = m.world().clone();
            let mine: Vec<f64> = (0..len).map(|i| i as f64 + m.rank() as f64).collect();
            m.allreduce_ring(&world, ReduceOp::Sum, mine).await
        })
    });
    // Expected: sum over ranks of (i + r) = 5i + (0+1+2+3+4).
    for v in res {
        let got = v.as_vec();
        assert_eq!(got.len(), len);
        for (i, &x) in got.iter().enumerate() {
            assert_eq!(x, 5.0 * i as f64 + 10.0);
        }
    }
}

#[test]
fn iprobe_sees_without_consuming() {
    let res = run_ranks(2, |m| {
        Box::pin(async move {
            let world = m.world().clone();
            if m.rank() == 0 {
                m.send(&world, 1, 17, Value::U64(5), 100).await;
                0
            } else {
                // Wait until the message has surely arrived.
                m.sim().sleep(SimDuration::millis(1)).await;
                let peeked = m.iprobe(&world, None, None).expect("message queued");
                assert_eq!(peeked, (0, 17, 100));
                // Probe again: still there.
                assert!(m.iprobe(&world, Some(0), Some(17)).is_some());
                assert!(m.iprobe(&world, Some(0), Some(99)).is_none());
                let msg = m.recv(&world, Some(0), Some(17)).await;
                assert!(m.iprobe(&world, None, None).is_none(), "consumed");
                msg.value.as_u64()
            }
        })
    });
    assert_eq!(res[1], 5);
}

#[test]
fn nonblocking_collectives_overlap_with_compute() {
    let res = run_ranks(4, |m| {
        Box::pin(async move {
            let world = m.world().clone();
            let t0 = m.sim().now();
            // Start an allreduce, compute "locally" meanwhile, then wait.
            let req = m.iallreduce(&world, ReduceOp::Sum, Value::F64(1.0), 1 << 20);
            m.sim().sleep(SimDuration::millis(5)).await; // local compute
            let total = req.wait().await.as_f64();
            let elapsed = (m.sim().now() - t0).as_secs_f64();
            (total, elapsed)
        })
    });
    for &(total, elapsed) in &res {
        assert_eq!(total, 4.0);
        // The 1 MiB allreduce (~1 ms of wire time) hid behind the 5 ms of
        // compute: total stays ~5 ms, not ~6.
        assert!(elapsed < 0.0056, "overlap achieved: {elapsed}");
    }
}

#[test]
fn ibarrier_and_ibcast_complete() {
    let res = run_ranks(3, |m| {
        Box::pin(async move {
            let world = m.world().clone();
            let b = m.ibarrier(&world);
            b.wait().await;
            let v = if m.rank() == 1 {
                Value::U64(99)
            } else {
                Value::Unit
            };
            let r = m.ibcast(&world, 1, v, 8);
            r.wait().await.as_u64()
        })
    });
    assert_eq!(res, vec![99, 99, 99]);
}
