//! Message payloads and reduction operators.
//!
//! The simulator separates *cost* (the byte count a message charges to the
//! fabric) from *content* (a [`Value`]). Carrying real values lets the
//! test suite verify that collectives and offloaded kernels compute
//! correct results, not just plausible timings.

use std::fmt;
use std::rc::Rc;

/// A message payload. Cloning is cheap (large payloads are `Rc`-shared).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// No content (pure-cost message).
    Unit,
    /// A single unsigned integer.
    U64(u64),
    /// A single double.
    F64(f64),
    /// A shared vector of doubles.
    VecF64(Rc<Vec<f64>>),
    /// Raw bytes.
    Bytes(Rc<Vec<u8>>),
    /// A list of values (used by gather-style collectives).
    List(Rc<Vec<Value>>),
}

impl Value {
    /// Wrap a vector of doubles.
    pub fn vec(v: Vec<f64>) -> Value {
        Value::VecF64(Rc::new(v))
    }

    /// Extract a `u64`, panicking on type mismatch.
    pub fn as_u64(&self) -> u64 {
        match self {
            Value::U64(v) => *v,
            other => panic!("expected U64, got {other:?}"),
        }
    }

    /// Extract an `f64`, panicking on type mismatch.
    pub fn as_f64(&self) -> f64 {
        match self {
            Value::F64(v) => *v,
            other => panic!("expected F64, got {other:?}"),
        }
    }

    /// Borrow the vector payload, panicking on type mismatch.
    pub fn as_vec(&self) -> &[f64] {
        match self {
            Value::VecF64(v) => v,
            other => panic!("expected VecF64, got {other:?}"),
        }
    }

    /// Borrow the list payload, panicking on type mismatch.
    pub fn as_list(&self) -> &[Value] {
        match self {
            Value::List(v) => v,
            other => panic!("expected List, got {other:?}"),
        }
    }

    /// A reasonable wire size for this payload, used when the caller does
    /// not specify an explicit byte count.
    pub fn natural_bytes(&self) -> u64 {
        match self {
            Value::Unit => 0,
            Value::U64(_) | Value::F64(_) => 8,
            Value::VecF64(v) => 8 * v.len() as u64,
            Value::Bytes(b) => b.len() as u64,
            Value::List(l) => l.iter().map(Value::natural_bytes).sum(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "()"),
            Value::U64(v) => write!(f, "{v}u64"),
            Value::F64(v) => write!(f, "{v}f64"),
            Value::VecF64(v) => write!(f, "f64[{}]", v.len()),
            Value::Bytes(b) => write!(f, "bytes[{}]", b.len()),
            Value::List(l) => write!(f, "list[{}]", l.len()),
        }
    }
}

/// Reduction operators for `reduce`/`allreduce`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Elementwise sum.
    Sum,
    /// Elementwise maximum.
    Max,
    /// Elementwise minimum.
    Min,
    /// Elementwise product.
    Prod,
}

impl ReduceOp {
    fn fold_f64(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Max => a.max(b),
            ReduceOp::Min => a.min(b),
            ReduceOp::Prod => a * b,
        }
    }

    fn fold_u64(self, a: u64, b: u64) -> u64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Max => a.max(b),
            ReduceOp::Min => a.min(b),
            ReduceOp::Prod => a * b,
        }
    }

    /// Combine two payloads elementwise. Panics on shape mismatch.
    pub fn combine(self, a: &Value, b: &Value) -> Value {
        match (a, b) {
            (Value::Unit, Value::Unit) => Value::Unit,
            (Value::U64(x), Value::U64(y)) => Value::U64(self.fold_u64(*x, *y)),
            (Value::F64(x), Value::F64(y)) => Value::F64(self.fold_f64(*x, *y)),
            (Value::VecF64(x), Value::VecF64(y)) => {
                assert_eq!(x.len(), y.len(), "reduce on mismatched vector lengths");
                Value::VecF64(Rc::new(
                    x.iter()
                        .zip(y.iter())
                        .map(|(&p, &q)| self.fold_f64(p, q))
                        .collect(),
                ))
            }
            (p, q) => panic!("cannot reduce {p:?} with {q:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combine_scalars() {
        assert_eq!(
            ReduceOp::Sum.combine(&Value::F64(1.5), &Value::F64(2.5)),
            Value::F64(4.0)
        );
        assert_eq!(
            ReduceOp::Max.combine(&Value::U64(3), &Value::U64(9)),
            Value::U64(9)
        );
        assert_eq!(
            ReduceOp::Min.combine(&Value::U64(3), &Value::U64(9)),
            Value::U64(3)
        );
        assert_eq!(
            ReduceOp::Prod.combine(&Value::F64(3.0), &Value::F64(4.0)),
            Value::F64(12.0)
        );
    }

    #[test]
    fn combine_vectors_elementwise() {
        let a = Value::vec(vec![1.0, 2.0, 3.0]);
        let b = Value::vec(vec![10.0, 20.0, 30.0]);
        assert_eq!(
            ReduceOp::Sum.combine(&a, &b),
            Value::vec(vec![11.0, 22.0, 33.0])
        );
    }

    #[test]
    #[should_panic(expected = "mismatched vector lengths")]
    fn combine_mismatched_lengths_panics() {
        let a = Value::vec(vec![1.0]);
        let b = Value::vec(vec![1.0, 2.0]);
        let _ = ReduceOp::Sum.combine(&a, &b);
    }

    #[test]
    fn natural_sizes() {
        assert_eq!(Value::Unit.natural_bytes(), 0);
        assert_eq!(Value::U64(1).natural_bytes(), 8);
        assert_eq!(Value::vec(vec![0.0; 10]).natural_bytes(), 80);
        let list = Value::List(Rc::new(vec![Value::U64(1), Value::vec(vec![0.0; 2])]));
        assert_eq!(list.natural_bytes(), 24);
    }
}
