//! Collective operations, implemented over the point-to-point layer with
//! the classic algorithms ParaStation MPI uses:
//!
//! * barrier — dissemination (⌈log₂ n⌉ rounds)
//! * bcast — binomial tree
//! * reduce — binomial tree (commutative ops)
//! * allreduce — recursive doubling for power-of-two groups, otherwise
//!   reduce + bcast
//! * gather / scatter — linear to/from root
//! * allgather — ring (n−1 steps)
//! * alltoall — pairwise rounds
//!
//! All collectives carry real [`Value`] payloads so tests can check
//! numerical correctness, and real byte counts so the fabric charges
//! realistic time.

use crate::comm::{Comm, Message, MpiCtx, TAG_INTERNAL_BASE};
use crate::value::{ReduceOp, Value};

const TAG_BARRIER: u32 = TAG_INTERNAL_BASE + 1;
const TAG_BCAST: u32 = TAG_INTERNAL_BASE + 2;
const TAG_REDUCE: u32 = TAG_INTERNAL_BASE + 3;
const TAG_ALLREDUCE: u32 = TAG_INTERNAL_BASE + 4;
const TAG_GATHER: u32 = TAG_INTERNAL_BASE + 5;
const TAG_SCATTER: u32 = TAG_INTERNAL_BASE + 6;
const TAG_ALLGATHER: u32 = TAG_INTERNAL_BASE + 7;
const TAG_ALLTOALL: u32 = TAG_INTERNAL_BASE + 8;

impl MpiCtx {
    /// Dissemination barrier over an intra-communicator.
    pub async fn barrier(&self, comm: &Comm) {
        let n = comm.size();
        if n <= 1 {
            return;
        }
        let rank = comm.rank();
        let mut k: u32 = 1;
        while k < n {
            let dst = (rank + k) % n;
            let src = (rank + n - k) % n;
            self.sendrecv(
                comm,
                dst,
                TAG_BARRIER,
                Value::Unit,
                0,
                Some(src),
                Some(TAG_BARRIER),
            )
            .await;
            k <<= 1;
        }
    }

    /// Binomial-tree broadcast; every rank returns the root's value.
    /// Non-root callers pass any placeholder value.
    pub async fn bcast(&self, comm: &Comm, root: u32, value: Value, bytes: u64) -> Value {
        let n = comm.size();
        let rank = comm.rank();
        if n <= 1 {
            return value;
        }
        let vrank = (rank + n - root) % n;
        let mut value = value;

        // Receive from the parent (the rank that differs in the lowest set bit).
        let mut mask: u32 = 1;
        while mask < n {
            if vrank & mask != 0 {
                let parent = ((vrank ^ mask) + root) % n;
                let msg = self.recv(comm, Some(parent), Some(TAG_BCAST)).await;
                value = msg.value;
                break;
            }
            mask <<= 1;
        }
        // Forward to children below the break mask.
        mask >>= 1;
        while mask > 0 {
            if vrank & (mask - 1) == 0 && vrank & mask == 0 && vrank + mask < n {
                let child = ((vrank | mask) + root) % n;
                self.send(comm, child, TAG_BCAST, value.clone(), bytes)
                    .await;
            }
            mask >>= 1;
        }
        value
    }

    /// Binomial-tree reduction to `root`; returns `Some(result)` there.
    pub async fn reduce(
        &self,
        comm: &Comm,
        root: u32,
        op: ReduceOp,
        contrib: Value,
        bytes: u64,
    ) -> Option<Value> {
        let n = comm.size();
        let rank = comm.rank();
        if n <= 1 {
            return Some(contrib);
        }
        let vrank = (rank + n - root) % n;
        let mut acc = contrib;
        let mut mask: u32 = 1;
        while mask < n {
            if vrank & mask == 0 {
                let peer_v = vrank | mask;
                if peer_v < n {
                    let peer = (peer_v + root) % n;
                    let msg = self.recv(comm, Some(peer), Some(TAG_REDUCE)).await;
                    // Combine lower-vrank ⊕ higher-vrank for determinism.
                    acc = op.combine(&acc, &msg.value);
                }
            } else {
                let parent = ((vrank ^ mask) + root) % n;
                self.send(comm, parent, TAG_REDUCE, acc.clone(), bytes)
                    .await;
                break;
            }
            mask <<= 1;
        }
        if vrank == 0 {
            Some(acc)
        } else {
            None
        }
    }

    /// Allreduce with size-adaptive algorithm selection, as in real
    /// ParaStation MPI: ring (bandwidth-optimal) for large splittable
    /// vectors, recursive doubling for power-of-two groups, and
    /// reduce-then-broadcast otherwise. Every rank returns the result.
    pub async fn allreduce(&self, comm: &Comm, op: ReduceOp, contrib: Value, bytes: u64) -> Value {
        let n = comm.size();
        if n <= 1 {
            return contrib;
        }
        // Ring pays 2(n−1) latencies to move only 2·len/n data per step:
        // worth it for big payloads that can actually be split.
        if bytes >= self.universe().params().allreduce_ring_threshold {
            if let Value::VecF64(v) = &contrib {
                if v.len() >= n as usize {
                    return self.allreduce_ring(comm, op, v.as_ref().clone()).await;
                }
            }
        }
        if n.is_power_of_two() {
            let rank = comm.rank();
            let mut acc = contrib;
            let mut mask: u32 = 1;
            while mask < n {
                let partner = rank ^ mask;
                let msg = self
                    .sendrecv(
                        comm,
                        partner,
                        TAG_ALLREDUCE,
                        acc.clone(),
                        bytes,
                        Some(partner),
                        Some(TAG_ALLREDUCE),
                    )
                    .await;
                // Deterministic order: lower rank's value on the left.
                acc = if rank < partner {
                    op.combine(&acc, &msg.value)
                } else {
                    op.combine(&msg.value, &acc)
                };
                mask <<= 1;
            }
            acc
        } else {
            let partial = self.reduce(comm, 0, op, contrib, bytes).await;
            self.bcast(comm, 0, partial.unwrap_or(Value::Unit), bytes)
                .await
        }
    }

    /// Linear gather; `Some(values-by-rank)` at the root.
    pub async fn gather(
        &self,
        comm: &Comm,
        root: u32,
        contrib: Value,
        bytes: u64,
    ) -> Option<Vec<Value>> {
        let n = comm.size();
        let rank = comm.rank();
        if rank == root {
            // Receive from each specific rank (not ANY_SOURCE): this keeps
            // back-to-back gathers on one communicator from stealing each
            // other's contributions.
            let mut reqs = Vec::with_capacity(n as usize - 1);
            for r in 0..n {
                if r != root {
                    reqs.push((r, self.irecv(comm, Some(r), Some(TAG_GATHER))));
                }
            }
            let mut out: Vec<Option<Value>> = vec![None; n as usize];
            out[rank as usize] = Some(contrib);
            for (r, req) in reqs {
                out[r as usize] = Some(req.wait().await.value);
            }
            Some(
                out.into_iter()
                    .map(|v| v.expect("every rank reported"))
                    .collect(),
            )
        } else {
            self.send(comm, root, TAG_GATHER, contrib, bytes).await;
            None
        }
    }

    /// Linear scatter; the root passes one value per rank.
    pub async fn scatter(
        &self,
        comm: &Comm,
        root: u32,
        values: Option<Vec<Value>>,
        bytes_each: u64,
    ) -> Value {
        let n = comm.size();
        let rank = comm.rank();
        if rank == root {
            let values = values.expect("root must provide values");
            assert_eq!(values.len(), n as usize, "one value per rank");
            let mut mine = Value::Unit;
            for (r, v) in values.into_iter().enumerate() {
                if r as u32 == rank {
                    mine = v;
                } else {
                    self.send(comm, r as u32, TAG_SCATTER, v, bytes_each).await;
                }
            }
            mine
        } else {
            self.recv(comm, Some(root), Some(TAG_SCATTER)).await.value
        }
    }

    /// Ring allgather; every rank returns all contributions indexed by rank.
    pub async fn allgather(&self, comm: &Comm, contrib: Value, bytes: u64) -> Vec<Value> {
        let n = comm.size();
        let rank = comm.rank();
        let mut out: Vec<Option<Value>> = vec![None; n as usize];
        out[rank as usize] = Some(contrib.clone());
        if n == 1 {
            return vec![contrib];
        }
        let right = (rank + 1) % n;
        let left = (rank + n - 1) % n;
        let mut carry = contrib;
        for step in 0..n - 1 {
            let msg: Message = self
                .sendrecv(
                    comm,
                    right,
                    TAG_ALLGATHER,
                    carry,
                    bytes,
                    Some(left),
                    Some(TAG_ALLGATHER),
                )
                .await;
            let origin = (rank + n - 1 - step) % n;
            out[origin as usize] = Some(msg.value.clone());
            carry = msg.value;
        }
        out.into_iter()
            .map(|v| v.expect("ring visits every block"))
            .collect()
    }

    /// Pairwise alltoall; `values[r]` goes to rank `r`, result`[r]` came
    /// from rank `r`.
    pub async fn alltoall(&self, comm: &Comm, values: Vec<Value>, bytes_each: u64) -> Vec<Value> {
        let n = comm.size();
        let rank = comm.rank();
        assert_eq!(values.len(), n as usize, "one block per destination");
        let mut out: Vec<Option<Value>> = vec![None; n as usize];
        out[rank as usize] = Some(values[rank as usize].clone());
        for round in 1..n {
            let dst = (rank + round) % n;
            let src = (rank + n - round) % n;
            let msg = self
                .sendrecv(
                    comm,
                    dst,
                    TAG_ALLTOALL,
                    values[dst as usize].clone(),
                    bytes_each,
                    Some(src),
                    Some(TAG_ALLTOALL),
                )
                .await;
            out[src as usize] = Some(msg.value);
        }
        out.into_iter()
            .map(|v| v.expect("all rounds completed"))
            .collect()
    }

    /// Collective communicator split (`MPI_Comm_split`): ranks with equal
    /// `color` form a new intra-communicator, ordered by `(key, rank)`.
    pub async fn comm_split(&self, comm: &Comm, color: u32, key: u32) -> Comm {
        // Exchange (color, key) — the real collective agreement traffic.
        let mine = Value::vec(vec![color as f64, key as f64]);
        let all = self.allgather(comm, mine, 16).await;
        let mut groups: Vec<(u32, u32, u32)> = Vec::with_capacity(all.len()); // (color,key,rank)
        for (r, v) in all.iter().enumerate() {
            let s = v.as_vec();
            groups.push((s[0] as u32, s[1] as u32, r as u32));
        }
        // Members of my color, ordered by (key, old rank).
        let mut mine_group: Vec<(u32, u32)> = groups
            .iter()
            .filter(|g| g.0 == color)
            .map(|g| (g.1, g.2))
            .collect();
        mine_group.sort();
        let members: Vec<_> = mine_group.iter().map(|&(_, r)| comm.local_ep(r)).collect();
        let my_rank = mine_group
            .iter()
            .position(|&(_, r)| r == comm.rank())
            .expect("caller is in its own color group") as u32;
        // Context agreement: derived deterministically, salted by color so
        // sibling groups get distinct contexts.
        let context = comm.derive_context(color as u64);
        Comm::intra(context, std::rc::Rc::new(members), my_rank)
    }

    /// Communicator duplication (`MPI_Comm_dup`).
    pub async fn comm_dup(&self, comm: &Comm) -> Comm {
        self.comm_split(comm, 0, comm.rank()).await
    }

    /// Merge an inter-communicator into an intra-communicator
    /// (`MPI_Intercomm_merge`). `high` puts the local group second.
    pub fn intercomm_merge(&self, inter: &Comm, high: bool) -> Comm {
        let local = inter.members();
        let remote = inter.remote_members().expect("merge needs an intercomm");
        let (first, second) = if high {
            (remote.as_slice(), local.as_slice())
        } else {
            (local.as_slice(), remote.as_slice())
        };
        let mut members = Vec::with_capacity(first.len() + second.len());
        members.extend_from_slice(first);
        members.extend_from_slice(second);
        let offset = if high { remote.len() as u32 } else { 0 };
        let my_rank = offset + inter.rank();
        // Both sides derive the same context from the shared inter context.
        let context = inter.derive_context(0x4D45_5247); // "MERG"
        Comm::intra(context, std::rc::Rc::new(members), my_rank)
    }
}

// ---------------------------------------------------------------------------
// Extended collectives: ring allreduce, scan, reduce_scatter
// ---------------------------------------------------------------------------

const TAG_RING_RS: u32 = TAG_INTERNAL_BASE + 9;
const TAG_RING_AG: u32 = TAG_INTERNAL_BASE + 10;
const TAG_SCAN: u32 = TAG_INTERNAL_BASE + 11;
const TAG_RSCAT: u32 = TAG_INTERNAL_BASE + 12;

/// Split `v` into `n` nearly-equal chunks (first `len % n` chunks one
/// element longer).
fn split_blocks(v: &[f64], n: usize) -> Vec<Vec<f64>> {
    let per = v.len() / n;
    let extra = v.len() % n;
    let mut out = Vec::with_capacity(n);
    let mut off = 0;
    for i in 0..n {
        let len = per + usize::from(i < extra);
        out.push(v[off..off + len].to_vec());
        off += len;
    }
    out
}

impl MpiCtx {
    /// Ring allreduce (reduce-scatter + allgather): bandwidth-optimal for
    /// large vectors, `2(n−1)` steps of `len/n` elements. Chosen
    /// automatically by [`MpiCtx::allreduce`] above the universe's
    /// `allreduce_ring_threshold` when the payload is a `VecF64`.
    pub async fn allreduce_ring(&self, comm: &Comm, op: ReduceOp, contrib: Vec<f64>) -> Value {
        let n = comm.size() as usize;
        let rank = comm.rank() as usize;
        if n <= 1 {
            return Value::vec(contrib);
        }
        let total_len = contrib.len();
        let mut blocks = split_blocks(&contrib, n);
        let right = ((rank + 1) % n) as u32;
        let left = ((rank + n - 1) % n) as u32;
        let block_bytes = (8 * total_len / n).max(1) as u64;

        // Phase 1: reduce-scatter. After n-1 steps, block (rank+1)%n is
        // fully reduced at this rank.
        for s in 0..n - 1 {
            let send_idx = (rank + n - s) % n;
            let recv_idx = (rank + n - s - 1) % n;
            let msg = self
                .sendrecv(
                    comm,
                    right,
                    TAG_RING_RS,
                    Value::vec(blocks[send_idx].clone()),
                    block_bytes,
                    Some(left),
                    Some(TAG_RING_RS),
                )
                .await;
            let incoming = msg.value;
            // Deterministic order: combine in ascending origin-rank order.
            // The incoming partial already aggregates lower-origin ranks.
            blocks[recv_idx] = match op.combine(&incoming, &Value::vec(blocks[recv_idx].clone())) {
                Value::VecF64(v) => v.as_ref().clone(),
                other => panic!("ring allreduce expects vectors, got {other}"),
            };
        }
        // Phase 2: allgather of the reduced blocks.
        for s in 0..n - 1 {
            let send_idx = (rank + 1 + n - s) % n;
            let recv_idx = (rank + n - s) % n;
            let msg = self
                .sendrecv(
                    comm,
                    right,
                    TAG_RING_AG,
                    Value::vec(blocks[send_idx].clone()),
                    block_bytes,
                    Some(left),
                    Some(TAG_RING_AG),
                )
                .await;
            blocks[recv_idx] = msg.value.as_vec().to_vec();
        }
        let mut out = Vec::with_capacity(total_len);
        for b in blocks {
            out.extend_from_slice(&b);
        }
        Value::vec(out)
    }

    /// Inclusive prefix reduction (`MPI_Scan`): rank r returns the
    /// reduction of contributions from ranks `0..=r`.
    pub async fn scan(&self, comm: &Comm, op: ReduceOp, contrib: Value, bytes: u64) -> Value {
        let rank = comm.rank();
        let n = comm.size();
        let mut acc = contrib;
        if rank > 0 {
            let msg = self.recv(comm, Some(rank - 1), Some(TAG_SCAN)).await;
            acc = op.combine(&msg.value, &acc);
        }
        if rank + 1 < n {
            self.send(comm, rank + 1, TAG_SCAN, acc.clone(), bytes)
                .await;
        }
        acc
    }

    /// Block reduce-scatter (`MPI_Reduce_scatter_block`): every rank
    /// contributes one value per rank; rank r returns the reduction of
    /// everyone's r-th contribution. Implemented as alltoall + local
    /// combine (pairwise-exchange cost model).
    pub async fn reduce_scatter_block(
        &self,
        comm: &Comm,
        op: ReduceOp,
        contribs: Vec<Value>,
        bytes_each: u64,
    ) -> Value {
        let n = comm.size();
        assert_eq!(contribs.len(), n as usize, "one contribution per rank");
        let _ = TAG_RSCAT;
        let mine = self.alltoall(comm, contribs, bytes_each).await;
        let mut it = mine.into_iter();
        let mut acc = it.next().expect("group is non-empty");
        for v in it {
            acc = op.combine(&acc, &v);
        }
        acc
    }
}

// ---------------------------------------------------------------------------
// Nonblocking collectives (MPI_I*): spawned as background operations.
// MPI semantics apply: all ranks must call them in the same order per
// communicator, and the matching blocking completion is `Request::wait`.
// ---------------------------------------------------------------------------

impl MpiCtx {
    /// Nonblocking barrier (`MPI_Ibarrier`).
    pub fn ibarrier(&self, comm: &Comm) -> crate::comm::Request<()> {
        let me = self.clone();
        let comm = comm.clone();
        crate::comm::Request::spawned(self.sim().spawn("ibarrier", async move {
            me.barrier(&comm).await;
        }))
    }

    /// Nonblocking allreduce (`MPI_Iallreduce`).
    pub fn iallreduce(
        &self,
        comm: &Comm,
        op: ReduceOp,
        contrib: Value,
        bytes: u64,
    ) -> crate::comm::Request<Value> {
        let me = self.clone();
        let comm = comm.clone();
        crate::comm::Request::spawned(self.sim().spawn("iallreduce", async move {
            me.allreduce(&comm, op, contrib, bytes).await
        }))
    }

    /// Nonblocking broadcast (`MPI_Ibcast`).
    pub fn ibcast(
        &self,
        comm: &Comm,
        root: u32,
        value: Value,
        bytes: u64,
    ) -> crate::comm::Request<Value> {
        let me = self.clone();
        let comm = comm.clone();
        crate::comm::Request::spawned(self.sim().spawn("ibcast", async move {
            me.bcast(&comm, root, value, bytes).await
        }))
    }
}
