//! The [`Wire`] abstraction: how MPI endpoints reach each other.
//!
//! ParaStation MPI runs unchanged over different interconnects (slide 28:
//! "works out of the box on the Cluster part, currently ported to the
//! Booster part"). The simulator mirrors that: the MPI layer only sees a
//! `Wire` that can carry bytes between *endpoint* indices; concrete wires
//! map endpoints onto fabric nodes. The cluster-booster bridge in
//! `deep-cbp` is just another `Wire` whose routes traverse two fabrics.

use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;

use deep_fabric::{ExtollFabric, IbFabric, LinkFailure, NodeId, TransferStats};

/// Endpoint index within one MPI universe (a "global rank id" / psid).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EpId(pub u32);

/// Boxed local future, used to keep the trait object-safe.
pub type LocalBoxFuture<'a, T> = Pin<Box<dyn Future<Output = T> + 'a>>;

/// Something that can carry payloads between endpoints.
pub trait Wire {
    /// Move `bytes` from endpoint `src` to endpoint `dst`; resolves when
    /// the last byte (plus NIC overheads) has arrived.
    fn transfer(
        &self,
        src: EpId,
        dst: EpId,
        bytes: u64,
    ) -> LocalBoxFuture<'_, Result<TransferStats, LinkFailure>>;

    /// Short name for traces and reports.
    fn name(&self) -> &str;
}

/// A wire over an InfiniBand fabric; endpoint i ↦ host i.
pub struct IbWire {
    fabric: Rc<IbFabric>,
}

impl IbWire {
    /// Wrap a fabric.
    pub fn new(fabric: Rc<IbFabric>) -> Self {
        IbWire { fabric }
    }
}

impl Wire for IbWire {
    fn transfer(
        &self,
        src: EpId,
        dst: EpId,
        bytes: u64,
    ) -> LocalBoxFuture<'_, Result<TransferStats, LinkFailure>> {
        Box::pin(async move { self.fabric.send(NodeId(src.0), NodeId(dst.0), bytes).await })
    }

    fn name(&self) -> &str {
        "ib"
    }
}

/// A wire over an EXTOLL fabric; endpoint i ↦ torus node i. Uses VELO for
/// small messages and RMA for bulk, like the ported ParaStation MPI.
pub struct ExtollWire {
    fabric: Rc<ExtollFabric>,
}

impl ExtollWire {
    /// Wrap a fabric.
    pub fn new(fabric: Rc<ExtollFabric>) -> Self {
        ExtollWire { fabric }
    }
}

impl Wire for ExtollWire {
    fn transfer(
        &self,
        src: EpId,
        dst: EpId,
        bytes: u64,
    ) -> LocalBoxFuture<'_, Result<TransferStats, LinkFailure>> {
        Box::pin(async move {
            self.fabric
                .send_auto(NodeId(src.0), NodeId(dst.0), bytes)
                .await
        })
    }

    fn name(&self) -> &str {
        "extoll"
    }
}

/// An idealised wire with fixed latency and bandwidth and no contention
/// *between pairs*: the reference point used by unit tests and analytic
/// validation. Deliveries between the same ordered endpoint pair are
/// serialised (a later message never overtakes an earlier one), because
/// MPI's non-overtaking guarantee depends on the transport preserving
/// per-pair FIFO order.
pub struct IdealWire {
    sim: deep_simkit::Sim,
    latency: deep_simkit::SimDuration,
    bandwidth_bps: f64,
    last_delivery: std::cell::RefCell<std::collections::HashMap<(u32, u32), deep_simkit::SimTime>>,
}

impl IdealWire {
    /// Build an ideal wire.
    pub fn new(
        sim: &deep_simkit::Sim,
        latency: deep_simkit::SimDuration,
        bandwidth_bps: f64,
    ) -> Self {
        IdealWire {
            sim: sim.clone(),
            latency,
            bandwidth_bps,
            last_delivery: std::cell::RefCell::new(std::collections::HashMap::new()),
        }
    }
}

impl Wire for IdealWire {
    fn transfer(
        &self,
        src: EpId,
        dst: EpId,
        bytes: u64,
    ) -> LocalBoxFuture<'_, Result<TransferStats, LinkFailure>> {
        Box::pin(async move {
            let start = self.sim.now();
            let ser = deep_simkit::SimDuration::from_secs_f64(bytes as f64 / self.bandwidth_bps);
            let mut completion = start + self.latency + ser;
            {
                let mut last = self.last_delivery.borrow_mut();
                let slot = last
                    .entry((src.0, dst.0))
                    .or_insert(deep_simkit::SimTime::ZERO);
                if completion < *slot {
                    completion = *slot; // FIFO per ordered pair
                }
                *slot = completion;
            }
            self.sim.sleep_until(completion).await;
            Ok(TransferStats {
                elapsed: self.sim.now() - start,
                hops: 1,
                bytes,
                retransmissions: 0,
            })
        })
    }

    fn name(&self) -> &str {
        "ideal"
    }
}
