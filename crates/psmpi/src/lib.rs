//! # deep-psmpi — a ParaStation-MPI analogue on simulated fabrics
//!
//! A functional MPI subset whose ranks are `deep-simkit` processes and
//! whose messages ride `deep-fabric` interconnects:
//!
//! * point-to-point with eager/rendezvous protocols and MPI matching
//!   semantics (source/tag wildcards, non-overtaking per pair);
//! * communicators: intra, inter, `comm_split`/`comm_dup`/merge;
//! * the classic collectives (barrier, bcast, reduce, allreduce, gather,
//!   scatter, allgather, alltoall) carrying *real* values, so correctness
//!   is testable, with real byte counts, so time is meaningful;
//! * **`comm_spawn`** — the paper's global-MPI mechanism: a parent world
//!   collectively spawns a child world from a named endpoint pool and
//!   receives an inter-communicator to it (slides 21, 26–29);
//! * analytic LogGP models of the same collectives for rank counts beyond
//!   direct simulation (experiment F09).
//!
//! The fabric is abstracted behind [`wire::Wire`], which is how the
//! cluster-booster bridge (`deep-cbp`) slots underneath unchanged MPI
//! code — mirroring how ParaStation MPI gained a booster port.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytic;
pub mod collectives;
pub mod comm;
pub mod spawn;
pub mod universe;
pub mod value;
pub mod wire;

pub use analytic::NetModel;
pub use comm::{wait_all, Comm, Message, MpiCtx, Request};
pub use spawn::{launch_world, SpawnError};
pub use universe::{Envelope, MpiParams, Pattern, TrafficStats, Universe};
pub use value::{ReduceOp, Value};
pub use wire::{EpId, ExtollWire, IbWire, IdealWire, LocalBoxFuture, Wire};
