//! Communicators and the point-to-point layer.
//!
//! [`Comm`] mirrors MPI semantics: an intra-communicator is an ordered
//! group of endpoints with a private matching context; an
//! inter-communicator (the product of `MPI_Comm_spawn`, slide 26) adds a
//! remote group — point-to-point ranks then address the *remote* side.
//!
//! [`MpiCtx`] is what a rank's application code holds: its endpoint, its
//! `MPI_COMM_WORLD`, and (for spawned worlds) the parent inter-communicator.

use std::cell::Cell;
use std::rc::Rc;

use deep_simkit::{OneShot, Sim, SimDuration};

use crate::universe::{EnvKind, Envelope, Pattern, Universe};
use crate::value::Value;
use crate::wire::EpId;

/// Tag value reserved for internal protocol messages.
pub const TAG_INTERNAL_BASE: u32 = 0x7000_0000;

/// A received message.
#[derive(Debug, Clone)]
pub struct Message {
    /// Sender's rank (in the sender's group of the communicator).
    pub src: u32,
    /// Message tag.
    pub tag: u32,
    /// Payload.
    pub value: Value,
    /// Payload bytes charged on the wire.
    pub bytes: u64,
}

/// An MPI communicator (intra or inter).
#[derive(Clone, Debug)]
pub struct Comm {
    context: u64,
    members: Rc<Vec<EpId>>,
    my_rank: u32,
    remote: Option<Rc<Vec<EpId>>>,
    /// Per-rank derivation counter for deterministic derived contexts.
    derive_seq: Rc<Cell<u64>>,
}

impl Comm {
    /// Build an intra-communicator.
    pub fn intra(context: u64, members: Rc<Vec<EpId>>, my_rank: u32) -> Comm {
        debug_assert!((my_rank as usize) < members.len());
        Comm {
            context,
            members,
            my_rank,
            remote: None,
            derive_seq: Rc::new(Cell::new(0)),
        }
    }

    /// Build an inter-communicator (local group + remote group).
    pub fn inter(context: u64, local: Rc<Vec<EpId>>, my_rank: u32, remote: Rc<Vec<EpId>>) -> Comm {
        Comm {
            context,
            members: local,
            my_rank,
            remote: Some(remote),
            derive_seq: Rc::new(Cell::new(0)),
        }
    }

    /// This rank within the (local) group.
    pub fn rank(&self) -> u32 {
        self.my_rank
    }

    /// Size of the local group.
    pub fn size(&self) -> u32 {
        self.members.len() as u32
    }

    /// Size of the remote group (inter-communicators only).
    pub fn remote_size(&self) -> u32 {
        self.remote.as_ref().map_or(0, |r| r.len() as u32)
    }

    /// True for inter-communicators.
    pub fn is_inter(&self) -> bool {
        self.remote.is_some()
    }

    /// Matching context id.
    pub fn context(&self) -> u64 {
        self.context
    }

    /// Local group members.
    pub fn members(&self) -> &Rc<Vec<EpId>> {
        &self.members
    }

    /// Remote group members, if inter.
    pub fn remote_members(&self) -> Option<&Rc<Vec<EpId>>> {
        self.remote.as_ref()
    }

    /// The endpoint that p2p rank `r` addresses: remote group on an
    /// inter-communicator, local group otherwise.
    pub fn peer_ep(&self, r: u32) -> EpId {
        match &self.remote {
            Some(remote) => remote[r as usize],
            None => self.members[r as usize],
        }
    }

    /// Endpoint of local-group rank `r`.
    pub fn local_ep(&self, r: u32) -> EpId {
        self.members[r as usize]
    }

    /// Deterministically derive a context id that every member derives
    /// identically (used where real MPI hides the agreement inside the
    /// collective). `salt` must be equal across members.
    pub fn derive_context(&self, salt: u64) -> u64 {
        let seq = self.derive_seq.get();
        self.derive_seq.set(seq + 1);
        // SplitMix64-style mixing of (context, seq, salt).
        let mut x = self
            .context
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(seq)
            .wrapping_add(salt.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (x ^ (x >> 31)) | (1 << 63) // high bit marks derived contexts
    }
}

/// The per-rank MPI handle: what `MPI_Init` would give you.
#[derive(Clone)]
pub struct MpiCtx {
    uni: Rc<Universe>,
    ep: EpId,
    world: Comm,
    parent: Option<Comm>,
}

impl MpiCtx {
    /// Construct a rank context (used by launchers and `comm_spawn`).
    pub fn new(uni: Rc<Universe>, ep: EpId, world: Comm, parent: Option<Comm>) -> MpiCtx {
        MpiCtx {
            uni,
            ep,
            world,
            parent,
        }
    }

    /// The universe this rank lives in.
    pub fn universe(&self) -> &Rc<Universe> {
        &self.uni
    }

    /// The simulation handle.
    pub fn sim(&self) -> &Sim {
        self.uni.sim()
    }

    /// This rank's endpoint id (its "psid").
    pub fn ep(&self) -> EpId {
        self.ep
    }

    /// This rank's `MPI_COMM_WORLD`.
    pub fn world(&self) -> &Comm {
        &self.world
    }

    /// Rank within the world.
    pub fn rank(&self) -> u32 {
        self.world.rank()
    }

    /// World size.
    pub fn size(&self) -> u32 {
        self.world.size()
    }

    /// Inter-communicator to the parent world (`MPI_Comm_get_parent`).
    pub fn parent(&self) -> Option<&Comm> {
        self.parent.as_ref()
    }

    // -- point-to-point ----------------------------------------------------

    /// Standard-mode send: eager below the threshold (returns after the
    /// local copy), rendezvous above it (returns when the payload has been
    /// pulled by the receiver).
    pub async fn send(&self, comm: &Comm, dst: u32, tag: u32, value: Value, bytes: u64) {
        let p = self.uni.params;
        self.sim().sleep(p.sw_overhead).await;
        let dst_ep = comm.peer_ep(dst);
        {
            let mut st = self.uni.stats.borrow_mut();
            st.messages += 1;
            st.bytes += bytes;
        }
        let wire_bytes = bytes + p.header_bytes;
        if bytes <= p.eager_threshold {
            // Eager: pay the local copy, then fire-and-forget the wire leg.
            let copy = SimDuration::from_secs_f64(bytes as f64 / p.copy_bw_bps);
            self.sim().sleep(copy).await;
            let uni = self.uni.clone();
            let env = Envelope {
                src_ep: self.ep,
                src_rank: comm.rank(),
                context: comm.context(),
                tag,
                value,
                bytes,
                kind: EnvKind::Eager,
            };
            let src_ep = self.ep;
            self.sim().spawn("eager-xfer", async move {
                uni.wire
                    .transfer(src_ep, dst_ep, wire_bytes)
                    .await
                    .expect("fabric failure in eager transfer");
                uni.deposit(dst_ep, env);
            });
        } else {
            // Rendezvous: RTS → CTS → data.
            self.uni.stats.borrow_mut().rendezvous += 1;
            let cts: OneShot<()> = OneShot::new(self.sim());
            let done: OneShot<()> = OneShot::new(self.sim());
            let env = Envelope {
                src_ep: self.ep,
                src_rank: comm.rank(),
                context: comm.context(),
                tag,
                value,
                bytes,
                kind: EnvKind::Rts {
                    cts: cts.clone(),
                    done: done.clone(),
                },
            };
            self.uni
                .wire
                .transfer(self.ep, dst_ep, p.header_bytes)
                .await
                .expect("fabric failure in RTS");
            self.uni.deposit(dst_ep, env);
            cts.wait().await;
            self.uni
                .wire
                .transfer(self.ep, dst_ep, wire_bytes)
                .await
                .expect("fabric failure in rendezvous data");
            done.set(());
        }
    }

    /// Send with the payload's natural size.
    pub async fn send_val(&self, comm: &Comm, dst: u32, tag: u32, value: Value) {
        let bytes = value.natural_bytes();
        self.send(comm, dst, tag, value, bytes).await;
    }

    /// Blocking receive. `src`/`tag` of `None` are the wildcards.
    pub async fn recv(&self, comm: &Comm, src: Option<u32>, tag: Option<u32>) -> Message {
        let p = self.uni.params;
        self.sim().sleep(p.sw_overhead).await;
        let pattern = Pattern {
            context: comm.context(),
            src,
            tag,
        };
        let env = self.uni.match_recv(self.ep, pattern).await;
        match env.kind {
            EnvKind::Eager => Message {
                src: env.src_rank,
                tag: env.tag,
                value: env.value,
                bytes: env.bytes,
            },
            EnvKind::Rts { cts, done } => {
                // Clear-to-send control message back to the sender.
                self.uni
                    .wire
                    .transfer(self.ep, env.src_ep, p.header_bytes)
                    .await
                    .expect("fabric failure in CTS");
                cts.set(());
                done.wait().await;
                Message {
                    src: env.src_rank,
                    tag: env.tag,
                    value: env.value,
                    bytes: env.bytes,
                }
            }
        }
    }

    /// Nonblocking probe (`MPI_Iprobe`): is a matching message queued?
    /// Returns `(src_rank, tag, bytes)` without consuming the message.
    pub fn iprobe(
        &self,
        comm: &Comm,
        src: Option<u32>,
        tag: Option<u32>,
    ) -> Option<(u32, u32, u64)> {
        let pattern = Pattern {
            context: comm.context(),
            src,
            tag,
        };
        self.uni.peek_unexpected(self.ep, &pattern)
    }

    /// Nonblocking send; await the returned request to complete it.
    pub fn isend(&self, comm: &Comm, dst: u32, tag: u32, value: Value, bytes: u64) -> Request<()> {
        let me = self.clone();
        let comm = comm.clone();
        Request {
            handle: self.sim().spawn("isend", async move {
                me.send(&comm, dst, tag, value, bytes).await;
            }),
        }
    }

    /// Nonblocking receive; await the returned request for the message.
    pub fn irecv(&self, comm: &Comm, src: Option<u32>, tag: Option<u32>) -> Request<Message> {
        let me = self.clone();
        let comm = comm.clone();
        Request {
            handle: self
                .sim()
                .spawn("irecv", async move { me.recv(&comm, src, tag).await }),
        }
    }

    /// Combined send+receive (deadlock-free exchange).
    #[allow(clippy::too_many_arguments)] // mirrors the MPI_Sendrecv signature
    pub async fn sendrecv(
        &self,
        comm: &Comm,
        dst: u32,
        send_tag: u32,
        value: Value,
        bytes: u64,
        src: Option<u32>,
        recv_tag: Option<u32>,
    ) -> Message {
        let req = self.isend(comm, dst, send_tag, value, bytes);
        let msg = self.recv(comm, src, recv_tag).await;
        req.wait().await;
        msg
    }
}

/// A nonblocking-operation handle (`MPI_Request`).
pub struct Request<T: 'static> {
    handle: deep_simkit::ProcHandle<T>,
}

impl<T: 'static> Request<T> {
    /// Wrap an already-spawned background operation (used by the
    /// nonblocking collectives).
    pub(crate) fn spawned(handle: deep_simkit::ProcHandle<T>) -> Request<T> {
        Request { handle }
    }

    /// Wait for completion (`MPI_Wait`).
    pub async fn wait(self) -> T {
        self.handle.await.expect("request process was killed")
    }

    /// Completion test (`MPI_Test`).
    pub fn is_complete(&self) -> bool {
        self.handle.is_finished()
    }
}

/// Wait for all requests (`MPI_Waitall`).
pub async fn wait_all<T: 'static>(reqs: Vec<Request<T>>) -> Vec<T> {
    let mut out = Vec::with_capacity(reqs.len());
    for r in reqs {
        out.push(r.wait().await);
    }
    out
}
