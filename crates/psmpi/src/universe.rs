//! The MPI *universe*: every endpoint (process slot) a ParaStation daemon
//! could host, their mailboxes, the message-matching engine, and the
//! eager/rendezvous point-to-point protocol.
//!
//! One universe spans **all** fabrics of a DEEP machine — cluster ranks,
//! booster ranks and booster-interface slots — which is exactly what lets
//! `MPI_Comm_spawn` wire an inter-communicator between two worlds
//! (slide 26: the children get their own `MPI_COMM_WORLD`).

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

use deep_simkit::{OneShot, Sim, SimDuration};

use crate::value::Value;
use crate::wire::{EpId, LocalBoxFuture, Wire};

/// Wildcard-capable matching pattern (MPI_ANY_SOURCE / MPI_ANY_TAG).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pattern {
    /// Matching context (communicator id).
    pub context: u64,
    /// Sender's rank within the communicator, `None` for ANY_SOURCE.
    pub src: Option<u32>,
    /// Message tag, `None` for ANY_TAG.
    pub tag: Option<u32>,
}

/// Protocol role of an envelope.
#[derive(Clone)]
pub enum EnvKind {
    /// Eager: payload travelled with the envelope.
    Eager,
    /// Rendezvous request-to-send; the payload follows after clear-to-send.
    Rts {
        /// Fired by the receiver once it is ready for the payload.
        cts: OneShot<()>,
        /// Fired by the sender once the payload has fully arrived.
        done: OneShot<()>,
    },
}

/// A message envelope as seen by the matching engine.
#[derive(Clone)]
pub struct Envelope {
    /// Sending endpoint.
    pub src_ep: EpId,
    /// Sender's rank within the communicator.
    pub src_rank: u32,
    /// Communicator context id.
    pub context: u64,
    /// Message tag.
    pub tag: u32,
    /// Payload content.
    pub value: Value,
    /// Payload size charged to the fabric.
    pub bytes: u64,
    /// Protocol role.
    pub kind: EnvKind,
}

impl Envelope {
    fn matches(&self, p: &Pattern) -> bool {
        self.context == p.context
            && p.src.is_none_or(|s| s == self.src_rank)
            && p.tag.is_none_or(|t| t == self.tag)
    }
}

struct PostedRecv {
    pattern: Pattern,
    slot: OneShot<Envelope>,
}

#[derive(Default)]
struct Mailbox {
    unexpected: VecDeque<Envelope>,
    posted: VecDeque<PostedRecv>,
}

/// A function that can be launched by `comm_spawn` ("the command string").
pub type AppFn = Rc<dyn Fn(crate::comm::MpiCtx) -> LocalBoxFuture<'static, ()>>;

/// Protocol/cost parameters of the MPI implementation.
#[derive(Debug, Clone, Copy)]
pub struct MpiParams {
    /// Messages at or below this size use the eager protocol.
    pub eager_threshold: u64,
    /// Envelope/header bytes added to every wire transfer.
    pub header_bytes: u64,
    /// Local memcpy bandwidth for eager buffer copies.
    pub copy_bw_bps: f64,
    /// Fixed software cost of posting a send or recv.
    pub sw_overhead: SimDuration,
    /// Process-manager cost per spawned process.
    pub spawn_per_proc: SimDuration,
    /// Fixed process-manager cost per spawn call.
    pub spawn_base: SimDuration,
    /// Allreduce payloads at or above this size use the ring
    /// (reduce-scatter + allgather) algorithm instead of recursive
    /// doubling, when the payload is a splittable vector.
    pub allreduce_ring_threshold: u64,
}

impl Default for MpiParams {
    fn default() -> Self {
        MpiParams {
            eager_threshold: 16 * 1024,
            header_bytes: 64,
            copy_bw_bps: 12e9,
            sw_overhead: SimDuration::nanos(120),
            spawn_per_proc: SimDuration::micros(150),
            spawn_base: SimDuration::millis(2),
            allreduce_ring_threshold: 256 * 1024,
        }
    }
}

/// Traffic counters, updated by the p2p layer.
#[derive(Debug, Default, Clone)]
pub struct TrafficStats {
    /// Point-to-point messages sent.
    pub messages: u64,
    /// Payload bytes sent.
    pub bytes: u64,
    /// Rendezvous handshakes performed.
    pub rendezvous: u64,
}

pub(crate) struct UniverseInner {
    mailboxes: Vec<Mailbox>,
    // Ordered maps: app names are registered and looked up by key only,
    // but spawn/pool bookkeeping feeds trace-visible behaviour — keep
    // any future iteration deterministic (deep-lint rule D1).
    pub(crate) registry: BTreeMap<String, AppFn>,
    pub(crate) pools: BTreeMap<String, Vec<EpId>>,
    next_context: u64,
}

/// The universe shared by every rank of a machine.
pub struct Universe {
    pub(crate) sim: Sim,
    pub(crate) wire: Rc<dyn Wire>,
    pub(crate) inner: RefCell<UniverseInner>,
    pub(crate) params: MpiParams,
    pub(crate) stats: RefCell<TrafficStats>,
}

impl Universe {
    /// Create a universe over `endpoints` process slots carried by `wire`.
    pub fn new(sim: &Sim, wire: Rc<dyn Wire>, endpoints: usize, params: MpiParams) -> Rc<Self> {
        let mailboxes = (0..endpoints).map(|_| Mailbox::default()).collect();
        Rc::new(Universe {
            sim: sim.clone(),
            wire,
            inner: RefCell::new(UniverseInner {
                mailboxes,
                registry: BTreeMap::new(),
                pools: BTreeMap::new(),
                next_context: 1,
            }),
            params,
            stats: RefCell::new(TrafficStats::default()),
        })
    }

    /// The simulation handle.
    pub fn sim(&self) -> &Sim {
        &self.sim
    }

    /// Protocol parameters.
    pub fn params(&self) -> &MpiParams {
        &self.params
    }

    /// Total endpoints in the universe.
    pub fn num_endpoints(&self) -> usize {
        self.inner.borrow().mailboxes.len()
    }

    /// Snapshot of the traffic counters.
    pub fn traffic(&self) -> TrafficStats {
        self.stats.borrow().clone()
    }

    /// Register an application entry point for `comm_spawn`.
    pub fn register_app(&self, name: &str, f: AppFn) {
        self.inner.borrow_mut().registry.insert(name.to_string(), f);
    }

    /// Declare a named pool of spawnable endpoints (e.g. the booster).
    pub fn add_pool(&self, name: &str, eps: Vec<EpId>) {
        self.inner.borrow_mut().pools.insert(name.to_string(), eps);
    }

    /// Remaining capacity of a pool.
    pub fn pool_available(&self, name: &str) -> usize {
        self.inner.borrow().pools.get(name).map_or(0, Vec::len)
    }

    /// Allocate a fresh communicator context id.
    pub fn alloc_context(&self) -> u64 {
        let mut inner = self.inner.borrow_mut();
        inner.next_context += 1;
        inner.next_context
    }

    /// Deliver an envelope into `dst`'s mailbox, completing a posted
    /// receive if one matches (in post order), else queueing it.
    pub(crate) fn deposit(&self, dst: EpId, env: Envelope) {
        let mut inner = self.inner.borrow_mut();
        let mb = &mut inner.mailboxes[dst.0 as usize];
        if let Some(pos) = mb.posted.iter().position(|p| env.matches(&p.pattern)) {
            let posted = mb.posted.remove(pos).expect("index valid");
            drop(inner);
            posted.slot.set(env);
        } else {
            mb.unexpected.push_back(env);
        }
    }

    /// Peek at the first queued envelope matching `pattern` without
    /// consuming it; returns (src_rank, tag, bytes).
    pub(crate) fn peek_unexpected(&self, ep: EpId, pattern: &Pattern) -> Option<(u32, u32, u64)> {
        let inner = self.inner.borrow();
        let mb = &inner.mailboxes[ep.0 as usize];
        mb.unexpected
            .iter()
            .find(|e| e.matches(pattern))
            .map(|e| (e.src_rank, e.tag, e.bytes))
    }

    /// Take the first queued envelope matching `pattern`, if any.
    pub(crate) fn take_unexpected(&self, ep: EpId, pattern: &Pattern) -> Option<Envelope> {
        let mut inner = self.inner.borrow_mut();
        let mb = &mut inner.mailboxes[ep.0 as usize];
        let pos = mb.unexpected.iter().position(|e| e.matches(pattern))?;
        mb.unexpected.remove(pos)
    }

    /// Match or wait for an envelope addressed to `ep`.
    pub(crate) async fn match_recv(&self, ep: EpId, pattern: Pattern) -> Envelope {
        if let Some(env) = self.take_unexpected(ep, &pattern) {
            return env;
        }
        let slot: OneShot<Envelope> = OneShot::new(&self.sim);
        {
            let mut inner = self.inner.borrow_mut();
            inner.mailboxes[ep.0 as usize].posted.push_back(PostedRecv {
                pattern,
                slot: slot.clone(),
            });
        }
        slot.wait().await
    }

    /// Number of messages sitting in unexpected queues (diagnostics).
    pub fn unexpected_backlog(&self) -> usize {
        self.inner
            .borrow()
            .mailboxes
            .iter()
            .map(|m| m.unexpected.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::IdealWire;
    use deep_simkit::Simulation;

    fn universe(sim: &Sim, n: usize) -> Rc<Universe> {
        let wire = Rc::new(IdealWire::new(sim, SimDuration::micros(1), 1e9));
        Universe::new(sim, wire, n, MpiParams::default())
    }

    fn env(src: u32, context: u64, tag: u32) -> Envelope {
        Envelope {
            src_ep: EpId(src),
            src_rank: src,
            context,
            tag,
            value: Value::U64(src as u64),
            bytes: 8,
            kind: EnvKind::Eager,
        }
    }

    #[test]
    fn unexpected_queue_matches_in_arrival_order() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let uni = universe(&ctx, 2);
        uni.deposit(EpId(1), env(0, 5, 9));
        uni.deposit(EpId(1), env(0, 5, 9));
        let p = Pattern {
            context: 5,
            src: None,
            tag: Some(9),
        };
        assert!(uni.take_unexpected(EpId(1), &p).is_some());
        assert!(uni.take_unexpected(EpId(1), &p).is_some());
        assert!(uni.take_unexpected(EpId(1), &p).is_none());
        sim.run().assert_completed();
    }

    #[test]
    fn wildcards_match_any_source_and_tag() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let uni = universe(&ctx, 2);
        uni.deposit(EpId(1), env(3, 5, 42));
        // Wrong context never matches.
        assert!(uni
            .take_unexpected(
                EpId(1),
                &Pattern {
                    context: 6,
                    src: None,
                    tag: None
                }
            )
            .is_none());
        // Wrong tag.
        assert!(uni
            .take_unexpected(
                EpId(1),
                &Pattern {
                    context: 5,
                    src: None,
                    tag: Some(1)
                }
            )
            .is_none());
        // ANY/ANY matches.
        assert!(uni
            .take_unexpected(
                EpId(1),
                &Pattern {
                    context: 5,
                    src: None,
                    tag: None
                }
            )
            .is_some());
        sim.run().assert_completed();
    }

    #[test]
    fn posted_recv_completes_on_deposit() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let uni = universe(&ctx, 2);
        let u2 = uni.clone();
        let h = sim.spawn("recv", async move {
            u2.match_recv(
                EpId(1),
                Pattern {
                    context: 7,
                    src: Some(0),
                    tag: Some(3),
                },
            )
            .await
            .value
            .as_u64()
        });
        let u3 = uni.clone();
        let c = ctx.clone();
        sim.spawn("send", async move {
            c.sleep(SimDuration::micros(5)).await;
            u3.deposit(EpId(1), env(0, 7, 3));
        });
        sim.run().assert_completed();
        assert_eq!(h.try_result(), Some(0));
    }

    #[test]
    fn posted_recvs_complete_in_post_order() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let uni = universe(&ctx, 2);
        let mut handles = Vec::new();
        for i in 0..2 {
            let u = uni.clone();
            let c = ctx.clone();
            handles.push(sim.spawn(format!("recv{i}"), async move {
                // Stagger posting so post order is deterministic.
                c.sleep(SimDuration::nanos(i)).await;
                let env = u
                    .match_recv(
                        EpId(1),
                        Pattern {
                            context: 7,
                            src: None,
                            tag: None,
                        },
                    )
                    .await;
                (i, env.tag)
            }));
        }
        let u3 = uni.clone();
        let c = ctx.clone();
        sim.spawn("send", async move {
            c.sleep(SimDuration::micros(1)).await;
            let mut e1 = env(0, 7, 100);
            e1.tag = 100;
            u3.deposit(EpId(1), e1);
            let mut e2 = env(0, 7, 200);
            e2.tag = 200;
            u3.deposit(EpId(1), e2);
        });
        sim.run().assert_completed();
        let results: Vec<_> = handles
            .into_iter()
            .map(|h| h.try_result().unwrap())
            .collect();
        // First posted receive gets the first message.
        assert!(results.contains(&(0, 100)));
        assert!(results.contains(&(1, 200)));
    }

    #[test]
    fn context_ids_are_unique() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let uni = universe(&ctx, 1);
        let a = uni.alloc_context();
        let b = uni.alloc_context();
        assert_ne!(a, b);
        sim.run().assert_completed();
    }
}
