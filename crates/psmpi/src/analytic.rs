//! Closed-form LogGP-style cost models for collectives at rank counts far
//! beyond what the discrete-event engine should be asked to simulate
//! (experiment F09 sweeps to 262 144 ranks).
//!
//! The models mirror the algorithms in [`crate::collectives`]:
//! dissemination barrier, binomial broadcast/reduce, recursive-doubling
//! allreduce, ring allgather and pairwise alltoall. At small rank counts
//! the DES and these formulas agree (validated by a test below and by the
//! integration suite), which justifies using the formulas for the tail of
//! the scaling curves.

use deep_simkit::SimDuration;

/// Per-message / per-byte machine parameters (LogGP-ish).
#[derive(Debug, Clone, Copy)]
pub struct NetModel {
    /// End-to-end latency of a small message, including software overheads.
    pub latency: SimDuration,
    /// Payload bandwidth in bytes per second.
    pub bandwidth_bps: f64,
    /// Per-message CPU overhead (send + recv software path).
    pub overhead: SimDuration,
}

impl NetModel {
    /// Parameters matching the simulated InfiniBand cluster fabric.
    pub fn ib_fdr() -> NetModel {
        NetModel {
            latency: SimDuration::nanos(1_300),
            bandwidth_bps: 6.8e9,
            overhead: SimDuration::nanos(240),
        }
    }

    /// Parameters matching the simulated EXTOLL booster fabric.
    pub fn extoll() -> NetModel {
        NetModel {
            latency: SimDuration::nanos(850),
            bandwidth_bps: 7.0e9,
            overhead: SimDuration::nanos(240),
        }
    }

    /// Time of one point-to-point message of `bytes`.
    pub fn p2p(&self, bytes: u64) -> SimDuration {
        self.latency + self.overhead + SimDuration::from_secs_f64(bytes as f64 / self.bandwidth_bps)
    }

    /// Dissemination barrier: ⌈log₂ n⌉ rounds of small messages.
    pub fn barrier(&self, n: u64) -> SimDuration {
        self.p2p(0) * log2_ceil(n)
    }

    /// Binomial broadcast of `bytes`.
    pub fn bcast(&self, n: u64, bytes: u64) -> SimDuration {
        self.p2p(bytes) * log2_ceil(n)
    }

    /// Binomial reduction of `bytes` (compute cost folded into overhead).
    pub fn reduce(&self, n: u64, bytes: u64) -> SimDuration {
        self.p2p(bytes) * log2_ceil(n)
    }

    /// Recursive-doubling allreduce of `bytes`.
    pub fn allreduce(&self, n: u64, bytes: u64) -> SimDuration {
        self.p2p(bytes) * log2_ceil(n)
    }

    /// Ring allgather: n−1 steps of the per-rank block.
    pub fn allgather(&self, n: u64, block_bytes: u64) -> SimDuration {
        if n <= 1 {
            return SimDuration::ZERO;
        }
        self.p2p(block_bytes) * (n - 1)
    }

    /// Pairwise alltoall: n−1 exchange rounds.
    pub fn alltoall(&self, n: u64, block_bytes: u64) -> SimDuration {
        if n <= 1 {
            return SimDuration::ZERO;
        }
        self.p2p(block_bytes) * (n - 1)
    }
}

fn log2_ceil(n: u64) -> u64 {
    if n <= 1 {
        0
    } else {
        64 - (n - 1).leading_zeros() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_ceil_values() {
        assert_eq!(log2_ceil(1), 0);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(3), 2);
        assert_eq!(log2_ceil(4), 2);
        assert_eq!(log2_ceil(5), 3);
        assert_eq!(log2_ceil(1 << 18), 18);
    }

    #[test]
    fn costs_grow_logarithmically_or_linearly() {
        let m = NetModel::ib_fdr();
        // Barrier doubles ranks → +1 round.
        let d = m.barrier(2048) - m.barrier(1024);
        assert_eq!(d, m.p2p(0));
        // Alltoall is linear in n.
        let a1 = m.alltoall(64, 1024);
        let a2 = m.alltoall(128, 1024);
        assert!(a2 > a1 * 2 - m.p2p(1024) * 2);
    }

    #[test]
    fn bandwidth_term_dominates_large_messages() {
        let m = NetModel::extoll();
        let t = m.p2p(64 << 20);
        let pure_bw = SimDuration::from_secs_f64((64 << 20) as f64 / m.bandwidth_bps);
        assert!(t < pure_bw + SimDuration::micros(2));
        assert!(t >= pure_bw);
    }
}
