//! Process management: world launch and `MPI_Comm_spawn`.
//!
//! This is the heart of the paper's *global MPI* (slides 21, 26–29): the
//! cluster application spawns its highly scalable code parts onto booster
//! endpoints; the children receive their own `MPI_COMM_WORLD`, and the two
//! worlds are joined by an inter-communicator. Spawn is a collective over
//! the parent communicator, with the process-manager work done at `root`.
//!
//! The launch cost model is a binomial fan-out of control messages across
//! the fabric (each launched ParaStation daemon forwards to half of its
//! remaining subtree), plus a per-process exec/fork overhead — giving the
//! `O(log p)` + per-process scaling measured by experiment F21.

use std::cell::Cell;
use std::rc::Rc;

use deep_simkit::{OneShot, ProcHandle};

use crate::comm::{Comm, MpiCtx, TAG_INTERNAL_BASE};
use crate::universe::Universe;
use crate::value::Value;
use crate::wire::{EpId, LocalBoxFuture};

const TAG_SPAWN: u32 = TAG_INTERNAL_BASE + 64;

/// What the root learns from the process manager: the inter-communicator
/// context id plus the endpoints of the spawned world.
type SpawnOutcome = Result<(u64, Rc<Vec<EpId>>), SpawnError>;

/// Why a spawn failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpawnError {
    /// The named pool has fewer free endpoints than `maxprocs`.
    PoolExhausted {
        /// Pool that was asked.
        pool: String,
        /// Endpoints requested.
        requested: u32,
        /// Endpoints actually free.
        available: u32,
    },
    /// No application registered under the command name.
    UnknownCommand(String),
}

/// Start an initial world (the `mpiexec` analogue): one rank process per
/// endpoint, each running `f` with its [`MpiCtx`].
pub fn launch_world(
    uni: &Rc<Universe>,
    name: &str,
    eps: Vec<EpId>,
    f: impl Fn(MpiCtx) -> LocalBoxFuture<'static, ()> + 'static,
) -> Vec<ProcHandle<()>> {
    let context = uni.alloc_context();
    let members = Rc::new(eps);
    let mut handles = Vec::with_capacity(members.len());
    for rank in 0..members.len() as u32 {
        let ctx = MpiCtx::new(
            uni.clone(),
            members[rank as usize],
            Comm::intra(context, members.clone(), rank),
            None,
        );
        let fut = f(ctx);
        handles.push(uni.sim().spawn(format!("{name}[{rank}]"), fut));
    }
    handles
}

/// Recursive binomial fan-out of launch commands: `parent` starts
/// `targets[lo]`, which then forwards to the first half of the remaining
/// range while `parent` forwards to the second half.
fn fanout_launch(
    uni: Rc<Universe>,
    parent: EpId,
    targets: Rc<Vec<EpId>>,
    lo: usize,
    hi: usize,
    started: Rc<Cell<usize>>,
    all_started: OneShot<()>,
) -> LocalBoxFuture<'static, ()> {
    Box::pin(async move {
        if lo >= hi {
            return;
        }
        let head = targets[lo];
        // Control message travels the real fabric.
        uni.wire
            .transfer(parent, head, 256)
            .await
            .expect("launch control message failed");
        // The daemon forks/execs the process image.
        uni.sim().sleep(uni.params.spawn_per_proc).await;
        let n_started = started.get() + 1;
        started.set(n_started);
        if n_started == targets.len() {
            all_started.set(());
        }
        let mid = lo + 1 + (hi - lo - 1) / 2;
        // head forwards to (lo+1..mid); parent keeps (mid..hi).
        let sub = uni.sim().spawn(
            "spawn-fanout",
            fanout_launch(
                uni.clone(),
                head,
                targets.clone(),
                lo + 1,
                mid,
                started.clone(),
                all_started.clone(),
            ),
        );
        fanout_launch(uni, parent, targets, mid, hi, started, all_started).await;
        sub.await;
    })
}

impl MpiCtx {
    /// Collective `MPI_Comm_spawn`: start `maxprocs` instances of the
    /// registered application `command` on endpoints drawn from `pool`,
    /// returning the parent side of the inter-communicator.
    ///
    /// All members of `comm` must call; `root` performs the process-manager
    /// work and broadcasts the outcome (matching the real API, where the
    /// `command/argv/maxprocs/info` arguments are significant at root only).
    pub async fn comm_spawn(
        &self,
        comm: &Comm,
        command: &str,
        maxprocs: u32,
        pool: &str,
        root: u32,
    ) -> Result<Comm, SpawnError> {
        let uni = self.universe().clone();
        let mut outcome: Option<SpawnOutcome> = None;

        if comm.rank() == root {
            outcome = Some(self.spawn_at_root(comm, command, maxprocs, pool).await);
        }

        // Broadcast the outcome: [status, inter_ctx, ep...] as a List.
        let payload = match &outcome {
            Some(Ok((ctx_id, eps))) => {
                let mut items = vec![Value::U64(0), Value::U64(*ctx_id)];
                items.extend(eps.iter().map(|e| Value::U64(e.0 as u64)));
                Value::List(Rc::new(items))
            }
            Some(Err(_)) => Value::List(Rc::new(vec![Value::U64(1)])),
            None => Value::Unit, // placeholder at non-root
        };
        let bytes = 16 + 8 * maxprocs as u64;
        let decided = self.bcast(comm, root, payload, bytes).await;

        let items = decided.as_list();
        if items[0].as_u64() != 0 {
            // Root already owns the precise error; reconstruct a generic
            // one elsewhere.
            return match outcome {
                Some(Err(e)) => Err(e),
                _ => Err(SpawnError::PoolExhausted {
                    pool: pool.to_string(),
                    requested: maxprocs,
                    available: uni.pool_available(pool) as u32,
                }),
            };
        }
        let inter_ctx = items[1].as_u64();
        let children: Rc<Vec<EpId>> =
            Rc::new(items[2..].iter().map(|v| EpId(v.as_u64() as u32)).collect());
        Ok(Comm::inter(
            inter_ctx,
            comm.members().clone(),
            comm.rank(),
            children,
        ))
    }

    /// Root-side spawn work: allocate endpoints, launch daemons across the
    /// fabric, start child rank processes, return (inter context, eps).
    async fn spawn_at_root(
        &self,
        comm: &Comm,
        command: &str,
        maxprocs: u32,
        pool: &str,
    ) -> SpawnOutcome {
        let uni = self.universe().clone();
        // Fixed process-manager negotiation cost.
        self.sim().sleep(uni.params.spawn_base).await;

        let app = {
            let inner = uni.inner.borrow();
            match inner.registry.get(command) {
                Some(f) => f.clone(),
                None => return Err(SpawnError::UnknownCommand(command.to_string())),
            }
        };
        let children: Rc<Vec<EpId>> = {
            let mut inner = uni.inner.borrow_mut();
            let free = inner.pools.entry(pool.to_string()).or_default();
            if (free.len() as u32) < maxprocs {
                let available = free.len() as u32;
                return Err(SpawnError::PoolExhausted {
                    pool: pool.to_string(),
                    requested: maxprocs,
                    available,
                });
            }
            Rc::new(free.drain(..maxprocs as usize).collect())
        };

        // Fan the launch commands out across the fabric.
        let started: OneShot<()> = OneShot::new(self.sim());
        let counter = Rc::new(Cell::new(0usize));
        let fan = self.sim().spawn(
            "spawn-fanout-root",
            fanout_launch(
                uni.clone(),
                self.ep(),
                children.clone(),
                0,
                children.len(),
                counter,
                started.clone(),
            ),
        );
        started.wait().await;
        fan.await;

        // Wire up the child world and the inter-communicator.
        let child_world_ctx = uni.alloc_context();
        let inter_ctx = uni.alloc_context();
        let parent_members = comm.members().clone();
        let parent_rank_of_root = comm.rank();
        for (i, &ep) in children.iter().enumerate() {
            let child_world = Comm::intra(child_world_ctx, children.clone(), i as u32);
            let parent_inter = Comm::inter(
                inter_ctx,
                children.clone(),
                i as u32,
                parent_members.clone(),
            );
            let ctx = MpiCtx::new(uni.clone(), ep, child_world, Some(parent_inter));
            let fut = app(ctx);
            uni.sim().spawn(format!("{command}[{i}]"), fut);
        }
        let _ = parent_rank_of_root;
        // Children acknowledge startup to the root (modelled as one
        // aggregated control message from the first child).
        uni.wire
            .transfer(children[0], self.ep(), 128)
            .await
            .expect("spawn ack failed");
        let _ = TAG_SPAWN;
        Ok((inter_ctx, children))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::MpiParams;
    use crate::value::ReduceOp;
    use crate::wire::IdealWire;
    use deep_simkit::{Sim, SimDuration, Simulation};

    fn universe(sim: &Sim, n: usize) -> Rc<Universe> {
        let wire = Rc::new(IdealWire::new(sim, SimDuration::micros(1), 5e9));
        Universe::new(sim, wire, n, MpiParams::default())
    }

    #[test]
    fn spawned_children_get_their_own_world_and_parent_intercomm() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let uni = universe(&ctx, 12);
        // Endpoints 0..3 = parent "cluster", 4..11 = "booster" pool.
        uni.add_pool("booster", (4..12).map(EpId).collect());

        // Child program: allreduce ranks in the child world; rank 0 sends
        // the total and the world size to parent root over the intercomm.
        uni.register_app(
            "hscp",
            Rc::new(|m: MpiCtx| {
                Box::pin(async move {
                    let world = m.world().clone();
                    assert!(m.parent().is_some(), "child must see a parent");
                    let total = m
                        .allreduce(&world, ReduceOp::Sum, Value::U64(m.rank() as u64), 8)
                        .await;
                    if m.rank() == 0 {
                        let parent = m.parent().unwrap().clone();
                        m.send_val(
                            &parent,
                            0,
                            7,
                            Value::U64(total.as_u64() * 100 + m.size() as u64),
                        )
                        .await;
                    }
                })
            }),
        );

        let parent = |m: MpiCtx| -> LocalBoxFuture<'static, ()> {
            Box::pin(async move {
                let world = m.world().clone();
                let inter = m
                    .comm_spawn(&world, "hscp", 8, "booster", 0)
                    .await
                    .expect("spawn succeeds");
                assert_eq!(inter.remote_size(), 8);
                assert!(inter.is_inter());
                if m.rank() == 0 {
                    let msg = m.recv(&inter, Some(0), Some(7)).await;
                    // Sum of 0..8 = 28; size 8.
                    assert_eq!(msg.value.as_u64(), 28 * 100 + 8);
                }
                m.barrier(&world).await;
            })
        };
        let handles = launch_world(&uni, "cluster", (0..4).map(EpId).collect(), parent);
        sim.run().assert_completed();
        for h in handles {
            assert!(h.is_finished());
        }
        // The pool was drained.
        assert_eq!(uni.pool_available("booster"), 0);
    }

    #[test]
    fn spawn_fails_cleanly_when_pool_exhausted() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let uni = universe(&ctx, 6);
        uni.add_pool("booster", vec![EpId(4), EpId(5)]);
        uni.register_app("hscp", Rc::new(|_m| Box::pin(async {})));
        let handles = launch_world(&uni, "cluster", (0..2).map(EpId).collect(), |m| {
            Box::pin(async move {
                let world = m.world().clone();
                let err = m
                    .comm_spawn(&world, "hscp", 4, "booster", 0)
                    .await
                    .unwrap_err();
                match err {
                    SpawnError::PoolExhausted {
                        requested,
                        available,
                        ..
                    } => {
                        assert_eq!(requested, 4);
                        // Non-root ranks may not know the precise count;
                        // root must.
                        if m.rank() == 0 {
                            assert_eq!(available, 2);
                        }
                    }
                    other => panic!("unexpected error {other:?}"),
                }
            })
        });
        sim.run().assert_completed();
        for h in handles {
            assert!(h.is_finished());
        }
        // Failed spawn must not leak pool slots.
        assert_eq!(uni.pool_available("booster"), 2);
    }

    #[test]
    fn unknown_command_is_reported() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let uni = universe(&ctx, 4);
        uni.add_pool("booster", vec![EpId(2), EpId(3)]);
        launch_world(&uni, "cluster", vec![EpId(0)], |m| {
            Box::pin(async move {
                let world = m.world().clone();
                let err = m
                    .comm_spawn(&world, "nope", 1, "booster", 0)
                    .await
                    .unwrap_err();
                assert_eq!(err, SpawnError::UnknownCommand("nope".into()));
            })
        });
        sim.run().assert_completed();
    }

    #[test]
    fn spawn_cost_grows_gently_with_process_count() {
        fn spawn_time(nchildren: u32) -> u64 {
            let mut sim = Simulation::new(1);
            let ctx = sim.handle();
            let uni = universe(&ctx, 2 + nchildren as usize);
            uni.add_pool("booster", (2..2 + nchildren).map(EpId).collect());
            uni.register_app("hscp", Rc::new(|_m| Box::pin(async {})));
            let out = Rc::new(Cell::new(0u64));
            let out2 = out.clone();
            launch_world(&uni, "cluster", vec![EpId(0)], move |m| {
                let out = out2.clone();
                Box::pin(async move {
                    let world = m.world().clone();
                    let t0 = m.sim().now();
                    m.comm_spawn(&world, "hscp", nchildren, "booster", 0)
                        .await
                        .unwrap();
                    out.set((m.sim().now() - t0).as_nanos());
                })
            });
            sim.run().assert_completed();
            out.get()
        }

        let t16 = spawn_time(16);
        let t256 = spawn_time(256);
        assert!(t256 > t16, "more processes must cost more");
        // Binomial fan-out: 16x the processes should be far less than 16x
        // the time (the per-proc exec happens in parallel subtrees).
        assert!(
            t256 < t16 * 8,
            "fan-out must be sublinear: t16={t16} t256={t256}"
        );
    }
}
