//! # deep-resmgr — resource management for the cluster-booster machine
//!
//! Models the ParaStation management layer's key DEEP feature (slides 6–8,
//! 21): booster nodes can be assigned to jobs **statically** (reserved for
//! the whole job, like GPUs bolted to hosts in a conventional accelerated
//! cluster) or **dynamically** (claimed only for the offload phases that
//! need them). Experiment F22 compares the two policies on heterogeneous
//! job mixes; an EASY-style backfill option exercises the paper's
//! "resources managed statically or dynamically" claim further.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assign;

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use deep_simkit::{join_all, Either, OneShot, ProcHandle, Sim, SimDuration, SimTime};

/// One phase of a job: cluster compute, then (optionally) an offload
/// section needing booster nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobPhase {
    /// Cluster-side compute time of this phase.
    pub cn_time: SimDuration,
    /// Booster nodes needed for the offload section (0 = none).
    pub bn_needed: u32,
    /// Duration of the offload section.
    pub bn_time: SimDuration,
}

/// A job request.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Human-readable name.
    pub name: String,
    /// Cluster nodes held for the whole job.
    pub cn_needed: u32,
    /// Phases executed in order.
    pub phases: Vec<JobPhase>,
}

impl JobSpec {
    /// Peak booster demand across phases.
    pub fn bn_peak(&self) -> u32 {
        self.phases.iter().map(|p| p.bn_needed).max().unwrap_or(0)
    }

    /// Runtime estimate ignoring queueing (used by backfill).
    pub fn estimated_duration(&self) -> SimDuration {
        self.phases.iter().map(|p| p.cn_time + p.bn_time).sum()
    }
}

/// Booster assignment & scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// FCFS; peak booster demand reserved for the whole job lifetime.
    StaticFcfs,
    /// FCFS; boosters claimed per offload phase and released after.
    DynamicFcfs,
    /// Dynamic boosters + EASY backfill on job starts.
    DynamicBackfill,
}

impl Policy {
    /// True if boosters are held for the whole job.
    pub fn is_static(self) -> bool {
        matches!(self, Policy::StaticFcfs)
    }

    /// True if later jobs may overtake a blocked queue head.
    pub fn backfills(self) -> bool {
        matches!(self, Policy::DynamicBackfill)
    }
}

/// Completion record of one job.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Name from the spec.
    pub name: String,
    /// Arrival time.
    pub submitted: SimTime,
    /// First resource grant.
    pub started: SimTime,
    /// Completion.
    pub finished: SimTime,
    /// Total time spent waiting for booster-phase grants (dynamic only).
    pub bn_wait: SimDuration,
    /// Offload phases restarted after a booster-node failure.
    pub requeues: u32,
    /// True if the job was aborted because its demand could no longer be
    /// satisfied by the shrunken machine.
    pub aborted: bool,
}

impl JobRecord {
    /// Queue wait before the job started.
    pub fn wait(&self) -> SimDuration {
        self.started - self.submitted
    }

    /// End-to-end turnaround.
    pub fn turnaround(&self) -> SimDuration {
        self.finished - self.submitted
    }
}

/// Instantaneous occupancy snapshot, as returned by
/// [`ResMgr::gauges`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gauges {
    /// Cluster nodes currently allocated to jobs.
    pub cn_busy: u32,
    /// Booster nodes currently allocated (static holds included).
    pub bn_allocated: u32,
    /// Booster nodes actively inside an offload section.
    pub bn_active: u32,
    /// Current cluster-node total, net of failures.
    pub cn_total: u32,
    /// Current booster-node total, net of failures.
    pub bn_total: u32,
}

/// Aggregate outcome of a workload run.
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    /// Per-job records, completion order.
    pub jobs: Vec<JobRecord>,
    /// Time of last completion.
    pub makespan: SimDuration,
    /// Booster node-seconds actively computing / booster capacity
    /// node-seconds (∫ total(t) dt, correct under mid-run failures).
    pub bn_utilization: f64,
    /// Booster node-seconds *allocated* (whether or not computing) /
    /// booster capacity node-seconds — under static assignment this is
    /// inflated by boosters idling through their job's cluster phases.
    pub bn_allocated: f64,
    /// Cluster busy node-seconds / cluster capacity node-seconds.
    pub cn_utilization: f64,
    /// Booster nodes lost to injected failures.
    pub bn_failures: u32,
    /// Failed booster nodes replaced from the spare pool.
    pub bn_replaced: u32,
    /// Offload phases restarted after a failure (sum over jobs).
    pub requeues: u32,
    /// Jobs aborted because the shrunken machine could not satisfy them.
    pub jobs_aborted: u32,
}

/// Outcome of a grant request: either the resources are yours, or the
/// manager determined the request can never be satisfied (the machine
/// shrank below the demand) and aborted it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Grant {
    Granted,
    Aborted,
}

/// Outcome of one injected booster failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailureOutcome {
    /// Booster nodes actually lost (≤ requested if the pool was smaller).
    pub failed: u32,
    /// Nodes replaced from the spare pool.
    pub replaced: u32,
    /// Running offload sections interrupted (their jobs requeue).
    pub victims: u32,
}

struct StartRequest {
    cn: u32,
    bn: u32, // static reservation (0 under dynamic policies)
    est: SimDuration,
    grant: OneShot<Grant>,
}

struct BnRequest {
    bn: u32,
    grant: OneShot<Grant>,
}

/// A running dynamic offload section that can be interrupted by a
/// booster-node failure. The signal carries the number of nodes lost
/// from this job's allocation.
struct OffloadEntry {
    id: u64,
    bn: u32,
    signal: OneShot<u32>,
}

struct MgrState {
    cn_free: u32,
    bn_free: u32,
    cn_total: u32,
    bn_total: u32,
    /// Cold standby booster nodes used to replace failed ones.
    spare_bn: u32,
    start_queue: VecDeque<StartRequest>,
    bn_queue: VecDeque<BnRequest>,
    /// Running-job estimated completions, for backfill reservations:
    /// `(est_end, cn, bn)`.
    running_est: Vec<(SimTime, u32, u32)>,
    /// Interruptible running offload sections (dynamic policies only).
    offloads: Vec<OffloadEntry>,
    next_offload_id: u64,
    // Utilisation integrals.
    last_change: SimTime,
    cn_busy_integral: f64, // node-seconds
    bn_alloc_integral: f64,
    /// Boosters actively inside an offload section right now.
    bn_active: u32,
    bn_active_integral: f64,
    /// Capacity integrals (node-seconds of *existing* nodes): the correct
    /// utilisation denominator when failures shrink the machine mid-run.
    cn_capacity_integral: f64,
    bn_capacity_integral: f64,
    bn_failures: u32,
    bn_replaced: u32,
    requeues: u32,
    records: Vec<JobRecord>,
}

impl MgrState {
    fn accumulate(&mut self, now: SimTime) {
        let dt = (now - self.last_change).as_secs_f64();
        self.cn_busy_integral += (self.cn_total - self.cn_free) as f64 * dt;
        self.bn_alloc_integral += (self.bn_total - self.bn_free) as f64 * dt;
        self.bn_active_integral += self.bn_active as f64 * dt;
        self.cn_capacity_integral += self.cn_total as f64 * dt;
        self.bn_capacity_integral += self.bn_total as f64 * dt;
        self.last_change = now;
    }
}

/// The resource manager for one machine.
pub struct ResMgr {
    sim: Sim,
    policy: Policy,
    state: RefCell<MgrState>,
}

impl ResMgr {
    /// Create a manager over `cn_total` cluster and `bn_total` booster nodes.
    pub fn new(sim: &Sim, cn_total: u32, bn_total: u32, policy: Policy) -> Rc<ResMgr> {
        Self::with_spares(sim, cn_total, bn_total, 0, policy)
    }

    /// Like [`ResMgr::new`], plus `spare_bn` cold-standby booster nodes
    /// that replace failed ones on [`ResMgr::inject_booster_failure`].
    pub fn with_spares(
        sim: &Sim,
        cn_total: u32,
        bn_total: u32,
        spare_bn: u32,
        policy: Policy,
    ) -> Rc<ResMgr> {
        Rc::new(ResMgr {
            sim: sim.clone(),
            policy,
            state: RefCell::new(MgrState {
                cn_free: cn_total,
                bn_free: bn_total,
                cn_total,
                bn_total,
                spare_bn,
                start_queue: VecDeque::new(),
                bn_queue: VecDeque::new(),
                running_est: Vec::new(),
                offloads: Vec::new(),
                next_offload_id: 0,
                last_change: SimTime::ZERO,
                cn_busy_integral: 0.0,
                bn_alloc_integral: 0.0,
                bn_active: 0,
                bn_active_integral: 0.0,
                cn_capacity_integral: 0.0,
                bn_capacity_integral: 0.0,
                bn_failures: 0,
                bn_replaced: 0,
                requeues: 0,
                records: Vec::new(),
            }),
        })
    }

    /// Active policy.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// Submit a job at the current simulation time; returns a handle that
    /// resolves when the job completes.
    pub fn submit(self: &Rc<Self>, spec: JobSpec) -> ProcHandle<()> {
        let mgr = self.clone();
        self.sim.spawn(format!("job-{}", spec.name), async move {
            mgr.run_job(spec).await;
        })
    }

    async fn run_job(self: Rc<Self>, spec: JobSpec) {
        let submitted = self.sim.now();
        let static_bn = if self.policy.is_static() {
            spec.bn_peak()
        } else {
            0
        };

        // Queue for the start grant.
        let grant: OneShot<Grant> = OneShot::new(&self.sim);
        {
            let mut st = self.state.borrow_mut();
            st.start_queue.push_back(StartRequest {
                cn: spec.cn_needed,
                bn: static_bn,
                est: spec.estimated_duration(),
                grant: grant.clone(),
            });
        }
        self.try_schedule();
        if grant.wait().await == Grant::Aborted {
            // Never started: no resources to give back.
            let now = self.sim.now();
            self.push_record(&spec, submitted, now, now, SimDuration::ZERO, 0, true);
            return;
        }
        let started = self.sim.now();
        {
            let now = self.sim.now();
            let mut st = self.state.borrow_mut();
            let est_end = now + spec.estimated_duration();
            // May already be present if granted by the backfill path;
            // duplicates are harmless for the conservative reservation.
            st.running_est.push((est_end, spec.cn_needed, static_bn));
        }

        let mut bn_wait = SimDuration::ZERO;
        let mut requeues = 0u32;
        let mut aborted = false;
        'phases: for phase in &spec.phases {
            if phase.cn_time > SimDuration::ZERO {
                self.sim.sleep(phase.cn_time).await;
            }
            if phase.bn_needed > 0 && phase.bn_time > SimDuration::ZERO {
                if self.policy.is_static() {
                    // Boosters already reserved; mark them active.
                    self.mark_active(phase.bn_needed as i64);
                    self.sim.sleep(phase.bn_time).await;
                    self.mark_active(-(phase.bn_needed as i64));
                } else {
                    // Dynamic offload: claim boosters, run, and restart the
                    // section from scratch if a failure takes nodes away.
                    loop {
                        let t0 = self.sim.now();
                        let g: OneShot<Grant> = OneShot::new(&self.sim);
                        {
                            let mut st = self.state.borrow_mut();
                            st.bn_queue.push_back(BnRequest {
                                bn: phase.bn_needed,
                                grant: g.clone(),
                            });
                        }
                        self.try_schedule();
                        if g.wait().await == Grant::Aborted {
                            aborted = true;
                            break 'phases;
                        }
                        bn_wait += self.sim.now() - t0;
                        self.mark_active(phase.bn_needed as i64);
                        let signal: OneShot<u32> = OneShot::new(&self.sim);
                        let id = {
                            let mut st = self.state.borrow_mut();
                            let id = st.next_offload_id;
                            st.next_offload_id += 1;
                            st.offloads.push(OffloadEntry {
                                id,
                                bn: phase.bn_needed,
                                signal: signal.clone(),
                            });
                            id
                        };
                        // Interrupt on the left: at an exact tie the
                        // failure wins, deterministically.
                        let outcome = self
                            .sim
                            .race(signal.wait(), self.sim.sleep(phase.bn_time))
                            .await;
                        {
                            let mut st = self.state.borrow_mut();
                            st.offloads.retain(|e| e.id != id);
                        }
                        self.mark_active(-(phase.bn_needed as i64));
                        match outcome {
                            Either::Right(()) => {
                                // Completed: release phase boosters.
                                {
                                    let now = self.sim.now();
                                    let mut st = self.state.borrow_mut();
                                    st.accumulate(now);
                                    st.bn_free += phase.bn_needed;
                                }
                                self.try_schedule();
                                break;
                            }
                            Either::Left(failed) => {
                                // Failure took `failed` of our nodes (the
                                // injector already shrank the totals);
                                // survivors go back to the pool and the
                                // whole section restarts.
                                let survivors = phase.bn_needed - failed.min(phase.bn_needed);
                                {
                                    let now = self.sim.now();
                                    let mut st = self.state.borrow_mut();
                                    st.accumulate(now);
                                    st.bn_free += survivors;
                                    st.requeues += 1;
                                }
                                requeues += 1;
                                self.sim.emit("resmgr", "requeue", || {
                                    format!(
                                        "job {} lost {failed} boosters; offload restarts",
                                        spec.name
                                    )
                                });
                                self.try_schedule();
                            }
                        }
                    }
                }
            }
        }

        // Release job resources.
        let finished = self.sim.now();
        {
            let mut st = self.state.borrow_mut();
            st.accumulate(finished);
            st.cn_free += spec.cn_needed;
            st.bn_free += static_bn;
            if let Some(pos) = st
                .running_est
                .iter()
                .position(|&(_, cn, bn)| cn == spec.cn_needed && bn == static_bn)
            {
                st.running_est.remove(pos);
            }
        }
        self.push_record(
            &spec, submitted, started, finished, bn_wait, requeues, aborted,
        );
        self.try_schedule();
    }

    #[allow(clippy::too_many_arguments)]
    fn push_record(
        &self,
        spec: &JobSpec,
        submitted: SimTime,
        started: SimTime,
        finished: SimTime,
        bn_wait: SimDuration,
        requeues: u32,
        aborted: bool,
    ) {
        self.state.borrow_mut().records.push(JobRecord {
            name: spec.name.clone(),
            submitted,
            started,
            finished,
            bn_wait,
            requeues,
            aborted,
        });
    }

    /// Adjust the count of boosters actively computing.
    fn mark_active(&self, delta: i64) {
        let now = self.sim.now();
        let mut st = self.state.borrow_mut();
        st.accumulate(now);
        st.bn_active = (st.bn_active as i64 + delta)
            .try_into()
            .expect("active booster count must stay non-negative");
    }

    /// Grant whatever the policy allows right now.
    fn try_schedule(&self) {
        let now = self.sim.now();
        let mut granted: Vec<OneShot<Grant>> = Vec::new();
        let mut aborted: Vec<OneShot<Grant>> = Vec::new();
        {
            let mut st = self.state.borrow_mut();
            st.accumulate(now);

            // Abort requests the shrunken machine can never satisfy —
            // leaving them queued would deadlock the FIFO behind them.
            let (cn_total, bn_total) = (st.cn_total, st.bn_total);
            let mut sweep = |q: &mut VecDeque<BnRequest>| {
                let mut i = 0;
                while i < q.len() {
                    if q[i].bn > bn_total {
                        aborted.push(q.remove(i).unwrap().grant);
                    } else {
                        i += 1;
                    }
                }
            };
            sweep(&mut st.bn_queue);
            let mut i = 0;
            while i < st.start_queue.len() {
                let r = &st.start_queue[i];
                if r.cn > cn_total || r.bn > bn_total {
                    aborted.push(st.start_queue.remove(i).unwrap().grant);
                } else {
                    i += 1;
                }
            }

            // Booster-phase requests first (they belong to running jobs).
            while let Some(req) = st.bn_queue.front() {
                if st.bn_free >= req.bn {
                    let req = st.bn_queue.pop_front().unwrap();
                    st.bn_free -= req.bn;
                    granted.push(req.grant);
                } else {
                    break;
                }
            }

            // Job starts: FCFS head first.
            while let Some(head) = st.start_queue.front() {
                if st.cn_free >= head.cn && st.bn_free >= head.bn {
                    let req = st.start_queue.pop_front().unwrap();
                    st.cn_free -= req.cn;
                    st.bn_free -= req.bn;
                    granted.push(req.grant);
                } else {
                    break;
                }
            }
            if self.policy.backfills() && !st.start_queue.is_empty() {
                // EASY backfill: compute the head's reservation time from
                // running jobs' estimated completions, then start any later
                // job that fits now and finishes before that reservation.
                let head_cn = st.start_queue[0].cn;
                let head_bn = st.start_queue[0].bn;
                let mut est: Vec<(SimTime, u32, u32)> = st.running_est.clone();
                est.sort();
                let (mut cn, mut bn) = (st.cn_free, st.bn_free);
                let mut reserve_at = SimTime::MAX;
                for &(t, c, b) in &est {
                    cn += c;
                    bn += b;
                    if cn >= head_cn && bn >= head_bn {
                        reserve_at = t;
                        break;
                    }
                }
                let mut i = 1;
                while i < st.start_queue.len() {
                    let cand = &st.start_queue[i];
                    let fits = st.cn_free >= cand.cn && st.bn_free >= cand.bn;
                    let harmless = reserve_at == SimTime::MAX || now + cand.est <= reserve_at;
                    if fits && harmless {
                        let req = st.start_queue.remove(i).unwrap();
                        st.cn_free -= req.cn;
                        st.bn_free -= req.bn;
                        granted.push(req.grant);
                    } else {
                        i += 1;
                    }
                }
            }
        }
        for g in granted {
            g.set(Grant::Granted);
        }
        for g in aborted {
            g.set(Grant::Aborted);
        }
    }

    /// Inject the loss of `nodes` booster nodes. Nodes are taken first
    /// from running dynamic offload sections (oldest first — their jobs
    /// are interrupted and requeue the section), then from the free pool.
    /// Statically-held boosters are not victimized in this model. Spares,
    /// if any, immediately replace the losses. Returns what happened.
    pub fn inject_booster_failure(&self, nodes: u32) -> FailureOutcome {
        let now = self.sim.now();
        let mut signals: Vec<(OneShot<u32>, u32)> = Vec::new();
        let outcome = {
            let mut st = self.state.borrow_mut();
            st.accumulate(now);
            let mut remaining = nodes;
            let mut victims = 0u32;
            // Interrupt running offload sections, oldest first.
            while remaining > 0 && !st.offloads.is_empty() {
                let entry = st.offloads.remove(0);
                let lost = entry.bn.min(remaining);
                remaining -= lost;
                st.bn_total -= lost;
                victims += 1;
                signals.push((entry.signal, lost));
            }
            // Remainder dies in the free pool.
            let from_free = remaining.min(st.bn_free);
            st.bn_free -= from_free;
            st.bn_total -= from_free;
            remaining -= from_free;
            let failed = nodes - remaining;
            // Replacement from the spare pool.
            let replaced = st.spare_bn.min(failed);
            st.spare_bn -= replaced;
            st.bn_total += replaced;
            st.bn_free += replaced;
            st.bn_failures += failed;
            st.bn_replaced += replaced;
            FailureOutcome {
                failed,
                replaced,
                victims,
            }
        };
        self.sim.emit("resmgr", "bn-failure", || {
            format!(
                "{} boosters failed, {} replaced, {} jobs hit",
                outcome.failed, outcome.replaced, outcome.victims
            )
        });
        for (signal, lost) in signals {
            signal.set(lost);
        }
        self.try_schedule();
        outcome
    }

    /// Inject the loss of `nodes` cluster nodes. Only idle cluster nodes
    /// die in this model (running jobs pin theirs); returns the number
    /// actually lost.
    pub fn inject_cluster_failure(&self, nodes: u32) -> u32 {
        let now = self.sim.now();
        let failed = {
            let mut st = self.state.borrow_mut();
            st.accumulate(now);
            let failed = nodes.min(st.cn_free);
            st.cn_free -= failed;
            st.cn_total -= failed;
            failed
        };
        self.sim.emit("resmgr", "cn-failure", || {
            format!("{failed} cluster nodes failed")
        });
        self.try_schedule();
        failed
    }

    /// Remaining cold-standby booster nodes.
    pub fn spares(&self) -> u32 {
        self.state.borrow().spare_bn
    }

    /// Current (cluster, booster) node totals, net of failures.
    pub fn totals(&self) -> (u32, u32) {
        let st = self.state.borrow();
        (st.cn_total, st.bn_total)
    }

    /// Snapshot free resources (diagnostics).
    pub fn free(&self) -> (u32, u32) {
        let st = self.state.borrow();
        (st.cn_free, st.bn_free)
    }

    /// Snapshot the instantaneous occupancy gauges — for external
    /// utilisation samplers (e.g. trace-replay time series) that need
    /// more than the aggregate integrals in [`WorkloadReport`].
    pub fn gauges(&self) -> Gauges {
        let st = self.state.borrow();
        Gauges {
            cn_busy: st.cn_total - st.cn_free,
            bn_allocated: st.bn_total - st.bn_free,
            bn_active: st.bn_active,
            cn_total: st.cn_total,
            bn_total: st.bn_total,
        }
    }

    /// Build the final report; call after the simulation has drained.
    pub fn report(&self) -> WorkloadReport {
        let mut st = self.state.borrow_mut();
        let end = st
            .records
            .iter()
            .map(|r| r.finished)
            .max()
            .unwrap_or(SimTime::ZERO);
        let end = end.max(st.last_change);
        st.accumulate(end);
        let makespan = end - SimTime::ZERO;
        // Divide by the *capacity integral* (∫ total(t) dt), not
        // total_now × makespan: when failures shrink the machine mid-run,
        // the naive denominator undercounts capacity and utilisation
        // could exceed 1.0.
        let bn_util = if st.bn_capacity_integral > 0.0 {
            st.bn_active_integral / st.bn_capacity_integral
        } else {
            0.0
        };
        let bn_alloc = if st.bn_capacity_integral > 0.0 {
            st.bn_alloc_integral / st.bn_capacity_integral
        } else {
            0.0
        };
        let cn_util = if st.cn_capacity_integral > 0.0 {
            st.cn_busy_integral / st.cn_capacity_integral
        } else {
            0.0
        };
        WorkloadReport {
            jobs: st.records.clone(),
            makespan,
            bn_utilization: bn_util,
            bn_allocated: bn_alloc,
            cn_utilization: cn_util,
            bn_failures: st.bn_failures,
            bn_replaced: st.bn_replaced,
            requeues: st.requeues,
            jobs_aborted: st.records.iter().filter(|r| r.aborted).count() as u32,
        }
    }
}

/// Run a whole workload (arrival-offset, spec) under `policy` and report.
pub fn run_workload(
    seed: u64,
    cn_total: u32,
    bn_total: u32,
    policy: Policy,
    jobs: Vec<(SimDuration, JobSpec)>,
) -> WorkloadReport {
    let mut sim = deep_simkit::Simulation::new(seed);
    let ctx = sim.handle();
    let mgr = ResMgr::new(&ctx, cn_total, bn_total, policy);
    let mgr2 = mgr.clone();
    let ctx2 = ctx.clone();
    sim.spawn("workload-driver", async move {
        let mut handles = Vec::new();
        for (arrive, spec) in jobs {
            let at = SimTime::ZERO + arrive;
            if at > ctx2.now() {
                ctx2.sleep_until(at).await;
            }
            handles.push(mgr2.submit(spec));
        }
        join_all(handles).await;
    });
    sim.run().assert_completed();
    mgr.report()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimDuration {
        SimDuration::secs(s)
    }

    /// A job with one cluster phase and one offload phase.
    fn coupled_job(name: &str, cn: u32, bn: u32, cn_s: u64, bn_s: u64) -> JobSpec {
        JobSpec {
            name: name.into(),
            cn_needed: cn,
            phases: vec![JobPhase {
                cn_time: secs(cn_s),
                bn_needed: bn,
                bn_time: secs(bn_s),
            }],
        }
    }

    #[test]
    fn single_job_runs_to_completion() {
        let rep = run_workload(
            1,
            4,
            8,
            Policy::DynamicFcfs,
            vec![(SimDuration::ZERO, coupled_job("a", 2, 4, 10, 5))],
        );
        assert_eq!(rep.jobs.len(), 1);
        assert_eq!(rep.jobs[0].wait(), SimDuration::ZERO);
        assert_eq!(rep.makespan, secs(15));
    }

    #[test]
    fn fcfs_orders_starts() {
        // Two jobs both needing all 4 CNs: strictly sequential.
        let rep = run_workload(
            1,
            4,
            0,
            Policy::DynamicFcfs,
            vec![
                (SimDuration::ZERO, coupled_job("first", 4, 0, 10, 0)),
                (SimDuration::ZERO, coupled_job("second", 4, 0, 10, 0)),
            ],
        );
        assert_eq!(rep.makespan, secs(20));
        let first = rep.jobs.iter().find(|j| j.name == "first").unwrap();
        let second = rep.jobs.iter().find(|j| j.name == "second").unwrap();
        assert!(second.started >= first.finished);
    }

    #[test]
    fn dynamic_shares_boosters_that_static_hoards() {
        // Two jobs, each needs the full booster but only for the second
        // half of its runtime. Static serializes them; dynamic overlaps
        // their cluster phases.
        let jobs = || {
            vec![
                (SimDuration::ZERO, coupled_job("a", 2, 8, 10, 10)),
                (SimDuration::ZERO, coupled_job("b", 2, 8, 10, 10)),
            ]
        };
        let stat = run_workload(1, 8, 8, Policy::StaticFcfs, jobs());
        let dyn_ = run_workload(1, 8, 8, Policy::DynamicFcfs, jobs());
        assert!(
            dyn_.makespan < stat.makespan,
            "dynamic {:?} must beat static {:?}",
            dyn_.makespan,
            stat.makespan
        );
        assert!(
            dyn_.bn_utilization > stat.bn_utilization,
            "dynamic lifts booster utilisation: {} vs {}",
            dyn_.bn_utilization,
            stat.bn_utilization
        );
        // Static *allocates* everything but leaves boosters idle through
        // cluster phases: allocation is high, useful utilisation is not.
        assert!(stat.bn_allocated > stat.bn_utilization + 0.2);
        // Dynamic allocation tracks use exactly.
        assert!((dyn_.bn_allocated - dyn_.bn_utilization).abs() < 1e-9);
    }

    #[test]
    fn backfill_lets_small_jobs_jump_a_blocked_head() {
        // Job A takes 6 of 8 CNs for 100 s. Job B needs all 8 and queues.
        // Tiny job C (1 CN, 5 s) arrives last: FCFS parks it behind B;
        // backfill runs it in the 2-CN gap without delaying B.
        let jobs = vec![
            (SimDuration::ZERO, coupled_job("a", 6, 0, 100, 0)),
            (secs(1), coupled_job("b", 8, 0, 50, 0)),
            (secs(2), coupled_job("c", 1, 0, 5, 0)),
        ];
        let fcfs = run_workload(1, 8, 0, Policy::DynamicFcfs, jobs.clone());
        let bf = run_workload(1, 8, 0, Policy::DynamicBackfill, jobs);
        let c_fcfs = fcfs.jobs.iter().find(|j| j.name == "c").unwrap();
        let c_bf = bf.jobs.iter().find(|j| j.name == "c").unwrap();
        assert!(
            c_bf.finished < c_fcfs.finished,
            "backfill must accelerate the tiny job: {:?} vs {:?}",
            c_bf.finished,
            c_fcfs.finished
        );
        // And must not delay the blocked head beyond its reservation.
        let b_fcfs = fcfs.jobs.iter().find(|j| j.name == "b").unwrap();
        let b_bf = bf.jobs.iter().find(|j| j.name == "b").unwrap();
        assert!(b_bf.started <= b_fcfs.started + secs(1));
    }

    #[test]
    fn resources_never_oversubscribed() {
        // Stress with many heterogeneous jobs; free counts are u32, so an
        // oversubscription bug would underflow-panic. All jobs must finish
        // and the pools return to their initial totals.
        let mut jobs = Vec::new();
        for i in 0..20u64 {
            jobs.push((
                SimDuration::secs(i % 7),
                coupled_job(
                    &format!("j{i}"),
                    (i % 4 + 1) as u32,
                    (i % 8) as u32,
                    i % 5 + 1,
                    i % 3,
                ),
            ));
        }
        for policy in [
            Policy::StaticFcfs,
            Policy::DynamicFcfs,
            Policy::DynamicBackfill,
        ] {
            let rep = run_workload(1, 8, 8, policy, jobs.clone());
            assert_eq!(rep.jobs.len(), 20, "{policy:?}: all jobs completed");
        }
    }

    #[test]
    fn bn_wait_is_recorded_under_dynamic_contention() {
        // Two jobs whose offload phases collide on the lone booster set.
        let rep = run_workload(
            1,
            8,
            4,
            Policy::DynamicFcfs,
            vec![
                (SimDuration::ZERO, coupled_job("a", 1, 4, 5, 20)),
                (SimDuration::ZERO, coupled_job("b", 1, 4, 5, 20)),
            ],
        );
        let total_wait: SimDuration = rep.jobs.iter().map(|j| j.bn_wait).sum();
        assert!(
            total_wait >= secs(19),
            "one job must wait ~20 s for boosters, waited {total_wait}"
        );
    }

    #[test]
    fn utilisation_bounds() {
        let rep = run_workload(
            1,
            4,
            4,
            Policy::DynamicFcfs,
            vec![(SimDuration::ZERO, coupled_job("a", 4, 4, 10, 10))],
        );
        assert!(rep.cn_utilization > 0.0 && rep.cn_utilization <= 1.0);
        assert!(rep.bn_utilization > 0.0 && rep.bn_utilization <= 1.0);
        // CN held 20 s of 20 s → 100%; BN held 10 of 20 → 50%.
        assert!((rep.cn_utilization - 1.0).abs() < 1e-9);
        assert!((rep.bn_utilization - 0.5).abs() < 1e-9);
    }

    /// Drive a workload while an injector process kills boosters mid-run.
    fn run_with_failures(
        spares: u32,
        kill_at_s: u64,
        kill_n: u32,
        jobs: Vec<(SimDuration, JobSpec)>,
    ) -> (WorkloadReport, FailureOutcome) {
        let mut sim = deep_simkit::Simulation::new(9);
        let ctx = sim.handle();
        let mgr = ResMgr::with_spares(&ctx, 8, 8, spares, Policy::DynamicFcfs);
        let mgr2 = mgr.clone();
        let ctx2 = ctx.clone();
        sim.spawn("workload-driver", async move {
            let mut handles = Vec::new();
            for (arrive, spec) in jobs {
                let at = SimTime::ZERO + arrive;
                if at > ctx2.now() {
                    ctx2.sleep_until(at).await;
                }
                handles.push(mgr2.submit(spec));
            }
            join_all(handles).await;
        });
        let mgr3 = mgr.clone();
        let ctx3 = ctx.clone();
        let inj = sim.spawn("injector", async move {
            ctx3.sleep(secs(kill_at_s)).await;
            mgr3.inject_booster_failure(kill_n)
        });
        sim.run().assert_completed();
        (mgr.report(), inj.try_result().unwrap())
    }

    #[test]
    fn failure_mid_offload_requeues_and_spares_replace() {
        // One job: 5 s cluster + 10 s offload on 4 BNs. Kill 2 BNs at
        // t=8 (mid-offload): the section restarts and, with spares, still
        // has 4 BNs to claim.
        let (rep, out) = run_with_failures(
            4,
            8,
            2,
            vec![(SimDuration::ZERO, coupled_job("a", 2, 4, 5, 10))],
        );
        assert_eq!(
            out,
            FailureOutcome {
                failed: 2,
                replaced: 2,
                victims: 1
            }
        );
        let job = &rep.jobs[0];
        assert!(!job.aborted);
        assert_eq!(job.requeues, 1);
        // 5 s cluster + 3 s wasted offload + 10 s redo = 18 s.
        assert_eq!(rep.makespan, secs(18));
        assert_eq!(rep.bn_failures, 2);
        assert_eq!(rep.bn_replaced, 2);
        assert_eq!(rep.requeues, 1);
    }

    #[test]
    fn unsatisfiable_after_shrink_aborts_instead_of_hanging() {
        // Kill 6 of 8 BNs with no spares while a 4-BN offload runs: the
        // requeued request exceeds the 2 remaining and must be aborted,
        // not left to deadlock the simulation.
        let (rep, out) = run_with_failures(
            0,
            8,
            6,
            vec![(SimDuration::ZERO, coupled_job("a", 2, 4, 5, 10))],
        );
        assert_eq!(out.replaced, 0);
        assert!(out.failed >= 4, "the active section lost its nodes");
        assert_eq!(rep.jobs_aborted, 1);
        assert!(rep.jobs[0].aborted);
    }

    #[test]
    fn utilisation_stays_bounded_under_failures() {
        // The capacity-integral denominator keeps utilisation ≤ 1 even
        // though the machine shrinks mid-run.
        let (rep, _) = run_with_failures(
            0,
            3,
            4,
            vec![
                (SimDuration::ZERO, coupled_job("a", 2, 4, 1, 10)),
                (SimDuration::ZERO, coupled_job("b", 2, 4, 1, 10)),
            ],
        );
        assert!(rep.bn_failures > 0);
        assert!(
            rep.bn_utilization > 0.0 && rep.bn_utilization <= 1.0,
            "bn_utilization {} out of bounds",
            rep.bn_utilization
        );
        assert!(rep.bn_allocated <= 1.0 + 1e-9);
        assert!(rep.cn_utilization <= 1.0 + 1e-9);
    }

    #[test]
    fn idle_cluster_nodes_can_fail() {
        let mut sim = deep_simkit::Simulation::new(2);
        let ctx = sim.handle();
        let mgr = ResMgr::new(&ctx, 8, 8, Policy::DynamicFcfs);
        let m = mgr.clone();
        sim.spawn("inject", async move {
            assert_eq!(m.inject_cluster_failure(3), 3);
            assert_eq!(m.totals().0, 5);
        });
        sim.run().assert_completed();
        assert_eq!(mgr.free().0, 5);
    }
}
