//! # deep-resmgr — resource management for the cluster-booster machine
//!
//! Models the ParaStation management layer's key DEEP feature (slides 6–8,
//! 21): booster nodes can be assigned to jobs **statically** (reserved for
//! the whole job, like GPUs bolted to hosts in a conventional accelerated
//! cluster) or **dynamically** (claimed only for the offload phases that
//! need them). Experiment F22 compares the two policies on heterogeneous
//! job mixes; an EASY-style backfill option exercises the paper's
//! "resources managed statically or dynamically" claim further.

#![warn(missing_docs)]

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use deep_simkit::{join_all, OneShot, ProcHandle, Sim, SimDuration, SimTime};

/// One phase of a job: cluster compute, then (optionally) an offload
/// section needing booster nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobPhase {
    /// Cluster-side compute time of this phase.
    pub cn_time: SimDuration,
    /// Booster nodes needed for the offload section (0 = none).
    pub bn_needed: u32,
    /// Duration of the offload section.
    pub bn_time: SimDuration,
}

/// A job request.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Human-readable name.
    pub name: String,
    /// Cluster nodes held for the whole job.
    pub cn_needed: u32,
    /// Phases executed in order.
    pub phases: Vec<JobPhase>,
}

impl JobSpec {
    /// Peak booster demand across phases.
    pub fn bn_peak(&self) -> u32 {
        self.phases.iter().map(|p| p.bn_needed).max().unwrap_or(0)
    }

    /// Runtime estimate ignoring queueing (used by backfill).
    pub fn estimated_duration(&self) -> SimDuration {
        self.phases.iter().map(|p| p.cn_time + p.bn_time).sum()
    }
}

/// Booster assignment & scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// FCFS; peak booster demand reserved for the whole job lifetime.
    StaticFcfs,
    /// FCFS; boosters claimed per offload phase and released after.
    DynamicFcfs,
    /// Dynamic boosters + EASY backfill on job starts.
    DynamicBackfill,
}

impl Policy {
    /// True if boosters are held for the whole job.
    pub fn is_static(self) -> bool {
        matches!(self, Policy::StaticFcfs)
    }

    /// True if later jobs may overtake a blocked queue head.
    pub fn backfills(self) -> bool {
        matches!(self, Policy::DynamicBackfill)
    }
}

/// Completion record of one job.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Name from the spec.
    pub name: String,
    /// Arrival time.
    pub submitted: SimTime,
    /// First resource grant.
    pub started: SimTime,
    /// Completion.
    pub finished: SimTime,
    /// Total time spent waiting for booster-phase grants (dynamic only).
    pub bn_wait: SimDuration,
}

impl JobRecord {
    /// Queue wait before the job started.
    pub fn wait(&self) -> SimDuration {
        self.started - self.submitted
    }

    /// End-to-end turnaround.
    pub fn turnaround(&self) -> SimDuration {
        self.finished - self.submitted
    }
}

/// Aggregate outcome of a workload run.
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    /// Per-job records, completion order.
    pub jobs: Vec<JobRecord>,
    /// Time of last completion.
    pub makespan: SimDuration,
    /// Booster nodes actively computing / (BN total × makespan).
    pub bn_utilization: f64,
    /// Booster nodes *allocated* (whether or not computing) / (BN total ×
    /// makespan) — under static assignment this is inflated by boosters
    /// idling through their job's cluster phases.
    pub bn_allocated: f64,
    /// Cluster busy node-time / (CN total × makespan).
    pub cn_utilization: f64,
}

struct StartRequest {
    cn: u32,
    bn: u32, // static reservation (0 under dynamic policies)
    est: SimDuration,
    grant: OneShot<()>,
}

struct BnRequest {
    bn: u32,
    grant: OneShot<()>,
}

struct MgrState {
    cn_free: u32,
    bn_free: u32,
    cn_total: u32,
    bn_total: u32,
    start_queue: VecDeque<StartRequest>,
    bn_queue: VecDeque<BnRequest>,
    /// Running-job estimated completions, for backfill reservations:
    /// `(est_end, cn, bn)`.
    running_est: Vec<(SimTime, u32, u32)>,
    // Utilisation integrals.
    last_change: SimTime,
    cn_busy_integral: f64, // node-seconds
    bn_alloc_integral: f64,
    /// Boosters actively inside an offload section right now.
    bn_active: u32,
    bn_active_integral: f64,
    records: Vec<JobRecord>,
}

impl MgrState {
    fn accumulate(&mut self, now: SimTime) {
        let dt = (now - self.last_change).as_secs_f64();
        self.cn_busy_integral += (self.cn_total - self.cn_free) as f64 * dt;
        self.bn_alloc_integral += (self.bn_total - self.bn_free) as f64 * dt;
        self.bn_active_integral += self.bn_active as f64 * dt;
        self.last_change = now;
    }
}

/// The resource manager for one machine.
pub struct ResMgr {
    sim: Sim,
    policy: Policy,
    state: RefCell<MgrState>,
}

impl ResMgr {
    /// Create a manager over `cn_total` cluster and `bn_total` booster nodes.
    pub fn new(sim: &Sim, cn_total: u32, bn_total: u32, policy: Policy) -> Rc<ResMgr> {
        Rc::new(ResMgr {
            sim: sim.clone(),
            policy,
            state: RefCell::new(MgrState {
                cn_free: cn_total,
                bn_free: bn_total,
                cn_total,
                bn_total,
                start_queue: VecDeque::new(),
                bn_queue: VecDeque::new(),
                running_est: Vec::new(),
                last_change: SimTime::ZERO,
                cn_busy_integral: 0.0,
                bn_alloc_integral: 0.0,
                bn_active: 0,
                bn_active_integral: 0.0,
                records: Vec::new(),
            }),
        })
    }

    /// Active policy.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// Submit a job at the current simulation time; returns a handle that
    /// resolves when the job completes.
    pub fn submit(self: &Rc<Self>, spec: JobSpec) -> ProcHandle<()> {
        let mgr = self.clone();
        self.sim.spawn(format!("job-{}", spec.name), async move {
            mgr.run_job(spec).await;
        })
    }

    async fn run_job(self: Rc<Self>, spec: JobSpec) {
        let submitted = self.sim.now();
        let static_bn = if self.policy.is_static() {
            spec.bn_peak()
        } else {
            0
        };

        // Queue for the start grant.
        let grant: OneShot<()> = OneShot::new(&self.sim);
        {
            let mut st = self.state.borrow_mut();
            st.start_queue.push_back(StartRequest {
                cn: spec.cn_needed,
                bn: static_bn,
                est: spec.estimated_duration(),
                grant: grant.clone(),
            });
        }
        self.try_schedule();
        grant.wait().await;
        let started = self.sim.now();
        {
            let now = self.sim.now();
            let mut st = self.state.borrow_mut();
            let est_end = now + spec.estimated_duration();
            // May already be present if granted by the backfill path;
            // duplicates are harmless for the conservative reservation.
            st.running_est.push((est_end, spec.cn_needed, static_bn));
        }

        let mut bn_wait = SimDuration::ZERO;
        for phase in &spec.phases {
            if phase.cn_time > SimDuration::ZERO {
                self.sim.sleep(phase.cn_time).await;
            }
            if phase.bn_needed > 0 && phase.bn_time > SimDuration::ZERO {
                if self.policy.is_static() {
                    // Boosters already reserved; mark them active.
                    self.mark_active(phase.bn_needed as i64);
                    self.sim.sleep(phase.bn_time).await;
                    self.mark_active(-(phase.bn_needed as i64));
                } else {
                    let t0 = self.sim.now();
                    let g: OneShot<()> = OneShot::new(&self.sim);
                    {
                        let mut st = self.state.borrow_mut();
                        st.bn_queue.push_back(BnRequest {
                            bn: phase.bn_needed,
                            grant: g.clone(),
                        });
                    }
                    self.try_schedule();
                    g.wait().await;
                    bn_wait += self.sim.now() - t0;
                    self.mark_active(phase.bn_needed as i64);
                    self.sim.sleep(phase.bn_time).await;
                    self.mark_active(-(phase.bn_needed as i64));
                    // Release phase boosters.
                    {
                        let now = self.sim.now();
                        let mut st = self.state.borrow_mut();
                        st.accumulate(now);
                        st.bn_free += phase.bn_needed;
                    }
                    self.try_schedule();
                }
            }
        }

        // Release job resources.
        let finished = self.sim.now();
        {
            let mut st = self.state.borrow_mut();
            st.accumulate(finished);
            st.cn_free += spec.cn_needed;
            st.bn_free += static_bn;
            if let Some(pos) = st
                .running_est
                .iter()
                .position(|&(_, cn, bn)| cn == spec.cn_needed && bn == static_bn)
            {
                st.running_est.remove(pos);
            }
            st.records.push(JobRecord {
                name: spec.name.clone(),
                submitted,
                started,
                finished,
                bn_wait,
            });
        }
        self.try_schedule();
    }

    /// Adjust the count of boosters actively computing.
    fn mark_active(&self, delta: i64) {
        let now = self.sim.now();
        let mut st = self.state.borrow_mut();
        st.accumulate(now);
        st.bn_active = (st.bn_active as i64 + delta)
            .try_into()
            .expect("active booster count must stay non-negative");
    }

    /// Grant whatever the policy allows right now.
    fn try_schedule(&self) {
        let now = self.sim.now();
        let mut granted: Vec<OneShot<()>> = Vec::new();
        {
            let mut st = self.state.borrow_mut();
            st.accumulate(now);

            // Booster-phase requests first (they belong to running jobs).
            while let Some(req) = st.bn_queue.front() {
                if st.bn_free >= req.bn {
                    let req = st.bn_queue.pop_front().unwrap();
                    st.bn_free -= req.bn;
                    granted.push(req.grant);
                } else {
                    break;
                }
            }

            // Job starts: FCFS head first.
            while let Some(head) = st.start_queue.front() {
                if st.cn_free >= head.cn && st.bn_free >= head.bn {
                    let req = st.start_queue.pop_front().unwrap();
                    st.cn_free -= req.cn;
                    st.bn_free -= req.bn;
                    granted.push(req.grant);
                } else {
                    break;
                }
            }
            if self.policy.backfills() && !st.start_queue.is_empty() {
                // EASY backfill: compute the head's reservation time from
                // running jobs' estimated completions, then start any later
                // job that fits now and finishes before that reservation.
                let head_cn = st.start_queue[0].cn;
                let head_bn = st.start_queue[0].bn;
                let mut est: Vec<(SimTime, u32, u32)> = st.running_est.clone();
                est.sort();
                let (mut cn, mut bn) = (st.cn_free, st.bn_free);
                let mut reserve_at = SimTime::MAX;
                for &(t, c, b) in &est {
                    cn += c;
                    bn += b;
                    if cn >= head_cn && bn >= head_bn {
                        reserve_at = t;
                        break;
                    }
                }
                let mut i = 1;
                while i < st.start_queue.len() {
                    let cand = &st.start_queue[i];
                    let fits = st.cn_free >= cand.cn && st.bn_free >= cand.bn;
                    let harmless = reserve_at == SimTime::MAX || now + cand.est <= reserve_at;
                    if fits && harmless {
                        let req = st.start_queue.remove(i).unwrap();
                        st.cn_free -= req.cn;
                        st.bn_free -= req.bn;
                        granted.push(req.grant);
                    } else {
                        i += 1;
                    }
                }
            }
        }
        for g in granted {
            g.set(());
        }
    }

    /// Snapshot free resources (diagnostics).
    pub fn free(&self) -> (u32, u32) {
        let st = self.state.borrow();
        (st.cn_free, st.bn_free)
    }

    /// Build the final report; call after the simulation has drained.
    pub fn report(&self) -> WorkloadReport {
        let mut st = self.state.borrow_mut();
        let end = st
            .records
            .iter()
            .map(|r| r.finished)
            .max()
            .unwrap_or(SimTime::ZERO);
        let end = end.max(st.last_change);
        st.accumulate(end);
        let makespan = end - SimTime::ZERO;
        let span = makespan.as_secs_f64();
        let bn_util = if span > 0.0 && st.bn_total > 0 {
            st.bn_active_integral / (st.bn_total as f64 * span)
        } else {
            0.0
        };
        let bn_alloc = if span > 0.0 && st.bn_total > 0 {
            st.bn_alloc_integral / (st.bn_total as f64 * span)
        } else {
            0.0
        };
        let cn_util = if span > 0.0 && st.cn_total > 0 {
            st.cn_busy_integral / (st.cn_total as f64 * span)
        } else {
            0.0
        };
        WorkloadReport {
            jobs: st.records.clone(),
            makespan,
            bn_utilization: bn_util,
            bn_allocated: bn_alloc,
            cn_utilization: cn_util,
        }
    }
}

/// Run a whole workload (arrival-offset, spec) under `policy` and report.
pub fn run_workload(
    seed: u64,
    cn_total: u32,
    bn_total: u32,
    policy: Policy,
    jobs: Vec<(SimDuration, JobSpec)>,
) -> WorkloadReport {
    let mut sim = deep_simkit::Simulation::new(seed);
    let ctx = sim.handle();
    let mgr = ResMgr::new(&ctx, cn_total, bn_total, policy);
    let mgr2 = mgr.clone();
    let ctx2 = ctx.clone();
    sim.spawn("workload-driver", async move {
        let mut handles = Vec::new();
        for (arrive, spec) in jobs {
            let at = SimTime::ZERO + arrive;
            if at > ctx2.now() {
                ctx2.sleep_until(at).await;
            }
            handles.push(mgr2.submit(spec));
        }
        join_all(handles).await;
    });
    sim.run().assert_completed();
    mgr.report()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimDuration {
        SimDuration::secs(s)
    }

    /// A job with one cluster phase and one offload phase.
    fn coupled_job(name: &str, cn: u32, bn: u32, cn_s: u64, bn_s: u64) -> JobSpec {
        JobSpec {
            name: name.into(),
            cn_needed: cn,
            phases: vec![JobPhase {
                cn_time: secs(cn_s),
                bn_needed: bn,
                bn_time: secs(bn_s),
            }],
        }
    }

    #[test]
    fn single_job_runs_to_completion() {
        let rep = run_workload(
            1,
            4,
            8,
            Policy::DynamicFcfs,
            vec![(SimDuration::ZERO, coupled_job("a", 2, 4, 10, 5))],
        );
        assert_eq!(rep.jobs.len(), 1);
        assert_eq!(rep.jobs[0].wait(), SimDuration::ZERO);
        assert_eq!(rep.makespan, secs(15));
    }

    #[test]
    fn fcfs_orders_starts() {
        // Two jobs both needing all 4 CNs: strictly sequential.
        let rep = run_workload(
            1,
            4,
            0,
            Policy::DynamicFcfs,
            vec![
                (SimDuration::ZERO, coupled_job("first", 4, 0, 10, 0)),
                (SimDuration::ZERO, coupled_job("second", 4, 0, 10, 0)),
            ],
        );
        assert_eq!(rep.makespan, secs(20));
        let first = rep.jobs.iter().find(|j| j.name == "first").unwrap();
        let second = rep.jobs.iter().find(|j| j.name == "second").unwrap();
        assert!(second.started >= first.finished);
    }

    #[test]
    fn dynamic_shares_boosters_that_static_hoards() {
        // Two jobs, each needs the full booster but only for the second
        // half of its runtime. Static serializes them; dynamic overlaps
        // their cluster phases.
        let jobs = || {
            vec![
                (SimDuration::ZERO, coupled_job("a", 2, 8, 10, 10)),
                (SimDuration::ZERO, coupled_job("b", 2, 8, 10, 10)),
            ]
        };
        let stat = run_workload(1, 8, 8, Policy::StaticFcfs, jobs());
        let dyn_ = run_workload(1, 8, 8, Policy::DynamicFcfs, jobs());
        assert!(
            dyn_.makespan < stat.makespan,
            "dynamic {:?} must beat static {:?}",
            dyn_.makespan,
            stat.makespan
        );
        assert!(
            dyn_.bn_utilization > stat.bn_utilization,
            "dynamic lifts booster utilisation: {} vs {}",
            dyn_.bn_utilization,
            stat.bn_utilization
        );
        // Static *allocates* everything but leaves boosters idle through
        // cluster phases: allocation is high, useful utilisation is not.
        assert!(stat.bn_allocated > stat.bn_utilization + 0.2);
        // Dynamic allocation tracks use exactly.
        assert!((dyn_.bn_allocated - dyn_.bn_utilization).abs() < 1e-9);
    }

    #[test]
    fn backfill_lets_small_jobs_jump_a_blocked_head() {
        // Job A takes 6 of 8 CNs for 100 s. Job B needs all 8 and queues.
        // Tiny job C (1 CN, 5 s) arrives last: FCFS parks it behind B;
        // backfill runs it in the 2-CN gap without delaying B.
        let jobs = vec![
            (SimDuration::ZERO, coupled_job("a", 6, 0, 100, 0)),
            (secs(1), coupled_job("b", 8, 0, 50, 0)),
            (secs(2), coupled_job("c", 1, 0, 5, 0)),
        ];
        let fcfs = run_workload(1, 8, 0, Policy::DynamicFcfs, jobs.clone());
        let bf = run_workload(1, 8, 0, Policy::DynamicBackfill, jobs);
        let c_fcfs = fcfs.jobs.iter().find(|j| j.name == "c").unwrap();
        let c_bf = bf.jobs.iter().find(|j| j.name == "c").unwrap();
        assert!(
            c_bf.finished < c_fcfs.finished,
            "backfill must accelerate the tiny job: {:?} vs {:?}",
            c_bf.finished,
            c_fcfs.finished
        );
        // And must not delay the blocked head beyond its reservation.
        let b_fcfs = fcfs.jobs.iter().find(|j| j.name == "b").unwrap();
        let b_bf = bf.jobs.iter().find(|j| j.name == "b").unwrap();
        assert!(b_bf.started <= b_fcfs.started + secs(1));
    }

    #[test]
    fn resources_never_oversubscribed() {
        // Stress with many heterogeneous jobs; free counts are u32, so an
        // oversubscription bug would underflow-panic. All jobs must finish
        // and the pools return to their initial totals.
        let mut jobs = Vec::new();
        for i in 0..20u64 {
            jobs.push((
                SimDuration::secs(i % 7),
                coupled_job(
                    &format!("j{i}"),
                    (i % 4 + 1) as u32,
                    (i % 8) as u32,
                    i % 5 + 1,
                    i % 3,
                ),
            ));
        }
        for policy in [
            Policy::StaticFcfs,
            Policy::DynamicFcfs,
            Policy::DynamicBackfill,
        ] {
            let rep = run_workload(1, 8, 8, policy, jobs.clone());
            assert_eq!(rep.jobs.len(), 20, "{policy:?}: all jobs completed");
        }
    }

    #[test]
    fn bn_wait_is_recorded_under_dynamic_contention() {
        // Two jobs whose offload phases collide on the lone booster set.
        let rep = run_workload(
            1,
            8,
            4,
            Policy::DynamicFcfs,
            vec![
                (SimDuration::ZERO, coupled_job("a", 1, 4, 5, 20)),
                (SimDuration::ZERO, coupled_job("b", 1, 4, 5, 20)),
            ],
        );
        let total_wait: SimDuration = rep.jobs.iter().map(|j| j.bn_wait).sum();
        assert!(
            total_wait >= secs(19),
            "one job must wait ~20 s for boosters, waited {total_wait}"
        );
    }

    #[test]
    fn utilisation_bounds() {
        let rep = run_workload(
            1,
            4,
            4,
            Policy::DynamicFcfs,
            vec![(SimDuration::ZERO, coupled_job("a", 4, 4, 10, 10))],
        );
        assert!(rep.cn_utilization > 0.0 && rep.cn_utilization <= 1.0);
        assert!(rep.bn_utilization > 0.0 && rep.bn_utilization <= 1.0);
        // CN held 20 s of 20 s → 100%; BN held 10 of 20 → 50%.
        assert!((rep.cn_utilization - 1.0).abs() < 1e-9);
        assert!((rep.bn_utilization - 0.5).abs() < 1e-9);
    }
}
