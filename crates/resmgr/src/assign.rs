//! Host-side reuse of the dynamic-assignment policy.
//!
//! The simulated [`ResMgr`](crate::ResMgr) grants booster nodes to jobs
//! *dynamically*: a job claims only what its current phase needs, and
//! spare capacity flows to whoever can use it, FCFS. `deep-serve` eats
//! that dogfood on the host: its scheduler apportions the work-stealing
//! pool's threads across concurrently running jobs with the same
//! policy. This module is the policy distilled to a pure function —
//! no simulator, no clocks, no allocation beyond the output vector —
//! so the daemon and the DES provably share one assignment rule and
//! the unit tests can pin its behaviour exactly.
//!
//! The rule, in `ResMgr` terms, for a pool of `total` nodes and jobs
//! with demands `d_i` (queue order = index order):
//!
//! 1. every job with non-zero demand is granted at least one node
//!    while supply lasts, FCFS — nobody starves behind a wide job;
//! 2. remaining supply is dealt one node at a time, round-robin in
//!    index order, to jobs still below their demand — the "claim only
//!    for the phases that need it" half of the dynamic policy;
//! 3. nothing is granted beyond a job's demand — the freed surplus is
//!    what makes dynamic beat static in F22.

/// Apportion `total` pool slots across jobs by demand, dynamically.
///
/// Returns one grant per demand, in input order, with
/// `grants[i] <= demands[i]` and `sum(grants) <= total` always, and
/// `sum(grants) == min(total, sum(demands))` (work-conserving). The
/// result is a pure function of the inputs — deterministic across
/// hosts, runs, and thread counts.
pub fn dynamic_shares(total: u32, demands: &[u32]) -> Vec<u32> {
    let mut grants = vec![0u32; demands.len()];
    let mut left = total;
    // Pass 1: one slot each, FCFS, so every admitted job makes progress.
    for (g, &d) in grants.iter_mut().zip(demands) {
        if left == 0 {
            return grants;
        }
        if d > 0 {
            *g = 1;
            left -= 1;
        }
    }
    // Pass 2: round-robin the surplus to jobs still under their demand.
    let mut unsatisfied = true;
    while left > 0 && unsatisfied {
        unsatisfied = false;
        for (g, &d) in grants.iter_mut().zip(demands) {
            if left == 0 {
                break;
            }
            if *g < d {
                *g += 1;
                left -= 1;
                unsatisfied = true;
            }
        }
    }
    grants
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_job_takes_what_it_needs_and_no_more() {
        assert_eq!(dynamic_shares(8, &[3]), vec![3]);
        assert_eq!(dynamic_shares(2, &[3]), vec![2]);
    }

    #[test]
    fn surplus_splits_evenly_then_round_robin_by_index() {
        assert_eq!(dynamic_shares(8, &[8, 8]), vec![4, 4]);
        // Odd slot goes to the earlier (FCFS) job.
        assert_eq!(dynamic_shares(7, &[8, 8]), vec![4, 3]);
    }

    #[test]
    fn nobody_starves_behind_a_wide_job() {
        // The 16-wide job cannot hoard the whole pool: pass 1 hands the
        // narrow jobs one slot each first.
        assert_eq!(dynamic_shares(4, &[16, 1, 1]), vec![2, 1, 1]);
    }

    #[test]
    fn grants_never_exceed_demand() {
        assert_eq!(dynamic_shares(16, &[1, 2, 0, 3]), vec![1, 2, 0, 3]);
    }

    #[test]
    fn zero_demand_and_zero_total_edge_cases() {
        assert_eq!(dynamic_shares(0, &[5, 5]), vec![0, 0]);
        assert_eq!(dynamic_shares(4, &[]), Vec::<u32>::new());
        assert_eq!(dynamic_shares(4, &[0, 0]), vec![0, 0]);
    }

    #[test]
    fn work_conserving_invariant() {
        for total in 0..12u32 {
            for demands in [
                vec![0u32],
                vec![1, 1, 1],
                vec![5, 0, 2],
                vec![9, 9, 9, 9],
                vec![2, 7, 1, 0, 4],
            ] {
                let g = dynamic_shares(total, &demands);
                let granted: u32 = g.iter().sum();
                let demanded: u32 = demands.iter().sum();
                assert_eq!(granted, total.min(demanded), "t={total} d={demands:?}");
                assert!(g.iter().zip(&demands).all(|(a, b)| a <= b));
            }
        }
    }
}
