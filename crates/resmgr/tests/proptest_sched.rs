//! Property-based tests of the resource manager: for arbitrary job mixes
//! and every policy, all jobs complete, record invariants hold, and the
//! conservation laws of the utilisation accounting are respected.

use deep_resmgr::{run_workload, JobPhase, JobSpec, Policy};
use deep_simkit::SimDuration;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandJob {
    arrive_s: u64,
    cn: u32,
    phases: Vec<(u64, u32, u64)>, // (cn_s, bn, bn_s)
}

fn rand_job(cn_total: u32, bn_total: u32) -> impl Strategy<Value = RandJob> {
    (
        0u64..60,
        1u32..=cn_total,
        prop::collection::vec((0u64..20, 0u32..=bn_total, 0u64..20), 1..4),
    )
        .prop_map(|(arrive_s, cn, phases)| RandJob {
            arrive_s,
            cn,
            phases,
        })
}

fn to_spec(j: &RandJob, idx: usize) -> (SimDuration, JobSpec) {
    (
        SimDuration::secs(j.arrive_s),
        JobSpec {
            name: format!("j{idx}"),
            cn_needed: j.cn,
            phases: j
                .phases
                .iter()
                .map(|&(c, b, bs)| JobPhase {
                    cn_time: SimDuration::secs(c),
                    bn_needed: b,
                    bn_time: SimDuration::secs(bs),
                })
                .collect(),
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// All jobs complete under every policy; records are well formed.
    #[test]
    fn every_policy_completes_every_mix(
        jobs in prop::collection::vec(rand_job(6, 8), 1..15),
    ) {
        let mut mix: Vec<_> = jobs.iter().enumerate().map(|(i, j)| to_spec(j, i)).collect();
        mix.sort_by_key(|(a, _)| *a);
        for policy in [Policy::StaticFcfs, Policy::DynamicFcfs, Policy::DynamicBackfill] {
            let rep = run_workload(1, 6, 8, policy, mix.clone());
            prop_assert_eq!(rep.jobs.len(), jobs.len(), "{:?}", policy);
            for j in &rep.jobs {
                prop_assert!(j.started >= j.submitted);
                prop_assert!(j.finished >= j.started);
                // Turnaround at least the service demand.
            }
            prop_assert!(rep.bn_utilization >= 0.0 && rep.bn_utilization <= 1.0 + 1e-9);
            prop_assert!(rep.cn_utilization >= 0.0 && rep.cn_utilization <= 1.0 + 1e-9);
            prop_assert!(rep.bn_allocated + 1e-9 >= rep.bn_utilization,
                "allocation covers use: {} vs {}", rep.bn_allocated, rep.bn_utilization);
        }
    }

    /// Dynamic assignment is not *universally* better — releasing and
    /// re-acquiring boosters mid-job admits Graham-style scheduling
    /// anomalies where a particular FIFO interleaving packs worse than
    /// static's atomic grant. The true property: it can never lose by
    /// more than the longest single booster phase of the mix (the most
    /// one re-acquisition can be delayed behind under FCFS, per phase,
    /// telescoped over the critical chain is bounded by total bn time;
    /// we assert the single-phase bound times the phase count).
    #[test]
    fn dynamic_loses_at_most_bounded_anomaly(
        jobs in prop::collection::vec(rand_job(4, 6), 1..10),
    ) {
        let mut mix: Vec<_> = jobs.iter().enumerate().map(|(i, j)| to_spec(j, i)).collect();
        mix.sort_by_key(|(a, _)| *a);
        let total_phases: u64 = jobs.iter().map(|j| j.phases.len() as u64).sum();
        let max_bn_phase = jobs
            .iter()
            .flat_map(|j| j.phases.iter().map(|&(_, _, bs)| bs))
            .max()
            .unwrap_or(0);
        let stat = run_workload(1, 4, 6, Policy::StaticFcfs, mix.clone());
        let dynamic = run_workload(1, 4, 6, Policy::DynamicFcfs, mix);
        let bound = stat.makespan + SimDuration::secs(max_bn_phase * total_phases + 1);
        prop_assert!(
            dynamic.makespan <= bound,
            "dynamic {:?} vs static {:?} (+ anomaly bound {:?})",
            dynamic.makespan,
            stat.makespan,
            bound
        );
    }

    /// The busy-time integral equals the per-job service demand:
    /// Σ_jobs cn_needed × runtime == cn_util × CN_total × makespan.
    #[test]
    fn cn_accounting_is_conservative(
        jobs in prop::collection::vec(rand_job(4, 4), 1..8),
    ) {
        let mut mix: Vec<_> = jobs.iter().enumerate().map(|(i, j)| to_spec(j, i)).collect();
        mix.sort_by_key(|(a, _)| *a);
        let specs: Vec<JobSpec> = mix.iter().map(|(_, s)| s.clone()).collect();
        let rep = run_workload(1, 4, 4, Policy::DynamicFcfs, mix);
        let mut held_node_seconds = 0.0;
        for rec in &rep.jobs {
            let spec = specs.iter().find(|s| s.name == rec.name).unwrap();
            held_node_seconds +=
                spec.cn_needed as f64 * (rec.finished - rec.started).as_secs_f64();
        }
        let accounted = rep.cn_utilization * 4.0 * rep.makespan.as_secs_f64();
        prop_assert!(
            (held_node_seconds - accounted).abs() <= 1e-6 * held_node_seconds.max(1.0),
            "held {held_node_seconds} vs accounted {accounted}"
        );
    }
}

/// Across many random mixes, dynamic assignment wins or ties on makespan
/// in the overwhelming majority of cases and strictly wins on average —
/// the actual claim behind the paper's dynamic resource management.
#[test]
fn dynamic_wins_on_average() {
    use deep_simkit::SimRng;
    let mut wins = 0u32;
    let mut losses = 0u32;
    let mut sum_static = 0.0;
    let mut sum_dynamic = 0.0;
    for seed in 0..40u64 {
        let mut rng = SimRng::from_seed_stream(seed, 77);
        let mut mix = Vec::new();
        for i in 0..10 {
            let phases = (0..rng.gen_range(1..=3u32))
                .map(|_| JobPhase {
                    cn_time: SimDuration::secs(rng.gen_range(1..40)),
                    bn_needed: rng.gen_range(0..=6u32),
                    bn_time: SimDuration::secs(rng.gen_range(1..40)),
                })
                .collect();
            mix.push((
                SimDuration::secs(rng.gen_range(0..60)),
                JobSpec {
                    name: format!("j{i}"),
                    cn_needed: rng.gen_range(1..=3u32),
                    phases,
                },
            ));
        }
        mix.sort_by_key(|(a, _)| *a);
        let s = run_workload(seed, 4, 6, Policy::StaticFcfs, mix.clone());
        let d = run_workload(seed, 4, 6, Policy::DynamicFcfs, mix);
        sum_static += s.makespan.as_secs_f64();
        sum_dynamic += d.makespan.as_secs_f64();
        if d.makespan < s.makespan {
            wins += 1;
        } else if d.makespan > s.makespan {
            losses += 1;
        }
    }
    assert!(
        wins > 3 * losses,
        "dynamic should dominate: {wins} wins vs {losses} losses"
    );
    assert!(
        sum_dynamic < sum_static,
        "and win on average: {sum_dynamic} vs {sum_static}"
    );
}
