//! The fixture corpus: every rule must fire on exactly its bad fixture
//! (true positives, with the expected count) and stay silent on its
//! good twin (true negatives). This is the linter's own golden test —
//! a rule change that widens or narrows a rule shows up here first.

use deep_lint::{check_crate_root, lint_source, Rule, RuleSet};
use std::collections::BTreeMap;
use std::path::PathBuf;

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path:?}: {e}"))
}

/// Rule histogram of a full-rule run over a fixture.
fn fired(name: &str) -> BTreeMap<Rule, usize> {
    let mut hist = BTreeMap::new();
    for f in lint_source(name, &fixture(name), &RuleSet::all()) {
        *hist.entry(f.rule).or_insert(0) += 1;
    }
    hist
}

#[test]
fn d1_bad_fires_exactly_unordered_iter() {
    assert_eq!(
        fired("d1_bad.rs"),
        BTreeMap::from([(Rule::UnorderedIter, 3)])
    );
}

#[test]
fn d1_good_is_clean() {
    assert_eq!(fired("d1_good.rs"), BTreeMap::new());
}

#[test]
fn d2_bad_fires_exactly_ambient_authority() {
    assert_eq!(
        fired("d2_bad.rs"),
        BTreeMap::from([(Rule::AmbientAuthority, 4)]),
        "import + Instant::now + env::var + thread_rng"
    );
}

#[test]
fn d2_good_is_clean() {
    assert_eq!(fired("d2_good.rs"), BTreeMap::new());
}

#[test]
fn d3_bad_fires_exactly_unordered_float_reduce() {
    assert_eq!(
        fired("d3_bad.rs"),
        BTreeMap::from([(Rule::UnorderedFloatReduce, 2)])
    );
}

#[test]
fn d3_good_is_clean() {
    assert_eq!(fired("d3_good.rs"), BTreeMap::new());
}

#[test]
fn s1_bad_fires_exactly_undocumented_unsafe() {
    assert_eq!(
        fired("s1_bad.rs"),
        BTreeMap::from([(Rule::UndocumentedUnsafe, 3)]),
        "block + fn + impl"
    );
}

#[test]
fn s1_good_is_clean() {
    assert_eq!(fired("s1_good.rs"), BTreeMap::new());
}

#[test]
fn s2_root_check_distinguishes_fixtures() {
    let bad = check_crate_root("s2_bad_root.rs", &fixture("s2_bad_root.rs"))
        .expect("missing attribute must be found");
    assert_eq!(bad.rule, Rule::MissingForbidUnsafe);
    assert!(
        check_crate_root("s2_good_root.rs", &fixture("s2_good_root.rs")).is_none(),
        "present attribute must satisfy S2"
    );
}

#[test]
fn bad_pragmas_report_and_do_not_suppress() {
    assert_eq!(
        fired("pragma_bad.rs"),
        BTreeMap::from([(Rule::MalformedPragma, 3), (Rule::UnorderedIter, 1)])
    );
}

#[test]
fn findings_anchor_to_the_marked_lines() {
    // Spot-check file:line anchors on the D1 fixture: every finding
    // lands on a line carrying a FIRE marker.
    let src = fixture("d1_bad.rs");
    let marked: Vec<u32> = src
        .lines()
        .enumerate()
        .filter(|(_, l)| l.contains("FIRE"))
        .map(|(i, _)| i as u32 + 1)
        .collect();
    let findings = lint_source("d1_bad.rs", &src, &RuleSet::all());
    for f in &findings {
        // A FIRE marker sits on the finding line or the line before it
        // (rustfmt may split a chain so the marker trails the receiver).
        assert!(
            marked.contains(&f.line) || marked.contains(&(f.line + 1)),
            "finding at unmarked line {}: {f}",
            f.line
        );
    }
}

#[test]
fn rule_toggles_mask_findings() {
    // The same bad fixture is silent when its rule is disabled — the
    // per-rule toggles the CLI exposes really gate the engine.
    let only_d2 = RuleSet::none().with(Rule::AmbientAuthority);
    assert!(lint_source("d1_bad.rs", &fixture("d1_bad.rs"), &only_d2).is_empty());
    let no_d1 = RuleSet::all().without(Rule::UnorderedIter);
    assert!(lint_source("d1_bad.rs", &fixture("d1_bad.rs"), &no_d1).is_empty());
}
