//! The self-run gate: the full workspace must lint clean. This is the
//! same scan `scripts/check.sh` and the CI `lint` job run — keeping it
//! as a cargo test means `cargo test --workspace` alone catches a new
//! violation even without the shell gate.

use deep_lint::{crate_roots, rules_for_path, scan_workspace, Rule, RuleSet};
use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    // crates/lint → workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/lint has a workspace root two levels up")
        .to_path_buf()
}

#[test]
fn workspace_lints_clean() {
    let findings = scan_workspace(&workspace_root(), &RuleSet::all()).expect("scan");
    assert!(
        findings.is_empty(),
        "deep-lint found {} violation(s) in the workspace:\n{}",
        findings.len(),
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn scan_covers_the_known_terrain() {
    // Guard against a walker regression silently shrinking coverage:
    // the crate-root inventory must include every workspace package we
    // know about, and the scope policy must keep vendor under S1.
    let roots = crate_roots(&workspace_root()).expect("crate roots");
    for expected in [
        "src/lib.rs",
        "crates/simkit/src/lib.rs",
        "crates/lint/src/main.rs",
        "crates/bench/src/bin/run_experiments.rs",
        "crates/serve/src/lib.rs",
        "crates/serve/src/bin/deep_serve.rs",
    ] {
        assert!(
            roots.iter().any(|r| r == expected),
            "crate-root inventory lost {expected}: {roots:?}"
        );
    }
    assert!(
        roots.len() >= 40,
        "expected ≥40 crate roots, got {}",
        roots.len()
    );
    assert!(rules_for_path("vendor/rayon/src/pool.rs").has(Rule::UndocumentedUnsafe));
}
