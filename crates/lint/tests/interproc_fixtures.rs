//! Fixture corpus for the interprocedural rules (D4 determinism-taint,
//! D5 partition-safety, P1 panic-path). These rules see the whole
//! workspace at once, so each fixture is a *set* of files mounted at
//! synthetic workspace-relative paths via [`analyze_sources`] — the
//! paths drive the same scope policy the real scan uses.

use deep_lint::{analyze_sources, lint_source, Rule, RuleSet};
use std::collections::BTreeMap;
use std::path::PathBuf;

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path:?}: {e}"))
}

/// Rule histogram of a full-rule interprocedural run over a fixture
/// set of `(workspace-relative path, fixture file)` pairs.
fn fired(mounts: &[(&str, &str)]) -> BTreeMap<Rule, usize> {
    let sources: Vec<(&str, String)> = mounts
        .iter()
        .map(|&(rel, name)| (rel, fixture(name)))
        .collect();
    let files: Vec<(&str, &str)> = sources
        .iter()
        .map(|(rel, src)| (*rel, src.as_str()))
        .collect();
    let mut hist = BTreeMap::new();
    for f in analyze_sources(&files, &RuleSet::all()) {
        *hist.entry(f.rule).or_insert(0) += 1;
    }
    hist
}

#[test]
fn d4_bad_fires_exactly_determinism_taint_across_files() {
    assert_eq!(
        fired(&[
            ("crates/core/src/resilience.rs", "d4_bad_caller.rs"),
            ("crates/lint/src/timing.rs", "d4_bad_helper.rs"),
        ]),
        BTreeMap::from([(Rule::DeterminismTaint, 1)]),
        "one boundary call from sim code into the tainted helper"
    );
}

#[test]
fn d4_bad_is_invisible_to_file_local_d2() {
    // The acceptance property: the caller file contains no ambient
    // token, so file-local D2 *provably* cannot fire on it — only the
    // call-graph taint pass can connect the dots.
    let caller = fixture("d4_bad_caller.rs");
    let findings = lint_source(
        "crates/core/src/resilience.rs",
        &caller,
        &RuleSet::none().with(Rule::AmbientAuthority),
    );
    assert!(
        findings.is_empty(),
        "file-local D2 should miss the cross-file taint: {findings:?}"
    );
}

#[test]
fn d4_good_twins_are_clean() {
    // Pure helper: same call shape, no taint.
    assert_eq!(
        fired(&[
            ("crates/core/src/resilience.rs", "d4_good_caller.rs"),
            ("crates/lint/src/timing.rs", "d4_good_helper.rs"),
        ]),
        BTreeMap::new()
    );
    // Tainted helper, but the caller is itself D2-exempt tooling: the
    // boundary rule only protects sim-crate callers.
    assert_eq!(
        fired(&[
            ("crates/lint/src/consumer.rs", "d4_bad_caller.rs"),
            ("crates/lint/src/timing.rs", "d4_bad_helper.rs"),
        ]),
        BTreeMap::new()
    );
}

#[test]
fn d5_bad_fires_exactly_partition_safety() {
    assert_eq!(
        fired(&[("crates/bench/src/des_scaling.rs", "d5_bad.rs")]),
        BTreeMap::from([(Rule::PartitionSafety, 2)]),
        "un-partitioned spawn + shared-mutable borrow"
    );
}

#[test]
fn d5_good_is_clean() {
    assert_eq!(
        fired(&[("crates/bench/src/des_scaling.rs", "d5_good.rs")]),
        BTreeMap::new()
    );
}

#[test]
fn p1_bad_fires_exactly_panic_path_two_hops_out() {
    assert_eq!(
        fired(&[
            ("crates/serve/src/server.rs", "p1_bad_handler.rs"),
            ("crates/json/src/lib.rs", "p1_bad_sink.rs"),
        ]),
        BTreeMap::from([(Rule::PanicPath, 1)]),
        "the unwrap sits two calls from serve_connection"
    );
}

#[test]
fn p1_good_catch_unwind_severs_the_path() {
    assert_eq!(
        fired(&[
            ("crates/serve/src/server.rs", "p1_good_handler.rs"),
            ("crates/json/src/lib.rs", "p1_bad_sink.rs"),
        ]),
        BTreeMap::new(),
        "the same sink is unreachable once the handler guards the call"
    );
}

#[test]
fn interproc_rule_toggles_mask_findings() {
    let sources = [
        ("crates/serve/src/server.rs", fixture("p1_bad_handler.rs")),
        ("crates/json/src/lib.rs", fixture("p1_bad_sink.rs")),
    ];
    let files: Vec<(&str, &str)> = sources
        .iter()
        .map(|(rel, src)| (*rel, src.as_str()))
        .collect();
    let no_p1 = RuleSet::all().without(Rule::PanicPath);
    assert!(analyze_sources(&files, &no_p1).is_empty());
}

#[test]
fn d4_finding_anchors_to_the_marked_call_line() {
    let caller = fixture("d4_bad_caller.rs");
    let marked: Vec<u32> = caller
        .lines()
        .enumerate()
        .filter(|(_, l)| l.contains("FIRE"))
        .map(|(i, _)| i as u32 + 1)
        .collect();
    let sources = [
        ("crates/core/src/resilience.rs", caller.clone()),
        ("crates/lint/src/timing.rs", fixture("d4_bad_helper.rs")),
    ];
    let files: Vec<(&str, &str)> = sources
        .iter()
        .map(|(rel, src)| (*rel, src.as_str()))
        .collect();
    let findings = analyze_sources(&files, &RuleSet::all());
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].path, "crates/core/src/resilience.rs");
    assert!(
        marked.contains(&findings[0].line),
        "finding at unmarked line {}: {}",
        findings[0].line,
        findings[0]
    );
}
