// D5 fixture: partition-scope code (a `des_scaling` module) spawning
// without a partition and mutating shared state through a RefCell.

async fn worker(cell: Rc<RefCell<u64>>) {
    *cell.borrow_mut() += 1; // FIRE partition-safety (shared-mutable)
}

pub fn run(sim: &mut Simulation) {
    let ctx = sim.handle();
    let cell = Rc::new(RefCell::new(0u64));
    ctx.spawn("w", worker(cell)); // FIRE partition-safety (un-partitioned)
    sim.run();
}
