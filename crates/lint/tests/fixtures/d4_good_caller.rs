// D4 good twin: identical call shape to d4_bad_caller.rs; clean
// because the helper it reaches is pure.

pub fn seeded_run(seed: u64) -> u64 {
    seed ^ deep_lint::timing::wall_stamp()
}
