// Fixture: true negatives for `unordered-iter` (D1).
// Expected findings: none. Keyed access, ordered containers, and the
// pragma'd sorted-export pattern are all legitimate.
use std::collections::{BTreeMap, HashMap};

struct Metrics {
    counters: HashMap<String, u64>,
    ordered: BTreeMap<String, u64>,
}

fn keyed(m: &mut Metrics) -> Option<u64> {
    m.counters.insert("spawns".into(), 1);
    m.counters.get("spawns").copied()
}

fn ordered_iteration_is_fine(m: &Metrics) -> Vec<String> {
    m.ordered.keys().cloned().collect()
}

fn sorted_export(m: &Metrics) -> Vec<(String, u64)> {
    let mut v: Vec<(String, u64)> = m
        .counters
        // deep-lint: allow(unordered-iter) — collected then sorted by name before exposure
        .iter()
        .map(|(k, c)| (k.clone(), *c))
        .collect();
    v.sort();
    v
}

fn range_loops_are_fine(n: usize) -> usize {
    let mut acc = 0;
    for i in 0..n {
        acc += i;
    }
    acc
}
