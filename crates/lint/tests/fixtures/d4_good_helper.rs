// D4 good twin: the same shape of cross-crate helper, but pure — no
// ambient authority anywhere in its body, so no taint to propagate.

pub fn wall_stamp() -> u64 {
    0x9e37_79b9_7f4a_7c15
}
