// D4 fixture, the sim-crate half: no ambient token appears in this
// file, so file-local D2 provably cannot fire — yet the result of a
// simulation depends on wall-clock time through the cross-file call.

pub fn seeded_run(seed: u64) -> u64 {
    seed ^ deep_lint::timing::wall_stamp() // FIRE determinism-taint
}
