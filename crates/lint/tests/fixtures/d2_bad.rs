// Fixture: true positives for `ambient-authority` (D2).
// Expected findings: ≥4 × ambient-authority (Instant import + use,
// env::var, thread_rng) and nothing else.
use std::time::Instant;

fn wall_clock() -> u128 {
    let t0 = Instant::now();
    t0.elapsed().as_nanos()
}

fn config_from_env() -> Option<String> {
    std::env::var("DEEP_THREADS").ok()
}

fn ambient_seed() -> u64 {
    let mut rng = thread_rng();
    rng.next_u64()
}
