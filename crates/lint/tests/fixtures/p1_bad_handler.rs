// P1 fixture, the request-handling half: a deep-serve entry point that
// forwards untrusted bytes to a decoder in another crate. No sink
// appears in this file — the panic is two hops away.

pub fn serve_connection(body: &[u8]) -> u64 {
    deep_json::decode(body)
}
