// D4 fixture, the D2-exempt half: lives at a `crates/lint/**`-style
// path where ambient authority is locally legal. File-local D2 stays
// silent here by policy — only the interprocedural taint pass can see
// a sim-crate caller reaching this.
use std::time::Instant;

pub fn wall_stamp() -> u64 {
    let t = Instant::now();
    t.elapsed().as_nanos() as u64
}
