// P1 good twin: the same decoder call, but the handler isolates it
// behind catch_unwind — a panic becomes an error response, so the
// sink is unreachable as an abort.

pub fn serve_connection(body: &[u8]) -> u64 {
    let out = std::panic::catch_unwind(|| deep_json::decode(body));
    out.unwrap_or(0)
}
