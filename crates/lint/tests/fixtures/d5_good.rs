// D5 good twin: every spawn pins a partition and the per-rank state is
// owned by the coroutine, not shared through a cell.

async fn worker(rank: usize) {
    let mut local = 0u64;
    local += rank as u64;
    let _ = local;
}

pub fn run(sim: &mut Simulation, partitions: u32) {
    let ctx = sim.handle();
    for r in 0..8usize {
        ctx.spawn_in(r as u32 % partitions, "w", worker(r));
    }
    sim.run();
}
