// Fixture: true negatives for `unordered-float-reduce` (D3).
// Expected findings: none. Index-slotted collect then a sequential fold
// is the sanctioned pattern (deep_bench::sweep::par_sweep), and a
// sequential `.sum()` *inside* a closure argument is fine.

fn ordered_mean(xs: &[f64]) -> f64 {
    let doubled: Vec<f64> = xs.par_iter().map(|x| x * 2.0).collect();
    let mut total = 0.0;
    for v in &doubled {
        total += v;
    }
    total / xs.len() as f64
}

fn inner_sequential_sum(rows: &[Vec<f64>]) -> Vec<f64> {
    rows.par_iter().map(|row| row.iter().sum::<f64>()).collect()
}

fn sequential_sum_is_fine(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>()
}
