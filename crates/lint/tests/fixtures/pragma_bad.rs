// Fixture: malformed pragmas. Expected findings: exactly
// 3 × malformed-pragma AND 1 × unordered-iter — a bad pragma must
// never suppress the finding it sits on.
use std::collections::HashMap;

struct S {
    names: HashMap<String, u32>,
}

// deep-lint: allow(unordered-iter)
fn missing_reason(s: &S) -> usize {
    s.names.keys().count()
}

// deep-lint: allow(no-such-rule) — the rule id is unknown
fn unknown_rule() {}

// deep-lint: allow() — empty rule list
fn empty_list() {}
