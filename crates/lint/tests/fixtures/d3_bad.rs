// Fixture: true positives for `unordered-float-reduce` (D3).
// Expected findings: exactly 2 × unordered-float-reduce.

fn unordered_sum(xs: &[f64]) -> f64 {
    xs.par_iter().map(|x| x * 2.0).sum::<f64>() // FIRE: .sum() on par chain
}

fn unordered_reduce(xs: &[f64]) -> f64 {
    xs.par_iter().copied().reduce(|| 0.0, |a, b| a + b) // FIRE: .reduce()
}
