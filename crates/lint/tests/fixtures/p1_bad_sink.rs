// P1 fixture, the sink half: an unwrap on attacker-controlled input,
// reachable from `serve_connection` across the crate boundary.

pub fn decode(bytes: &[u8]) -> u64 {
    parse(bytes).unwrap() // FIRE panic-path
}

fn parse(bytes: &[u8]) -> Option<u64> {
    bytes.first().map(|&b| b as u64)
}
