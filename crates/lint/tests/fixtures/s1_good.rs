// Fixture: true negatives for `undocumented-unsafe` (S1).
// Expected findings: none.

fn read(p: *const u32) -> u32 {
    // SAFETY: the caller guarantees p is valid and aligned for the
    // duration of this call.
    unsafe { *p }
}

/// Dereference a raw pointer.
///
/// # Safety
///
/// `p` must be valid, aligned, and initialised.
unsafe fn documented(p: *const u32) -> u32 {
    *p
}

struct W(*const u8);
// SAFETY: W is only constructed around pointers into 'static data.
#[allow(dead_code)]
unsafe impl Send for W {}

struct J {
    // A function-pointer *type* is not an unsafe site.
    exec: unsafe fn(*const ()),
}

fn trailing(p: *const u32) -> u32 {
    unsafe { *p } // SAFETY: p comes from a live Box in the caller.
}
