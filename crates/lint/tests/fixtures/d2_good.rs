// Fixture: true negatives for `ambient-authority` (D2).
// Expected findings: none. Durations are spans (not clock reads), and
// seeded per-index RNG streams are the sanctioned pattern.
use std::time::Duration;

struct SimRng(u64);

impl SimRng {
    fn from_seed_stream(seed: u64, stream: u64) -> SimRng {
        SimRng(seed ^ stream.wrapping_mul(0x9E3779B97F4A7C15))
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
        self.0
    }
}

fn replica_draw(seed: u64, replica: u64) -> u64 {
    let mut rng = SimRng::from_seed_stream(seed, 0xE401 + replica);
    rng.next_u64()
}

fn timeout_budget() -> Duration {
    Duration::from_micros(200)
}
