//! Fixture: a crate root with the required attribute.
//! Expected findings: none.

#![forbid(unsafe_code)]

pub fn work() -> u32 {
    42
}
