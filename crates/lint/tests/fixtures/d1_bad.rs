// Fixture: true positives for `unordered-iter` (D1).
// Expected findings: exactly 3 × unordered-iter (lines marked FIRE).
use std::collections::{HashMap, HashSet};

struct Metrics {
    counters: HashMap<String, u64>,
}

fn export(m: &Metrics) -> Vec<String> {
    m.counters.keys().cloned().collect() // FIRE: .keys()
}

fn visit(m: &mut Metrics) {
    for (_name, v) in m.counters.iter_mut() {
        // FIRE: .iter_mut()
        *v += 1;
    }
}

fn collect_ids() -> u64 {
    let mut seen = HashSet::new();
    seen.insert(1u64);
    let mut total = 0;
    for id in &seen {
        // FIRE: for over a HashSet
        total += id;
    }
    total
}
