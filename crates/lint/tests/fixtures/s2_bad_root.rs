//! Fixture: a crate root *without* `#![forbid(unsafe_code)]`.
//! Expected: one missing-forbid-unsafe finding (and the commented-out
//! attribute below must not count).

// #![forbid(unsafe_code)]

pub fn work() -> u32 {
    42
}
