// Fixture: true positives for `undocumented-unsafe` (S1).
// Expected findings: exactly 3 × undocumented-unsafe.

fn read(p: *const u32) -> u32 {
    unsafe { *p } // FIRE: bare unsafe block
}

unsafe fn no_contract(p: *const u32) -> u32 {
    // FIRE: unsafe fn without a doc contract
    *p
}

struct W(*const u8);
unsafe impl Send for W {} // FIRE: unsafe impl with no justification
