#![forbid(unsafe_code)]
//! CLI for `deep-lint`. Exit status: 0 clean, 1 findings, 2 usage/IO.
//!
//! ```text
//! deep-lint [--root PATH] [--json [PATH|-]] [--only R1,R2] [--skip R1]
//!           [--list-rules] [--quiet]
//! ```
//!
//! With no `--root`, the workspace root is found by walking up from the
//! current directory to the first `Cargo.toml` containing `[workspace]`
//! — so the binary works from any subdirectory, including under
//! `cargo run -p deep-lint`.

use deep_lint::{findings_to_json, scan_workspace, Rule, RuleSet};
use std::path::PathBuf;
use std::process::ExitCode;

struct Cli {
    root: Option<PathBuf>,
    json: Option<String>,
    only: Option<Vec<Rule>>,
    skip: Vec<Rule>,
    list_rules: bool,
    quiet: bool,
}

fn parse_rules(arg: &str) -> Result<Vec<Rule>, String> {
    arg.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|name| {
            Rule::from_name(name).ok_or_else(|| {
                format!(
                    "unknown rule `{name}` (known: {})",
                    Rule::ALL.map(Rule::name).join(", ")
                )
            })
        })
        .collect()
}

fn parse_cli() -> Result<Cli, String> {
    let mut cli = Cli {
        root: None,
        json: None,
        only: None,
        skip: Vec::new(),
        list_rules: false,
        quiet: false,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let operand = |i: &mut usize| -> Option<String> {
        match args.get(*i + 1) {
            Some(v) if !v.starts_with("--") => {
                *i += 1;
                Some(v.clone())
            }
            _ => None,
        }
    };
    while i < args.len() {
        let arg = &args[i];
        match arg.as_str() {
            "--root" => {
                let v = operand(&mut i).ok_or("--root needs a path")?;
                cli.root = Some(PathBuf::from(v));
            }
            "--json" => {
                // Optional operand: a path, or `-` / absent for stdout.
                cli.json = Some(operand(&mut i).unwrap_or_else(|| "-".to_string()));
            }
            "--only" => {
                let v = operand(&mut i).ok_or("--only needs a rule list")?;
                cli.only = Some(parse_rules(&v)?);
            }
            "--skip" => {
                let v = operand(&mut i).ok_or("--skip needs a rule list")?;
                cli.skip.extend(parse_rules(&v)?);
            }
            "--list-rules" => cli.list_rules = true,
            "--quiet" | "-q" => cli.quiet = true,
            "--help" | "-h" => {
                println!(
                    "deep-lint: workspace determinism & unsafe-hygiene checks\n\n\
                     USAGE: deep-lint [--root PATH] [--json [PATH|-]] \
                     [--only R1,R2] [--skip R1] [--list-rules] [--quiet]\n\n\
                     Rules (suppress a site with \
                     `// deep-lint: allow(<rule>) — <why>`):"
                );
                for r in Rule::ALL {
                    println!("  {:24} {}", r.name(), r.describe());
                }
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (see --help)")),
        }
        i += 1;
    }
    Ok(cli)
}

/// Walk up from the current directory to a `Cargo.toml` declaring
/// `[workspace]`.
fn find_workspace_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| e.to_string())?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest).map_err(|e| e.to_string())?;
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err(
                "no workspace Cargo.toml found above the current directory; pass --root"
                    .to_string(),
            );
        }
    }
}

fn main() -> ExitCode {
    let cli = match parse_cli() {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("deep-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if cli.list_rules {
        for r in Rule::ALL {
            println!("{:24} {}", r.name(), r.describe());
        }
        return ExitCode::SUCCESS;
    }
    let root = match cli.root.map_or_else(find_workspace_root, Ok) {
        Ok(root) => root,
        Err(e) => {
            eprintln!("deep-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let mut enabled = match &cli.only {
        Some(rules) => rules.iter().fold(RuleSet::none(), |acc, r| acc.with(*r)),
        None => RuleSet::all(),
    };
    for r in &cli.skip {
        enabled = enabled.without(*r);
    }
    let findings = match scan_workspace(&root, &enabled) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("deep-lint: scanning {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if let Some(dest) = &cli.json {
        let doc = findings_to_json(&findings);
        if dest == "-" {
            println!("{doc}");
        } else if let Err(e) = std::fs::write(dest, doc + "\n") {
            eprintln!("deep-lint: writing {dest}: {e}");
            return ExitCode::from(2);
        }
    }
    if !cli.quiet && cli.json.as_deref() != Some("-") {
        for f in &findings {
            println!("{f}");
        }
        if findings.is_empty() {
            println!("deep-lint: clean ({} rules)", Rule::ALL.len());
        } else {
            println!(
                "deep-lint: {} finding(s) — see DESIGN.md §13 for the rule \
                 catalogue and pragma grammar",
                findings.len()
            );
        }
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
