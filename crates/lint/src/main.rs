#![forbid(unsafe_code)]
//! CLI for `deep-lint`. Exit status: 0 clean, 1 findings, 2 usage/IO.
//!
//! ```text
//! deep-lint [--root PATH] [--json [PATH|-]] [--only R1,R2] [--skip R1]
//!           [--graph [PATH|-]] [--graph-md PATH] [--cache-dir PATH]
//!           [--bench-cache PATH [--min-warm-speedup N]]
//!           [--list-rules] [--quiet]
//! ```
//!
//! With no `--root`, the workspace root is found by walking up from the
//! current directory to the first `Cargo.toml` containing `[workspace]`
//! — so the binary works from any subdirectory, including under
//! `cargo run -p deep-lint`.
//!
//! `--cache-dir` enables the incremental summary cache (DESIGN.md §17).
//! `--bench-cache PATH` runs the scan twice — cold (fresh cache) then
//! warm — asserts the findings are identical, and writes a `lint`
//! timing block for `bench_report --lint`; `--min-warm-speedup N` turns
//! the measured speedup into a hard gate.

use deep_lint::{findings_to_json, scan_workspace_cached, Rule, RuleSet};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

struct Cli {
    root: Option<PathBuf>,
    json: Option<String>,
    only: Option<Vec<Rule>>,
    skip: Vec<Rule>,
    graph: Option<String>,
    graph_md: Option<String>,
    cache_dir: Option<PathBuf>,
    bench_cache: Option<String>,
    min_warm_speedup: Option<f64>,
    list_rules: bool,
    quiet: bool,
}

fn parse_rules(arg: &str) -> Result<Vec<Rule>, String> {
    arg.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|name| {
            Rule::from_name(name).ok_or_else(|| {
                format!(
                    "unknown rule `{name}` (known: {})",
                    Rule::ALL.map(Rule::name).join(", ")
                )
            })
        })
        .collect()
}

fn parse_cli() -> Result<Cli, String> {
    let mut cli = Cli {
        root: None,
        json: None,
        only: None,
        skip: Vec::new(),
        graph: None,
        graph_md: None,
        cache_dir: None,
        bench_cache: None,
        min_warm_speedup: None,
        list_rules: false,
        quiet: false,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let operand = |i: &mut usize| -> Option<String> {
        match args.get(*i + 1) {
            Some(v) if !v.starts_with("--") => {
                *i += 1;
                Some(v.clone())
            }
            _ => None,
        }
    };
    while i < args.len() {
        let arg = &args[i];
        match arg.as_str() {
            "--root" => {
                let v = operand(&mut i).ok_or("--root needs a path")?;
                cli.root = Some(PathBuf::from(v));
            }
            "--json" => {
                // Optional operand: a path, or `-` / absent for stdout.
                cli.json = Some(operand(&mut i).unwrap_or_else(|| "-".to_string()));
            }
            "--graph" => {
                cli.graph = Some(operand(&mut i).unwrap_or_else(|| "-".to_string()));
            }
            "--graph-md" => {
                let v = operand(&mut i).ok_or("--graph-md needs a path")?;
                cli.graph_md = Some(v);
            }
            "--cache-dir" => {
                let v = operand(&mut i).ok_or("--cache-dir needs a path")?;
                cli.cache_dir = Some(PathBuf::from(v));
            }
            "--bench-cache" => {
                let v = operand(&mut i).ok_or("--bench-cache needs an output path")?;
                cli.bench_cache = Some(v);
            }
            "--min-warm-speedup" => {
                let v = operand(&mut i).ok_or("--min-warm-speedup needs a number")?;
                cli.min_warm_speedup = Some(v.parse().map_err(|_| format!("bad speedup `{v}`"))?);
            }
            "--only" => {
                let v = operand(&mut i).ok_or("--only needs a rule list")?;
                cli.only = Some(parse_rules(&v)?);
            }
            "--skip" => {
                let v = operand(&mut i).ok_or("--skip needs a rule list")?;
                cli.skip.extend(parse_rules(&v)?);
            }
            "--list-rules" => cli.list_rules = true,
            "--quiet" | "-q" => cli.quiet = true,
            "--help" | "-h" => {
                println!(
                    "deep-lint: workspace determinism & unsafe-hygiene checks\n\n\
                     USAGE: deep-lint [--root PATH] [--json [PATH|-]] \
                     [--only R1,R2] [--skip R1] [--graph [PATH|-]] \
                     [--graph-md PATH] [--cache-dir PATH] \
                     [--bench-cache PATH [--min-warm-speedup N]] \
                     [--list-rules] [--quiet]\n\n\
                     Rules (suppress a site with \
                     `// deep-lint: allow(<rule>) — <why>`):"
                );
                for r in Rule::ALL {
                    println!("  {:24} {}", r.name(), r.describe());
                }
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (see --help)")),
        }
        i += 1;
    }
    if cli.bench_cache.is_some() && cli.cache_dir.is_none() {
        return Err("--bench-cache needs --cache-dir (the cache being measured)".to_string());
    }
    Ok(cli)
}

/// Walk up from the current directory to a `Cargo.toml` declaring
/// `[workspace]`.
fn find_workspace_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| e.to_string())?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest).map_err(|e| e.to_string())?;
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err(
                "no workspace Cargo.toml found above the current directory; pass --root"
                    .to_string(),
            );
        }
    }
}

/// The `--bench-cache` timing document, consumed by `bench_report
/// --lint` (which enforces the ≥5× warm gate in BENCH_engine.json).
fn lint_times_json(
    files: usize,
    cold_s: f64,
    warm_s: f64,
    warm_hits: usize,
    findings: usize,
) -> String {
    use deep_json::Value;
    let speedup = if warm_s > 0.0 { cold_s / warm_s } else { 0.0 };
    Value::Object(vec![(
        "lint".to_string(),
        Value::Object(vec![
            ("files".to_string(), Value::Number(files as f64)),
            ("cold_wall_s".to_string(), Value::Number(cold_s)),
            ("warm_wall_s".to_string(), Value::Number(warm_s)),
            (
                "warm_cache_hits".to_string(),
                Value::Number(warm_hits as f64),
            ),
            ("warm_speedup".to_string(), Value::Number(speedup)),
            ("findings".to_string(), Value::Number(findings as f64)),
        ]),
    )])
    .to_json_pretty()
}

fn main() -> ExitCode {
    let cli = match parse_cli() {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("deep-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if cli.list_rules {
        for r in Rule::ALL {
            println!("{:24} {}", r.name(), r.describe());
        }
        return ExitCode::SUCCESS;
    }
    let root = match cli.root.map_or_else(find_workspace_root, Ok) {
        Ok(root) => root,
        Err(e) => {
            eprintln!("deep-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let mut enabled = match &cli.only {
        Some(rules) => rules.iter().fold(RuleSet::none(), |acc, r| acc.with(*r)),
        None => RuleSet::all(),
    };
    for r in &cli.skip {
        enabled = enabled.without(*r);
    }

    // --bench-cache: cold run on a wiped cache, then warm; assert the
    // findings agree (a cache must never change the answer), emit the
    // timing block, optionally gate the speedup.
    let want_graph = cli.graph.is_some() || cli.graph_md.is_some();
    let result = if let Some(bench_out) = &cli.bench_cache {
        let cache_dir = cli.cache_dir.as_ref().expect("validated in parse_cli");
        let _ = std::fs::remove_dir_all(cache_dir);
        let t0 = Instant::now();
        let cold = match scan_workspace_cached(&root, &enabled, Some(cache_dir), want_graph) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("deep-lint: scanning {}: {e}", root.display());
                return ExitCode::from(2);
            }
        };
        let cold_s = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let warm = match scan_workspace_cached(&root, &enabled, Some(cache_dir), want_graph) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("deep-lint: warm rescan: {e}");
                return ExitCode::from(2);
            }
        };
        let warm_s = t1.elapsed().as_secs_f64();
        if cold.findings != warm.findings {
            eprintln!(
                "deep-lint: BUG — warm cache changed the findings ({} cold vs {} warm)",
                cold.findings.len(),
                warm.findings.len()
            );
            return ExitCode::from(2);
        }
        let doc = lint_times_json(
            warm.files,
            cold_s,
            warm_s,
            warm.cache_hits,
            warm.findings.len(),
        );
        if let Err(e) = std::fs::write(bench_out, doc + "\n") {
            eprintln!("deep-lint: writing {bench_out}: {e}");
            return ExitCode::from(2);
        }
        let speedup = if warm_s > 0.0 { cold_s / warm_s } else { 0.0 };
        if !cli.quiet {
            println!(
                "deep-lint: cold {cold_s:.3}s, warm {warm_s:.3}s ({}/{} cache hits, {speedup:.1}x)",
                warm.cache_hits, warm.files
            );
        }
        if let Some(min) = cli.min_warm_speedup {
            if speedup < min {
                eprintln!(
                    "deep-lint: warm speedup {speedup:.2}x below the required {min:.1}x gate"
                );
                return ExitCode::FAILURE;
            }
        }
        warm
    } else {
        match scan_workspace_cached(&root, &enabled, cli.cache_dir.as_deref(), want_graph) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("deep-lint: scanning {}: {e}", root.display());
                return ExitCode::from(2);
            }
        }
    };

    if let Some(dest) = &cli.graph {
        let doc = result.graph.to_json();
        if dest == "-" {
            println!("{doc}");
        } else if let Err(e) = std::fs::write(dest, doc + "\n") {
            eprintln!("deep-lint: writing {dest}: {e}");
            return ExitCode::from(2);
        }
    }
    if let Some(dest) = &cli.graph_md {
        let md = result
            .graph
            .to_markdown(&|rel| deep_lint::rules_for_path(rel).has(Rule::AmbientAuthority));
        if let Err(e) = std::fs::write(dest, md) {
            eprintln!("deep-lint: writing {dest}: {e}");
            return ExitCode::from(2);
        }
    }
    let findings = &result.findings;
    if let Some(dest) = &cli.json {
        let doc = findings_to_json(findings);
        if dest == "-" {
            println!("{doc}");
        } else if let Err(e) = std::fs::write(dest, doc + "\n") {
            eprintln!("deep-lint: writing {dest}: {e}");
            return ExitCode::from(2);
        }
    }
    if !cli.quiet && cli.json.as_deref() != Some("-") && cli.graph.as_deref() != Some("-") {
        for f in findings {
            println!("{f}");
        }
        if findings.is_empty() {
            println!("deep-lint: clean ({} rules)", Rule::ALL.len());
        } else {
            println!(
                "deep-lint: {} finding(s) — see DESIGN.md §13 for the rule \
                 catalogue and pragma grammar",
                findings.len()
            );
        }
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
