//! The incremental summary cache (DESIGN.md §17).
//!
//! Key: FNV-1a-64 over `(path, contents, schema version)` — content
//! addressed, so `touch` does not invalidate and a schema bump
//! invalidates everything. Value: the file's [`FileSummary`], including
//! its file-local findings computed at the file's *full* path mask (the
//! enabled-rule filter is applied at report time, so one cache serves
//! every `--only`/`--skip` combination).
//!
//! The on-disk format is a deliberately boring line/tab text format
//! rather than deep_json: the cache exists to make warm runs fast, and
//! a hand-rolled split-parse is an order of magnitude quicker than a
//! recursive-descent JSON parse in debug builds, where the lint gate
//! actually runs. Any parse irregularity — wrong header, short record,
//! bad number — discards the whole cache and falls back to a cold scan;
//! a cache can only ever cost a re-lex, never correctness.

use crate::items::{CallRef, Callee, FileSummary, FnItem, SinkKind, SinkRef, SourceRef};
use crate::rules::{Finding, Rule};
use std::io;
use std::path::Path;

/// Bump whenever `FileSummary`, a rule's semantics, or this format
/// changes: the digest folds it in, so old entries simply miss.
pub const SCHEMA_VERSION: u32 = 1;

const HEADER: &str = "deep-lint-cache v1";

/// Content-addressed cache key for one file.
pub fn digest(rel: &str, source: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for chunk in [
        rel.as_bytes(),
        &[0u8],
        source.as_bytes(),
        &SCHEMA_VERSION.to_le_bytes()[..],
    ] {
        for &b in chunk {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Digest of the whole scan — the fold of every per-file digest in
/// scan order. Keys the interprocedural-findings memo: if no file
/// changed, the call graph cannot have changed, so the D4/D5/P1 pass
/// need not re-run.
pub fn workspace_digest(entries: &[(u64, FileSummary)]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for (dg, s) in entries {
        for chunk in [&dg.to_le_bytes()[..], s.rel.as_bytes(), &[0u8]] {
            for &b in chunk {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
    }
    h
}

/// A parsed cache file: per-file summaries plus, when present, the
/// memoized interprocedural findings (computed at the full rule set;
/// filtered by the enabled set at report time, like `local_findings`).
pub struct CacheDoc {
    pub entries: Vec<(u64, FileSummary)>,
    pub workspace: Option<(u64, Vec<Finding>)>,
}

fn esc(s: &str) -> String {
    if !s.contains(['\\', '\t', '\n']) {
        return s.to_string();
    }
    s.replace('\\', "\\\\")
        .replace('\t', "\\t")
        .replace('\n', "\\n")
}

fn unesc(s: &str) -> String {
    if !s.contains('\\') {
        return s.to_string();
    }
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

/// Serialize every `(digest, summary)` entry plus the workspace-level
/// findings memo to `path`.
pub fn save(path: &Path, entries: &[(u64, FileSummary)], workspace: &[Finding]) -> io::Result<()> {
    let mut out = String::with_capacity(entries.len() * 256);
    out.push_str(HEADER);
    out.push('\n');
    for (dg, s) in entries {
        out.push_str(&format!(
            "F\t{dg:016x}\t{}\t{}\n",
            esc(&s.rel),
            esc(&s.krate)
        ));
        for f in &s.fns {
            out.push_str(&format!(
                "f\t{}\t{}\t{}\t{}\t{}\n",
                f.line,
                esc(&f.name),
                if f.module.is_empty() {
                    "-".to_string()
                } else {
                    esc(&f.module.join("."))
                },
                f.impl_type
                    .as_deref()
                    .map(esc)
                    .unwrap_or_else(|| "-".into()),
                f.is_async as u8,
            ));
        }
        for c in &s.calls {
            let (kind, payload) = match &c.callee {
                Callee::Path(segs) => ('p', segs.join("::")),
                Callee::Method(m) => ('m', m.clone()),
                Callee::Free(f) => ('r', f.clone()),
            };
            out.push_str(&format!(
                "c\t{}\t{}\t{}\t{}\t{kind}\t{}\n",
                c.from,
                c.line,
                c.guarded as u8,
                c.awaited as u8,
                esc(&payload)
            ));
        }
        for src in &s.sources {
            out.push_str(&format!(
                "s\t{}\t{}\t{}\n",
                src.from,
                src.line,
                esc(&src.what)
            ));
        }
        for x in &s.sinks {
            let k = match x.kind {
                SinkKind::Unwrap => 'u',
                SinkKind::Expect => 'e',
                SinkKind::MapIndex => 'i',
            };
            out.push_str(&format!(
                "x\t{}\t{}\t{k}\t{}\n",
                x.from, x.line, x.guarded as u8
            ));
        }
        for (alias, segs) in &s.uses {
            out.push_str(&format!("u\t{}\t{}\n", esc(alias), esc(&segs.join("::"))));
        }
        for (line, rules) in &s.allows {
            let names: Vec<&str> = rules.iter().map(|r| r.name()).collect();
            out.push_str(&format!("a\t{line}\t{}\n", names.join(",")));
        }
        for f in &s.local_findings {
            out.push_str(&format!(
                "l\t{}\t{}\t{}\n",
                f.line,
                f.rule.name(),
                esc(&f.message)
            ));
        }
    }
    out.push_str(&format!("W\t{:016x}\n", workspace_digest(entries)));
    for f in workspace {
        out.push_str(&format!(
            "w\t{}\t{}\t{}\t{}\n",
            esc(&f.path),
            f.line,
            f.rule.name(),
            esc(&f.message)
        ));
    }
    std::fs::write(path, out)
}

/// Parse a cache file. Returns `None` on any irregularity: the caller
/// falls back to a cold scan.
pub fn load(path: &Path) -> Option<CacheDoc> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut lines = text.lines();
    if lines.next()? != HEADER {
        return None;
    }
    let mut out: Vec<(u64, FileSummary)> = Vec::new();
    let mut workspace: Option<(u64, Vec<Finding>)> = None;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split('\t');
        let tag = parts.next()?;
        if tag == "F" {
            let dg = u64::from_str_radix(parts.next()?, 16).ok()?;
            let rel = unesc(parts.next()?);
            let krate = unesc(parts.next()?);
            out.push((
                dg,
                FileSummary {
                    rel,
                    krate,
                    ..FileSummary::default()
                },
            ));
            continue;
        }
        if tag == "W" {
            let dg = u64::from_str_radix(parts.next()?, 16).ok()?;
            workspace = Some((dg, Vec::new()));
            continue;
        }
        if tag == "w" {
            let (_, ws) = workspace.as_mut()?;
            let path = unesc(parts.next()?);
            let line_no: u32 = parts.next()?.parse().ok()?;
            let rule = Rule::from_name(parts.next()?)?;
            ws.push(Finding {
                path,
                line: line_no,
                rule,
                message: unesc(parts.next()?),
            });
            continue;
        }
        let (_, cur) = out.last_mut()?;
        match tag {
            "f" => {
                let line_no: u32 = parts.next()?.parse().ok()?;
                let name = unesc(parts.next()?);
                let module = match parts.next()? {
                    "-" => Vec::new(),
                    m => unesc(m).split('.').map(str::to_string).collect(),
                };
                let impl_type = match parts.next()? {
                    "-" => None,
                    t => Some(unesc(t)),
                };
                let is_async = parts.next()? == "1";
                cur.fns.push(FnItem {
                    name,
                    module,
                    impl_type,
                    line: line_no,
                    is_async,
                });
            }
            "c" => {
                let from: usize = parts.next()?.parse().ok()?;
                let line_no: u32 = parts.next()?.parse().ok()?;
                let guarded = parts.next()? == "1";
                let awaited = parts.next()? == "1";
                let kind = parts.next()?;
                let payload = unesc(parts.next()?);
                let callee = match kind {
                    "p" => Callee::Path(payload.split("::").map(str::to_string).collect()),
                    "m" => Callee::Method(payload),
                    "r" => Callee::Free(payload),
                    _ => return None,
                };
                cur.calls.push(CallRef {
                    from,
                    callee,
                    line: line_no,
                    guarded,
                    awaited,
                });
            }
            "s" => {
                let from: usize = parts.next()?.parse().ok()?;
                let line_no: u32 = parts.next()?.parse().ok()?;
                cur.sources.push(SourceRef {
                    from,
                    line: line_no,
                    what: unesc(parts.next()?),
                });
            }
            "x" => {
                let from: usize = parts.next()?.parse().ok()?;
                let line_no: u32 = parts.next()?.parse().ok()?;
                let kind = match parts.next()? {
                    "u" => SinkKind::Unwrap,
                    "e" => SinkKind::Expect,
                    "i" => SinkKind::MapIndex,
                    _ => return None,
                };
                let guarded = parts.next()? == "1";
                cur.sinks.push(SinkRef {
                    from,
                    line: line_no,
                    kind,
                    guarded,
                });
            }
            "u" => {
                let alias = unesc(parts.next()?);
                let segs = unesc(parts.next()?)
                    .split("::")
                    .map(str::to_string)
                    .collect();
                cur.uses.push((alias, segs));
            }
            "a" => {
                let line_no: u32 = parts.next()?.parse().ok()?;
                let rules: Option<Vec<Rule>> =
                    parts.next()?.split(',').map(Rule::from_name).collect();
                cur.allows.push((line_no, rules?));
            }
            "l" => {
                let line_no: u32 = parts.next()?.parse().ok()?;
                let rule = Rule::from_name(parts.next()?)?;
                cur.local_findings.push(Finding {
                    path: cur.rel.clone(),
                    line: line_no,
                    rule,
                    message: unesc(parts.next()?),
                });
            }
            _ => return None,
        }
    }
    Some(CacheDoc {
        entries: out,
        workspace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::extract;

    #[test]
    fn round_trip_preserves_summaries_exactly() {
        let src = "
use deep_json::Value;
// deep-lint: allow(unordered-iter) — corpus
pub fn f(m: &M) {
    let t = Instant::now();
    helper::go();
    m.get(&1).unwrap();
    let c = std::panic::catch_unwind(|| risky().unwrap());
}
";
        let mut s = extract("crates/core/src/lib.rs", src);
        s.local_findings.push(Finding {
            path: "crates/core/src/lib.rs".to_string(),
            line: 5,
            rule: Rule::AmbientAuthority,
            message: "msg with\ttab and\nnewline".to_string(),
        });
        let entries = vec![(digest("crates/core/src/lib.rs", src), s)];
        let ws = vec![Finding {
            path: "crates/core/src/lib.rs".to_string(),
            line: 6,
            rule: Rule::DeterminismTaint,
            message: "memoized interprocedural finding".to_string(),
        }];
        let dir = std::env::temp_dir().join("deep-lint-cache-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("summaries.txt");
        save(&path, &entries, &ws).unwrap();
        let loaded = load(&path).expect("cache parses");
        assert_eq!(loaded.entries.len(), 1);
        assert_eq!(loaded.entries[0].0, entries[0].0);
        assert_eq!(loaded.entries[0].1, entries[0].1);
        let (ws_dg, ws_loaded) = loaded.workspace.expect("memo present");
        assert_eq!(ws_dg, workspace_digest(&entries));
        assert_eq!(ws_loaded, ws);
    }

    #[test]
    fn digest_depends_on_path_and_content() {
        assert_ne!(digest("a.rs", "x"), digest("b.rs", "x"));
        assert_ne!(digest("a.rs", "x"), digest("a.rs", "y"));
        assert_eq!(digest("a.rs", "x"), digest("a.rs", "x"));
    }

    #[test]
    fn malformed_cache_is_rejected_not_trusted() {
        let dir = std::env::temp_dir().join("deep-lint-cache-test-bad");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("summaries.txt");
        std::fs::write(&path, "not-a-cache\nF\tzz\n").unwrap();
        assert!(load(&path).is_none());
        std::fs::write(&path, format!("{HEADER}\nF\tnothex\trel\tk\n")).unwrap();
        assert!(load(&path).is_none());
        std::fs::write(&path, format!("{HEADER}\nq\t1\n")).unwrap();
        assert!(load(&path).is_none());
    }
}
