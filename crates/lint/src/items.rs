//! Item extraction — the layer between the lexer and the call graph.
//!
//! One pass over a [`LexFile`] recovers just enough structure for the
//! interprocedural rules (DESIGN.md §17): which functions a file
//! defines (with module path and surrounding `impl` type), which calls
//! each function body makes, where the ambient-authority *sources* and
//! panic *sinks* sit, and which `use` declarations are in scope for
//! resolving free calls. Like the lexer it is deliberately not a
//! parser: generics are skipped by bracket counting, types are names,
//! and the inevitable ambiguity is handled downstream by the resolver
//! (candidate caps + drop counting), not by more grammar here.
//!
//! `#[cfg(test)]` modules and `#[test]` functions are excluded from
//! extraction entirely: test code may panic and read clocks at will,
//! and keeping it out of the graph keeps every reachability rule
//! focused on shipping paths.

use crate::lexer::{lex, LexFile, TokKind, Token};
use crate::rules::{pragma_allows, Finding, Rule};

/// One extracted function item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnItem {
    /// Bare function name.
    pub name: String,
    /// Enclosing in-file module path (`mod a { mod b { … } }` → `[a, b]`).
    pub module: Vec<String>,
    /// Enclosing `impl` type name, when inside an impl block.
    pub impl_type: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Declared `async fn` — used by the resolver to split same-name
    /// method candidates by call-site awaited-ness.
    pub is_async: bool,
}

/// What a call site refers to, before resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Callee {
    /// `a::b::f(…)` — path segments as written (aliases unexpanded).
    Path(Vec<String>),
    /// `.m(…)` — method name only; receiver type is unknown.
    Method(String),
    /// `f(…)` — unqualified call.
    Free(String),
}

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallRef {
    /// Index into [`FileSummary::fns`] of the enclosing function.
    pub from: usize,
    pub callee: Callee,
    pub line: u32,
    /// True when the call sits inside a `catch_unwind(…)` argument —
    /// a panic barrier the P1 traversal does not cross.
    pub guarded: bool,
    /// The call's result is `.await`ed — the callee must be async.
    pub awaited: bool,
}

/// An ambient-authority source site (the D2 pattern set), recorded for
/// the D4 taint pass even in files where D2 itself is exempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceRef {
    pub from: usize,
    pub line: u32,
    /// Human-readable description (`wall-clock `Instant``, …).
    pub what: String,
}

/// The panic-sink kinds P1 audits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinkKind {
    /// `.unwrap()` not matching the mutex-poison pattern.
    Unwrap,
    /// `.expect("…")` with a literal message (distinguishes
    /// `Result::expect` from parser-style `self.expect(b'[')` methods).
    Expect,
    /// `name[&key]` — map indexing, which panics on a missing key.
    MapIndex,
}

impl SinkKind {
    pub fn describe(self) -> &'static str {
        match self {
            SinkKind::Unwrap => "`.unwrap()`",
            SinkKind::Expect => "`.expect(\"…\")`",
            SinkKind::MapIndex => "map index `[&…]` (panics on missing key)",
        }
    }
}

/// One panic-sink site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SinkRef {
    pub from: usize,
    pub line: u32,
    pub kind: SinkKind,
    /// True inside a `catch_unwind(…)` argument region.
    pub guarded: bool,
}

/// Everything the interprocedural pass needs from one file. This is
/// also the unit of the incremental cache: a digest-keyed summary that
/// replays without re-lexing (see `cache` in lib.rs).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FileSummary {
    /// Workspace-relative `/`-separated path.
    pub rel: String,
    /// Crate import name derived from the path (`crates/json/…` →
    /// `deep_json`, `vendor/rayon/…` → `rayon`, `tests/x.rs` →
    /// `test_x`).
    pub krate: String,
    pub fns: Vec<FnItem>,
    pub calls: Vec<CallRef>,
    pub sources: Vec<SourceRef>,
    pub sinks: Vec<SinkRef>,
    /// `use` declarations: local alias → full path segments.
    pub uses: Vec<(String, Vec<String>)>,
    /// Pragma-covered lines: (line, allowed rules) — applied to the
    /// workspace-level findings, which `lint_source` never sees.
    pub allows: Vec<(u32, Vec<Rule>)>,
    /// File-local findings at the file's full path mask (cached so a
    /// warm run skips `lint_source` entirely; filtered by the enabled
    /// set at reporting time).
    pub local_findings: Vec<Finding>,
}

/// Crate import name for a workspace-relative path.
pub fn crate_of_path(rel: &str) -> String {
    let seg: Vec<&str> = rel.split('/').collect();
    match seg.as_slice() {
        ["crates", name, ..] => format!("deep_{}", name.replace('-', "_")),
        ["vendor", name, ..] => name.replace('-', "_"),
        ["tests", file, ..] => format!("test_{}", file.trim_end_matches(".rs").replace('-', "_")),
        ["examples", file, ..] => {
            format!("example_{}", file.trim_end_matches(".rs").replace('-', "_"))
        }
        _ => "deep_repro".to_string(),
    }
}

/// In-file base module path implied by the file's location under
/// `src/` (`crates/x/src/a/b.rs` → `[a, b]`; `lib.rs`/`main.rs`/
/// `mod.rs` and `bin/` roots → `[]`).
fn base_module(rel: &str) -> Vec<String> {
    let Some(pos) = rel.find("src/") else {
        return Vec::new();
    };
    let tail = &rel[pos + 4..];
    let mut out: Vec<String> = Vec::new();
    let parts: Vec<&str> = tail.split('/').collect();
    for (i, p) in parts.iter().enumerate() {
        let last = i + 1 == parts.len();
        if last {
            let stem = p.trim_end_matches(".rs");
            if !matches!(stem, "lib" | "main" | "mod") && !rel.contains("src/bin/") {
                out.push(stem.to_string());
            }
        } else if *p != "bin" {
            out.push(p.to_string());
        }
    }
    out
}

/// Identifiers that look like calls but are control flow or bindings.
const NOT_CALLS: &[&str] = &[
    "if", "while", "match", "for", "return", "loop", "fn", "let", "in", "as", "move", "ref", "mut",
    "else", "unsafe", "async", "await", "dyn", "impl", "where", "pub", "use", "mod", "struct",
    "enum", "trait", "type", "const", "static", "crate", "super", "self", "Self", "box", "yield",
];

/// Extract a file's interprocedural summary. `rel` decides the crate
/// name and base module path; file-local findings are *not* computed
/// here (lib.rs owns that, with the path mask).
pub fn extract(rel: &str, source: &str) -> FileSummary {
    let file = lex(source);
    extract_lexed(rel, &file)
}

fn extract_lexed(rel: &str, file: &LexFile) -> FileSummary {
    let toks = &file.tokens;
    let mut out = FileSummary {
        rel: rel.to_string(),
        krate: crate_of_path(rel),
        ..FileSummary::default()
    };
    out.allows = pragma_allows(file);

    // Region stacks. Each entry records the depth of its opening `{`
    // (opener and closer share a depth value), so the first `}` at that
    // depth closes the region.
    let mut mods: Vec<(String, u32)> = Vec::new(); // (name, open depth)
    let mut impls: Vec<(Option<String>, u32)> = Vec::new();
    let mut fn_stack: Vec<(usize, u32)> = Vec::new(); // (fn index, body depth)
    let mut test_depth: Option<u32> = None; // inside #[cfg(test)] mod
    let mut guard_until: Vec<u32> = Vec::new(); // catch_unwind arg depths

    // Attribute state: idents of the most recent `#[…]` group(s) before
    // the next item keyword.
    let mut attr_idents: Vec<String> = Vec::new();

    let base = base_module(rel);

    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        match &t.kind {
            TokKind::Punct('#') if matches!(toks.get(i + 1), Some(n) if is_punct(n, '[')) => {
                // Collect idents of the attribute; it ends at the `]`
                // matching this `[` (same depth as the opener).
                let open_depth = toks[i + 1].depth;
                let mut j = i + 2;
                while j < toks.len() {
                    if is_punct(&toks[j], ']') && toks[j].depth == open_depth {
                        break;
                    }
                    if let TokKind::Ident(s) = &toks[j].kind {
                        attr_idents.push(s.clone());
                    }
                    j += 1;
                }
                i = j + 1;
                continue;
            }
            TokKind::Punct('}') => {
                while let Some(&(_, d)) = mods.last() {
                    if d == t.depth {
                        mods.pop();
                        if test_depth == Some(t.depth) {
                            test_depth = None;
                        }
                    } else {
                        break;
                    }
                }
                while let Some(&(_, d)) = impls.last() {
                    if d == t.depth {
                        impls.pop();
                    } else {
                        break;
                    }
                }
                while let Some(&(_, d)) = fn_stack.last() {
                    if d == t.depth {
                        fn_stack.pop();
                    } else {
                        break;
                    }
                }
            }
            TokKind::Punct(')') => {
                while let Some(&d) = guard_until.last() {
                    if d == t.depth {
                        guard_until.pop();
                    } else {
                        break;
                    }
                }
            }
            TokKind::Ident(name) => {
                let attr_is_test = attr_idents.iter().any(|a| a == "test")
                    && !attr_idents.iter().any(|a| a == "not");
                match name.as_str() {
                    "mod" => {
                        // `mod name {` opens an in-file module;
                        // `mod name;` is an out-of-line declaration.
                        if let (Some(TokKind::Ident(mname)), Some(open)) =
                            (toks.get(i + 1).map(|t| &t.kind), toks.get(i + 2))
                        {
                            if is_punct(open, '{') {
                                mods.push((mname.clone(), open.depth));
                                if attr_is_test && test_depth.is_none() {
                                    test_depth = Some(open.depth);
                                }
                                attr_idents.clear();
                                i += 3;
                                continue;
                            }
                        }
                        attr_idents.clear();
                    }
                    "impl" => {
                        if let Some((ty, next)) = parse_impl_header(toks, i) {
                            impls.push((ty, toks[next].depth));
                            attr_idents.clear();
                            i = next + 1;
                            continue;
                        }
                        attr_idents.clear();
                    }
                    "fn" => {
                        let fn_is_test = attr_is_test || test_depth.is_some();
                        attr_idents.clear();
                        if let Some(TokKind::Ident(fname)) = toks.get(i + 1).map(|t| &t.kind) {
                            // Find the body `{` (same depth as `fn`);
                            // a `;` first means a bodyless trait decl.
                            let header_depth = t.depth;
                            let mut j = i + 2;
                            let mut body: Option<u32> = None;
                            while j < toks.len() {
                                let u = &toks[j];
                                if u.depth == header_depth {
                                    if is_punct(u, '{') {
                                        body = Some(u.depth);
                                        break;
                                    }
                                    if is_punct(u, ';') {
                                        break;
                                    }
                                }
                                if u.depth < header_depth {
                                    break;
                                }
                                j += 1;
                            }
                            if fn_is_test {
                                // Skip the whole body: no items, calls,
                                // or sinks from test code.
                                if let Some(bd) = body {
                                    let mut k = j + 1;
                                    while k < toks.len() {
                                        if is_punct(&toks[k], '}') && toks[k].depth == bd {
                                            break;
                                        }
                                        k += 1;
                                    }
                                    i = k + 1;
                                } else {
                                    i = j + 1;
                                }
                                continue;
                            }
                            let mut module = base.clone();
                            module.extend(mods.iter().map(|(m, _)| m.clone()));
                            out.fns.push(FnItem {
                                name: fname.clone(),
                                module,
                                impl_type: impls.last().and_then(|(t, _)| t.clone()),
                                line: t.line,
                                is_async: i >= 1 && is_ident_at(toks, i - 1, "async"),
                            });
                            if let Some(bd) = body {
                                fn_stack.push((out.fns.len() - 1, bd));
                                i = j + 1;
                                continue;
                            }
                            i = j + 1;
                            continue;
                        }
                    }
                    "use" if fn_stack.is_empty() => {
                        i = parse_use(toks, i, &mut out.uses);
                        attr_idents.clear();
                        continue;
                    }
                    "struct" | "enum" | "trait" | "static" | "const" | "type" => {
                        attr_idents.clear();
                    }
                    _ => {
                        if let Some(&(cur, _)) = fn_stack.last() {
                            let guarded = !guard_until.is_empty();
                            i = scan_body_ident(toks, i, cur, guarded, &mut out, &mut guard_until);
                            continue;
                        }
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    out
}

/// Handle one identifier inside a function body: classify call sites,
/// sources, and sinks. Returns the next index to resume from.
fn scan_body_ident(
    toks: &[Token],
    i: usize,
    cur: usize,
    guarded: bool,
    out: &mut FileSummary,
    guard_until: &mut Vec<u32>,
) -> usize {
    let t = &toks[i];
    let name = match &t.kind {
        TokKind::Ident(s) => s.as_str(),
        _ => return i + 1,
    };
    let line = t.line;

    // --- D2-pattern ambient-authority sources (for D4 taint). ---
    match name {
        "Instant" | "SystemTime" | "UNIX_EPOCH" => out.sources.push(SourceRef {
            from: cur,
            line,
            what: format!("wall-clock `{name}`"),
        }),
        "thread_rng" | "from_entropy" => out.sources.push(SourceRef {
            from: cur,
            line,
            what: format!("ambient RNG `{name}`"),
        }),
        "env" => {
            let member = is_punct_at(toks, i + 1, ':')
                && is_punct_at(toks, i + 2, ':')
                && matches!(toks.get(i + 3).map(|t| &t.kind), Some(TokKind::Ident(m)) if matches!(
                    m.as_str(),
                    "var" | "var_os" | "vars" | "vars_os" | "args" | "args_os"
                        | "set_var" | "remove_var" | "temp_dir"
                ));
            let std_path = i >= 3
                && is_punct_at(toks, i - 1, ':')
                && is_punct_at(toks, i - 2, ':')
                && is_ident_at(toks, i - 3, "std");
            if member || std_path {
                out.sources.push(SourceRef {
                    from: cur,
                    line,
                    what: "`std::env` access".to_string(),
                });
            }
        }
        _ => {}
    }

    // --- catch_unwind barrier region. ---
    if name == "catch_unwind" && is_punct_at(toks, i + 1, '(') {
        guard_until.push(toks[i + 1].depth);
    }

    let prev_dot = i >= 1 && is_punct_at(toks, i - 1, '.');
    let prev_path = i >= 2 && is_punct_at(toks, i - 1, ':') && is_punct_at(toks, i - 2, ':');

    // --- Sinks (P1). ---
    if (name == "unwrap" || name == "expect") && prev_dot && is_punct_at(toks, i + 1, '(') {
        let is_expect = name == "expect";
        // `.expect(<non-literal>)` is a parser-style method, not
        // `Result::expect`.
        let expect_lit = matches!(toks.get(i + 2).map(|t| &t.kind), Some(TokKind::Lit));
        if !is_expect || expect_lit {
            if !poison_pattern(toks, i) {
                out.sinks.push(SinkRef {
                    from: cur,
                    line,
                    kind: if is_expect {
                        SinkKind::Expect
                    } else {
                        SinkKind::Unwrap
                    },
                    guarded,
                });
            }
            return i + 1;
        }
    }
    if is_punct_at(toks, i + 1, '[') && is_punct_at(toks, i + 2, '&') && !prev_path {
        out.sinks.push(SinkRef {
            from: cur,
            line,
            kind: SinkKind::MapIndex,
            guarded,
        });
    }

    // --- Call sites. ---
    if !is_punct_at(toks, i + 1, '(') {
        // `path::seg::f(` — collect when this ident heads a path whose
        // last segment is a call. Only start at the path head.
        if is_punct_at(toks, i + 1, ':') && is_punct_at(toks, i + 2, ':') && !prev_path {
            let mut segs = vec![name.to_string()];
            let mut j = i + 1;
            while is_punct_at(toks, j, ':') && is_punct_at(toks, j + 1, ':') {
                match toks.get(j + 2).map(|t| &t.kind) {
                    Some(TokKind::Ident(s)) => {
                        segs.push(s.clone());
                        j += 3;
                    }
                    // `::<T>` turbofish or `::{…}` group — stop.
                    _ => break,
                }
            }
            if is_punct_at(toks, j, '(') && segs.len() >= 2 {
                out.calls.push(CallRef {
                    from: cur,
                    callee: Callee::Path(segs),
                    line,
                    guarded,
                    awaited: call_awaited(toks, j),
                });
            }
            // Fall through segment by segment (middle segments never
            // re-record: `prev_path` guards them) so that sources like
            // `std::time::Instant` are still seen at their own index.
        }
        return i + 1;
    }

    // ident directly followed by `(`. Macro calls `name!(…)` never
    // reach here (the `!` sits between the ident and the `(`).
    if NOT_CALLS.contains(&name) {
        return i + 1;
    }
    {
        let awaited = call_awaited(toks, i + 1);
        if prev_dot {
            out.calls.push(CallRef {
                from: cur,
                callee: Callee::Method(name.to_string()),
                line,
                guarded,
                awaited,
            });
        } else if !prev_path {
            out.calls.push(CallRef {
                from: cur,
                callee: Callee::Free(name.to_string()),
                line,
                guarded,
                awaited,
            });
        }
    }
    i + 1
}

/// Is the call whose argument list opens at `toks[open]` immediately
/// `.await`ed? (`f(…).await` — the closer shares the opener's depth.)
fn call_awaited(toks: &[Token], open: usize) -> bool {
    let d = toks[open].depth;
    let mut k = open + 1;
    while k < toks.len() {
        if toks[k].depth < d {
            return false;
        }
        if toks[k].depth == d && is_punct_at(toks, k, ')') {
            return is_punct_at(toks, k + 1, '.') && is_ident_at(toks, k + 2, "await");
        }
        k += 1;
    }
    false
}

/// Is `.unwrap()`/`.expect(…)` at `i` chained directly onto a lock or
/// channel primitive (`lock() / wait() / wait_timeout() / recv() /
/// read() / write()`)? That is mutex-poison / disconnect propagation —
/// deliberate crash-on-poisoned-state, not an input-dependent panic.
fn poison_pattern(toks: &[Token], i: usize) -> bool {
    // toks[i-1] is `.`; toks[i-2] must be `)` closing the receiver call.
    if i < 2 || !is_punct_at(toks, i - 2, ')') {
        return false;
    }
    let close_depth = toks[i - 2].depth;
    let mut j = i - 2;
    while j > 0 {
        j -= 1;
        if is_punct_at(toks, j, '(') && toks[j].depth == close_depth {
            return j >= 1
                && matches!(toks.get(j - 1).map(|t| &t.kind), Some(TokKind::Ident(m)) if matches!(
                    m.as_str(),
                    "lock" | "wait" | "wait_timeout" | "recv" | "read" | "write" | "join"
                ));
        }
        if toks[j].depth < close_depth {
            return false;
        }
    }
    false
}

/// Parse an `impl` header starting at `toks[i]` (the `impl` ident).
/// Returns `(type name, index of the opening `{`)`, or `None` when the
/// header does not end in a block at the same depth (e.g. a macro).
fn parse_impl_header(toks: &[Token], i: usize) -> Option<(Option<String>, usize)> {
    let depth = toks[i].depth;
    let mut j = i + 1;
    // Skip a generic parameter list by <>-counting; `->` cannot appear
    // before the impl type.
    if is_punct_at(toks, j, '<') {
        let mut angle = 0i32;
        while j < toks.len() {
            if is_punct_at(toks, j, '<') {
                angle += 1;
            } else if is_punct_at(toks, j, '>') {
                angle -= 1;
                if angle == 0 {
                    j += 1;
                    break;
                }
            }
            j += 1;
        }
    }
    // Collect the path up to `for`, `where`, or the body `{`; if `for`
    // appears, the self type is what follows it.
    let mut last_path_end: Option<String> = None;
    let mut after_for = false;
    let mut in_where = false;
    let mut ty: Option<String> = None;
    while j < toks.len() {
        let t = &toks[j];
        if t.depth < depth {
            return None;
        }
        if t.depth == depth {
            match &t.kind {
                TokKind::Punct('{') => {
                    let name = if after_for {
                        ty.take()
                    } else {
                        last_path_end.take()
                    };
                    return Some((name, j));
                }
                TokKind::Punct(';') => return None,
                TokKind::Ident(s) if s == "for" && !in_where => {
                    after_for = true;
                }
                TokKind::Ident(s) if s == "where" => {
                    // Type already decided; bounds must not overwrite it.
                    in_where = true;
                }
                TokKind::Ident(s) if !in_where => {
                    // Heads and tails of paths: keep the most recent
                    // ident at header depth outside generics — for
                    // `fmt::Display` that is `Display`; for `Foo` it is
                    // `Foo`.
                    if after_for {
                        if ty.is_none() || is_punct_at(toks, j.wrapping_sub(1), ':') {
                            ty = Some(s.clone());
                        }
                    } else if last_path_end.is_none() || is_punct_at(toks, j.wrapping_sub(1), ':') {
                        last_path_end = Some(s.clone());
                    }
                }
                TokKind::Punct('<') => {
                    // Generic args of the type: skip to the matching `>`.
                    let mut angle = 0i32;
                    while j < toks.len() {
                        if is_punct_at(toks, j, '<') {
                            angle += 1;
                        } else if is_punct_at(toks, j, '>') {
                            angle -= 1;
                            if angle == 0 {
                                break;
                            }
                        }
                        j += 1;
                    }
                }
                _ => {}
            }
        }
        j += 1;
    }
    None
}

/// Parse a top-level `use …;` declaration starting at `toks[i]`,
/// appending (alias → path) pairs. Returns the index after the `;`.
fn parse_use(toks: &[Token], i: usize, out: &mut Vec<(String, Vec<String>)>) -> usize {
    // Find the terminating `;` at the `use` keyword's depth.
    let depth = toks[i].depth;
    let mut end = i + 1;
    while end < toks.len() && !(is_punct_at(toks, end, ';') && toks[end].depth == depth) {
        end += 1;
    }
    parse_use_tree(&toks[i + 1..end], &mut Vec::new(), out);
    end + 1
}

/// Recursive-descent over a use tree's tokens: `a::b::{c as d, e::f}`.
fn parse_use_tree(toks: &[Token], prefix: &mut Vec<String>, out: &mut Vec<(String, Vec<String>)>) {
    let mut i = 0;
    let start_len = prefix.len();
    while i < toks.len() {
        match &toks[i].kind {
            TokKind::Ident(s) if s == "as" => {
                // `path as alias` — rebind the last pushed segment.
                if let (Some(TokKind::Ident(alias)), Some(_)) =
                    (toks.get(i + 1).map(|t| &t.kind), prefix.last())
                {
                    out.push((alias.clone(), prefix.clone()));
                    // Mark emitted so the flush below skips it.
                    prefix.truncate(start_len);
                    i += 2;
                    continue;
                }
                i += 1;
            }
            TokKind::Ident(s) => {
                prefix.push(s.clone());
                i += 1;
            }
            TokKind::Punct('*') => {
                // Glob import: nothing nameable to record.
                prefix.truncate(start_len);
                i += 1;
            }
            TokKind::Punct('{') => {
                // Group: split the inside on top-level commas.
                let open_depth = toks[i].depth;
                let mut j = i + 1;
                let mut item_start = j;
                while j < toks.len() {
                    let closing = is_punct_at(toks, j, '}') && toks[j].depth == open_depth;
                    if (is_punct_at(toks, j, ',') && toks[j].depth == open_depth + 1) || closing {
                        if j > item_start {
                            parse_use_tree(&toks[item_start..j], prefix, out);
                        }
                        item_start = j + 1;
                        if closing {
                            break;
                        }
                    }
                    j += 1;
                }
                prefix.truncate(start_len);
                i = j + 1;
            }
            TokKind::Punct(',') => {
                flush_leaf(prefix, start_len, out);
                i += 1;
            }
            _ => {
                i += 1; // `:` of `::`, etc.
            }
        }
    }
    flush_leaf(prefix, start_len, out);
}

/// Emit the accumulated path as `(last segment → path)` if non-empty.
fn flush_leaf(prefix: &mut Vec<String>, start_len: usize, out: &mut Vec<(String, Vec<String>)>) {
    if prefix.len() > start_len {
        if let Some(last) = prefix.last().cloned() {
            if last != "self" {
                out.push((last, prefix.clone()));
            } else if prefix.len() >= 2 {
                // `use a::b::{self}` imports `b`.
                let name = prefix[prefix.len() - 2].clone();
                out.push((name, prefix[..prefix.len() - 1].to_vec()));
            }
        }
        prefix.truncate(start_len);
    }
}

fn is_punct(t: &Token, c: char) -> bool {
    t.kind == TokKind::Punct(c)
}

fn is_punct_at(toks: &[Token], i: usize, c: char) -> bool {
    toks.get(i).is_some_and(|t| t.kind == TokKind::Punct(c))
}

fn is_ident_at(toks: &[Token], i: usize, name: &str) -> bool {
    matches!(toks.get(i).map(|t| &t.kind), Some(TokKind::Ident(s)) if s == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fns_modules_and_impls_are_qualified() {
        let src = "
mod outer {
    pub struct T;
    impl T {
        pub fn method(&self) {}
    }
    pub fn free() {}
}
impl std::fmt::Display for W {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { Ok(()) }
}
fn top() {}
";
        let s = extract("crates/core/src/lib.rs", src);
        assert_eq!(s.krate, "deep_core");
        let names: Vec<(String, Vec<String>, Option<String>)> = s
            .fns
            .iter()
            .map(|f| (f.name.clone(), f.module.clone(), f.impl_type.clone()))
            .collect();
        assert_eq!(
            names,
            vec![
                (
                    "method".to_string(),
                    vec!["outer".to_string()],
                    Some("T".to_string())
                ),
                ("free".to_string(), vec!["outer".to_string()], None),
                ("fmt".to_string(), vec![], Some("W".to_string())),
                ("top".to_string(), vec![], None),
            ]
        );
    }

    #[test]
    fn file_location_implies_base_module() {
        let s = extract("crates/bench/src/des_scaling.rs", "pub fn run() {}");
        assert_eq!(s.fns[0].module, vec!["des_scaling".to_string()]);
        let s = extract("crates/bench/src/experiments/f02.rs", "pub fn go() {}");
        assert_eq!(
            s.fns[0].module,
            vec!["experiments".to_string(), "f02".to_string()]
        );
        let s = extract("crates/serve/src/bin/deep_serve.rs", "fn main() {}");
        assert!(s.fns[0].module.is_empty());
    }

    #[test]
    fn test_code_is_excluded() {
        let src = "
pub fn shipping() { helper(); }
fn helper() {}
#[test]
fn a_test() { shipping(); panic_helper().unwrap(); }
#[cfg(test)]
mod tests {
    fn test_helper() { super::shipping(); }
}
#[cfg(not(test))]
pub fn also_shipping() {}
";
        let s = extract("crates/core/src/lib.rs", src);
        let names: Vec<&str> = s.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["shipping", "helper", "also_shipping"]);
        assert_eq!(s.calls.len(), 1, "only the shipping call survives");
        assert!(s.sinks.is_empty(), "test-body unwrap is not a sink");
    }

    #[test]
    fn calls_classify_into_path_method_free() {
        let src = "
fn f() {
    helper();
    other::module::target(1);
    value.method(2);
    Type::assoc(3);
    mac!(not_a_call);
}
";
        let s = extract("crates/core/src/lib.rs", src);
        let kinds: Vec<&Callee> = s.calls.iter().map(|c| &c.callee).collect();
        assert_eq!(
            kinds,
            vec![
                &Callee::Free("helper".to_string()),
                &Callee::Path(vec![
                    "other".to_string(),
                    "module".to_string(),
                    "target".to_string()
                ]),
                &Callee::Method("method".to_string()),
                &Callee::Path(vec!["Type".to_string(), "assoc".to_string()]),
            ]
        );
    }

    #[test]
    fn sources_and_sinks_are_recorded() {
        let src = "
fn f(m: &BTreeMap<u64, u32>, id: u64) -> u32 {
    let t = Instant::now();
    let v = std::env::var(\"X\").unwrap();
    let x = m.get(&id).unwrap();
    let y = opt.expect(\"missing\");
    let z = parser.expect(b'[');
    m[&id]
}
";
        let s = extract("crates/core/src/lib.rs", src);
        assert_eq!(s.sources.len(), 2, "{:?}", s.sources);
        let kinds: Vec<SinkKind> = s.sinks.iter().map(|k| k.kind).collect();
        assert_eq!(
            kinds,
            vec![
                SinkKind::Unwrap,
                SinkKind::Unwrap,
                SinkKind::Expect,
                SinkKind::MapIndex
            ],
            "parser-style expect(b'[') is not a sink"
        );
    }

    #[test]
    fn poison_unwraps_are_skipped_and_catch_unwind_guards() {
        let src = "
fn f(m: &Mutex<u32>) {
    let g = m.lock().unwrap();
    let r = cvar.wait_timeout(g, d).unwrap();
    let bad = compute().unwrap();
    let caught = std::panic::catch_unwind(AssertUnwindSafe(|| risky().unwrap()));
    after().unwrap();
}
";
        let s = extract("crates/core/src/lib.rs", src);
        let plain: Vec<bool> = s.sinks.iter().map(|k| k.guarded).collect();
        assert_eq!(plain, vec![false, true, false], "{:?}", s.sinks);
        let guarded_calls: Vec<(String, bool)> = s
            .calls
            .iter()
            .filter_map(|c| match &c.callee {
                Callee::Free(n) => Some((n.clone(), c.guarded)),
                _ => None,
            })
            .collect();
        assert!(guarded_calls.contains(&("risky".to_string(), true)));
        assert!(guarded_calls.contains(&("after".to_string(), false)));
        assert!(guarded_calls.contains(&("compute".to_string(), false)));
    }

    #[test]
    fn use_declarations_resolve_aliases_and_groups() {
        let src = "
use deep_json::Value;
use std::collections::{BTreeMap, BTreeSet as Set};
use deep_core::loggp::{self, model};
fn f() {}
";
        let s = extract("crates/core/src/lib.rs", src);
        let find = |alias: &str| -> Option<Vec<String>> {
            s.uses
                .iter()
                .find(|(a, _)| a == alias)
                .map(|(_, p)| p.clone())
        };
        assert_eq!(
            find("Value"),
            Some(vec!["deep_json".to_string(), "Value".to_string()])
        );
        assert_eq!(
            find("Set"),
            Some(vec![
                "std".to_string(),
                "collections".to_string(),
                "BTreeSet".to_string()
            ])
        );
        assert_eq!(
            find("loggp"),
            Some(vec!["deep_core".to_string(), "loggp".to_string()])
        );
        assert_eq!(
            find("model"),
            Some(vec![
                "deep_core".to_string(),
                "loggp".to_string(),
                "model".to_string()
            ])
        );
    }

    #[test]
    fn crate_names_follow_workspace_convention() {
        assert_eq!(crate_of_path("crates/json/src/lib.rs"), "deep_json");
        assert_eq!(crate_of_path("vendor/rayon/src/pool.rs"), "rayon");
        assert_eq!(
            crate_of_path("tests/parallel_determinism.rs"),
            "test_parallel_determinism"
        );
        assert_eq!(crate_of_path("src/lib.rs"), "deep_repro");
    }
}
