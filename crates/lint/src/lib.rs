#![forbid(unsafe_code)]
//! `deep-lint` — the workspace determinism & unsafe-hygiene pass.
//!
//! The repo's core claim is that every experiment emits bit-identical
//! output at any thread count (DESIGN §12). That invariant is enforced
//! at runtime by golden-digest tests — this crate enforces it at *check
//! time*, before a stray `HashMap` iteration or wall-clock read ever
//! reaches a digest. Like `vendor/*`, it is fully offline: its own
//! lexer ([`lexer`]), its own rule engine ([`rules`]), no external
//! dependencies beyond the workspace's `deep-json` for `--json` output.
//!
//! Rule catalogue, pragma grammar, and the policy for `allow` pragmas
//! live in DESIGN.md §13 and CONTRIBUTING.md.
//!
//! ## Scope policy
//!
//! Rules apply by path (see [`rules_for_path`]):
//!
//! * `vendor/**` — S1 only. Vendored shims are external idiom; we audit
//!   their `unsafe` but do not impose sim-determinism rules on them.
//! * `crates/bench/src/bin/**` — everything except D2: driver binaries
//!   legitimately read wall clocks (the per-experiment timing table)
//!   and CLI args. The *experiment logic* they call lives in
//!   `crates/bench/src/experiments/`, which is fully in scope.
//! * `crates/lint/**` — everything except D2 (the linter reads the
//!   process environment and filesystem by design).
//! * `crates/serve/**` — everything except D2: the daemon is host-side
//!   service plumbing (wall-clock service timing, CLI args, socket
//!   timeouts), not simulation. The simulation it schedules runs in
//!   `deep-core`/`deep-bench`, which stay fully in scope — the daemon
//!   cannot leak nondeterminism into results it merely transports.
//! * everything else (`crates/**`, `src/**`, `tests/**`, `examples/**`)
//!   — all rules.
//!
//! S2 (`missing-forbid-unsafe`) is a per-crate check on root files
//! (`src/lib.rs`, `src/main.rs`, `src/bin/*.rs`) of every non-vendor
//! package; test and example targets inherit scrutiny from S1 instead.

pub mod lexer;
pub mod rules;

pub use rules::{check_crate_root, lint_source, Finding, Rule, RuleSet};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The file-scoped rules that apply to a workspace-relative path
/// (`/`-separated). Returns [`RuleSet::none`] for paths that are not
/// linted at all (fixtures, generated artifacts).
pub fn rules_for_path(rel: &str) -> RuleSet {
    if rel.contains("tests/fixtures/") || rel.starts_with("target/") {
        return RuleSet::none();
    }
    if rel.starts_with("vendor/") {
        return RuleSet::none()
            .with(Rule::UndocumentedUnsafe)
            .with(Rule::MalformedPragma);
    }
    let all = RuleSet::all();
    if rel.starts_with("crates/bench/src/bin/")
        || rel.starts_with("crates/lint/")
        || rel.starts_with("crates/serve/")
        || rel.starts_with("crates/scenario/src/bin/")
    {
        return all.without(Rule::AmbientAuthority);
    }
    all
}

/// Walk the workspace at `root` and apply every enabled rule. Findings
/// come back sorted by path, line, rule. `enabled` masks rules globally
/// on top of the per-path scope policy.
pub fn scan_workspace(root: &Path, enabled: &RuleSet) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    for (abs, rel) in &files {
        let mask = rules_for_path(rel);
        let effective = Rule::ALL
            .into_iter()
            .filter(|r| mask.has(*r) && enabled.has(*r))
            .fold(RuleSet::none(), RuleSet::with);
        let source = fs::read_to_string(abs)?;
        findings.extend(lint_source(rel, &source, &effective));
    }
    if enabled.has(Rule::MissingForbidUnsafe) {
        for rel in crate_roots(root)? {
            let source = fs::read_to_string(root.join(&rel))?;
            findings.extend(check_crate_root(&rel, &source));
        }
    }
    findings.sort();
    findings.dedup();
    Ok(findings)
}

/// Directories never descended into.
const SKIP_DIRS: [&str; 4] = ["target", ".git", "fixtures", "node_modules"];

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<(PathBuf, String)>) -> io::Result<()> {
    // Sorted traversal: the lint's own output order must be
    // deterministic — same discipline it enforces.
    let mut entries: Vec<_> = fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if SKIP_DIRS.contains(&name) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push((path, rel));
        }
    }
    Ok(())
}

/// Crate-root files (workspace-relative) of every non-vendor package:
/// the root package plus each `crates/*` member.
pub fn crate_roots(root: &Path) -> io::Result<Vec<String>> {
    let mut pkg_dirs = vec![String::new()];
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut members: Vec<_> = fs::read_dir(&crates)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| p.is_dir() && p.join("Cargo.toml").is_file())
            .collect();
        members.sort();
        for m in members {
            let name = m.file_name().and_then(|n| n.to_str()).unwrap_or("");
            pkg_dirs.push(format!("crates/{name}"));
        }
    }
    let mut roots = Vec::new();
    for dir in pkg_dirs {
        let prefix = if dir.is_empty() {
            String::new()
        } else {
            format!("{dir}/")
        };
        for candidate in ["src/lib.rs", "src/main.rs"] {
            if root.join(&prefix).join(candidate).is_file() {
                roots.push(format!("{prefix}{candidate}"));
            }
        }
        let bin_dir = root.join(&prefix).join("src/bin");
        if bin_dir.is_dir() {
            let mut bins: Vec<_> = fs::read_dir(&bin_dir)?
                .collect::<Result<Vec<_>, _>>()?
                .into_iter()
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|e| e == "rs"))
                .collect();
            bins.sort();
            for b in bins {
                let name = b.file_name().and_then(|n| n.to_str()).unwrap_or("");
                roots.push(format!("{prefix}src/bin/{name}"));
            }
        }
    }
    Ok(roots)
}

/// Render findings as the stable JSON report consumed by CI.
pub fn findings_to_json(findings: &[Finding]) -> String {
    use deep_json::Value;
    let items: Vec<Value> = findings
        .iter()
        .map(|f| {
            Value::Object(vec![
                ("rule".to_string(), Value::String(f.rule.name().to_string())),
                ("path".to_string(), Value::String(f.path.clone())),
                ("line".to_string(), Value::Number(f.line as f64)),
                ("message".to_string(), Value::String(f.message.clone())),
            ])
        })
        .collect();
    Value::Object(vec![
        ("version".to_string(), Value::Number(1.0)),
        ("count".to_string(), Value::Number(findings.len() as f64)),
        ("findings".to_string(), Value::Array(items)),
    ])
    .to_json_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_policy_masks_by_path() {
        assert!(!rules_for_path("vendor/rayon/src/pool.rs").has(Rule::UnorderedIter));
        assert!(rules_for_path("vendor/rayon/src/pool.rs").has(Rule::UndocumentedUnsafe));
        assert!(
            !rules_for_path("crates/bench/src/bin/run_experiments.rs").has(Rule::AmbientAuthority)
        );
        assert!(
            rules_for_path("crates/bench/src/experiments/f02_evolution.rs")
                .has(Rule::AmbientAuthority)
        );
        assert!(rules_for_path("crates/simkit/src/kernel.rs").has(Rule::UnorderedIter));
        assert!(!rules_for_path("crates/lint/tests/fixtures/d1_bad.rs").has(Rule::UnorderedIter));
        // The serve daemon is D2-exempt service plumbing, but every
        // other rule still applies to it — and the sim crates it
        // drives keep full D2 coverage.
        assert!(!rules_for_path("crates/serve/src/scheduler.rs").has(Rule::AmbientAuthority));
        assert!(rules_for_path("crates/serve/src/scheduler.rs").has(Rule::UnorderedIter));
        assert!(rules_for_path("crates/core/src/resilience.rs").has(Rule::AmbientAuthority));
        assert!(rules_for_path("crates/bench/src/sweep.rs").has(Rule::AmbientAuthority));
        // The run_scenario CLI reads argv/files by design; the library
        // side of the scenario crate stays fully covered.
        assert!(
            !rules_for_path("crates/scenario/src/bin/run_scenario.rs").has(Rule::AmbientAuthority)
        );
        assert!(rules_for_path("crates/scenario/src/schema.rs").has(Rule::AmbientAuthority));
    }

    #[test]
    fn json_report_shape_is_stable() {
        let f = Finding {
            path: "a.rs".into(),
            line: 3,
            rule: Rule::UnorderedIter,
            message: "m".into(),
        };
        let doc = deep_json::from_str(&findings_to_json(&[f])).unwrap();
        assert_eq!(doc.get("count").and_then(|v| v.as_u64()), Some(1));
        let first = &doc.get("findings").unwrap().as_array().unwrap()[0];
        assert_eq!(
            first.get("rule").and_then(|v| v.as_str()),
            Some("unordered-iter")
        );
        assert_eq!(first.get("line").and_then(|v| v.as_u64()), Some(3));
    }
}
