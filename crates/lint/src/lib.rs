#![forbid(unsafe_code)]
//! `deep-lint` — the workspace determinism & unsafe-hygiene pass.
//!
//! The repo's core claim is that every experiment emits bit-identical
//! output at any thread count (DESIGN §12). That invariant is enforced
//! at runtime by golden-digest tests — this crate enforces it at *check
//! time*, before a stray `HashMap` iteration or wall-clock read ever
//! reaches a digest. Like `vendor/*`, it is fully offline: its own
//! lexer ([`lexer`]), its own rule engine ([`rules`]), no external
//! dependencies beyond the workspace's `deep-json` for `--json` output.
//!
//! Rule catalogue, pragma grammar, and the policy for `allow` pragmas
//! live in DESIGN.md §13 and CONTRIBUTING.md.
//!
//! ## Scope policy
//!
//! Rules apply by path (see [`rules_for_path`]):
//!
//! * `vendor/**` — S1 only. Vendored shims are external idiom; we audit
//!   their `unsafe` but do not impose sim-determinism rules on them.
//! * `crates/bench/src/bin/**` — everything except D2: driver binaries
//!   legitimately read wall clocks (the per-experiment timing table)
//!   and CLI args. The *experiment logic* they call lives in
//!   `crates/bench/src/experiments/`, which is fully in scope.
//! * `crates/lint/**` — everything except D2 (the linter reads the
//!   process environment and filesystem by design).
//! * `crates/serve/**` — everything except D2: the daemon is host-side
//!   service plumbing (wall-clock service timing, CLI args, socket
//!   timeouts), not simulation. The simulation it schedules runs in
//!   `deep-core`/`deep-bench`, which stay fully in scope — the daemon
//!   cannot leak nondeterminism into results it merely transports.
//! * everything else (`crates/**`, `src/**`, `tests/**`, `examples/**`)
//!   — all rules.
//!
//! S2 (`missing-forbid-unsafe`) is a per-crate check on root files
//! (`src/lib.rs`, `src/main.rs`, `src/bin/*.rs`) of every non-vendor
//! package; test and example targets inherit scrutiny from S1 instead.

pub mod cache;
pub mod graph;
pub mod items;
pub mod lexer;
pub mod rules;
pub mod taint;

pub use rules::{check_crate_root, lint_source, Finding, Rule, RuleSet};

use items::FileSummary;
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The file-scoped rules that apply to a workspace-relative path
/// (`/`-separated). Returns [`RuleSet::none`] for paths that are not
/// linted at all (fixtures, generated artifacts).
pub fn rules_for_path(rel: &str) -> RuleSet {
    if rel.contains("tests/fixtures/") || rel.starts_with("target/") {
        return RuleSet::none();
    }
    if rel.starts_with("vendor/") {
        return RuleSet::none()
            .with(Rule::UndocumentedUnsafe)
            .with(Rule::MalformedPragma);
    }
    let all = RuleSet::all();
    if rel.starts_with("crates/bench/src/bin/")
        || rel.starts_with("crates/lint/")
        || rel.starts_with("crates/serve/")
        || rel.starts_with("crates/scenario/src/bin/")
    {
        return all.without(Rule::AmbientAuthority);
    }
    all
}

/// A full scan's output: findings plus the call graph and cache stats
/// (for `--graph` and the CI cold/warm speedup gate).
pub struct ScanResult {
    pub findings: Vec<Finding>,
    pub graph: graph::Graph,
    /// `.rs` files scanned.
    pub files: usize,
    /// How many came straight from the incremental cache.
    pub cache_hits: usize,
}

/// Walk the workspace at `root` and apply every enabled rule. Findings
/// come back sorted by path, line, rule. `enabled` masks rules globally
/// on top of the per-path scope policy.
pub fn scan_workspace(root: &Path, enabled: &RuleSet) -> io::Result<Vec<Finding>> {
    Ok(scan_workspace_cached(root, enabled, None, false)?.findings)
}

/// Like [`scan_workspace`], but with an optional incremental cache
/// directory and the full [`ScanResult`]. A warm cache skips the
/// lex + extract + file-local-rules work per unchanged file (the
/// dominant cost), and when *no* file changed, the memoized
/// interprocedural findings skip the graph + taint pass too — any
/// single changed file can re-route the whole graph, so the memo is
/// keyed by the fold of every per-file digest. `want_graph` forces the
/// graph to be built even on a full memo hit (for `--graph` /
/// `--graph-md`); without it, a memo-hit result carries an empty graph.
pub fn scan_workspace_cached(
    root: &Path,
    enabled: &RuleSet,
    cache_dir: Option<&Path>,
    want_graph: bool,
) -> io::Result<ScanResult> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    let cache_path = cache_dir.map(|d| d.join(format!("summaries.v{}.txt", cache::SCHEMA_VERSION)));
    let (cached, ws_memo) = match cache_path.as_ref().and_then(|p| cache::load(p)) {
        Some(doc) => (
            doc.entries
                .into_iter()
                .map(|(d, s)| (s.rel.clone(), (d, s)))
                .collect::<BTreeMap<String, (u64, FileSummary)>>(),
            doc.workspace,
        ),
        None => (BTreeMap::new(), None),
    };
    let mut entries: Vec<(u64, FileSummary)> = Vec::with_capacity(files.len());
    let mut hits = 0usize;
    let mut dirty = cached.len() != files.len();
    // Crate-root inventory for S2, computed lazily: a fully-warm run
    // never needs it (S2 findings are cached like any local finding).
    let mut roots_set: Option<BTreeSet<String>> = None;
    for (abs, rel) in &files {
        let source = fs::read_to_string(abs)?;
        let dg = cache::digest(rel, &source);
        if let Some((cd, cs)) = cached.get(rel) {
            if *cd == dg {
                entries.push((dg, cs.clone()));
                hits += 1;
                continue;
            }
        }
        dirty = true;
        let mut s = items::extract(rel, &source);
        // Local findings are cached at the file's full path mask; the
        // `enabled` filter is applied at report time below, so one
        // cache serves every --only/--skip combination.
        s.local_findings = lint_source(rel, &source, &rules_for_path(rel));
        let roots = match &roots_set {
            Some(r) => r,
            None => roots_set.insert(crate_roots(root)?.into_iter().collect()),
        };
        if roots.contains(rel) {
            s.local_findings.extend(check_crate_root(rel, &source));
        }
        entries.push((dg, s));
    }
    let ws_digest = cache::workspace_digest(&entries);
    let memo_hit = !dirty && ws_memo.as_ref().is_some_and(|(d, _)| *d == ws_digest);

    let mut findings: Vec<Finding> = entries
        .iter()
        .flat_map(|(_, s)| {
            s.local_findings
                .iter()
                .filter(|f| enabled.has(f.rule))
                .cloned()
        })
        .collect();
    let (g, ws_all) = if memo_hit && !want_graph {
        let memoized = ws_memo.map(|(_, f)| f).unwrap_or_default();
        (graph::Graph::default(), memoized)
    } else {
        let deps = workspace_deps(root)?;
        let summaries: Vec<FileSummary> = entries.iter().map(|(_, s)| s.clone()).collect();
        let g = graph::build(&summaries, &deps);
        // Memoized at the full rule set, filtered below — same policy
        // as the per-file local findings.
        let ws = taint::workspace_findings(&g, &summaries, &RuleSet::all());
        (g, ws)
    };
    if !memo_hit {
        if let Some(p) = &cache_path {
            if let Some(parent) = p.parent() {
                fs::create_dir_all(parent)?;
            }
            cache::save(p, &entries, &ws_all)?;
        }
    }
    findings.extend(ws_all.into_iter().filter(|f| enabled.has(f.rule)));
    findings.sort();
    findings.dedup();
    Ok(ScanResult {
        findings,
        graph: g,
        files: entries.len(),
        cache_hits: hits,
    })
}

/// In-memory analysis of a set of `(rel path, source)` files — the
/// interprocedural analogue of [`lint_source`], used by the fixture
/// corpus for cross-file cases. Applies the per-path scope policy, an
/// empty (permissive) dependency map, and no cache.
pub fn analyze_sources(files: &[(&str, &str)], enabled: &RuleSet) -> Vec<Finding> {
    let mut summaries = Vec::with_capacity(files.len());
    let mut findings = Vec::new();
    for (rel, source) in files {
        let mask = rules_for_path(rel);
        let effective = Rule::ALL
            .into_iter()
            .filter(|r| mask.has(*r) && enabled.has(*r))
            .fold(RuleSet::none(), RuleSet::with);
        findings.extend(lint_source(rel, source, &effective));
        summaries.push(items::extract(rel, source));
    }
    let g = graph::build(&summaries, &graph::Deps::new());
    findings.extend(taint::workspace_findings(&g, &summaries, enabled));
    findings.sort();
    findings.dedup();
    findings
}

/// Parse the workspace's `Cargo.toml` manifests into a crate-import-name
/// dependency map, used to filter fuzzy method-call edges. Only the
/// `[dependencies]` / `[dev-dependencies]` section headers are honoured
/// (`[workspace.dependencies]` deliberately does not match: it lists
/// everything).
pub fn workspace_deps(root: &Path) -> io::Result<graph::Deps> {
    let mut manifests: Vec<(String, PathBuf)> =
        vec![("deep_repro".to_string(), root.join("Cargo.toml"))];
    for dir in ["crates", "vendor"] {
        let base = root.join(dir);
        if !base.is_dir() {
            continue;
        }
        let mut members: Vec<_> = fs::read_dir(&base)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| p.is_dir() && p.join("Cargo.toml").is_file())
            .collect();
        members.sort();
        for m in members {
            let name = m.file_name().and_then(|n| n.to_str()).unwrap_or("");
            let krate = if dir == "crates" {
                format!("deep_{}", name.replace('-', "_"))
            } else {
                name.replace('-', "_")
            };
            manifests.push((krate, m.join("Cargo.toml")));
        }
    }
    let mut deps = graph::Deps::new();
    for (krate, path) in manifests {
        let Ok(text) = fs::read_to_string(&path) else {
            continue;
        };
        let mut in_deps = false;
        let mut set = std::collections::BTreeSet::new();
        for line in text.lines() {
            let t = line.trim();
            if t.starts_with('[') {
                in_deps = t == "[dependencies]" || t == "[dev-dependencies]";
                continue;
            }
            if !in_deps || t.is_empty() || t.starts_with('#') {
                continue;
            }
            let key: String = t
                .chars()
                .take_while(|c| !matches!(c, '.' | '=' | ' ' | '\t'))
                .collect();
            if !key.is_empty() {
                set.insert(key.replace('-', "_"));
            }
        }
        deps.insert(krate, set);
    }
    Ok(deps)
}

/// Directories never descended into.
const SKIP_DIRS: [&str; 4] = ["target", ".git", "fixtures", "node_modules"];

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<(PathBuf, String)>) -> io::Result<()> {
    // Sorted traversal: the lint's own output order must be
    // deterministic — same discipline it enforces.
    let mut entries: Vec<_> = fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if SKIP_DIRS.contains(&name) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push((path, rel));
        }
    }
    Ok(())
}

/// Crate-root files (workspace-relative) of every non-vendor package:
/// the root package plus each `crates/*` member.
pub fn crate_roots(root: &Path) -> io::Result<Vec<String>> {
    let mut pkg_dirs = vec![String::new()];
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut members: Vec<_> = fs::read_dir(&crates)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| p.is_dir() && p.join("Cargo.toml").is_file())
            .collect();
        members.sort();
        for m in members {
            let name = m.file_name().and_then(|n| n.to_str()).unwrap_or("");
            pkg_dirs.push(format!("crates/{name}"));
        }
    }
    let mut roots = Vec::new();
    for dir in pkg_dirs {
        let prefix = if dir.is_empty() {
            String::new()
        } else {
            format!("{dir}/")
        };
        for candidate in ["src/lib.rs", "src/main.rs"] {
            if root.join(&prefix).join(candidate).is_file() {
                roots.push(format!("{prefix}{candidate}"));
            }
        }
        let bin_dir = root.join(&prefix).join("src/bin");
        if bin_dir.is_dir() {
            let mut bins: Vec<_> = fs::read_dir(&bin_dir)?
                .collect::<Result<Vec<_>, _>>()?
                .into_iter()
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|e| e == "rs"))
                .collect();
            bins.sort();
            for b in bins {
                let name = b.file_name().and_then(|n| n.to_str()).unwrap_or("");
                roots.push(format!("{prefix}src/bin/{name}"));
            }
        }
    }
    Ok(roots)
}

/// Render findings as the stable JSON report consumed by CI.
pub fn findings_to_json(findings: &[Finding]) -> String {
    use deep_json::Value;
    let items: Vec<Value> = findings
        .iter()
        .map(|f| {
            Value::Object(vec![
                ("rule".to_string(), Value::String(f.rule.name().to_string())),
                ("path".to_string(), Value::String(f.path.clone())),
                ("line".to_string(), Value::Number(f.line as f64)),
                ("message".to_string(), Value::String(f.message.clone())),
            ])
        })
        .collect();
    Value::Object(vec![
        ("version".to_string(), Value::Number(1.0)),
        ("count".to_string(), Value::Number(findings.len() as f64)),
        ("findings".to_string(), Value::Array(items)),
    ])
    .to_json_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_policy_masks_by_path() {
        assert!(!rules_for_path("vendor/rayon/src/pool.rs").has(Rule::UnorderedIter));
        assert!(rules_for_path("vendor/rayon/src/pool.rs").has(Rule::UndocumentedUnsafe));
        assert!(
            !rules_for_path("crates/bench/src/bin/run_experiments.rs").has(Rule::AmbientAuthority)
        );
        assert!(
            rules_for_path("crates/bench/src/experiments/f02_evolution.rs")
                .has(Rule::AmbientAuthority)
        );
        assert!(rules_for_path("crates/simkit/src/kernel.rs").has(Rule::UnorderedIter));
        assert!(!rules_for_path("crates/lint/tests/fixtures/d1_bad.rs").has(Rule::UnorderedIter));
        // The serve daemon is D2-exempt service plumbing, but every
        // other rule still applies to it — and the sim crates it
        // drives keep full D2 coverage.
        assert!(!rules_for_path("crates/serve/src/scheduler.rs").has(Rule::AmbientAuthority));
        assert!(rules_for_path("crates/serve/src/scheduler.rs").has(Rule::UnorderedIter));
        assert!(rules_for_path("crates/core/src/resilience.rs").has(Rule::AmbientAuthority));
        assert!(rules_for_path("crates/bench/src/sweep.rs").has(Rule::AmbientAuthority));
        // The run_scenario CLI reads argv/files by design; the library
        // side of the scenario crate stays fully covered.
        assert!(
            !rules_for_path("crates/scenario/src/bin/run_scenario.rs").has(Rule::AmbientAuthority)
        );
        assert!(rules_for_path("crates/scenario/src/schema.rs").has(Rule::AmbientAuthority));
    }

    #[test]
    fn incremental_cache_tracks_edits_and_memoizes_clean_runs() {
        let root = std::env::temp_dir().join("deep-lint-incr-test");
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(root.join("crates/core/src")).unwrap();
        fs::create_dir_all(root.join("crates/lint/src")).unwrap();
        fs::write(
            root.join("crates/lint/src/timing.rs"),
            "pub fn stamp() -> u64 { 0 }\n",
        )
        .unwrap();
        fs::write(
            root.join("crates/core/src/resilience.rs"),
            "pub fn f(seed: u64) -> u64 { seed ^ deep_lint::timing::stamp() }\n",
        )
        .unwrap();
        let cache = root.join("cache");
        let all = RuleSet::all();
        let cold = scan_workspace_cached(&root, &all, Some(&cache), false).unwrap();
        assert_eq!(cold.cache_hits, 0);
        assert!(cold.findings.is_empty(), "{:?}", cold.findings);
        let warm = scan_workspace_cached(&root, &all, Some(&cache), false).unwrap();
        assert_eq!(warm.cache_hits, 2);
        assert!(warm.findings.is_empty(), "{:?}", warm.findings);
        // Edit the helper to read the wall clock: the edited file must
        // re-lex, the workspace memo must invalidate, and the
        // *cross-file* D4 finding must appear in the unchanged caller.
        fs::write(
            root.join("crates/lint/src/timing.rs"),
            "pub fn stamp() -> u64 { Instant::now().elapsed().as_nanos() as u64 }\n",
        )
        .unwrap();
        let edited = scan_workspace_cached(&root, &all, Some(&cache), false).unwrap();
        assert_eq!(edited.cache_hits, 1, "only the edited file re-lexes");
        assert_eq!(edited.findings.len(), 1, "{:?}", edited.findings);
        assert_eq!(edited.findings[0].rule, Rule::DeterminismTaint);
        assert_eq!(edited.findings[0].path, "crates/core/src/resilience.rs");
    }

    #[test]
    fn json_report_shape_is_stable() {
        let f = Finding {
            path: "a.rs".into(),
            line: 3,
            rule: Rule::UnorderedIter,
            message: "m".into(),
        };
        let doc = deep_json::from_str(&findings_to_json(&[f])).unwrap();
        assert_eq!(doc.get("count").and_then(|v| v.as_u64()), Some(1));
        let first = &doc.get("findings").unwrap().as_array().unwrap()[0];
        assert_eq!(
            first.get("rule").and_then(|v| v.as_str()),
            Some("unordered-iter")
        );
        assert_eq!(first.get("line").and_then(|v| v.as_u64()), Some(3));
    }
}
