//! The interprocedural passes: D4 determinism-taint, D5
//! partition-safety, P1 panic-path (DESIGN.md §17).
//!
//! All three are reachability problems over the [`Graph`]:
//!
//! * **D4** propagates taint *backwards* from ambient-authority sources
//!   (the D2 pattern set, recorded even in D2-exempt files — that is
//!   the whole point) and reports every call edge where D2-covered
//!   simulation code crosses into tainted exempt code. The lattice is
//!   the simplest possible: a function is clean or tainted, and taint
//!   carries a breadcrumb (the next hop toward the source) so findings
//!   show the concrete chain.
//! * **D5** walks *forwards* from the partitioned `des_scaling` world
//!   and flags un-partitioned `spawn` calls and shared-mutable
//!   (`RefCell`) borrows in everything it can reach. The simkit/fabric
//!   kernel itself is excluded: it carries its own ordering proofs
//!   (DESIGN.md §16).
//! * **P1** walks *forwards* from deep-serve's request-handling roots
//!   and reports panic sinks it can reach; `catch_unwind(…)` argument
//!   regions are barriers the walk does not cross.
//!
//! Vendor code is outside all three traversals — rayon legitimately
//! reads `RAYON_NUM_THREADS`, and tainting through it would mark the
//! entire workspace.

use crate::graph::Graph;
use crate::items::{Callee, FileSummary};
use crate::rules::{Finding, Rule, RuleSet};
use crate::rules_for_path;
use std::collections::BTreeSet;
use std::collections::VecDeque;

/// Run every enabled interprocedural rule. Findings come back unsorted
/// (the caller merges them with the file-local findings and sorts).
pub fn workspace_findings(
    graph: &Graph,
    summaries: &[FileSummary],
    enabled: &RuleSet,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    if enabled.has(Rule::DeterminismTaint) {
        determinism_taint(graph, summaries, &mut findings);
    }
    if enabled.has(Rule::PartitionSafety) {
        partition_safety(graph, summaries, &mut findings);
    }
    if enabled.has(Rule::PanicPath) {
        panic_path(graph, summaries, &mut findings);
    }
    // Apply pragmas: the extractor collected well-formed coverage per
    // file with the same line semantics as `lint_source`.
    findings.retain(|f| {
        !summaries.iter().any(|s| {
            s.rel == f.path
                && s.allows
                    .iter()
                    .any(|(line, rules)| *line == f.line && rules.contains(&f.rule))
        })
    });
    findings.sort();
    findings.dedup();
    findings
}

fn is_vendor(rel: &str) -> bool {
    rel.starts_with("vendor/")
}

/// Is a file in D2 (`ambient-authority`) scope?
fn d2_covered(rel: &str) -> bool {
    rules_for_path(rel).has(Rule::AmbientAuthority)
}

// ---------------------------------------------------------------------
// D4 — determinism-taint.

/// Why a node is tainted: it *is* a source, or it calls a tainted node.
enum Taint {
    Source { what: String, line: u32 },
    Via(usize),
}

/// D4 reports a caller only when it sits in shipping simulation code:
/// D2-covered and under a `src/` tree. Tests and examples drive daemons
/// and clocks legitimately.
fn d4_caller_scope(rel: &str) -> bool {
    if !d2_covered(rel) {
        return false;
    }
    (rel.starts_with("crates/") && rel.contains("/src/")) || rel.starts_with("src/")
}

fn determinism_taint(graph: &Graph, summaries: &[FileSummary], findings: &mut Vec<Finding>) {
    let mut taint: Vec<Option<Taint>> = (0..graph.nodes.len()).map(|_| None).collect();
    let mut queue = VecDeque::new();
    for (fi, s) in summaries.iter().enumerate() {
        if is_vendor(&s.rel) {
            continue;
        }
        for src in &s.sources {
            if let Some(id) = graph.node_of(fi, src.from) {
                if taint[id].is_none() {
                    taint[id] = Some(Taint::Source {
                        what: src.what.clone(),
                        line: src.line,
                    });
                    queue.push_back(id);
                }
            }
        }
    }
    // Reverse-reachability: callers of tainted functions are tainted.
    while let Some(id) = queue.pop_front() {
        for &ei in &graph.incoming[id] {
            let caller = graph.edges[ei].from;
            if taint[caller].is_none() && !is_vendor(&graph.nodes[caller].rel) {
                taint[caller] = Some(Taint::Via(id));
                queue.push_back(caller);
            }
        }
    }
    // Report the boundary edges: covered sim code → tainted exempt code.
    for e in &graph.edges {
        let f = &graph.nodes[e.from];
        let g = &graph.nodes[e.to];
        if !d4_caller_scope(&f.rel) || d2_covered(&g.rel) || taint[e.to].is_none() {
            continue;
        }
        findings.push(Finding {
            path: f.rel.clone(),
            line: e.line,
            rule: Rule::DeterminismTaint,
            message: format!(
                "call into D2-exempt code reaches ambient authority: {} — route \
                 the value through simulation inputs or move the helper into \
                 D2-covered code",
                trace(&taint, graph, e.to)
            ),
        });
    }
}

/// Render the taint chain from `start` down to its source.
fn trace(taint: &[Option<Taint>], graph: &Graph, start: usize) -> String {
    let mut parts = Vec::new();
    let mut cur = start;
    loop {
        match &taint[cur] {
            Some(Taint::Via(next)) => {
                parts.push(format!("`{}`", graph.nodes[cur].qualified()));
                cur = *next;
            }
            Some(Taint::Source { what, line }) => {
                parts.push(format!(
                    "`{}` ({} at {}:{})",
                    graph.nodes[cur].qualified(),
                    what,
                    graph.nodes[cur].rel,
                    line
                ));
                break;
            }
            None => break,
        }
        if parts.len() > 8 {
            parts.push("…".to_string());
            break;
        }
    }
    parts.join(" → ")
}

// ---------------------------------------------------------------------
// D5 — partition-safety.

/// Crates whose internals the D5 walk does not enter: the kernel
/// carries its own (at,seq) ordering proofs.
const D5_EXCLUDED_CRATES: &[&str] = &["deep_simkit", "deep_fabric"];

fn d5_excluded(krate: &str, rel: &str) -> bool {
    D5_EXCLUDED_CRATES.contains(&krate) || is_vendor(rel)
}

fn partition_safety(graph: &Graph, summaries: &[FileSummary], findings: &mut Vec<Finding>) {
    // Roots: every fn in a `des_scaling` module, plus every fn that
    // itself partitions spawns (calls spawn_in) — both are "partitioned
    // world" by construction.
    let mut reached = vec![false; graph.nodes.len()];
    let mut queue = VecDeque::new();
    for (id, n) in graph.nodes.iter().enumerate() {
        if d5_excluded(&n.krate, &n.rel) {
            continue;
        }
        let in_module = n.module.iter().any(|m| m == "des_scaling");
        let partitions = calls_of(summaries, graph, id).any(|c| {
            callee_last(&c.callee).is_some_and(|l| l == "spawn_in" || l == "spawn_in_fmt")
        });
        if (in_module || partitions) && !reached[id] {
            reached[id] = true;
            queue.push_back(id);
        }
    }
    while let Some(id) = queue.pop_front() {
        for &ei in &graph.out[id] {
            let to = graph.edges[ei].to;
            let n = &graph.nodes[to];
            if !reached[to] && !d5_excluded(&n.krate, &n.rel) {
                reached[to] = true;
                queue.push_back(to);
            }
        }
    }
    for (id, n) in graph.nodes.iter().enumerate() {
        if !reached[id] {
            continue;
        }
        let mut borrow_line: Option<u32> = None;
        for c in calls_of(summaries, graph, id) {
            match &c.callee {
                Callee::Method(m) if m == "spawn" || m == "spawn_fmt" => {
                    findings.push(Finding {
                        path: n.rel.clone(),
                        line: c.line,
                        rule: Rule::PartitionSafety,
                        message: format!(
                            "un-partitioned `.{m}(…)` in partition-scope code \
                             (`{}`) — use `spawn_in(partition, …)` so every event \
                             carries its partition for the (at,seq) merge",
                            n.qualified()
                        ),
                    });
                }
                Callee::Path(segs)
                    if segs
                        .last()
                        .is_some_and(|l| l == "spawn" || l == "spawn_fmt")
                        && !segs.iter().any(|s| s == "thread") =>
                {
                    findings.push(Finding {
                        path: n.rel.clone(),
                        line: c.line,
                        rule: Rule::PartitionSafety,
                        message: format!(
                            "un-partitioned `{}(…)` in partition-scope code \
                             (`{}`) — use `spawn_in(partition, …)` so every event \
                             carries its partition for the (at,seq) merge",
                            segs.join("::"),
                            n.qualified()
                        ),
                    });
                }
                Callee::Method(m) if m == "borrow" || m == "borrow_mut" => {
                    borrow_line.get_or_insert(c.line);
                }
                _ => {}
            }
        }
        if let Some(line) = borrow_line {
            findings.push(Finding {
                path: n.rel.clone(),
                line,
                rule: Rule::PartitionSafety,
                message: format!(
                    "shared-mutable `RefCell` borrow in partition-reachable code \
                     (`{}`) — cross-partition shared state breaks the (at,seq) \
                     merge proof; partition the state, or justify the sequencing \
                     (e.g. a barrier) with a pragma",
                    n.qualified()
                ),
            });
        }
    }
}

fn callee_last(c: &Callee) -> Option<&str> {
    match c {
        Callee::Path(segs) => segs.last().map(|s| s.as_str()),
        Callee::Method(m) | Callee::Free(m) => Some(m.as_str()),
    }
}

/// The call sites belonging to one graph node.
fn calls_of<'a>(
    summaries: &'a [FileSummary],
    graph: &'a Graph,
    id: usize,
) -> impl Iterator<Item = &'a crate::items::CallRef> {
    let n = &graph.nodes[id];
    summaries[n.file]
        .calls
        .iter()
        .filter(move |c| c.from == n.fn_idx)
}

// ---------------------------------------------------------------------
// P1 — panic-path.

fn panic_path(graph: &Graph, summaries: &[FileSummary], findings: &mut Vec<Finding>) {
    let mut reached = vec![false; graph.nodes.len()];
    let mut queue = VecDeque::new();
    for (id, n) in graph.nodes.iter().enumerate() {
        let root = n.krate == "deep_serve"
            && (n.name == "serve_connection"
                || n.name == "worker_loop"
                || (n.name == "run" && n.impl_type.as_deref() == Some("Server")));
        if root {
            reached[id] = true;
            queue.push_back(id);
        }
    }
    while let Some(id) = queue.pop_front() {
        for &ei in &graph.out[id] {
            let e = &graph.edges[ei];
            // A guarded edge sits inside catch_unwind: the daemon
            // survives a panic past this point by construction.
            if e.guarded {
                continue;
            }
            let n = &graph.nodes[e.to];
            if !reached[e.to] && !is_vendor(&n.rel) {
                reached[e.to] = true;
                queue.push_back(e.to);
            }
        }
    }
    let mut seen: BTreeSet<(String, u32, &'static str)> = BTreeSet::new();
    for (id, n) in graph.nodes.iter().enumerate() {
        if !reached[id] {
            continue;
        }
        for sink in summaries[n.file]
            .sinks
            .iter()
            .filter(|s| s.from == n.fn_idx && !s.guarded)
        {
            if !seen.insert((n.rel.clone(), sink.line, sink.kind.describe())) {
                continue;
            }
            findings.push(Finding {
                path: n.rel.clone(),
                line: sink.line,
                rule: Rule::PanicPath,
                message: format!(
                    "{} reachable from deep-serve request handling (in `{}`) — a \
                     malformed job must produce an error response, not abort the \
                     daemon; return a Result or guard the boundary with \
                     catch_unwind",
                    sink.kind.describe(),
                    n.qualified()
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{build, Deps};
    use crate::items::extract;

    fn analyze(files: &[(&str, &str)], enabled: &RuleSet) -> Vec<Finding> {
        let summaries: Vec<FileSummary> =
            files.iter().map(|(rel, src)| extract(rel, src)).collect();
        let graph = build(&summaries, &Deps::new());
        workspace_findings(&graph, &summaries, enabled)
    }

    #[test]
    fn d4_catches_cross_file_ambient_authority_that_d2_misses() {
        let caller_src = "pub fn sim_step() { deep_serve::util::stamp(); }";
        let files = [
            // D2-covered sim code with no source of its own…
            ("crates/core/src/lib.rs", caller_src),
            // …calling a clock helper defined in a D2-exempt crate.
            (
                "crates/serve/src/util.rs",
                "pub fn stamp() -> u64 { let t = Instant::now(); 0 }",
            ),
        ];
        // File-local D2 provably misses this: the caller file is clean.
        let d2_only = RuleSet::none().with(Rule::AmbientAuthority);
        let local = crate::lint_source("crates/core/src/lib.rs", caller_src, &d2_only);
        assert!(local.is_empty(), "{local:?}");
        // D4 flags the boundary call with the full chain.
        let fs = analyze(&files, &RuleSet::none().with(Rule::DeterminismTaint));
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].path, "crates/core/src/lib.rs");
        assert!(
            fs[0].message.contains("wall-clock `Instant`"),
            "{}",
            fs[0].message
        );
        assert!(
            fs[0].message.contains("crates/serve/src/util.rs:1"),
            "{}",
            fs[0].message
        );
    }

    #[test]
    fn d4_silent_when_helper_is_clean_or_caller_is_exempt() {
        // Clean helper: no finding.
        let fs = analyze(
            &[
                (
                    "crates/core/src/lib.rs",
                    "pub fn sim_step() { deep_serve::util::ok(); }",
                ),
                ("crates/serve/src/util.rs", "pub fn ok() -> u64 { 0 }"),
            ],
            &RuleSet::none().with(Rule::DeterminismTaint),
        );
        assert!(fs.is_empty(), "{fs:?}");
        // Exempt caller (serve → serve): no finding.
        let fs = analyze(
            &[
                (
                    "crates/serve/src/server.rs",
                    "pub fn tick() { crate::util::stamp(); }",
                ),
                (
                    "crates/serve/src/util.rs",
                    "pub fn stamp() -> u64 { let t = Instant::now(); 0 }",
                ),
            ],
            &RuleSet::none().with(Rule::DeterminismTaint),
        );
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn d5_flags_unpartitioned_spawn_and_borrows_in_reach() {
        let files = [
            (
                "crates/bench/src/des_scaling.rs",
                "pub fn run(ctx: &Ctx) {\n\
                 \x20   ctx.spawn_in(0, \"driver\", fut);\n\
                 \x20   ctx.spawn(\"stray\", fut2);\n\
                 \x20   helper(ctx);\n\
                 }\n\
                 fn helper(ctx: &Ctx) { shared.borrow_mut().push(1); }",
            ),
            // Unreachable from the partitioned world: not flagged.
            (
                "crates/core/src/lib.rs",
                "pub fn elsewhere(h: &H) { h.spawn(\"x\", f); }",
            ),
        ];
        let fs = analyze(&files, &RuleSet::none().with(Rule::PartitionSafety));
        assert_eq!(fs.len(), 2, "{fs:?}");
        assert!(
            fs[0].message.contains("un-partitioned"),
            "{}",
            fs[0].message
        );
        assert_eq!(fs[0].line, 3);
        assert!(fs[1].message.contains("RefCell"), "{}", fs[1].message);
    }

    #[test]
    fn d5_does_not_enter_the_kernel() {
        let files = [
            (
                "crates/bench/src/des_scaling.rs",
                "pub fn run(s: &Sim) { s.spawn_in(0, \"d\", f); deep_simkit::sim::advance(s); }",
            ),
            (
                "crates/simkit/src/sim.rs",
                "pub fn advance(s: &Sim) { s.inner.borrow_mut().step(); }",
            ),
        ];
        let fs = analyze(&files, &RuleSet::none().with(Rule::PartitionSafety));
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn p1_reaches_sinks_transitively_but_not_past_catch_unwind() {
        let files = [(
            "crates/serve/src/server.rs",
            "pub fn serve_connection(req: &Req) {\n\
                 \x20   let spec = parse_spec(req);\n\
                 \x20   let caught = std::panic::catch_unwind(|| execute(spec));\n\
                 }\n\
                 fn parse_spec(req: &Req) -> Spec { req.body.first().unwrap().clone() }\n\
                 fn execute(s: Spec) { s.steps[&0].run(); }",
        )];
        let fs = analyze(&files, &RuleSet::none().with(Rule::PanicPath));
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].line, 5, "only the unguarded parse path is a finding");
        assert!(fs[0].message.contains("unwrap"), "{}", fs[0].message);
    }

    #[test]
    fn pragmas_suppress_workspace_findings_with_justification() {
        let files = [(
            "crates/bench/src/des_scaling.rs",
            "pub fn run(ctx: &Ctx) {\n\
             \x20   // deep-lint: allow(partition-safety) — barrier.wait() sequences this\n\
             \x20   shared.borrow_mut().push(1);\n\
             }",
        )];
        let fs = analyze(&files, &RuleSet::none().with(Rule::PartitionSafety));
        assert!(fs.is_empty(), "{fs:?}");
    }
}
