//! A lightweight Rust lexer — just enough structure for `deep-lint`.
//!
//! The rules in this crate need three things a plain `grep` cannot give:
//!
//! 1. **comment/string discrimination** — `unsafe` inside a doc comment
//!    or a string literal must not count as an unsafe site, and
//!    `"HashMap"` in a string is not a `HashMap` use;
//! 2. **token adjacency** — `map.iter()` is three tokens whose
//!    neighbourhood identifies an iteration site, wherever rustfmt broke
//!    the lines;
//! 3. **nesting depth** — distinguishing `.sum()` that terminates a
//!    parallel-iterator chain from a `.sum()` buried inside a closure
//!    argument of that chain.
//!
//! It is deliberately *not* a parser: no AST, no expressions, no types.
//! Lints built on it are heuristic by design; the escape hatch for the
//! inevitable false positive is the `deep-lint: allow` pragma, not more
//! grammar. Numeric literals are lexed loosely (they are never matched
//! by any rule); raw strings, nested block comments, lifetimes vs. char
//! literals, and shebang/attribute syntax are handled precisely because
//! rules do look at those.

/// What a token is. Only the distinctions the rules consume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `for`, `mut`, … are idents here).
    Ident(String),
    /// A single punctuation character. Multi-char operators arrive as
    /// consecutive tokens (`::` is `:`, `:`).
    Punct(char),
    /// A string/char/numeric literal (payload discarded).
    Lit,
    /// A lifetime such as `'scope` (payload discarded).
    Lifetime,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token kind.
    pub kind: TokKind,
    /// 1-based source line.
    pub line: u32,
    /// Bracket nesting depth at this token: number of unclosed
    /// `(`/`[`/`{` strictly enclosing it. An opener carries the depth
    /// *outside* itself; its matching closer carries the same value.
    pub depth: u32,
}

/// One comment (line or block). Doc comments are comments too.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (same as `line` for `//`).
    pub end_line: u32,
    /// Full text, including the `//` / `/*` markers.
    pub text: String,
    /// True when code tokens precede the comment on its start line.
    pub trailing: bool,
}

/// A fully lexed file.
#[derive(Debug, Default)]
pub struct LexFile {
    /// All code tokens in order.
    pub tokens: Vec<Token>,
    /// All comments in order.
    pub comments: Vec<Comment>,
}

impl LexFile {
    /// True if `line` holds at least one code token.
    pub fn is_code_line(&self, line: u32) -> bool {
        // Tokens are line-ordered; binary search keeps self-runs over
        // the whole workspace cheap.
        let i = self.tokens.partition_point(|t| t.line < line);
        self.tokens.get(i).is_some_and(|t| t.line == line)
    }

    /// The first code line strictly after `line`, if any.
    pub fn next_code_line(&self, line: u32) -> Option<u32> {
        let i = self.tokens.partition_point(|t| t.line <= line);
        self.tokens.get(i).map(|t| t.line)
    }

    /// True if the only tokens on `line` belong to an attribute
    /// (`#[...]` / `#![...]`), i.e. the first token on the line is `#`.
    pub fn line_is_attribute_only(&self, line: u32) -> bool {
        let i = self.tokens.partition_point(|t| t.line < line);
        match self.tokens.get(i) {
            Some(t) if t.line == line => t.kind == TokKind::Punct('#'),
            _ => false,
        }
    }
}

/// Lex `source`. Never fails: unterminated constructs are consumed to
/// end-of-file (the compiler, not the linter, owns that diagnosis).
pub fn lex(source: &str) -> LexFile {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    depth: u32,
    out: LexFile,
    /// Tokens already emitted on the current line (for `trailing`).
    code_on_line: bool,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Lexer {
            src: source.as_bytes(),
            pos: 0,
            line: 1,
            depth: 0,
            out: LexFile::default(),
            code_on_line: false,
        }
    }

    fn peek(&self, ahead: usize) -> u8 {
        *self.src.get(self.pos + ahead).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let c = self.peek(0);
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.code_on_line = false;
        }
        c
    }

    fn push(&mut self, kind: TokKind) {
        self.out.tokens.push(Token {
            kind,
            line: self.line,
            depth: self.depth,
        });
        self.code_on_line = true;
    }

    fn run(mut self) -> LexFile {
        // `#!/usr/bin/env …` shebang on line 1 only.
        if self.peek(0) == b'#' && self.peek(1) == b'!' && self.peek(2) == b'/' {
            while self.peek(0) != b'\n' && self.pos < self.src.len() {
                self.bump();
            }
        }
        while self.pos < self.src.len() {
            let c = self.peek(0);
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == b'/' => self.line_comment(),
                b'/' if self.peek(1) == b'*' => self.block_comment(),
                b'"' => self.string(),
                b'r' | b'b' if self.raw_or_byte_string() => {}
                b'\'' => self.char_or_lifetime(),
                b'0'..=b'9' => self.number(),
                c if c == b'_' || c.is_ascii_alphabetic() => self.ident(),
                _ => {
                    match c {
                        b'(' | b'[' | b'{' => {
                            self.push(TokKind::Punct(c as char));
                            self.depth += 1;
                        }
                        b')' | b']' | b'}' => {
                            self.depth = self.depth.saturating_sub(1);
                            self.push(TokKind::Punct(c as char));
                        }
                        _ => self.push(TokKind::Punct(c as char)),
                    }
                    self.bump();
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let start = self.pos;
        let line = self.line;
        let trailing = self.code_on_line;
        while self.peek(0) != b'\n' && self.pos < self.src.len() {
            self.bump();
        }
        self.out.comments.push(Comment {
            line,
            end_line: line,
            text: String::from_utf8_lossy(&self.src[start..self.pos]).into_owned(),
            trailing,
        });
    }

    fn block_comment(&mut self) {
        let start = self.pos;
        let line = self.line;
        let trailing = self.code_on_line;
        self.bump();
        self.bump();
        let mut nest = 1u32;
        while nest > 0 && self.pos < self.src.len() {
            if self.peek(0) == b'/' && self.peek(1) == b'*' {
                nest += 1;
                self.bump();
                self.bump();
            } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                nest -= 1;
                self.bump();
                self.bump();
            } else {
                self.bump();
            }
        }
        self.out.comments.push(Comment {
            line,
            end_line: self.line,
            text: String::from_utf8_lossy(&self.src[start..self.pos]).into_owned(),
            trailing,
        });
    }

    /// Ordinary string literal, `"` already peeked.
    fn string(&mut self) {
        self.bump();
        while self.pos < self.src.len() {
            match self.bump() {
                b'\\' => {
                    self.bump();
                }
                b'"' => break,
                _ => {}
            }
        }
        self.push(TokKind::Lit);
    }

    /// Raw / byte / raw-byte strings: `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`.
    /// Returns false (consuming nothing) when the `r`/`b` starts a plain
    /// identifier instead.
    fn raw_or_byte_string(&mut self) -> bool {
        let mut i = 1; // past the leading r or b
        if self.peek(0) == b'b' && self.peek(1) == b'r' {
            i = 2;
        }
        let mut hashes = 0usize;
        while self.peek(i) == b'#' {
            hashes += 1;
            i += 1;
        }
        if self.peek(i) != b'"' {
            return false;
        }
        if hashes == 0 && self.peek(0) == b'b' && i == 1 {
            // b"…" — plain byte string with escapes.
            self.bump();
            self.string();
            return true;
        }
        // Raw: no escapes; ends at `"` followed by `hashes` hashes.
        for _ in 0..=i {
            self.bump(); // prefix + opening quote
        }
        'outer: while self.pos < self.src.len() {
            if self.bump() == b'"' {
                for h in 0..hashes {
                    if self.peek(h) != b'#' {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        self.push(TokKind::Lit);
        true
    }

    /// `'a` lifetime vs `'x'` char literal, `'` already peeked.
    fn char_or_lifetime(&mut self) {
        let one = self.peek(1);
        let is_lifetime = (one == b'_' || one.is_ascii_alphabetic()) && self.peek(2) != b'\'';
        self.bump();
        if is_lifetime {
            while self.peek(0) == b'_' || self.peek(0).is_ascii_alphanumeric() {
                self.bump();
            }
            self.push(TokKind::Lifetime);
            return;
        }
        // Char literal: consume through the closing quote.
        while self.pos < self.src.len() {
            match self.bump() {
                b'\\' => {
                    self.bump();
                }
                b'\'' => break,
                _ => {}
            }
        }
        self.push(TokKind::Lit);
    }

    /// Loose numeric literal: digits, type suffixes, hex/bin/oct bodies,
    /// exponents, and a fraction — but never the second dot of `0..n`.
    fn number(&mut self) {
        let body = |c: u8| c == b'_' || c.is_ascii_alphanumeric();
        while body(self.peek(0)) {
            self.bump();
        }
        if self.peek(0) == b'.' && self.peek(1).is_ascii_digit() {
            self.bump();
            while body(self.peek(0)) {
                self.bump();
            }
            // Exponent sign: 1.5e-3.
            if (self.peek(0) == b'+' || self.peek(0) == b'-')
                && matches!(self.src.get(self.pos.wrapping_sub(1)), Some(b'e' | b'E'))
            {
                self.bump();
                while body(self.peek(0)) {
                    self.bump();
                }
            }
        }
        self.push(TokKind::Lit);
    }

    fn ident(&mut self) {
        let start = self.pos;
        while self.peek(0) == b'_' || self.peek(0).is_ascii_alphanumeric() {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push(TokKind::Ident(text));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_tokens() {
        let src = r##"
// unsafe in a comment
/* HashMap in /* a nested */ block */
let s = "unsafe { HashMap }";
let r = r#"thread_rng"#;
let c = 'x';
"##;
        let ids = idents(src);
        assert!(!ids.contains(&"unsafe".to_string()));
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(!ids.contains(&"thread_rng".to_string()));
        assert_eq!(lex(src).comments.len(), 2);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let f = lex("fn f<'a>(x: &'a str) -> &'a str { x }");
        let lifetimes = f
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        assert_eq!(lifetimes, 3);
    }

    #[test]
    fn depth_tracks_nesting() {
        let f = lex("a(b(c), d)");
        let depth_of = |name: &str| {
            f.tokens
                .iter()
                .find(|t| t.kind == TokKind::Ident(name.into()))
                .unwrap()
                .depth
        };
        assert_eq!(depth_of("a"), 0);
        assert_eq!(depth_of("b"), 1);
        assert_eq!(depth_of("c"), 2);
        assert_eq!(depth_of("d"), 1);
    }

    #[test]
    fn range_dots_survive_numbers() {
        let f = lex("for i in 0..10 {}");
        let dots = f
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Punct('.'))
            .count();
        assert_eq!(dots, 2, "0..10 must lex as Lit . . Lit");
    }

    #[test]
    fn trailing_comment_flag() {
        let f = lex("let x = 1; // why\n// standalone\n");
        assert!(f.comments[0].trailing);
        assert!(!f.comments[1].trailing);
    }

    #[test]
    fn float_exponent_and_method_call() {
        let f = lex("let x = 1.5e-3; y.powi(2); 2f64.sqrt();");
        // `2f64.sqrt` keeps the dot as punctuation before the ident.
        assert!(f.tokens.windows(2).any(
            |w| w[0].kind == TokKind::Punct('.') && w[1].kind == TokKind::Ident("sqrt".into())
        ));
    }
}
